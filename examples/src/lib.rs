//! xg-examples has no library API; see src/bin.
