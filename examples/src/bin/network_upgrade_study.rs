//! Network upgrade study: should the CUPS replace its 900 MHz + Wi-Fi
//! telemetry network with private 5G?
//!
//! §4.2 argues yes: the 5G path's 101 ms latency is imperceptible against
//! the 300 s reporting interval, and the move "will obviate the current
//! solar and battery power distribution infrastructure, thereby
//! drastically reducing the maintenance cost". This example quantifies
//! both halves of the argument with the reproduction's models.
//!
//! Run: `cargo run -p xg-examples --release --bin network_upgrade_study`

use std::sync::Arc;
use xg_cspot::prelude::*;
use xg_sensors::power::{PowerBudget, RadioKind, REPLACE_AT_HEALTH};

fn main() {
    println!("== CUPS telemetry network upgrade study ==\n");

    // --- Latency: does 5G access hurt? -------------------------------
    let server = Arc::new(CspotNode::in_memory("UCSB"));
    server
        .create_log("telemetry", 1024, 4096)
        .expect("fresh log");
    let topo = Topology::paper();
    let mut results = Vec::new();
    for (label, from) in [
        ("wired Internet", "UNL"),
        ("private 5G + Internet", "UNL-5G"),
    ] {
        let mut appender = RemoteAppender::new(
            SimClock::new(),
            topo.route(from, "UCSB").expect("route").clone(),
            RemoteConfig::default(),
            11,
        );
        let series = appender
            .measure_latency_series(&server, "telemetry", &vec![0u8; 1024], 30)
            .expect("healthy path");
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        println!("{label:<24}: {mean:6.1} ms per 1 KB message");
        results.push(mean);
    }
    let overhead = results[1] - results[0];
    println!(
        "5G adds {overhead:.0} ms per message = {:.4}% of the 300 s reporting interval",
        overhead / 300_000.0 * 100.0
    );
    println!("=> latency impact imperceptible (the paper's §4.2 conclusion)\n");

    // --- Power: what does the current infrastructure cost? -----------
    println!("Two years of operation, by winter insolation (peak-sun hours/day):\n");
    println!(
        "{:<22} {:>12} {:>12} {:>14}",
        "station radio", "sun (h/day)", "uptime", "battery state"
    );
    for &(radio, label) in &[
        (RadioKind::Ism900, "900 MHz mesh"),
        (RadioKind::LongWifi, "long-range Wi-Fi"),
    ] {
        for &sun in &[5.0, 2.0] {
            let mut budget = PowerBudget::field_station(radio);
            let (uptime, needs_replacement) = budget.simulate_days(730, sun);
            println!(
                "{label:<22} {sun:>12.1} {:>11.1}% {:>14}",
                uptime * 100.0,
                if needs_replacement {
                    "REPLACE"
                } else if budget.health < 0.9 {
                    "degraded"
                } else {
                    "healthy"
                }
            );
        }
    }
    println!(
        "\n(battery replacement threshold: {:.0}% health; every replacement is a",
        REPLACE_AT_HEALTH * 100.0
    );
    println!(" field visit across several acres of screen house)");
    println!("\nconclusion: the 5G gateway consolidates connectivity onto facility");
    println!("power at no perceptible latency cost — the paper's upgrade case.");
}
