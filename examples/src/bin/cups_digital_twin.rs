//! The CUPS digital twin: a narrated day of the full closed loop.
//!
//! This is the paper's Fig. 3 application end-to-end: sensors at the
//! screen house report over private 5G into the CSPOT repository; the
//! Laminar change detector watches the telemetry; a wind front triggers
//! the Pilot controller and a CFD run on the (simulated) Notre Dame
//! cluster; the digital twin calibrates itself against the first run and
//! thereafter compares predictions with measurements.
//!
//! Run: `cargo run -p xg-examples --release --bin cups_digital_twin`

use xg_fabric::orchestrator::FabricConfig;
use xg_fabric::prelude::*;
use xg_fabric::timeline::Event;

fn main() {
    let mut fabric = XgFabric::new(FabricConfig::default());
    println!("== CUPS digital twin: one simulated morning ==\n");

    println!("06:00  stations reporting every 5 minutes; building history...");
    fabric.run_cycles(12).unwrap();

    println!("07:00  a wind front rolls in from the north-west...");
    fabric.force_front();
    fabric.run_cycles(12).unwrap();

    println!("08:00  conditions settle; monitoring continues...");
    fabric.run_cycles(6).unwrap();

    println!("\n== what the fabric did ==");
    let tl = fabric.timeline();
    for event in &tl.events {
        match event {
            Event::ChangeChecked {
                t_s,
                changed,
                votes,
            } if *changed => {
                println!(
                    "  [{}] change detected ({votes}/3 tests agree) -> new CFD needed",
                    hhmm(*t_s)
                );
            }
            Event::PilotEvaluated {
                t_s,
                n_required,
                n_available,
                submitted,
            } => {
                println!(
                    "  [{}] pilot controller: need {n_required} node(s), {n_available} available{}",
                    hhmm(*t_s),
                    if *submitted {
                        " -> submitted a new pilot"
                    } else {
                        ""
                    }
                );
            }
            Event::CfdCompleted {
                t_s,
                model_runtime_s,
                predicted_interior_wind,
                validity_s,
            } => {
                println!(
                    "  [{}] CFD finished ({:.0} s on 64 cores): interior wind {:.2} m/s, valid {:.0} min",
                    hhmm(*t_s),
                    model_runtime_s,
                    predicted_interior_wind,
                    validity_s / 60.0
                );
            }
            Event::TwinCompared {
                t_s,
                max_residual_ms,
                breach_suspected,
            } => {
                println!(
                    "  [{}] twin check: residual {:.2} m/s -> {}",
                    hhmm(*t_s),
                    max_residual_ms,
                    if *breach_suspected {
                        "DIVERGENCE (possible breach)"
                    } else {
                        "model matches reality"
                    }
                );
            }
            _ => {}
        }
    }

    let latencies = tl.telemetry_latencies_ms();
    let mean = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    println!("\n== summary ==");
    println!("  report cycles      : {}", latencies.len());
    println!("  mean cycle transfer: {mean:.0} ms (over 5G + Internet)");
    println!("  changes detected   : {}", tl.changes_detected());
    println!("  CFD runs           : {}", tl.cfd_runs());
    println!("  (first run calibrates the twin; later runs are compared)");
}

fn hhmm(t_s: f64) -> String {
    let total_min = (t_s / 60.0) as u64 + 6 * 60; // scenario starts at 06:00
    format!("{:02}:{:02}", (total_min / 60) % 24, total_min % 60)
}
