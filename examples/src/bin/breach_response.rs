//! Breach response: detect a screen tear and dispatch the robot.
//!
//! §2's biosecurity loop, closed: a large tear appears in the west wall
//! of the screen house. The interior stations feel the inflow jet, the
//! wind statistics shift, a CFD run is triggered, the digital twin sees
//! measured airflow diverge from the intact-screen prediction, localizes
//! the suspect wall panel, and dispatches the Farm-NG robot — which
//! visually confirms the breach so a repair crew can be sent.
//!
//! Run: `cargo run -p xg-examples --release --bin breach_response`

use xg_fabric::orchestrator::FabricConfig;
use xg_fabric::prelude::*;
use xg_fabric::timeline::Event;
use xg_sensors::breach::Breach;
use xg_sensors::facility::Wall;

fn main() {
    let mut fabric = XgFabric::new(FabricConfig::default());
    println!("== breach response scenario ==\n");

    // Calibration phase: history + one triggered (intact) CFD run so the
    // twin learns the intact-screen baseline.
    println!("phase 1: calm monitoring + twin calibration");
    fabric.run_cycles(12).unwrap();
    fabric.force_front();
    fabric.run_cycles(12).unwrap();
    let runs_before = fabric.timeline().cfd_runs();
    println!("  twin calibrated against {runs_before} intact CFD run(s)\n");

    // The incident.
    println!("phase 2: a 12 m2 tear opens in the WEST wall (panel 5) — unobserved");
    fabric.inject_breach(Breach::new(Wall::West, 5, 12.0));
    fabric.force_front();
    fabric.run_cycles(18).unwrap();

    // Narrate the response.
    println!("\nphase 3: the fabric responds");
    let mut dispatched = false;
    for event in &fabric.timeline().events {
        match event {
            Event::TwinCompared {
                t_s,
                max_residual_ms,
                breach_suspected: true,
            } => {
                println!(
                    "  t={:>6.0}s  twin divergence {:.2} m/s above intact prediction -> breach suspected",
                    t_s, max_residual_ms
                );
            }
            Event::RobotDispatched {
                t_s,
                mission_s,
                confirmed,
            } => {
                dispatched = true;
                println!(
                    "  t={:>6.0}s  robot mission ({mission_s:.0} s drive+inspect): breach {}",
                    t_s,
                    if *confirmed {
                        "CONFIRMED on camera"
                    } else {
                        "not found (false alarm)"
                    }
                );
            }
            _ => {}
        }
    }

    assert!(dispatched, "scenario must end with a robot dispatch");
    println!(
        "\noutcome: breach confirmed = {} — repair crew dispatched to the west wall.",
        fabric.timeline().breach_confirmed()
    );
}
