//! Network-slicing study: isolating sensor traffic from a video feed.
//!
//! The paper motivates slicing as the way one physical 5G network serves
//! "low-latency control systems, high-throughput video, or lightweight
//! IoT traffic" simultaneously (§3.3). This example builds a 40 MHz TDD
//! cell with an mIoT slice for the sensor gateways and an eMBB slice for
//! a surveillance-video Raspberry Pi, and shows that a saturating video
//! uplink cannot starve the sensor slice.
//!
//! Run: `cargo run -p xg-examples --release --bin slicing_study`

use xg_net::prelude::*;

fn main() {
    println!("== slicing study: sensors vs video on one 40 MHz TDD cell ==\n");

    // 30% of PRBs reserved for sensor traffic, 70% for video.
    let slices = SliceConfig::new(vec![
        xg_net::slice::SliceProfile {
            snssai: Snssai::miot(1),
            prb_share: 0.3,
        },
        xg_net::slice::SliceProfile {
            snssai: Snssai::embb(1),
            prb_share: 0.7,
        },
    ])
    .expect("shares sum to 1.0");
    let cell = CellConfig::new(Rat::Nr5g, Duplex::tdd_default(), MHz(40.0)).with_slices(slices);

    // Phase 1: sensors alone on their slice.
    let mut alone = LinkSimulator::try_new(cell.clone(), 1).expect("valid cell");
    let sensor = alone
        .attach_with(
            DeviceClass::RaspberryPi,
            Modem::Rm530nGl,
            Snssai::miot(1),
            Default::default(),
        )
        .expect("admitted to mIoT slice");
    let sensors_alone = alone.iperf_uplink(sensor, 30).mean_mbps();
    println!("sensor gateway alone          : {sensors_alone:6.2} Mbps (30% PRB slice)");

    // Phase 2: a video UE saturates the eMBB slice at the same time.
    let mut shared = LinkSimulator::try_new(cell.clone(), 1).expect("valid cell");
    let _sensor = shared
        .attach_with(
            DeviceClass::RaspberryPi,
            Modem::Rm530nGl,
            Snssai::miot(1),
            Default::default(),
        )
        .expect("admitted");
    let _video = shared
        .attach_with(
            DeviceClass::RaspberryPi,
            Modem::Rm530nGl,
            Snssai::embb(1),
            Default::default(),
        )
        .expect("admitted");
    let runs = shared.iperf_uplink_all(30);
    let with_video = runs.iter().map(|r| r.mean_mbps()).collect::<Vec<_>>();
    println!(
        "sensor gateway + video running: {:6.2} Mbps (video slice carries {:6.2} Mbps)",
        with_video[0], with_video[1]
    );
    let retained = with_video[0] / sensors_alone;
    println!(
        "sensor slice retained {:.0}% of its solo throughput under full video load",
        retained * 100.0
    );
    assert!(retained > 0.85, "slice isolation violated: {retained:.2}");

    // Phase 3: admission control — a UE asking for an unknown slice is
    // rejected by the core.
    let denied = shared.attach_with(
        DeviceClass::Smartphone,
        Modem::Integrated,
        Snssai::embb(99),
        Default::default(),
    );
    println!(
        "\nadmission control: unknown S-NSSAI rejected -> {}",
        denied.err().map(|e| e.to_string()).unwrap_or_default()
    );

    println!("\nconclusion: PRB-ratio slicing gives the sensor pipeline guaranteed");
    println!("radio resources regardless of co-tenant load — the property the");
    println!("paper's Fig. 6 experiment verifies on real SDR hardware.");
}
