//! Quickstart: the xGFabric stack in ~60 lines.
//!
//! Brings up a private 5G cell, attaches a Raspberry Pi sensor gateway,
//! measures its uplink, ships a telemetry message through CSPOT over the
//! calibrated 5G + Internet route, and runs the statistical
//! change-detection battery — one taste of each layer.
//!
//! Run: `cargo run -p xg-examples --release --bin quickstart`

use std::sync::Arc;
use xg_cspot::prelude::*;
use xg_laminar::prelude::*;
use xg_net::prelude::*;

fn main() {
    // 1. Radio layer: a 20 MHz 5G FDD cell with a Raspberry Pi UE.
    let cell = CellConfig::new(Rat::Nr5g, Duplex::Fdd, MHz(20.0));
    let mut ran = LinkSimulator::builder(cell)
        .seed(42)
        .build()
        .expect("valid cell");
    let ue = ran
        .attach(DeviceClass::RaspberryPi, Modem::Rm530nGl)
        .expect("RM530N-GL supports 5G");
    let uplink = ran.iperf_uplink(ue, 10);
    println!(
        "5G uplink: {} on {} ({} registered UE)",
        uplink.summary().csv_row(),
        ran.cell().describe(),
        ran.core().registered_count()
    );

    // 2. Data layer: a CSPOT log at the UCSB repository, appended to from
    // the field over the 5G + Internet route.
    let repo = Arc::new(CspotNode::in_memory("UCSB"));
    repo.create_log("telemetry", 8, 1024).expect("fresh log");
    let topo = Topology::paper();
    let mut client = RemoteAppender::new(
        SimClock::new(),
        topo.route("UNL-5G", "UCSB").expect("paper route").clone(),
        RemoteConfig::default(),
        7,
    );
    let wind: f64 = uplink.mean_mbps(); // any payload
    let outcome = client
        .append(&repo, "telemetry", &wind.to_le_bytes())
        .expect("path healthy");
    println!(
        "CSPOT append over 5G+Internet: seq {} in {:.1} ms ({} attempt(s))",
        outcome.seq, outcome.latency_ms, outcome.attempts
    );

    // 3. Analytics layer: the three-test voting change detector.
    let calm = [2.0, 2.1, 1.9, 2.05, 1.95, 2.0];
    let front = [6.8, 7.1, 6.9, 7.05, 6.95, 7.0];
    let detector = ChangeDetector::default();
    let same = detector.evaluate_windows(&calm, &calm);
    let changed = detector.evaluate_windows(&calm, &front);
    println!(
        "change detection: calm-vs-calm changed={} ({} votes), calm-vs-front changed={} ({} votes)",
        same.changed, same.votes, changed.changed, changed.votes
    );
    println!("\nquickstart complete — see the other examples for full scenarios.");
}
