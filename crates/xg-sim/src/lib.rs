//! Deterministic discrete-event simulation core.
//!
//! Every subsystem in the fabric used to advance time its own way:
//! `LinkSimulator::step_slots` walked every TTI, `SensorNetwork::poll`
//! jumped a whole 300 s reporting window, the HPC controllers took
//! absolute `f64` seconds, and the orchestrator hand-ordered its phases
//! per report cycle. This crate unifies them behind two small pieces:
//!
//! * [`SimNs`] — integer nanoseconds since simulation start. Integer ns
//!   compose exactly (no float drift between a 0.5 ms TTI grid and a
//!   300 s report grid) and cover ~584 years of sim time in a `u64`.
//! * [`Advance`] — `advance_to(&mut self, t: SimNs)`: bring a component
//!   forward to absolute time `t`, firing everything it owes in between.
//!   Implemented by `LinkSimulator`, `RanFleet`, `SensorNetwork`, the
//!   HPC controllers, `xg-cspot`'s `SimClock`, and the orchestrator.
//! * [`EventQueue`] — a calendar-queue scheduler (bucketed wheel for
//!   near events, `BTreeMap` overflow for far ones) with a stable
//!   `(time, source, seq)` ordering so execution order is a pure
//!   function of what was scheduled, never of container iteration
//!   order. See [`queue`] for the layout and the tie-breaking rule.
//!
//! The legacy entry points remain as `#[deprecated]` shims layered on
//! the event engine; the stepped-vs-event bitwise-equality proptest in
//! `tests/tests/event_engine.rs` pins that layering.

#![deny(deprecated)]

pub mod queue;

pub use queue::{EventQueue, Scheduled};

/// Absolute simulation time in integer nanoseconds since t = 0.
///
/// A newtype (not a bare `u64`) so slot counts, byte counts, and times
/// cannot be mixed up at an `advance_to` boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimNs(pub u64);

impl SimNs {
    /// t = 0.
    pub const ZERO: SimNs = SimNs(0);

    /// One microsecond.
    pub const MICRO: SimNs = SimNs(1_000);

    /// One millisecond (one 15 kHz-SCS TTI).
    // xg-lint: allow(time-unit, MILLI is the named const the rule asks for)
    pub const MILLI: SimNs = SimNs(1_000_000);

    /// One second.
    // xg-lint: allow(time-unit, SECOND is the named const the rule asks for)
    pub const SECOND: SimNs = SimNs(1_000_000_000);

    /// Whole seconds, exact for integer-second times.
    pub fn from_secs(s: u64) -> SimNs {
        SimNs(s * Self::SECOND.0)
    }

    /// Whole milliseconds.
    pub fn from_millis(ms: u64) -> SimNs {
        SimNs(ms * Self::MILLI.0)
    }

    /// Nearest-nanosecond conversion from float seconds. Exact for the
    /// grid times the fabric uses (TTI and report-interval multiples).
    pub fn from_secs_f64(s: f64) -> SimNs {
        SimNs((s * 1e9).round().max(0.0) as u64)
    }

    /// This time as float seconds (for the `f64`-second legacy surfaces).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time as float milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimNs) -> SimNs {
        SimNs(self.0.saturating_add(rhs.0))
    }

    /// Saturating difference (`self - earlier`, floored at zero).
    pub fn saturating_sub(self, earlier: SimNs) -> SimNs {
        SimNs(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add for SimNs {
    type Output = SimNs;
    fn add(self, rhs: SimNs) -> SimNs {
        SimNs(self.0 + rhs.0)
    }
}

impl std::ops::Sub for SimNs {
    type Output = SimNs;
    fn sub(self, rhs: SimNs) -> SimNs {
        SimNs(self.0 - rhs.0)
    }
}

impl std::fmt::Display for SimNs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

/// The unified time-advance API.
///
/// `advance_to(t)` brings the component from its current [`now`](Advance::now)
/// to absolute time `t`, executing every event it owes in `(now, t]` in
/// deterministic order. Calls with `t <= now()` are no-ops, never errors:
/// components on coarser grids (a TTI-granular cell, a 60 s weather
/// model) round `t` *down* to their own grid, so `now()` after a call
/// may trail `t` by less than one grid step — it never exceeds `t`.
pub trait Advance {
    /// The component's failure type (`Infallible` for pure clocks).
    type Error;

    /// Current simulation time.
    fn now(&self) -> SimNs;

    /// Advance to absolute time `t`, firing everything due in between.
    fn advance_to(&mut self, t: SimNs) -> Result<(), Self::Error>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simns_conversions_are_exact_on_the_grid() {
        assert_eq!(SimNs::from_secs(300), SimNs(300_000_000_000));
        assert_eq!(SimNs::from_secs_f64(300.0), SimNs::from_secs(300));
        assert_eq!(SimNs::from_millis(1), SimNs::MILLI);
        assert_eq!(SimNs::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimNs::MILLI.as_millis_f64(), 1.0);
        assert_eq!(SimNs::from_secs_f64(-1.0), SimNs::ZERO);
    }

    #[test]
    fn simns_arithmetic() {
        let a = SimNs::from_secs(2) + SimNs::MILLI;
        assert_eq!(a.0, 2_001_000_000);
        assert_eq!(a - SimNs::MILLI, SimNs::from_secs(2));
        assert_eq!(SimNs(5).saturating_sub(SimNs(9)), SimNs::ZERO);
        assert_eq!(SimNs(u64::MAX).saturating_add(SimNs(1)), SimNs(u64::MAX));
        assert_eq!(format!("{}", SimNs(42)), "42ns");
    }

    #[test]
    fn advance_trait_is_object_safe_enough_for_generic_drivers() {
        struct Clock(SimNs);
        impl Advance for Clock {
            type Error = std::convert::Infallible;
            fn now(&self) -> SimNs {
                self.0
            }
            fn advance_to(&mut self, t: SimNs) -> Result<(), Self::Error> {
                if t > self.0 {
                    self.0 = t;
                }
                Ok(())
            }
        }
        fn drive<A: Advance>(a: &mut A, t: SimNs) -> Result<(), A::Error> {
            a.advance_to(t)
        }
        let mut c = Clock(SimNs::ZERO);
        drive(&mut c, SimNs::from_secs(7)).unwrap();
        assert_eq!(c.now(), SimNs::from_secs(7));
        // Backwards advance is a no-op, not an error.
        drive(&mut c, SimNs::from_secs(3)).unwrap();
        assert_eq!(c.now(), SimNs::from_secs(7));
    }
}
