//! Calendar-queue event scheduler.
//!
//! # Layout
//!
//! Events within a sliding *horizon* of `wheel_len` buckets × `width`
//! nanoseconds land in a bucketed wheel (`Vec<Vec<Scheduled>>`, bucket
//! index = `time / width % wheel_len`); events beyond the horizon go to
//! a `BTreeMap` overflow keyed by the full ordering tuple. The wheel
//! gives O(1) scheduling and near-O(1) dequeue for dense near-term
//! events (TTI-scale activity); the overflow keeps far-future timers
//! (300 s report cycles, multi-hour HPC walltimes) out of the wheel
//! entirely. Dequeue takes the minimum of the best wheel entry and the
//! overflow head, so the split is purely a performance layering — no
//! migration between the two is ever needed for correctness.
//!
//! # Tie-breaking
//!
//! Events are totally ordered by `(time, source, seq)`:
//!
//! * `time` — the scheduled instant;
//! * `source` — the *registration index* of the scheduling source.
//!   Source precedes the push counter so that recurring sources with
//!   different periods still fire in registration order when their
//!   timers coincide (a 60 s weather tick scheduled at t=240 must
//!   precede a 300 s report timer scheduled at t=0 when both fire at
//!   t=300 — a pure push-order tie-break would invert them);
//! * `seq` — a queue-global monotone push counter, so multiple events
//!   from one source at one instant fire in the order they were
//!   scheduled.
//!
//! The order is therefore a pure function of what was scheduled — never
//! of hash iteration, thread interleaving, or pointer values — which is
//! what makes event execution seed-reproducible.

use crate::SimNs;
use std::collections::BTreeMap;

/// One scheduled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Absolute due time.
    pub at: SimNs,
    /// Registration index of the scheduling source (first tie-break).
    pub source: u32,
    /// Queue-global push counter (second tie-break).
    pub seq: u64,
    /// The event payload.
    pub payload: E,
}

/// Default bucket width: one 15 kHz TTI.
const DEFAULT_WIDTH_NS: u64 = 1_000_000;
/// Default wheel length: 1024 buckets ≈ one simulated second of horizon.
const DEFAULT_WHEEL_LEN: u64 = 1024;

/// A deterministic calendar event queue. See the module docs for the
/// layout and the `(time, source, seq)` tie-breaking rule.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    now: SimNs,
    width: u64,
    wheel: Vec<Vec<Scheduled<E>>>,
    /// Number of events currently in the wheel (not the overflow).
    wheel_count: usize,
    /// Absolute bucket index of the dequeue cursor (`now / width`,
    /// monotone). The horizon is `[cursor, cursor + wheel.len())`.
    cursor: u64,
    overflow: BTreeMap<(SimNs, u32, u64), E>,
    next_seq: u64,
    scheduled_total: u64,
    executed_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// A queue with the default TTI-width wheel.
    pub fn new() -> Self {
        EventQueue::with_layout(DEFAULT_WIDTH_NS, DEFAULT_WHEEL_LEN as usize)
    }

    /// A queue with an explicit bucket width (ns) and wheel length.
    pub fn with_layout(width_ns: u64, wheel_len: usize) -> Self {
        let width = width_ns.max(1);
        EventQueue {
            now: SimNs::ZERO,
            width,
            wheel: (0..wheel_len.max(1)).map(|_| Vec::new()).collect(),
            wheel_count: 0,
            cursor: 0,
            overflow: BTreeMap::new(),
            next_seq: 0,
            scheduled_total: 0,
            executed_total: 0,
        }
    }

    /// Current queue time: the due time of the last event popped, or
    /// the last [`drain_clock_to`](Self::drain_clock_to) target.
    pub fn now(&self) -> SimNs {
        self.now
    }

    /// Events currently pending.
    pub fn len(&self) -> usize {
        self.wheel_count + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled (the O(events) instrumentation the
    /// idle-skip tests assert against).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events ever executed (popped).
    pub fn executed_total(&self) -> u64 {
        self.executed_total
    }

    /// Due time of the earliest pending event.
    pub fn peek_at(&self) -> Option<SimNs> {
        let wheel_best = self.best_wheel_pos().map(|(_, _, key)| key.0);
        let overflow_best = self.overflow.keys().next().map(|k| k.0);
        match (wheel_best, overflow_best) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (Some(w), None) => Some(w),
            (None, Some(o)) => Some(o),
            (None, None) => None,
        }
    }

    /// Schedule `payload` at absolute time `at` from registration source
    /// `source`. Times in the past are clamped to `now` (the event fires
    /// on the next drain); the assigned `seq` is returned.
    pub fn push(&mut self, at: SimNs, source: u32, payload: E) -> u64 {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let bucket = at.0 / self.width;
        if bucket < self.cursor + self.wheel.len() as u64 {
            let idx = (bucket % self.wheel.len() as u64) as usize;
            self.wheel[idx].push(Scheduled {
                at,
                source,
                seq,
                payload,
            });
            self.wheel_count += 1;
        } else {
            self.overflow.insert((at, source, seq), payload);
        }
        seq
    }

    /// Position of the earliest wheel event: `(bucket index, slot in
    /// bucket, ordering key)`. Linear in the gap to the next non-empty
    /// bucket plus that bucket's occupancy — both small by construction.
    fn best_wheel_pos(&self) -> Option<(usize, usize, (SimNs, u32, u64))> {
        if self.wheel_count == 0 {
            return None;
        }
        let n = self.wheel.len() as u64;
        for off in 0..n {
            let idx = ((self.cursor + off) % n) as usize;
            let bucket = &self.wheel[idx];
            if bucket.is_empty() {
                continue;
            }
            if let Some((slot, ev)) = bucket
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.at, e.source, e.seq))
            {
                return Some((idx, slot, (ev.at, ev.source, ev.seq)));
            }
        }
        None
    }

    /// Pop the earliest event with `at <= t`, advancing `now` to its due
    /// time. Returns `None` (and leaves `now` untouched) once nothing is
    /// due at or before `t` — pair with [`drain_clock_to`](Self::drain_clock_to)
    /// to finish advancing the clock.
    pub fn pop_due(&mut self, t: SimNs) -> Option<Scheduled<E>> {
        let wheel_best = self.best_wheel_pos();
        let overflow_best = self.overflow.keys().next().copied();
        let wheel_wins = match (&wheel_best, &overflow_best) {
            (Some((_, _, wk)), Some(ok)) => wk <= ok,
            (Some(_), None) => true,
            _ => false,
        };
        if wheel_wins {
            if let Some((idx, slot, key)) = wheel_best {
                if key.0 > t {
                    return None;
                }
                let ev = self.wheel[idx].swap_remove(slot);
                self.wheel_count -= 1;
                self.cursor = self.cursor.max(ev.at.0 / self.width);
                self.now = ev.at;
                self.executed_total += 1;
                return Some(ev);
            }
            return None;
        }
        if let Some(key) = overflow_best {
            if key.0 > t {
                return None;
            }
            if let Some(payload) = self.overflow.remove(&key) {
                self.cursor = self.cursor.max(key.0 .0 / self.width);
                self.now = key.0;
                self.executed_total += 1;
                return Some(Scheduled {
                    at: key.0,
                    source: key.1,
                    seq: key.2,
                    payload,
                });
            }
        }
        None
    }

    /// Move the clock to `t` after a drain (no events may remain due at
    /// or before `t`; the skipped span is exactly the idle time saved).
    pub fn drain_clock_to(&mut self, t: SimNs) {
        debug_assert!(
            self.peek_at().map(|at| at > t).unwrap_or(true),
            "drain_clock_to({t}) called with events still due"
        );
        if t > self.now {
            self.now = t;
            self.cursor = self.cursor.max(t.0 / self.width);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_across_wheel_and_overflow() {
        let mut q = EventQueue::with_layout(1_000_000, 8); // 8 ms horizon
        q.push(SimNs::from_secs(300), 0, "far");
        q.push(SimNs::from_millis(2), 0, "near");
        q.push(SimNs::from_millis(5), 0, "mid");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_at(), Some(SimNs::from_millis(2)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop_due(SimNs::from_secs(400)))
            .map(|e| e.payload)
            .collect();
        assert_eq!(order, ["near", "mid", "far"]);
        assert_eq!(q.now(), SimNs::from_secs(300));
        assert_eq!(q.executed_total(), 3);
    }

    #[test]
    fn equal_time_events_fire_in_source_then_push_order() {
        let mut q = EventQueue::new();
        let t = SimNs::from_secs(300);
        // Pushed out of source order, and source 0's second event pushed
        // before its first-pushed event fires: (time, source, seq).
        q.push(t, 1, "report");
        q.push(t, 0, "weather-a");
        q.push(t, 0, "weather-b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop_due(t))
            .map(|e| e.payload)
            .collect();
        assert_eq!(order, ["weather-a", "weather-b", "report"]);
    }

    #[test]
    fn pop_due_respects_the_deadline() {
        let mut q = EventQueue::new();
        q.push(SimNs::from_secs(10), 0, ());
        assert!(q.pop_due(SimNs::from_secs(9)).is_none());
        assert_eq!(q.len(), 1);
        assert!(q.pop_due(SimNs::from_secs(10)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn past_pushes_clamp_to_now() {
        let mut q = EventQueue::new();
        q.push(SimNs::from_secs(5), 0, "a");
        q.pop_due(SimNs::from_secs(5)).unwrap();
        q.push(SimNs::from_secs(1), 0, "late");
        let e = q.pop_due(SimNs::from_secs(5)).unwrap();
        assert_eq!(e.at, SimNs::from_secs(5), "clamped to now");
    }

    #[test]
    fn drain_clock_skips_idle_time_in_one_step() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(SimNs::from_secs(600), 0, ());
        assert!(q.pop_due(SimNs::from_secs(300)).is_none());
        q.drain_clock_to(SimNs::from_secs(300));
        assert_eq!(q.now(), SimNs::from_secs(300));
        // The far event is still intact and fires next cycle.
        assert!(q.pop_due(SimNs::from_secs(600)).is_some());
        assert_eq!(q.now(), SimNs::from_secs(600));
    }

    #[test]
    fn wheel_wraps_over_many_revolutions() {
        let mut q = EventQueue::with_layout(1, 4); // 4 ns horizon
        for i in 0..100u64 {
            q.push(SimNs(i * 3), 0, i);
        }
        let mut got = Vec::new();
        while let Some(e) = q.pop_due(SimNs(1_000)) {
            got.push(e.payload);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(q.scheduled_total(), 100);
        assert_eq!(q.executed_total(), 100);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(SimNs(10), 0, "a");
        q.push(SimNs(30), 0, "c");
        assert_eq!(q.pop_due(SimNs(100)).unwrap().payload, "a");
        // Scheduled mid-drain, earlier than the pending "c".
        q.push(SimNs(20), 0, "b");
        assert_eq!(q.pop_due(SimNs(100)).unwrap().payload, "b");
        assert_eq!(q.pop_due(SimNs(100)).unwrap().payload, "c");
    }
}
