//! Offline span-dump analysis behind the `xg-trace` binary.
//!
//! A black-box bundle or JSONL trace dump is a flat list of span lines;
//! this module turns one (or a pair) of them into the three reports the
//! CLI prints:
//!
//! * [`critical_report`] — per-cycle critical-path summaries plus the
//!   full table of the slowest cycle (where did the worst cycle go?);
//! * [`flame_report`] — merged hierarchical attribution across every
//!   cycle in the dump (where does time go *on average*?);
//! * [`diff_report`] — two-run regression attribution: per-path
//!   self-time per cycle, old vs new, sorted by the size of the change,
//!   so a `cycle_wall_ms` regression reads as "`fabric.cycle/fabric.ran.probe`
//!   self-time +0.24 ms/cycle" instead of a bare scalar.
//!
//! Everything operates on [`SpanRecord`]s so the reports are unit-testable
//! without touching the filesystem; the binary only adds file loading.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use xg_obs::span::{SpanRecord, TraceId};
use xg_obs::{extract_critical, render_critical, render_profile, ProfileSnapshot, Profiler};

/// Distinct trace ids in a dump, ascending. Each closed-loop report
/// cycle records exactly one trace, so this doubles as the cycle count.
pub fn trace_ids(spans: &[SpanRecord]) -> Vec<TraceId> {
    spans
        .iter()
        .map(|s| s.trace)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect()
}

/// Merged attribution tree of a dump plus its cycle count: every span's
/// duration lands at its ancestor-chain path, exactly as the live
/// profiler ingests cycles.
pub fn attribution(spans: &[SpanRecord]) -> (ProfileSnapshot, usize) {
    let prof = Profiler::with_stripes(1);
    prof.record_trace(spans);
    (prof.snapshot(), trace_ids(spans).len())
}

/// Per-cycle critical-path report: one summary line per trace, then the
/// full step table of the slowest cycle.
pub fn critical_report(spans: &[SpanRecord]) -> String {
    let ids = trace_ids(spans);
    if ids.is_empty() {
        return "no spans in dump\n".to_string();
    }
    let mut out = String::new();
    let mut slowest = None;
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>6}  leaf",
        "trace", "total(ms)", "depth"
    );
    for id in ids {
        let Some(path) = extract_critical(spans, id) else {
            continue;
        };
        let _ = writeln!(
            out,
            "{:>8} {:>12.3} {:>6}  {}",
            path.trace,
            path.total_us as f64 / 1e3,
            path.depth(),
            path.leaf().map(|l| l.name.as_str()).unwrap_or("-"),
        );
        let worse = slowest
            .as_ref()
            .map(|s: &xg_obs::CriticalPath| path.total_us > s.total_us)
            .unwrap_or(true);
        if worse {
            slowest = Some(path);
        }
    }
    if let Some(path) = slowest {
        let _ = writeln!(out, "\nslowest cycle:");
        out.push_str(&render_critical(&path));
    }
    out
}

/// Attribution flame summary of a dump, normalized per cycle in the
/// footer so dumps of different lengths stay comparable.
pub fn flame_report(spans: &[SpanRecord]) -> String {
    let (snap, cycles) = attribution(spans);
    if snap.is_empty() {
        return "no spans in dump\n".to_string();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "attribution · {} spans · {} cycles",
        spans.len(),
        cycles
    );
    out.push_str(&render_profile(&snap));
    let total_ms = snap.total_self_ns() as f64 / 1e6;
    let _ = writeln!(
        out,
        "total attributed {:.3} ms ({:.3} ms/cycle)",
        total_ms,
        total_ms / cycles.max(1) as f64
    );
    out
}

/// One row of a two-run diff: per-cycle self-time of a path, old vs new.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// Attribution path (`"fabric.cycle/fabric.ran.probe"`).
    pub path: String,
    /// Self-time per cycle in the old dump, ms (0 when absent).
    pub old_ms: f64,
    /// Self-time per cycle in the new dump, ms (0 when absent).
    pub new_ms: f64,
}

impl DiffRow {
    /// Change in per-cycle self-time, ms (positive = regression).
    pub fn delta_ms(&self) -> f64 {
        self.new_ms - self.old_ms
    }
}

/// Per-path regression attribution between two dumps, sorted by the
/// magnitude of the per-cycle self-time change (largest first; ties in
/// path order). Paths present in only one dump count as 0 in the other.
pub fn diff_rows(old: &[SpanRecord], new: &[SpanRecord]) -> Vec<DiffRow> {
    let (old_snap, old_cycles) = attribution(old);
    let (new_snap, new_cycles) = attribution(new);
    let per_cycle = |snap: &ProfileSnapshot, cycles: usize, path: &str| -> f64 {
        snap.nodes
            .get(path)
            .map(|n| n.self_ns() as f64 / 1e6 / cycles.max(1) as f64)
            .unwrap_or(0.0)
    };
    let paths: BTreeSet<&String> = old_snap.nodes.keys().chain(new_snap.nodes.keys()).collect();
    let mut rows: Vec<DiffRow> = paths
        .into_iter()
        .map(|path| DiffRow {
            path: path.clone(),
            old_ms: per_cycle(&old_snap, old_cycles, path),
            new_ms: per_cycle(&new_snap, new_cycles, path),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.delta_ms()
            .abs()
            .partial_cmp(&a.delta_ms().abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.path.cmp(&b.path))
    });
    rows
}

/// Human-readable two-run regression attribution.
pub fn diff_report(old: &[SpanRecord], new: &[SpanRecord]) -> String {
    let rows = diff_rows(old, new);
    if rows.is_empty() {
        return "no spans in either dump\n".to_string();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "regression attribution · old: {} cycles · new: {} cycles",
        trace_ids(old).len(),
        trace_ids(new).len()
    );
    let _ = writeln!(
        out,
        "{:<44} {:>14} {:>14} {:>14}",
        "path", "old(ms/cyc)", "new(ms/cyc)", "delta(ms/cyc)"
    );
    for row in &rows {
        let _ = writeln!(
            out,
            "{:<44} {:>14.3} {:>14.3} {:>+14.3}",
            row.path,
            row.old_ms,
            row.new_ms,
            row.delta_ms()
        );
    }
    if let Some(top) = rows.first() {
        if top.delta_ms().abs() > f64::EPSILON {
            let _ = writeln!(
                out,
                "\nbiggest mover: {} self-time {:+.3} ms/cycle",
                top.path,
                top.delta_ms()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_obs::ClockDomain;

    fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        name: &str,
        start: u64,
        end: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace,
            id,
            parent,
            name: name.into(),
            domain: ClockDomain::Wall,
            start_us: start,
            end_us: end,
            attrs: vec![],
        }
    }

    /// One synthetic report cycle: a root with a probe and a ship child,
    /// probe self-time controlled by `probe_us`.
    fn cycle(trace: u64, base_id: u64, probe_us: u64) -> Vec<SpanRecord> {
        vec![
            span(trace, base_id, None, "fabric.cycle", 0, probe_us + 300),
            span(
                trace,
                base_id + 1,
                Some(base_id),
                "fabric.ran.probe",
                0,
                probe_us,
            ),
            span(
                trace,
                base_id + 2,
                Some(base_id),
                "fabric.gateway.ship",
                probe_us,
                probe_us + 200,
            ),
        ]
    }

    fn dump(probe_us: u64, cycles: u64) -> Vec<SpanRecord> {
        (0..cycles)
            .flat_map(|c| cycle(c + 1, c * 10 + 1, probe_us))
            .collect()
    }

    #[test]
    fn critical_report_lists_cycles_and_details_the_slowest() {
        let mut spans = dump(700, 2);
        spans.extend(cycle(9, 91, 5_000)); // the slow outlier
        let text = critical_report(&spans);
        assert!(text.contains("slowest cycle"));
        assert!(text.contains("trace 9"), "slowest is trace 9:\n{text}");
        assert!(text.contains("fabric.ran.probe"));
        assert_eq!(critical_report(&[]), "no spans in dump\n");
    }

    #[test]
    fn flame_report_normalizes_per_cycle() {
        let text = flame_report(&dump(700, 4));
        assert!(text.contains("4 cycles"));
        assert!(text.contains("fabric.cycle/fabric.ran.probe"));
        assert!(text.contains("ms/cycle"));
    }

    #[test]
    fn diff_attributes_an_injected_probe_slowdown() {
        // Old: 0.7 ms probe; new: 0.94 ms probe — +0.24 ms/cycle on the
        // probe's self-time, everything else unchanged.
        let old = dump(700, 3);
        let new = dump(940, 3);
        let rows = diff_rows(&old, &new);
        let top = &rows[0];
        assert_eq!(top.path, "fabric.cycle/fabric.ran.probe");
        assert!((top.delta_ms() - 0.24).abs() < 1e-9, "{:?}", top);
        let text = diff_report(&old, &new);
        assert!(text.contains("biggest mover: fabric.cycle/fabric.ran.probe"));
        assert!(text.contains("+0.240"));
    }

    #[test]
    fn diff_handles_paths_missing_on_one_side() {
        let old = dump(700, 2);
        let mut new = dump(700, 2);
        new.extend(cycle(8, 81, 700));
        new.push(span(8, 84, Some(81), "fabric.new.phase", 0, 900));
        let rows = diff_rows(&old, &new);
        let added = rows
            .iter()
            .find(|r| r.path == "fabric.cycle/fabric.new.phase")
            .expect("new path present");
        assert_eq!(added.old_ms, 0.0);
        assert!(added.new_ms > 0.0);
    }
}
