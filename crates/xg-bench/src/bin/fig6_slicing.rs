//! Figure 6: two-user uplink throughput on a 40 MHz private 5G TDD
//! network with varying PRB slice ratios.
//!
//! Two Raspberry Pis sit on complementary network slices. Nine slice
//! profiles allocate 10%…90% of the PRBs to RPi1 with the complement to
//! RPi2; 100 iperf3 samples are collected per device per configuration.
//! The paper's result: throughput tracks the PRB allocation (4.95 → 34.73
//! Mbps for RPi1, 5.14 → 43.47 for RPi2) with 3–5 Mbps SDs throughout.
//!
//! Run: `cargo run -p xg-bench --release --bin fig6_slicing`

use xg_bench::scenario::ScenarioBuilder;
use xg_bench::{
    cell, effective_seed, iperf_samples, obs_from_env, print_run_header, write_results,
};
use xg_net::device::UnitVariation;
use xg_net::prelude::*;

/// Paper endpoints, indexed by each device's *own* PRB share (the figure's
/// x-axis): (share %, RPi1 at that share, RPi2 at that share). RPi1 and
/// RPi2 hold complementary shares, so RPi2's value at share s comes from
/// the configuration where RPi1 holds 100-s.
const PAPER_ANCHORS: &[(u32, f64, f64)] =
    &[(10, 4.95, 5.14), (50, 23.91, 25.22), (90, 34.73, 43.47)];

fn main() {
    let samples = iperf_samples();
    let base_seed = effective_seed(0xF166);
    let mut csv = String::from("rpi1_share_pct,rpi1_mean,rpi1_sd,rpi2_mean,rpi2_sd\n");
    let mut table: Vec<(u32, f64, f64, f64, f64)> = Vec::new();

    println!("Figure 6 — PRB slicing on 40 MHz 5G TDD ({samples} samples/device/point)");
    print_run_header(base_seed, &obs_from_env());
    println!();
    println!(
        "{:>10} {:>16} {:>16}",
        "RPi1 share", "RPi1 (Mbps)", "RPi2 (Mbps)"
    );
    for pct in (10..=90).step_by(10) {
        let share = pct as f64 / 100.0;
        let slices = SliceConfig::complementary_pair(share).expect("valid share");
        // RPi1 is the paper's weaker unit; RPi2 the stronger.
        let mut sc = ScenarioBuilder::new(Rat::Nr5g, Duplex::tdd_default(), 40.0)
            .slices(slices)
            .seed(base_seed ^ pct as u64)
            .ue_on_slice(
                DeviceClass::RaspberryPi,
                Snssai::miot(1),
                UnitVariation::rpi_unit_a(),
            )
            .ue_on_slice(
                DeviceClass::RaspberryPi,
                Snssai::miot(2),
                UnitVariation::default(),
            )
            .build()
            .expect("40 MHz TDD with complementary slices is valid");
        let runs = sc.sim.iperf_uplink_all(samples);
        let s1 = runs[0].summary();
        let s2 = runs[1].summary();
        println!(
            "{:>9}% {:>16} {:>16}",
            pct,
            cell(s1.mean_mbps, s1.sd_mbps),
            cell(s2.mean_mbps, s2.sd_mbps)
        );
        csv.push_str(&format!(
            "{pct},{:.2},{:.2},{:.2},{:.2}\n",
            s1.mean_mbps, s1.sd_mbps, s2.mean_mbps, s2.sd_mbps
        ));
        table.push((pct, s1.mean_mbps, s1.sd_mbps, s2.mean_mbps, s2.sd_mbps));
    }

    println!("\nPaper-vs-measured anchors (per-device share):");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "share", "paper RPi1", "meas RPi1", "paper RPi2", "meas RPi2"
    );
    for &(pct, p1, p2) in PAPER_ANCHORS {
        let m1 = table.iter().find(|r| r.0 == pct).map(|r| r.1);
        // RPi2 holds share pct in the configuration where RPi1 holds
        // 100 - pct.
        let m2 = table.iter().find(|r| r.0 == 100 - pct).map(|r| r.3);
        if let (Some(m1), Some(m2)) = (m1, m2) {
            println!("{pct:>9}% {p1:>12.2} {m1:>12.2} {p2:>12.2} {m2:>12.2}");
        }
    }
    // The headline claim: throughput scales with the PRB share.
    let first = table.first().expect("9 rows");
    let last = table.last().expect("9 rows");
    println!(
        "\nscaling check: RPi1 {:.2} -> {:.2} Mbps ({:.1}x at 9x the PRBs), RPi2 {:.2} -> {:.2} Mbps ({:.1}x)",
        first.1,
        last.1,
        last.1 / first.1,
        last.3,
        first.3,
        first.3 / last.3
    );
    let path = write_results("fig6_slicing.csv", &csv);
    println!("wrote {}", path.display());
}
