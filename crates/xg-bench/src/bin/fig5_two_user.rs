//! Figure 5: two-user simultaneous uplink throughput across bandwidths,
//! duplexing modes, and devices.
//!
//! Two identical devices run iperf3 uplink tests simultaneously at each
//! configuration; the paper reports per-user and aggregate behaviour
//! ("both FDD and TDD modes deliver high and evenly distributed uplink
//! throughput"), the 4G 20 MHz drop it attributes to SDR sampling
//! constraints, and the 5G TDD 50 MHz drop to SDR limits.
//!
//! Run: `cargo run -p xg-bench --release --bin fig5_two_user`

use xg_bench::scenario::ScenarioBuilder;
use xg_bench::{
    cell, effective_seed, iperf_samples, obs_from_env, print_run_header, sweeps, write_results,
};
use xg_net::prelude::*;

/// Paper anchors: (config, device, aggregate Mbps).
const PAPER_ANCHORS: &[(&str, &str, f64)] = &[
    ("4G FDD 15 MHz", "Smartphone", 35.5),
    ("4G FDD 15 MHz", "Laptop", 36.1),
    ("5G FDD 20 MHz", "Laptop", 45.7),
    ("5G FDD 20 MHz", "RPi", 45.4),
    ("5G TDD 40 MHz", "Laptop", 65.2),
    ("5G TDD 40 MHz", "RPi", 53.8),
];

fn main() {
    let samples = iperf_samples();
    let base_seed = effective_seed(0xF165);
    let mut csv = String::from("config,device,user,n,mean_mbps,sd_mbps,aggregate_mbps\n");
    let mut aggregates: Vec<(String, String, f64)> = Vec::new();

    let configs: Vec<(Rat, Duplex, Vec<f64>)> = vec![
        (Rat::Lte4g, Duplex::Fdd, sweeps::LTE_FDD.to_vec()),
        (Rat::Nr5g, Duplex::Fdd, sweeps::NR_FDD.to_vec()),
        (Rat::Nr5g, Duplex::tdd_default(), sweeps::NR_TDD.to_vec()),
    ];
    println!("Figure 5 — two-user uplink throughput ({samples} samples/point)");
    print_run_header(base_seed, &obs_from_env());
    println!();
    println!(
        "{:<16} {:<12} {:>16} {:>16} {:>10}",
        "config", "device", "user 1 (Mbps)", "user 2 (Mbps)", "aggregate"
    );
    for (rat, duplex, bws) in configs {
        for &bw in &bws {
            for device in DeviceClass::all() {
                let seed = base_seed ^ (bw as u64) << 8 ^ device as u64;
                let mut sc = ScenarioBuilder::new(rat, duplex.clone(), bw)
                    .seed(seed)
                    .ue(device)
                    .ue(device)
                    .build()
                    .expect("paper sweep configs are valid");
                let runs = sc.sim.iperf_uplink_all(samples);
                let s: Vec<IperfSummary> = runs.iter().map(|r| r.summary()).collect();
                let aggregate: f64 = s.iter().map(|x| x.mean_mbps).sum();
                println!(
                    "{:<16} {:<12} {:>16} {:>16} {:>10.2}",
                    s[0].config,
                    s[0].device,
                    cell(s[0].mean_mbps, s[0].sd_mbps),
                    cell(s[1].mean_mbps, s[1].sd_mbps),
                    aggregate
                );
                for (user, row) in s.iter().enumerate() {
                    csv.push_str(&format!(
                        "{},{},{},{},{:.2},{:.2},{:.2}\n",
                        row.config,
                        row.device,
                        user + 1,
                        row.n,
                        row.mean_mbps,
                        row.sd_mbps,
                        aggregate
                    ));
                }
                aggregates.push((s[0].config.clone(), s[0].device.clone(), aggregate));
            }
        }
    }

    println!("\nPaper-vs-measured aggregate anchors:");
    println!(
        "{:<16} {:<12} {:>10} {:>10} {:>8}",
        "config", "device", "paper", "measured", "ratio"
    );
    for &(config, device, paper) in PAPER_ANCHORS {
        if let Some((_, _, agg)) = aggregates
            .iter()
            .find(|(c, d, _)| c == config && d == device)
        {
            println!(
                "{:<16} {:<12} {:>10.2} {:>10.2} {:>8.2}",
                config,
                device,
                paper,
                agg,
                agg / paper
            );
        }
    }
    let path = write_results("fig5_two_user.csv", &csv);
    println!("\nwrote {}", path.display());
}
