//! Figure 7: OpenFOAM total-runtime strong-scaling curve on a single
//! 64-core node.
//!
//! The paper runs the full CFD computation (including serial mesh
//! generation) 10 times per core count on a Notre Dame node and plots mean
//! ± 2 SD; at 64 cores the mean is 420.39 s ± 36.29 s.
//!
//! Two reproductions are reported:
//!
//! 1. **measured** — the real in-crate solver timed under rayon pools of
//!    1..host-core threads on a reduced mesh, validating that the
//!    slab-parallel sweeps scale on real hardware;
//! 2. **modelled** — the calibrated [`CfdPerfModel`] extrapolated to the
//!    paper's node (1..64 cores, 10 jittered runs per point), which is the
//!    curve to compare with Fig. 7 (this machine has fewer cores than the
//!    paper's node).
//!
//! Run: `cargo run -p xg-bench --release --bin fig7_cfd_scaling`

use std::time::Instant;
use xg_bench::{effective_seed, obs_from_env, print_run_header, write_results};
use xg_cfd::prelude::*;

const RUNS_PER_POINT: u32 = 10;

fn measured_solver_time(threads: usize, cells: [usize; 3], steps: usize) -> f64 {
    run_with_threads(threads, || {
        // Mesh generation is intentionally inside the timed region: the
        // paper's Fig. 7 totals include it, and it is the serial phase.
        let start = Instant::now();
        let spec = DomainSpec::cups_default().with_cells(cells[0], cells[1], cells[2]);
        let mesh = Mesh::generate(&spec);
        let bc = xg_cfd::boundary::BoundarySpec::intact(5.0, 270.0, 22.0);
        let mut sim = Simulation::new(mesh, bc, SolverConfig::default());
        sim.run(steps);
        start.elapsed().as_secs_f64()
    })
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Offsets the modelled run-jitter sequence; the measured part is
    // wall-clock and the model mean is seed-independent.
    let seed = effective_seed(0);
    print_run_header(seed, &obs_from_env());
    let mut csv = String::from("cores,kind,mean_total_s,two_sd_s,speedup\n");

    // Part 1: real solver, reduced problem, up to the host's cores.
    println!("Figure 7 (part 1) — real solver on this host ({host_cores} core(s)), reduced mesh\n");
    println!("{:>6} {:>12} {:>9}", "threads", "time (s)", "speedup");
    let mut t1 = None;
    let mut threads = 1usize;
    while threads <= host_cores {
        let t = measured_solver_time(threads, [36, 30, 8], 60);
        let base = *t1.get_or_insert(t);
        println!("{threads:>6} {t:>12.3} {:>9.2}", base / t);
        csv.push_str(&format!("{threads},measured,{t:.4},0,{:.3}\n", base / t));
        threads *= 2;
    }
    if host_cores == 1 {
        println!("  (single-core host: parallel scaling validated by the");
        println!("   bitwise-determinism tests; curve comes from the model below)");
    }

    // Part 2: calibrated paper-scale model, 10 runs per core count.
    let model = CfdPerfModel::notre_dame();
    println!("\nFigure 7 (part 2) — modelled Notre Dame node, {RUNS_PER_POINT} runs/point\n");
    println!(
        "{:>6} {:>14} {:>10} {:>9}",
        "cores", "mean total (s)", "±2SD (s)", "speedup"
    );
    for cores in [1u32, 2, 4, 8, 16, 32, 64] {
        let runs: Vec<f64> = (0..RUNS_PER_POINT)
            .map(|i| {
                model.total_time_s(cores)
                    * model.run_jitter(i.wrapping_add(cores).wrapping_add(seed as u32))
            })
            .collect();
        let mean = runs.iter().sum::<f64>() / runs.len() as f64;
        let sd =
            (runs.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / (runs.len() - 1) as f64).sqrt();
        println!(
            "{cores:>6} {mean:>14.2} {:>10.2} {:>9.2}",
            2.0 * sd,
            model.speedup(cores)
        );
        csv.push_str(&format!(
            "{cores},modelled,{mean:.2},{:.2},{:.3}\n",
            2.0 * sd,
            model.speedup(cores)
        ));
    }
    println!(
        "\npaper anchor: 420.39 s ± 36.29 at 64 cores | model: {:.2} s ± {:.2}",
        model.total_time_s(64),
        model.total_time_s(64) * model.rel_sd
    );

    // Part 3: the §4.4 multi-node observation.
    println!("\n§4.4 multi-node behaviour (64 cores/node):");
    println!(
        "{:>6} {:>16} {:>16}",
        "nodes", "solver-only (s)", "total app (s)"
    );
    for nodes in [1u32, 2, 4] {
        println!(
            "{nodes:>6} {:>16.2} {:>16.2}",
            model.multi_node_solve_s(nodes),
            model.multi_node_total_s(nodes)
        );
        csv.push_str(&format!(
            "{nodes},multinode,{:.2},{:.2},0\n",
            model.multi_node_solve_s(nodes),
            model.multi_node_total_s(nodes)
        ));
    }
    println!(
        "  (solver alone fastest at 2 nodes; total application fastest at 1 — as in the paper)"
    );
    let path = write_results("fig7_cfd_scaling.csv", &csv);
    println!("\nwrote {}", path.display());
}
