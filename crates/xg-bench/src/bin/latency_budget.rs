//! §4.4 latency budget, *measured* from causal spans.
//!
//! Unlike `e2e_timeline` (which narrates a scripted day), this binary runs
//! the orchestrated fabric with observability enabled and regenerates the
//! paper's end-to-end budget table from the spans the closed loop actually
//! recorded: telemetry transfer, change detection, pilot queue-masking,
//! the CFD solve, and the results return — one trace per triggered cycle.
//!
//! Outputs land in `results/`:
//! * `latency_budget.csv` — the per-stage table (count/mean/p50/p99/max/share);
//! * `latency_budget_trace.jsonl` — every recorded span, one JSON object
//!   per line, for external trace viewers;
//! * `latency_budget_metrics.prom` — the full metrics snapshot
//!   (per-phase CSPOT RTTs, pilot waits, CFD sweep times, RAN occupancy).
//!
//! The run hard-asserts the §4.4 shape — CFD dominates the budget and the
//! HPC queue wait is masked by warm pilots — so the CI smoke job fails if
//! the pipeline stops producing sane traces. Scale with `XG_BUDGET_FRONTS`
//! (default 6 triggered cycles) and `XG_SEED`.
//!
//! Run: `cargo run -p xg-bench --release --bin latency_budget`

use xg_bench::{claim_results, effective_seed, print_run_header, write_results, CsvWriter};
use xg_fabric::orchestrator::{FabricConfig, XgFabric};
use xg_hpc::site::SiteProfile;
use xg_obs::{budget_table, prometheus_text, render_budget_table, spans_to_jsonl, Obs};

/// The closed-loop pipeline stages, in causal order.
const STAGES: [&str; 5] = [
    "telemetry.transfer",
    "change.detection",
    "hpc.queue_mask",
    "cfd.solve",
    "results.return",
];

fn main() {
    let seed = effective_seed(71);
    let fronts: usize = std::env::var("XG_BUDGET_FRONTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    // Drop any earlier run's outputs first: a crash after the CSV write
    // must not leave a previous run's trace/metrics beside a fresh CSV.
    claim_results(&[
        "latency_budget.csv",
        "latency_budget_trace.jsonl",
        "latency_budget_metrics.prom",
    ]);
    // This binary's whole point is measured spans, so observability
    // defaults on; XG_OBS=0 still turns it off for a dry run.
    let obs = Obs::from_env_or(true);
    let mut fab = XgFabric::new(FabricConfig {
        seed,
        cfd_cells: [12, 10, 4],
        cfd_steps: 10,
        failover_sites: vec![SiteProfile::anvil()],
        obs: obs.clone(),
        ..Default::default()
    });

    println!("Latency budget — measured spans from the instrumented closed loop");
    print_run_header(seed, &obs);
    println!("fronts = {fronts} (override with XG_BUDGET_FRONTS)\n");
    if !obs.is_enabled() {
        println!("observability disabled (XG_OBS=0) — nothing to attribute");
        return;
    }

    // History build-up, then one weather front per triggered cycle; two
    // hours of reports after each front lets the CFD finish and the
    // results-return span close before the next trigger.
    fab.run_cycles(12).expect("healthy warm-up");
    for _ in 0..fronts {
        fab.force_front();
        fab.run_cycles(24).expect("healthy budget run");
    }

    let spans = obs.tracer().expect("obs enabled").spans();
    assert!(
        !spans.is_empty(),
        "instrumented run recorded no spans — tracing is broken"
    );
    let rows = budget_table(&spans, &STAGES);
    println!("{}", render_budget_table(&rows));

    let stage = |name: &str| {
        rows.iter()
            .find(|r| r.stage == name)
            .expect("stage present")
    };
    let transfer = stage("telemetry.transfer");
    let queue = stage("hpc.queue_mask");
    let cfd = stage("cfd.solve");
    let ret = stage("results.return");

    println!("paper §4.4 anchors vs measured:");
    println!(
        "  transfer  : paper ~0.2 s/cycle (2 x ~101 ms messages)   measured mean {:.3} s",
        transfer.mean_s
    );
    println!(
        "  queueing  : paper 0-24 h, masked by warm pilots         measured p50 {:.3} s",
        queue.p50_s
    );
    println!(
        "  CFD solve : paper 420.39 s at 64 cores (here {} steps)  measured mean {:.1} s",
        10, cfd.mean_s
    );
    println!(
        "  return    : paper ~100 ms downlink                      measured mean {:.3} s",
        ret.mean_s
    );
    println!(
        "  dominance : CFD is {:.0}x the transfer stage and {:.1}% of the budget",
        cfd.mean_s / transfer.mean_s.max(1e-9),
        cfd.share * 100.0
    );

    // The §4.4 shape, enforced: a malformed trace fails the CI smoke job.
    for r in &rows {
        assert!(r.count > 0, "stage {} recorded no spans", r.stage);
    }
    assert!(
        cfd.mean_s > 100.0 * transfer.mean_s,
        "CFD must dominate transfer (got {:.3} s vs {:.3} s)",
        cfd.mean_s,
        transfer.mean_s
    );
    assert!(
        queue.p50_s < 1.0,
        "warm pilots must mask queueing (median wait {:.1} s)",
        queue.p50_s
    );

    let mut csv = CsvWriter::new();
    csv.row([
        "stage", "count", "mean_s", "p50_s", "p99_s", "max_s", "share",
    ]);
    for r in &rows {
        csv.row([
            r.stage.clone(),
            r.count.to_string(),
            format!("{:.6}", r.mean_s),
            format!("{:.6}", r.p50_s),
            format!("{:.6}", r.p99_s),
            format!("{:.6}", r.max_s),
            format!("{:.6}", r.share),
        ]);
    }
    let p_csv = write_results("latency_budget.csv", csv.as_str());
    let jsonl = spans_to_jsonl(&spans);
    assert!(!jsonl.trim().is_empty(), "JSONL trace export is empty");
    let p_trace = write_results("latency_budget_trace.jsonl", &jsonl);
    let p_prom = write_results(
        "latency_budget_metrics.prom",
        &prometheus_text(&obs.registry().expect("obs enabled").snapshot()),
    );
    println!("\nwrote {}", p_csv.display());
    println!("wrote {} ({} spans)", p_trace.display(), spans.len());
    println!("wrote {}", p_prom.display());
}
