//! Figure 3 (right panel): the CFD output field — airflow inside the CUPS
//! screen house with velocity magnitude as intensity.
//!
//! The paper's artifact runs the 64-thread simulation and renders the
//! result with ParaView into a PNG. Here the solver runs the full
//! screen-house domain and writes the mid-canopy horizontal slice as a
//! grayscale PGM image plus a CSV matrix for external plotting.
//!
//! Run: `cargo run -p xg-bench --release --bin fig3_cfd_field`

use xg_bench::{
    effective_seed, obs_from_env, print_run_header, write_results, write_results_bytes,
};
use xg_cfd::output::{slice_to_csv, slice_to_pgm, to_vtk, velocity_magnitude_slice};
use xg_cfd::prelude::*;

fn main() {
    // Full example resolution; a breach in the west wall makes the jet
    // visible in the rendered field, as in the motivation of §2.
    let spec = DomainSpec::cups_default();
    let mesh = Mesh::generate(&spec);
    // The solve itself is deterministic; the seed is reported for header
    // uniformity across the regeneration binaries.
    print_run_header(effective_seed(0), &obs_from_env());
    println!(
        "Figure 3 — CFD field: {} cells ({}x{}x{}), screen house {:?} m",
        mesh.cell_count(),
        mesh.nx,
        mesh.ny,
        mesh.nz,
        mesh.size_m()
    );
    let mut bc = BoundarySpec::intact(6.0, 270.0, 24.0);
    bc.west.set_panel(6, 1.0); // a breach, to make the figure interesting
    let mut sim = Simulation::new(mesh, bc, SolverConfig::default());
    let steps = 240;
    sim.run(steps);
    println!(
        "ran {steps} steps; CFL {:.3}; mean interior wind {:.3} m/s; max divergence {:.4}",
        sim.cfl(),
        sim.mean_interior_wind(),
        sim.divergence().max_abs()
    );

    // Mid-canopy slice (k at ~3 m).
    let k = (3.0 / sim.mesh.d[2]).round() as usize;
    let (nx, ny, vals) = velocity_magnitude_slice(&sim, k);
    let csv = slice_to_csv(nx, ny, &vals);
    let pgm = slice_to_pgm(nx, ny, &vals);
    let p1 = write_results("fig3_velocity_slice.csv", &csv);
    let p2 = write_results_bytes("fig3_velocity_slice.pgm", &pgm);
    let p3 = write_results("fig3_field.vtk", &to_vtk(&sim, "CUPS airflow"));
    println!("wrote {}", p1.display());
    println!("wrote {} (grayscale velocity magnitude)", p2.display());
    println!("wrote {} (full field for ParaView)", p3.display());

    // Simple ASCII preview so the figure is visible in the terminal.
    println!("\nASCII preview (velocity magnitude, west wind, breach at west panel 6):");
    // Normalize to the 98th percentile so the breach jet does not wash out
    // the rest of the field.
    let mut sorted = vals.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let max = sorted[(sorted.len() as f64 * 0.98) as usize].max(1e-12);
    let ramp: &[u8] = b" .:-=+*#%@";
    for j in (0..ny).step_by(2) {
        let mut line = String::with_capacity(nx);
        for i in 0..nx {
            let v = (vals[j * nx + i] / max).min(1.0);
            let idx = ((v * (ramp.len() - 1) as f64).round() as usize).min(ramp.len() - 1);
            line.push(ramp[idx] as char);
        }
        println!("  {line}");
    }
}
