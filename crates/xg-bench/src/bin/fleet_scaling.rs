//! Fleet scaling: serial-vs-parallel wall time for batched TTI stepping
//! across a sharded multi-cell RAN fleet.
//!
//! Sweeps the cell count (1/4/16/64 by default, ~32 backlogged UEs per
//! cell) and times the same one-second batch twice: once on a
//! single-worker shard (`run_seconds_serial`) and once sharded across
//! the host's cores (`run_seconds`). Because cells share no mutable
//! state and each draws from its own seeded RNG, the two schedules must
//! produce bitwise-identical per-UE goodput — the sweep cross-checks
//! that on every repeat, so a data race or shard-order dependency shows
//! up here as a hard failure, not a perf blip.
//!
//! Outputs: `results/fleet_scaling.csv` (per-point wall times, speedup,
//! mean per-cell goodput) and `results/fleet_scaling.json` in the
//! `xg-perf-trajectory/1` schema (`fleet{N}_serial_ms` /
//! `fleet{N}_parallel_ms`), so fleet stepping joins the same p99
//! regression gate as `perf_trajectory`.
//!
//! Run: `cargo run -p xg-bench --release --bin fleet_scaling`
//! Flags: `--cells 1,4,16` to override the sweep,
//! `--min-speedup 3.0` to fail unless the largest swept point reaches
//! that parallel speedup. The speedup gate needs cores to show anything:
//! below 4 available cores it is skipped, and the required ratio is
//! capped at 60% of the core count so a 4-core CI runner is asked for
//! ~2.4x, not a laptop-class 3x. `XG_PERF_SCALE` shrinks UE counts and
//! repeats for CI.

use std::process::ExitCode;
use std::time::Instant;
use xg_bench::traj::{perf_scale, render, scaled, summarize, Summary, SCHEMA};
use xg_bench::{claim_results, effective_seed, obs_from_env, print_run_header, write_results};
use xg_net::prelude::*;

/// One swept cell count, measured.
struct Point {
    cells: usize,
    ues_per_cell: usize,
    workers: usize,
    serial_ms: Summary,
    parallel_ms: Summary,
    mean_goodput_mbps: f64,
    bitwise_identical: bool,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.serial_ms.mean / self.parallel_ms.mean
    }
}

/// Build an n-cell fleet on the paper's 20 MHz 5G FDD cell with
/// `ues_per_cell` backlogged Raspberry Pis in every cell.
fn build_fleet(seed: u64, cells: usize, ues_per_cell: usize, workers: usize) -> RanFleet {
    let mut fleet = RanFleet::builder(seed)
        .cells(cells, CellConfig::new(Rat::Nr5g, Duplex::Fdd, MHz(20.0)))
        .workers(workers)
        .build()
        .expect("paper cell config is valid");
    for c in 0..cells as u32 {
        for _ in 0..ues_per_cell {
            let ue = fleet
                .attach(CellId(c), DeviceClass::RaspberryPi, Modem::Rm530nGl)
                .expect("cell exists");
            fleet.set_backlogged(ue, true).expect("ue exists");
        }
    }
    fleet
}

/// Flatten one batch result to a comparable bit pattern.
fn fingerprint(batches: &[CellBatch]) -> Vec<(u32, u32, u64)> {
    let mut out = Vec::new();
    for b in batches {
        for second in &b.seconds {
            for (ue, mbps) in second {
                out.push((b.cell.0, ue.id(), mbps.to_bits()));
            }
        }
    }
    out
}

/// Measure one cell count: `repeats` one-second batches per schedule,
/// cross-checking bitwise equality on every repeat.
fn sweep_point(seed: u64, cells: usize, ues_per_cell: usize, repeats: usize) -> Point {
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Two fleets from the same seed: per-cell streams depend only on
    // `cell_seed(seed, id)`, so they stay in lockstep across schedules.
    let mut serial = build_fleet(seed, cells, ues_per_cell, 1);
    let mut parallel = build_fleet(seed, cells, ues_per_cell, workers);
    let mut serial_ms = Vec::with_capacity(repeats);
    let mut parallel_ms = Vec::with_capacity(repeats);
    let mut goodput_sum = 0.0;
    let mut goodput_n = 0usize;
    let mut bitwise_identical = true;
    for _ in 0..repeats {
        let start = Instant::now();
        let a = serial.measure_seconds(1);
        serial_ms.push(start.elapsed().as_secs_f64() * 1_000.0);
        let start = Instant::now();
        let b = parallel.measure_seconds(1);
        parallel_ms.push(start.elapsed().as_secs_f64() * 1_000.0);
        bitwise_identical &= fingerprint(&a) == fingerprint(&b);
        for batch in &a {
            goodput_sum += batch.mean_goodput_mbps();
            goodput_n += 1;
        }
    }
    Point {
        cells,
        ues_per_cell,
        workers,
        serial_ms: summarize(&format!("fleet{cells}_serial_ms"), "ms", serial_ms),
        parallel_ms: summarize(&format!("fleet{cells}_parallel_ms"), "ms", parallel_ms),
        mean_goodput_mbps: goodput_sum / goodput_n.max(1) as f64,
        bitwise_identical,
    }
}

fn main() -> ExitCode {
    let mut cell_counts: Vec<usize> = vec![1, 4, 16, 64];
    let mut min_speedup: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cells" => {
                cell_counts = args
                    .next()
                    .map(|s| {
                        s.split(',')
                            .map(|t| t.trim().parse().expect("--cells takes e.g. 1,4,16"))
                            .collect()
                    })
                    .expect("--cells takes a list, e.g. 1,4,16");
                assert!(!cell_counts.is_empty(), "--cells list must be non-empty");
            }
            "--min-speedup" => {
                min_speedup = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--min-speedup takes a ratio, e.g. 3.0"),
                );
            }
            other => {
                eprintln!("unknown argument {other}; flags: --cells LIST | --min-speedup RATIO");
                return ExitCode::FAILURE;
            }
        }
    }

    let seed = effective_seed(0xF1EE7);
    let ues_per_cell = ((32.0 * perf_scale()) as usize).max(4);
    let repeats = scaled(12);
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("Fleet scaling — sharded multi-cell TTI stepping ({SCHEMA})");
    print_run_header(seed, &obs_from_env());
    println!(
        "cores = {cores}, ues/cell = {ues_per_cell}, repeats = {repeats}, scale = {}",
        perf_scale()
    );
    println!();
    claim_results(&["fleet_scaling.csv", "fleet_scaling.json"]);

    println!(
        "{:>6} {:>9} {:>14} {:>14} {:>9} {:>14} {:>9}",
        "cells", "ues/cell", "serial (ms)", "parallel (ms)", "speedup", "goodput (Mbps)", "bitwise"
    );
    let mut csv = String::from(
        "cells,ues_per_cell,workers,repeats,serial_ms_mean,parallel_ms_mean,speedup,mean_goodput_mbps,bitwise_identical\n",
    );
    let mut points = Vec::with_capacity(cell_counts.len());
    for &n in &cell_counts {
        let p = sweep_point(seed, n, ues_per_cell, repeats);
        println!(
            "{:>6} {:>9} {:>14.2} {:>14.2} {:>8.2}x {:>14.2} {:>9}",
            p.cells,
            p.ues_per_cell,
            p.serial_ms.mean,
            p.parallel_ms.mean,
            p.speedup(),
            p.mean_goodput_mbps,
            p.bitwise_identical
        );
        csv.push_str(&format!(
            "{},{},{},{},{:.3},{:.3},{:.3},{:.3},{}\n",
            p.cells,
            p.ues_per_cell,
            p.workers,
            repeats,
            p.serial_ms.mean,
            p.parallel_ms.mean,
            p.speedup(),
            p.mean_goodput_mbps,
            p.bitwise_identical
        ));
        points.push(p);
    }

    let metrics: Vec<Summary> = points
        .iter()
        .flat_map(|p| [p.serial_ms.clone(), p.parallel_ms.clone()])
        .collect();
    let csv_path = write_results("fleet_scaling.csv", &csv);
    let json_path = write_results("fleet_scaling.json", &render(seed, &metrics));
    println!("\nwrote {}", csv_path.display());
    println!("wrote {}", json_path.display());

    // The determinism cross-check is unconditional: a mismatch means the
    // sharding broke the parallel == serial contract.
    if let Some(p) = points.iter().find(|p| !p.bitwise_identical) {
        eprintln!(
            "\nFAILED: parallel and serial schedules diverged at {} cells — \
             per-UE goodput must be bitwise identical regardless of worker count",
            p.cells
        );
        return ExitCode::FAILURE;
    }
    println!("\ndeterminism: parallel == serial bitwise at every swept point");

    // The speedup gate is meaningful only with cores to spend; a
    // single-core host runs the parallel path through the serial
    // fast-path and can show no speedup at all.
    if let Some(want) = min_speedup {
        if cores < 4 {
            println!("speedup gate skipped: {cores} core(s) available, need >= 4");
        } else {
            let p = points.last().expect("at least one swept point");
            let required = want.min(0.6 * cores as f64);
            let got = p.speedup();
            if got < required {
                eprintln!(
                    "\nFAILED: speedup {got:.2}x at {} cells below required {required:.2}x \
                     (asked {want:.2}x, capped by {cores} cores)",
                    p.cells
                );
                return ExitCode::FAILURE;
            }
            println!(
                "speedup gate passed: {got:.2}x at {} cells (required {required:.2}x)",
                p.cells
            );
        }
    }
    ExitCode::SUCCESS
}
