//! `xg-trace` — offline analysis of black-box / JSONL span dumps.
//!
//! ```text
//! xg-trace critical <dump>       per-cycle critical paths + slowest cycle
//! xg-trace flame    <dump>       merged hierarchical attribution
//! xg-trace diff     <old> <new>  two-run regression attribution
//! ```
//!
//! A dump is any file whose lines include span JSONL — a raw
//! `spans_to_jsonl` dump or a full black-box bundle (non-span lines are
//! skipped by the parser).

use std::process::ExitCode;
use xg_bench::trace::{critical_report, diff_report, flame_report};
use xg_obs::parse_spans_jsonl;
use xg_obs::span::SpanRecord;

const USAGE: &str = "usage: xg-trace critical <dump> | flame <dump> | diff <old> <new>";

fn load(path: &str) -> Result<Vec<SpanRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("xg-trace: {path}: {e}"))?;
    Ok(parse_spans_jsonl(&text))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let report = match args
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice()
    {
        ["critical", dump] => load(dump).map(|s| critical_report(&s)),
        ["flame", dump] => load(dump).map(|s| flame_report(&s)),
        ["diff", old, new] => load(old).and_then(|o| load(new).map(|n| diff_report(&o, &n))),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match report {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
