//! Reliability study: the *whole* closed loop under injected faults.
//!
//! The paper claims (§3.1) that xGFabric turns "frequent network
//! interruption" into mere delay: data parks in logs, programs pause and
//! resume, and nothing is lost. This study runs the full orchestrated
//! fabric — sensors, field gateway, change detection, multi-site HPC,
//! twin, robot — for three simulated days per scenario under a seeded
//! [`FaultPlan`], and prints each run's [`ReliabilityReport`]: delivery
//! completeness, backlog, detection inflation, failovers, degraded
//! cycles, and loop MTTR.
//!
//! Run: `cargo run -p xg-bench --release --bin reliability_study`

use xg_bench::{
    claim_results, effective_seed, obs_from_env, print_run_header, write_results, CsvWriter,
};
use xg_cspot::outage::OutageConfig;
use xg_fabric::orchestrator::{FabricConfig, XgFabric};
use xg_fabric::reliability::ReliabilityReport;
use xg_faults::{FaultKind, FaultPlan};
use xg_hpc::site::SiteProfile;

/// Three simulated days of 5-minute reports.
const CYCLES: usize = 3 * 24 * 12;
/// A forced weather front every 8 hours keeps the CFD side of the loop
/// exercised in every scenario.
const CYCLES_PER_FRONT: usize = 96;

fn partition_5g() -> FaultKind {
    FaultKind::RoutePartition {
        from: "UNL-5G".into(),
        to: "UCSB".into(),
    }
}

fn run_scenario(
    label: &str,
    seed: u64,
    faults: FaultPlan,
    csv: &mut CsvWriter,
) -> ReliabilityReport {
    let mut fab = XgFabric::new(FabricConfig {
        seed,
        cfd_cells: [12, 10, 4],
        cfd_steps: 10,
        failover_sites: vec![SiteProfile::anvil()],
        faults,
        ..Default::default()
    });
    for _ in 0..(CYCLES / CYCLES_PER_FRONT) {
        fab.force_front();
        fab.run_cycles(CYCLES_PER_FRONT)
            .expect("chaos run must degrade, not fail");
    }
    let r = fab.reliability_report();
    println!(
        "{label:<30} {:>6.2}% {:>9} {:>7} {:>8} {:>6} {:>5} {:>5} {:>7} {:>9.0}",
        r.availability_experienced * 100.0,
        r.records_delivered,
        r.records_dropped,
        r.max_backlog,
        r.detections,
        r.failovers,
        r.cfd_completed,
        r.degraded_cycles,
        r.loop_mttr_s,
    );
    assert!(r.lossless(), "{label}: telemetry must never be lost: {r}");
    csv.row([
        label.to_string(),
        format!("{:.4}", r.availability_experienced),
        r.records_buffered.to_string(),
        r.records_delivered.to_string(),
        r.records_dropped.to_string(),
        r.max_backlog.to_string(),
        r.detections.to_string(),
        r.failovers.to_string(),
        r.cfd_completed.to_string(),
        r.degraded_cycles.to_string(),
        format!("{:.1}", r.mean_detection_inflation_s),
        format!("{:.1}", r.loop_mttr_s),
    ]);
    r
}

fn main() {
    let seed = effective_seed(71);
    claim_results(&["reliability_study.csv"]);
    println!("Reliability study — three days of the full closed loop under chaos");
    print_run_header(seed, &obs_from_env());
    println!();
    println!(
        "{:<30} {:>7} {:>9} {:>7} {:>8} {:>6} {:>5} {:>5} {:>7} {:>9}",
        "scenario",
        "avail",
        "delivered",
        "dropped",
        "backlog",
        "detect",
        "fail",
        "cfd",
        "degrad",
        "MTTR(s)"
    );
    let mut csv = CsvWriter::new();
    csv.row([
        "scenario",
        "availability",
        "buffered",
        "delivered",
        "dropped",
        "max_backlog",
        "detections",
        "failovers",
        "cfd_completed",
        "degraded_cycles",
        "mean_detection_inflation_s",
        "loop_mttr_s",
    ]);

    let baseline = run_scenario("baseline (no faults)", seed, FaultPlan::none(), &mut csv);

    run_scenario(
        "flaky 5G (MTBF 2h, MTTR 4m)",
        seed,
        FaultPlan::builder(seed.wrapping_add(30))
            .stochastic(OutageConfig::flaky_5g(), partition_5g())
            .build(),
        &mut csv,
    );

    run_scenario(
        "hostile 5G (MTBF 30m, MTTR 10m)",
        seed,
        FaultPlan::builder(seed.wrapping_add(32))
            .stochastic(
                OutageConfig {
                    mtbf_s: 1_800.0,
                    mttr_s: 600.0,
                },
                partition_5g(),
            )
            .build(),
        &mut csv,
    );

    // The primary is already down when the 8-hour front triggers at
    // t=30600 s, so the CFD lands on ANVIL — which dies 50 s later with
    // the task in flight, forcing the failover/backoff path while both
    // sites are briefly dark.
    run_scenario(
        "site outages (overlapping)",
        seed,
        FaultPlan::builder(seed.wrapping_add(36))
            .scripted(
                6.0 * 3_600.0,
                4.0 * 3_600.0,
                FaultKind::HpcSiteOutage {
                    site: "ND-CRC".into(),
                },
            )
            .scripted(
                30_650.0,
                4.0 * 3_600.0,
                FaultKind::HpcSiteOutage {
                    site: "ANVIL".into(),
                },
            )
            .build(),
        &mut csv,
    );

    let everything = run_scenario(
        "everything at once",
        seed,
        FaultPlan::builder(seed.wrapping_add(38))
            .stochastic(OutageConfig::flaky_5g(), partition_5g())
            .scripted(
                4.0 * 3_600.0,
                2.0 * 3_600.0,
                FaultKind::PacketLossSurge {
                    from: "UNL-5G".into(),
                    to: "UCSB".into(),
                    loss_prob: 0.3,
                },
            )
            .scripted(
                8.0 * 3_600.0,
                6.0 * 3_600.0,
                FaultKind::HpcSiteOutage {
                    site: "ANVIL".into(),
                },
            )
            .scripted(
                12.0 * 3_600.0,
                12.0 * 3_600.0,
                FaultKind::SensorDropout { station: 2 },
            )
            .scripted(
                20.0 * 3_600.0,
                2.0 * 3_600.0,
                FaultKind::HpcQueueStall {
                    site: "ND-CRC".into(),
                },
            )
            .build(),
        &mut csv,
    );

    println!("\nbaseline detail: {baseline}\n\nworst case detail: {everything}\n");
    println!("Every scenario stays lossless: outages surface as backlog, detection");
    println!("inflation, degraded CFD resolution and failovers — never as loss.");
    let path = write_results("reliability_study.csv", csv.as_str());
    println!("\nwrote {}", path.display());
}
