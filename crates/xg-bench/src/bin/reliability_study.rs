//! Reliability study: delay-tolerant delivery through a flaky 5G link.
//!
//! The paper claims (§3.1) that CSPOT's log-based design turns "frequent
//! network interruption" and power loss into mere delay: programs pause
//! and resume, data parks in logs, and nothing is lost or duplicated.
//! This study subjects the field gateway to a two-state outage process
//! over a simulated week of 5-minute telemetry and reports delivery
//! completeness, duplication, and the staleness distribution.
//!
//! Run: `cargo run -p xg-bench --release --bin reliability_study`

use std::sync::Arc;
use xg_bench::write_results;
use xg_cspot::outage::{OutageConfig, OutageProcess};
use xg_cspot::prelude::*;

const REPORT_INTERVAL_S: f64 = 300.0;
const DAYS: usize = 7;

fn run_scenario(label: &str, config: OutageConfig, csv: &mut String) {
    let local = Arc::new(CspotNode::in_memory("UNL"));
    local.create_log("buf", 8, 100_000).expect("fresh buffer");
    let repo = Arc::new(CspotNode::in_memory("UCSB"));
    repo.create_log("telemetry", 8, 100_000).expect("fresh log");

    let topo = Topology::paper();
    let remote_cfg = RemoteConfig {
        timeout_ms: 100.0,
        // Fail fast; the gateway re-drains on the next report cycle.
        max_attempts: 2,
        ..Default::default()
    };
    let appender = RemoteAppender::new(
        SimClock::new(),
        topo.route("UNL-5G", "UCSB").expect("route").clone(),
        remote_cfg,
        17,
    );
    let mut gateway = Gateway::new(Arc::clone(&local), "buf", "telemetry", appender)
        .expect("gateway over fresh logs");
    let mut outage = OutageProcess::new(config, 23);

    let reports = DAYS * 24 * 12;
    let mut down_at_report = 0usize;
    let mut max_backlog = 0usize;
    let mut staleness_samples: Vec<f64> = Vec::new();
    let mut pending_since: Vec<(u64, f64)> = Vec::new(); // (seq, t_buffered)
    for r in 0..reports {
        let t = (r + 1) as f64 * REPORT_INTERVAL_S;
        outage.advance_to(t, gateway.route_mut());
        if !outage.is_up() {
            down_at_report += 1;
        }
        gateway
            .buffer(&(r as u64).to_le_bytes())
            .expect("local buffer always writable");
        pending_since.push((r as u64 + 1, t));
        let drained = gateway.drain(&repo);
        // Staleness: delivery time minus buffering time for drained items.
        for _ in 0..drained.relayed {
            if let Some((_, buffered_at)) = pending_since.first().copied() {
                pending_since.remove(0);
                staleness_samples.push(t - buffered_at);
            }
        }
        max_backlog = max_backlog.max(gateway.backlog());
    }
    // Final drain after the run (link eventually heals).
    gateway.route_mut().set_partitioned(false);
    let final_t = reports as f64 * REPORT_INTERVAL_S;
    let last = gateway.drain(&repo);
    for _ in 0..last.relayed {
        if let Some((_, buffered_at)) = pending_since.first().copied() {
            pending_since.remove(0);
            staleness_samples.push(final_t - buffered_at);
        }
    }

    let delivered = repo.log("telemetry").expect("exists").len();
    let mean_staleness =
        staleness_samples.iter().sum::<f64>() / staleness_samples.len().max(1) as f64;
    let max_staleness = staleness_samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{label:<28} {:>6.2}% {:>10} {:>8} {:>12} {:>11.0} {:>11.0}",
        config.availability() * 100.0,
        delivered,
        reports - delivered,
        max_backlog,
        mean_staleness,
        max_staleness,
    );
    assert_eq!(delivered, reports, "delay tolerance must not lose data");
    csv.push_str(&format!(
        "{label},{:.4},{delivered},{max_backlog},{mean_staleness:.1},{max_staleness:.1}\n",
        config.availability()
    ));
    let _ = down_at_report;
}

fn main() {
    println!("Reliability study — one week of 5-minute telemetry through an interrupted 5G link\n");
    println!(
        "{:<28} {:>7} {:>10} {:>8} {:>12} {:>11} {:>11}",
        "scenario", "avail", "delivered", "lost", "max backlog", "mean stale", "max stale"
    );
    println!(
        "{:<28} {:>7} {:>10} {:>8} {:>12} {:>11} {:>11}",
        "", "", "", "", "(msgs)", "(s)", "(s)"
    );
    let mut csv = String::from(
        "scenario,availability,delivered,max_backlog,mean_staleness_s,max_staleness_s\n",
    );
    run_scenario(
        "stable (MTBF 24h, MTTR 2m)",
        OutageConfig {
            mtbf_s: 24.0 * 3600.0,
            mttr_s: 120.0,
        },
        &mut csv,
    );
    run_scenario(
        "flaky (MTBF 2h, MTTR 4m)",
        OutageConfig::flaky_5g(),
        &mut csv,
    );
    run_scenario(
        "hostile (MTBF 30m, MTTR 10m)",
        OutageConfig {
            mtbf_s: 1_800.0,
            mttr_s: 600.0,
        },
        &mut csv,
    );
    run_scenario(
        "storm (MTBF 20m, MTTR 1h)",
        OutageConfig {
            mtbf_s: 1_200.0,
            mttr_s: 3_600.0,
        },
        &mut csv,
    );
    println!("\nEvery scenario delivers 100% of the telemetry exactly once; outages");
    println!("surface as staleness, never as loss — the paper's §3.1 claim.");
    let path = write_results("reliability_study.csv", &csv);
    println!("\nwrote {}", path.display());
}
