//! §4.4 end-to-end performance: the latency budget of the whole fabric.
//!
//! Runs the orchestrated system through a scripted day — stable weather,
//! a wind front, then a screen breach — and prints the paper's budget:
//! telemetry transfer (~10² ms, imperceptible against the 300 s duty
//! cycle), the ~7-minute 64-core CFD, the ≥23-minute validity window, and
//! the pilot's masking of batch queueing delay on a saturated cluster.
//!
//! Run: `cargo run -p xg-bench --release --bin e2e_timeline`

use xg_bench::{effective_seed, obs_from_env, print_run_header, write_results};
use xg_fabric::prelude::*;
use xg_fabric::timeline::Event;
use xg_hpc::cluster::{ClusterSim, JobRequest};
use xg_sensors::breach::Breach;
use xg_sensors::facility::Wall;

fn main() {
    let seed = effective_seed(42);
    let obs = obs_from_env();
    let mut fab = XgFabric::new(xg_fabric::orchestrator::FabricConfig {
        seed,
        obs: obs.clone(),
        ..Default::default()
    });
    println!("End-to-end timeline — scripted day at the CUPS facility");
    print_run_header(seed, &obs);
    println!();

    // Phase 1: an hour of stable weather (history build-up).
    fab.run_cycles(12).unwrap();
    // Phase 2: a wind front (the §3.7 trigger scenario) → calibration run.
    fab.force_front();
    fab.run_cycles(12).unwrap();
    // Phase 3: a screen breach + front → detection, twin divergence, robot.
    fab.inject_breach(Breach::new(Wall::West, 5, 12.0));
    fab.force_front();
    fab.run_cycles(18).unwrap();

    let tl = fab.timeline();
    let mut csv = String::from("event,t_s,detail\n");
    for e in &tl.events {
        match e {
            Event::TelemetryShipped {
                t_s,
                latency_ms,
                records,
            } => {
                csv.push_str(&format!(
                    "telemetry,{t_s},{records} records in {latency_ms:.1} ms\n"
                ));
            }
            Event::ChangeChecked {
                t_s,
                changed,
                votes,
            } => {
                println!(
                    "t={:>6.0}s  change check: changed={changed} votes={votes}",
                    t_s
                );
                csv.push_str(&format!(
                    "change_check,{t_s},changed={changed} votes={votes}\n"
                ));
            }
            Event::PilotEvaluated {
                t_s,
                n_required,
                n_available,
                submitted,
            } => {
                println!(
                    "t={:>6.0}s  pilot: N_req={n_required} N_avail={n_available} submit={submitted}",
                    t_s
                );
                csv.push_str(&format!(
                    "pilot,{t_s},n_req={n_required} n_avail={n_available} submitted={submitted}\n"
                ));
            }
            Event::CfdCompleted {
                t_s,
                model_runtime_s,
                predicted_interior_wind,
                validity_s,
            } => {
                println!(
                    "t={:>6.0}s  CFD done: runtime={model_runtime_s:.0}s predicted wind={predicted_interior_wind:.2} m/s validity={validity_s:.0}s",
                    t_s
                );
                csv.push_str(&format!(
                    "cfd,{t_s},runtime={model_runtime_s:.1} validity={validity_s:.1}\n"
                ));
            }
            Event::TwinCompared {
                t_s,
                max_residual_ms,
                breach_suspected,
            } => {
                println!(
                    "t={:>6.0}s  twin: max residual={max_residual_ms:.2} m/s breach_suspected={breach_suspected}",
                    t_s
                );
                csv.push_str(&format!(
                    "twin,{t_s},residual={max_residual_ms:.3} suspected={breach_suspected}\n"
                ));
            }
            Event::ResultsReturned { t_s, latency_ms } => {
                println!(
                    "t={:>6.0}s  results returned to site operator in {latency_ms:.0} ms",
                    t_s
                );
                csv.push_str(&format!("results_returned,{t_s},{latency_ms:.1}\n"));
            }
            Event::AdvisoryIssued { t_s, summary } => {
                println!("t={:>6.0}s  advisory: {summary}", t_s);
                csv.push_str(&format!("advisory,{t_s},{summary}\n"));
            }
            Event::RobotDispatched {
                t_s,
                mission_s,
                confirmed,
            } => {
                println!(
                    "t={:>6.0}s  robot: mission={mission_s:.0}s confirmed={confirmed}",
                    t_s
                );
                csv.push_str(&format!(
                    "robot,{t_s},mission={mission_s:.1} confirmed={confirmed}\n"
                ));
            }
            Event::FaultChanged { t_s, fault, active } => {
                println!(
                    "t={:>6.0}s  fault {}: {fault}",
                    t_s,
                    if *active { "on" } else { "off" }
                );
                csv.push_str(&format!("fault,{t_s},{fault} active={active}\n"));
            }
            Event::DegradationChanged { t_s, level } => {
                println!("t={:>6.0}s  degradation level -> {level}", t_s);
                csv.push_str(&format!("degradation,{t_s},level={level}\n"));
            }
            Event::SloBreached {
                t_s,
                slo,
                value,
                threshold,
            } => {
                println!(
                    "t={:>6.0}s  SLO breached: {slo} ({value:.1} vs {threshold:.1})",
                    t_s
                );
                csv.push_str(&format!("slo_breached,{t_s},{slo} value={value:.2}\n"));
            }
            Event::SloRecovered {
                t_s,
                slo,
                value,
                threshold,
            } => {
                println!(
                    "t={:>6.0}s  SLO recovered: {slo} ({value:.1} vs {threshold:.1})",
                    t_s
                );
                csv.push_str(&format!("slo_recovered,{t_s},{slo} value={value:.2}\n"));
            }
            Event::RanProbed {
                t_s,
                cells,
                worst_cell,
                worst_goodput_mbps,
            } => {
                // One probe per cycle: narrate only unhealthy batches to
                // keep the timeline readable.
                if *worst_goodput_mbps < 10.0 {
                    println!(
                        "t={:>6.0}s  RAN probe: worst cell {worst_cell} at {worst_goodput_mbps:.1} Mbps ({cells} cells)",
                        t_s
                    );
                }
                csv.push_str(&format!(
                    "ran_probe,{t_s},{worst_cell}={worst_goodput_mbps:.2} cells={cells}\n"
                ));
            }
            Event::RicAction { t_s, xapp, action } => {
                println!("t={:>6.0}s  RIC action [{xapp}]: {action}", t_s);
                csv.push_str(&format!("ric_action,{t_s},{xapp}: {action}\n"));
            }
            Event::FailoverTriggered {
                t_s,
                from_site,
                to_site,
            } => {
                println!(
                    "t={:>6.0}s  failover: {from_site} -> {}",
                    t_s,
                    to_site.as_deref().unwrap_or("(backoff)")
                );
                csv.push_str(&format!(
                    "failover,{t_s},{from_site}->{}\n",
                    to_site.as_deref().unwrap_or("backoff")
                ));
            }
        }
    }

    // Summary budget.
    let lat = tl.telemetry_latencies_ms();
    let mean_lat = lat.iter().sum::<f64>() / lat.len().max(1) as f64;
    println!("\nBudget summary (paper §4.4 in parentheses):");
    println!(
        "  telemetry cycle transfer : {mean_lat:>8.1} ms   (~200 ms per message pair; imperceptible vs 300 s)"
    );
    println!("  telemetry duty cycle     : {:>8.0} s    (300 s)", 300.0);
    println!("  change-detection cycle   : {:>8.0} s    (1800 s)", 1800.0);
    println!("  CFD runs triggered       : {:>8}", tl.cfd_runs());
    println!("  breach confirmed         : {:>8}", tl.breach_confirmed());

    // The queueing-masking demonstration: on a saturated cluster, direct
    // batch submission waits; a pre-activated pilot does not.
    println!("\nQueueing-delay masking (saturated 16-node cluster):");
    let mut direct =
        ClusterSim::new(16).with_background_load(350.0, 10_800.0, 8, seed.wrapping_add(57));
    direct.advance_to(4.0 * 3600.0);
    let submit_t = direct.now();
    let id = direct
        .submit(JobRequest {
            nodes: 8,
            walltime_s: 600.0,
            runtime_s: 420.0,
        })
        .expect("valid job");
    direct.advance_to(submit_t + 48.0 * 3600.0);
    let direct_wait = direct
        .records()
        .iter()
        .find(|r| r.id == id)
        .map(|r| r.started_at - submit_t);
    match direct_wait {
        Some(w) => {
            println!(
                "  direct batch submission waited {w:.0} s ({:.1} h) in the queue",
                w / 3600.0
            );
            csv.push_str(&format!("direct_queue_wait,{submit_t},{w:.1}\n"));
        }
        None => {
            println!("  direct batch submission still queued after 48 h");
            csv.push_str(&format!("direct_queue_wait,{submit_t},>48h\n"));
        }
    }
    println!("  pilot-held task in the fabric above started within one report cycle");
    println!("  (paper: queueing delay at Notre Dame varied from zero to 24 hours)");

    let path = write_results("e2e_timeline.csv", &csv);
    println!("\nwrote {}", path.display());
}
