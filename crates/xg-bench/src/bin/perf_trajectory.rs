//! Perf trajectory: a schema-versioned performance snapshot of the hot
//! paths, plus a regression gate over a committed baseline.
//!
//! Six probes cover the layers a PR typically touches:
//!
//! * `histogram_record_ns` — one log-linear histogram record (the cost
//!   every instrumented call site pays when observability is on);
//! * `span_record_ns` — one completed span through the tracer *and* the
//!   black-box flight-recorder sink;
//! * `cspot_append_us` — one two-phase remote append over the paper
//!   topology into a *durable* segmented log that already holds a
//!   million records (protocol + storage-engine CPU; group commit keeps
//!   fsyncs off the per-append path, and the virtual clock makes the
//!   simulated network free);
//! * `cspot_recovery_ms` — full crash recovery (mount + record-level
//!   verification of every sealed segment) over that same million-record
//!   log;
//! * `cfd_sweep_ms` — one solver step on a small mesh;
//! * `fleet_cell_second_ms` — one cell-second of batched TTI stepping
//!   across a 4-cell RAN fleet (serial shard, so the number tracks the
//!   per-cell cost rather than the host's core count);
//! * `event_step_us` — one scheduled event through the xg-sim calendar
//!   queue (pop + recurring re-push) under a mixed near/far-horizon
//!   workload — the per-event overhead every engine drain pays;
//! * `idle_hour_ms` — one idle-heavy simulated hour (a quiet weather
//!   cell reporting 48 bytes per 300 s) through the event engine's
//!   `advance_to`; the probe also gates on the idle-skip speedup over
//!   the stepped reference engine, failing the run if skipping idle
//!   TTIs stops paying for itself;
//! * `cycle_wall_ms` — one full orchestrated report cycle, wall clock,
//!   with `cycle_transfer_virtual_ms` (deterministic virtual time) from
//!   the same run as a machine-independent companion;
//! * `ric_loop_us` — one near-RT RIC control period (indication ingest,
//!   the shipping three-xApp stack, conflict resolution) over a
//!   synthetic four-cell burst indication — the budget the RIC spends
//!   inside every report cycle;
//! * `ric_reaction_ms` — deterministic virtual time from a pest-image
//!   burst's onset to the burst-guard's corrective action landing on
//!   the live fleet, over the orchestrated pest scenario. The onset is
//!   placed *partway through* an indication period, so the sample
//!   resolves below the 300 s period (a healthy loop reacts in under
//!   two periods; the distribution's spread is the sub-period onset
//!   phase, not noise);
//! * `profile_overhead_ns` — one hierarchical-profiler scoped guard
//!   (enter + timed exit), the cost every profiled hot path pays;
//! * `critical_path_extract_us` — critical-path extraction over a
//!   synthetic report-cycle span tree (the per-cycle analysis cost the
//!   orchestrator pays when observability is on);
//! * `lint_workspace_ms` — one full two-pass `xg-lint` run over the
//!   live workspace (walk, parallel per-file semantic analysis,
//!   cross-file obs-schema and stale-waiver finalize) — the latency the
//!   CI gate and every pre-commit hook pays end to end.
//!
//! Run: `cargo run -p xg-bench --release --bin perf_trajectory`
//! (writes `results/perf_trajectory.json`), or
//! `-- --emit BENCH_pr4.json` to write a baseline, or
//! `-- --compare BENCH_pr4.json [--tolerance 0.10]` to run the gate: it
//! exits nonzero when any metric's p99 regresses more than the tolerance
//! over the baseline. `XG_PERF_SCALE=0.1` shrinks iteration counts for
//! CI; wall-clock numbers move with the host, so CI gates should widen
//! the tolerance rather than trust a baseline from another machine.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use xg_bench::traj::{
    compare, perf_scale, render, scaled, summarize, write_atomic, Summary, SCHEMA,
};
use xg_bench::{effective_seed, obs_from_env, print_run_header, write_results};
use xg_cfd::prelude::*;
use xg_cspot::netsim::{SimClock, Topology};
use xg_cspot::node::CspotNode;
use xg_cspot::protocol::{RemoteAppender, RemoteConfig};
use xg_cspot::segment::{SegmentConfig, SyncPolicy};
use xg_fabric::orchestrator::{FabricConfig, XgFabric};
use xg_fabric::ran::{RanCellSpec, RanTopology, ScenarioUe};
use xg_fabric::timeline::Event;
use xg_net::e2::{CellIndication, SliceReport, UeReport};
use xg_net::prelude::*;
use xg_net::slice::SliceProfile;
use xg_net::traffic::TrafficModel;
use xg_obs::Obs;
use xg_ric::{BurstGuard, DemandSlicer, McsCapper, Ric};

fn bench_histogram_record() -> Summary {
    let obs = Obs::enabled();
    let h = obs.registry().expect("obs enabled").histogram("bench.hist");
    const BATCH: usize = 128;
    let batches = scaled(256);
    let mut samples = Vec::with_capacity(batches);
    for b in 0..batches {
        let start = Instant::now();
        for i in 0..BATCH {
            h.record(1.0 + (b * BATCH + i) as f64);
        }
        samples.push(start.elapsed().as_nanos() as f64 / BATCH as f64);
    }
    summarize("histogram_record_ns", "ns", samples)
}

fn bench_span_record() -> Summary {
    let obs = Obs::enabled();
    let tracer = obs.tracer().expect("obs enabled");
    let trace = tracer.new_trace();
    const BATCH: usize = 32;
    let batches = scaled(128);
    let mut samples = Vec::with_capacity(batches);
    for b in 0..batches {
        let start = Instant::now();
        for i in 0..BATCH {
            let t = (b * BATCH + i) as f64;
            tracer.record_sim_s(trace, None, "bench.span", t, t + 0.5, vec![]);
        }
        samples.push(start.elapsed().as_nanos() as f64 / BATCH as f64);
        // Keep the tracer's buffer flat so later batches don't pay for
        // earlier ones; the recorder ring is bounded by construction.
        tracer.take_spans();
    }
    summarize("span_record_ns", "ns", samples)
}

/// Durable CSPOT storage probes, sharing one populated store: append
/// latency against a million-record segmented log, then full crash
/// recovery over the same directory.
fn bench_cspot_storage(seed: u64) -> (Summary, Summary) {
    let dir = std::env::temp_dir().join(format!("xg-bench-seglog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let storage = SegmentConfig {
        segment_bytes: 4 * 1024 * 1024,
        retain_segments: None,
        sync: SyncPolicy::GroupCommit { every: 1024 },
        index_stride: 256,
    };
    const ELEMENT: usize = 64;
    let server = Arc::new(CspotNode::durable_with_storage(
        "UCSB",
        &dir,
        storage.clone(),
    ));
    server
        .create_log("bench", ELEMENT, 4096)
        .expect("fresh log");
    let log = server.log("bench").expect("just created");
    // Grow the log to a million durable records so the measured appends
    // run against realistic segment counts and index sizes, not an empty
    // file. (Scaled down in CI via XG_PERF_SCALE.)
    let payload = vec![0u8; ELEMENT];
    for _ in 0..scaled(1_000_000) {
        log.append(&payload).expect("populate append");
    }
    // Drain the group-commit window so measurement starts cold.
    log.sync().expect("populate sync");

    let topo = Topology::paper();
    let mut appender = RemoteAppender::new(
        SimClock::new(),
        topo.route("UNL-5G", "UCSB").expect("route exists").clone(),
        RemoteConfig::default(),
        seed,
    );
    // Warm-up outside the measured window: connection establishment and
    // first-touch allocations land here, the way the paper discards its
    // first latency sample (§4.2's start-up penalty).
    for _ in 0..32 {
        appender
            .append(&server, "bench", &payload)
            .expect("warm-up append");
    }
    let appends = scaled(400);
    let mut samples = Vec::with_capacity(appends);
    for _ in 0..appends {
        let start = Instant::now();
        appender
            .append(&server, "bench", &payload)
            .expect("append over healthy route");
        samples.push(start.elapsed().as_nanos() as f64 / 1_000.0);
    }
    let append_summary = summarize("cspot_append_us", "us", samples);
    log.sync().expect("post-measure sync");
    drop(log);
    drop(server);

    // Crash recovery over the same store: mount + footer checks + full
    // record-level verification of every sealed segment.
    let rounds = scaled(5);
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        let node = CspotNode::durable_with_storage("UCSB", &dir, storage.clone());
        let log = node.open_log("bench", ELEMENT, 4096).expect("recovery");
        assert!(log.latest_seq().is_some(), "recovered records");
        samples.push(start.elapsed().as_secs_f64() * 1_000.0);
    }
    let _ = std::fs::remove_dir_all(&dir);
    (
        append_summary,
        summarize("cspot_recovery_ms", "ms", samples),
    )
}

fn bench_cfd_sweep() -> Summary {
    let mesh = Mesh::generate(&DomainSpec::cups_default().with_cells(16, 12, 4));
    let bc = BoundarySpec::intact(6.0, 270.0, 24.0);
    let mut sim = Simulation::new(mesh, bc, SolverConfig::default());
    let steps = scaled(40);
    let mut samples = Vec::with_capacity(steps);
    for _ in 0..steps {
        let start = Instant::now();
        sim.step();
        samples.push(start.elapsed().as_secs_f64() * 1_000.0);
    }
    summarize("cfd_sweep_ms", "ms", samples)
}

fn bench_fleet_step(seed: u64) -> Summary {
    const CELLS: u32 = 4;
    const UES_PER_CELL: usize = 4;
    let mut fleet = RanFleet::builder(seed)
        .cells(
            CELLS as usize,
            CellConfig::new(Rat::Nr5g, Duplex::Fdd, MHz(20.0)),
        )
        .workers(1)
        .build()
        .expect("paper cell config is valid");
    for c in 0..CELLS {
        for _ in 0..UES_PER_CELL {
            let ue = fleet
                .attach(CellId(c), DeviceClass::RaspberryPi, Modem::Rm530nGl)
                .expect("cell exists");
            fleet.set_backlogged(ue, true).expect("ue exists");
        }
    }
    let batches = scaled(24);
    let mut samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        let start = Instant::now();
        fleet.measure_seconds(1);
        samples.push(start.elapsed().as_secs_f64() * 1_000.0 / CELLS as f64);
    }
    summarize("fleet_cell_second_ms", "ms", samples)
}

fn bench_event_step() -> Summary {
    use xg_sim::{EventQueue, SimNs};
    // Four recurring sources with co-prime-ish periods: three churn the
    // wheel at TTI-to-millisecond scale, the fourth lives in the
    // overflow (a 300 s report timer) so every sample exercises both
    // halves of the calendar queue.
    let periods: [u64; 4] = [1_000_000, 3_000_000, 7_000_000, 300_000_000_000];
    let mut q = EventQueue::with_layout(1_000_000, 1024);
    for (i, p) in periods.iter().enumerate() {
        q.push(SimNs(*p), i as u32, i);
    }
    const BATCH: usize = 1_024;
    let batches = scaled(64);
    let mut samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..BATCH {
            let ev = q.pop_due(SimNs(u64::MAX)).expect("sources recur forever");
            q.push(
                SimNs(ev.at.0 + periods[ev.source as usize]),
                ev.source,
                ev.payload,
            );
        }
        samples.push(start.elapsed().as_nanos() as f64 / 1_000.0 / BATCH as f64);
    }
    summarize("event_step_us", "us", samples)
}

/// A quiet weather-station cell: one UE trickling 48 bytes per 300 s.
fn quiet_cell(seed: u64) -> LinkSimulator {
    let cell = CellConfig::new(Rat::Nr5g, Duplex::Fdd, MHz(20.0));
    let mut sim = LinkSimulator::try_new(cell, seed).expect("paper cell config is valid");
    let ue = sim
        .attach(
            DeviceClass::RaspberryPi,
            Modem::paper_default(DeviceClass::RaspberryPi, Rat::Nr5g),
        )
        .expect("attach");
    sim.set_traffic(
        ue,
        TrafficModel::Periodic {
            payload_bytes: 48,
            interval_s: 300.0,
        },
    )
    .expect("known ue");
    sim
}

fn bench_idle_skip(seed: u64) -> Summary {
    // One idle-heavy simulated hour per sample: the event engine
    // executes only the ~12 report arrivals and skips the other ~3.6M
    // TTIs in O(1) jumps, so the wall cost is O(events).
    let rounds = scaled(8).max(2);
    let mut samples = Vec::with_capacity(rounds);
    for i in 0..rounds {
        let mut sim = quiet_cell(seed.wrapping_add(i as u64));
        let start = Instant::now();
        sim.advance_to(SimNs::from_secs(3_600)).expect("infallible");
        samples.push(start.elapsed().as_secs_f64() * 1_000.0);
        std::hint::black_box(sim.active_slots());
    }
    // The speedup gate: the same quiet minute through the stepped
    // reference engine must cost decisively more than through the event
    // engine, or idle skipping has silently stopped working.
    let mut event = quiet_cell(seed);
    let start = Instant::now();
    event.advance_to(SimNs::from_secs(60)).expect("infallible");
    let event_s = start.elapsed().as_secs_f64().max(1e-9);
    let mut stepped = quiet_cell(seed);
    let start = Instant::now();
    stepped.advance_to_stepped(SimNs::from_secs(60));
    let stepped_s = start.elapsed().as_secs_f64();
    let speedup = stepped_s / event_s;
    eprintln!("    idle-skip speedup over stepped: {speedup:.0}x");
    assert!(
        speedup >= 5.0,
        "idle-skip must beat the stepped engine by >=5x on an idle minute, got {speedup:.1}x"
    );
    summarize("idle_hour_ms", "ms", samples)
}

fn bench_closed_loop(seed: u64) -> (Summary, Summary) {
    let obs = Obs::enabled();
    let mut fab = XgFabric::new(FabricConfig {
        seed,
        cfd_cells: [14, 12, 5],
        cfd_steps: 25,
        obs: obs.clone(),
        ..Default::default()
    });
    let cycles = scaled(30);
    let mut wall = Vec::with_capacity(cycles);
    for c in 0..cycles {
        // A weather front partway through makes some cycles carry the
        // full detect → CFD → return path, not just telemetry.
        if c == cycles / 2 {
            fab.force_front();
        }
        let start = Instant::now();
        fab.run_report_cycle().expect("healthy closed loop");
        wall.push(start.elapsed().as_secs_f64() * 1_000.0);
    }
    // XG_TRACE_DUMP=<path> writes the run's span JSONL for offline
    // `xg-trace` analysis (CI uploads this when the perf gate fails).
    if let Ok(path) = std::env::var("XG_TRACE_DUMP") {
        if !path.is_empty() {
            if let Some(tracer) = obs.tracer() {
                let jsonl = xg_obs::spans_to_jsonl(&tracer.take_spans());
                match std::fs::write(&path, jsonl) {
                    Ok(()) => eprintln!("  wrote span dump to {path}"),
                    Err(e) => eprintln!("  span dump to {path} failed: {e}"),
                }
            }
        }
    }
    let virtual_ms = fab.timeline().telemetry_latencies_ms();
    (
        summarize("cycle_wall_ms", "ms", wall),
        summarize("cycle_transfer_virtual_ms", "ms", virtual_ms),
    )
}

/// One cell's worth of synthetic burst-shaped E2 state: an overloaded
/// eMBB slice next to a steady mIoT slice, with one noisy-channel UE per
/// slice — enough measured signal that all three shipping xApps do real
/// work every period.
fn synthetic_indication(cell: u32, ues_per_slice: usize) -> CellIndication {
    const TOTAL_PRBS: u32 = 106;
    const UL_SLOTS: u64 = 1_000;
    const BITS_PER_PRB_TTI: f64 = 471.7; // ~50 Mbps over the full grid
    let mut ues = Vec::new();
    let mut slices = Vec::new();
    for (si, snssai) in [Snssai::miot(1), Snssai::embb(1)].into_iter().enumerate() {
        let granted = (TOTAL_PRBS as u64 / 2) * UL_SLOTS;
        let capacity_bits = granted as f64 * BITS_PER_PRB_TTI;
        let offered = if si == 0 { 8e6 } else { 80e6 };
        let served = capacity_bits.min(offered);
        slices.push(SliceReport {
            slice: si as u16,
            snssai,
            prb_share: 0.5,
            quota_prbs: TOTAL_PRBS / 2,
            granted_prb_ttis: granted,
            capacity_prb_ttis: granted,
            offered_bits: offered,
            served_bits: served,
            queued_bits: (offered - served).max(0.0),
        });
        for u in 0..ues_per_slice {
            ues.push(UeReport {
                ue: (si * ues_per_slice + u) as u32,
                slice: si as u16,
                granted_prb_ttis: granted / ues_per_slice as u64,
                sched_ttis: UL_SLOTS / 2,
                served_bits: served / ues_per_slice as f64,
                queued_bits: 0.0,
                cqi: 9,
                harq_nack_rate: if u == 0 { 0.3 } else { 0.02 },
            });
        }
    }
    CellIndication {
        cell,
        window_s: 1.0,
        ul_slots: UL_SLOTS,
        total_prbs: TOTAL_PRBS,
        ues,
        slices,
    }
}

/// The shipping xApp stack in registration order.
fn paper_ric(seed: u64, period_s: f64) -> Ric {
    let mut ric = Ric::new(seed, period_s);
    ric.register(DemandSlicer::try_new(0.1, 0.5).expect("valid slicer params"));
    ric.register(BurstGuard::new(Snssai::miot(1)));
    ric.register(McsCapper::try_new(7.4).expect("valid max_eff"));
    ric
}

fn bench_ric_loop(seed: u64) -> Summary {
    const CELLS: u32 = 4;
    const UES_PER_SLICE: usize = 4;
    // One sample = the mean of BATCH consecutive engine periods. A lone
    // period runs ~1 µs, so a single scheduler blip (tens of µs) would
    // otherwise land wholly inside one sample and dominate the p99 at
    // reduced CI scale; batching amortises the blip across the sample
    // without moving the per-period p50.
    const BATCH: usize = 8;
    let mut ric = paper_ric(seed, 1.0);
    let steps = scaled(400);
    // Pre-build every period's indication batch so the timed window is
    // the engine alone, not allocation of the synthetic fleet state.
    let mut batches: Vec<Vec<CellIndication>> = (0..steps * BATCH)
        .map(|_| {
            (0..CELLS)
                .map(|c| synthetic_indication(c, UES_PER_SLICE))
                .collect()
        })
        .collect();
    let mut samples = Vec::with_capacity(steps);
    let mut period = 0usize;
    for chunk in batches.chunks_mut(BATCH) {
        let start = Instant::now();
        for fresh in chunk.iter_mut() {
            let outcome = ric.step(std::mem::take(fresh), period as f64);
            std::hint::black_box(outcome);
            period += 1;
        }
        samples.push(start.elapsed().as_nanos() as f64 / 1_000.0 / BATCH as f64);
    }
    summarize("ric_loop_us", "us", samples)
}

fn bench_ric_reaction(seed: u64) -> Summary {
    // The pest-burst scenario from the acceptance suite: a weather
    // cluster on mIoT, a pest camera bursting 10x on eMBB. The sample is
    // *virtual* time from the last pre-onset report to the burst-guard's
    // corrective action — one indication period when the loop reacts on
    // the first indication that shows the surge.
    let runs = scaled(8).max(1);
    let mut samples = Vec::with_capacity(runs);
    for i in 0..runs {
        let run_seed = seed.wrapping_add(i as u64);
        // The burst begins inside cycle `onset_cycle + 1`, at a
        // sub-period onset phase: partway through the RAN-sim second
        // that cycle advances. With an integer onset the sample
        // degenerates to a constant full period (onset at a cycle
        // boundary, action at the next boundary); the fractional phase
        // makes the measured reaction the *actual* onset-to-action
        // distance at sub-period resolution.
        let onset_cycle = 3 + (i % 3) as u64;
        let frac = 0.2 + 0.6 * (i as f64 / runs.max(2) as f64);
        let burst_start_s = onset_cycle as f64 + frac;
        let mut topo = RanTopology::default();
        topo.cells[0] = RanCellSpec::paper_default("UNL-5G")
            .with_config(
                CellConfig::new(Rat::Nr5g, Duplex::Fdd, MHz(20.0)).with_slices(
                    SliceConfig::new(vec![
                        SliceProfile {
                            snssai: Snssai::miot(1),
                            prb_share: 0.5,
                        },
                        SliceProfile {
                            snssai: Snssai::embb(1),
                            prb_share: 0.5,
                        },
                    ])
                    .expect("valid slice table"),
                ),
            )
            .with_scenario_ue(ScenarioUe {
                device: DeviceClass::RaspberryPi,
                snssai: Snssai::miot(1),
                traffic: TrafficModel::Cbr { rate_mbps: 8.0 },
            })
            .with_scenario_ue(ScenarioUe {
                device: DeviceClass::RaspberryPi,
                snssai: Snssai::embb(1),
                traffic: TrafficModel::pest_camera(8.0, 80.0, burst_start_s, f64::INFINITY),
            });
        topo.cells[0].probe_ues = 0;
        let mut fab = XgFabric::new(FabricConfig {
            seed: run_seed,
            cfd_cells: [12, 10, 4],
            cfd_steps: 10,
            ran: topo,
            ric: Some(paper_ric(run_seed, 300.0)),
            ..Default::default()
        });
        fab.run_cycles(onset_cycle as usize + 4)
            .expect("healthy closed loop");
        let action_t = fab
            .timeline()
            .events
            .iter()
            .find_map(|e| match e {
                Event::RicAction { t_s, xapp, .. } if xapp == "burst-guard" => Some(*t_s),
                _ => None,
            })
            .expect("the guard must fire during the burst");
        let reaction_ms = (action_t - burst_start_s * 300.0) * 1_000.0;
        assert!(
            reaction_ms > 0.0 && reaction_ms <= 2.0 * 300_000.0,
            "guard reacted in {reaction_ms} ms — outside (0, 2 periods]"
        );
        samples.push(reaction_ms);
    }
    summarize("ric_reaction_ms", "ms", samples)
}

fn bench_profile_overhead() -> Summary {
    let obs = Obs::enabled();
    let prof = obs.profiler().expect("obs enabled");
    const BATCH: usize = 128;
    let batches = scaled(256);
    let mut samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..BATCH {
            prof.scope("bench.scope").finish();
        }
        samples.push(start.elapsed().as_nanos() as f64 / BATCH as f64);
    }
    summarize("profile_overhead_ns", "ns", samples)
}

fn bench_critical_extract() -> Summary {
    use xg_obs::span::SpanRecord;
    use xg_obs::ClockDomain;
    // A synthetic report-cycle tree shaped like the orchestrator's: one
    // root, a fan of phases, a sub-fan under the longest phase — 64
    // spans, comfortably above a real cycle's span count.
    let mut spans = vec![SpanRecord {
        trace: 1,
        id: 1,
        parent: None,
        name: "fabric.cycle".into(),
        domain: ClockDomain::Wall,
        start_us: 0,
        end_us: 1_000_000,
        attrs: vec![],
    }];
    for id in 2..=64u64 {
        let parent = if id <= 9 { 1 } else { 2 + (id % 8) };
        spans.push(SpanRecord {
            trace: 1,
            id,
            parent: Some(parent),
            name: format!("phase.{id}"),
            domain: ClockDomain::Wall,
            start_us: 0,
            end_us: 1_000_000 / id,
            attrs: vec![],
        });
    }
    let rounds = scaled(400);
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        let path = xg_obs::extract_critical(&spans, 1).expect("non-empty trace");
        samples.push(start.elapsed().as_nanos() as f64 / 1_000.0);
        std::hint::black_box(path);
    }
    summarize("critical_path_extract_us", "us", samples)
}

fn bench_lint_workspace() -> Summary {
    // The workspace root, two levels above this crate's manifest. The
    // probe lints the real tree (not a synthetic corpus) so the number
    // moves when the workspace grows — that drift is the point: it is
    // the latency the CI gate actually pays.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent().map(PathBuf::from))
        .expect("crate lives two levels under the workspace root");
    let cfg = xg_lint::Config::workspace();
    // One warm-up run so the page cache holds the sources before the
    // measured window, matching a CI runner that just built the tree.
    let warm = xg_lint::lint_root(&root, &cfg).expect("workspace lints");
    std::hint::black_box(warm.findings.len());
    let rounds = scaled(6).max(2);
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        let report = xg_lint::lint_root(&root, &cfg).expect("workspace lints");
        samples.push(start.elapsed().as_secs_f64() * 1_000.0);
        std::hint::black_box(report.findings.len());
    }
    summarize("lint_workspace_ms", "ms", samples)
}

fn run_probes(seed: u64) -> Vec<Summary> {
    let mut out = Vec::new();
    eprintln!("  histogram record ...");
    out.push(bench_histogram_record());
    eprintln!("  span record ...");
    out.push(bench_span_record());
    eprintln!("  cspot storage (append + recovery) ...");
    let (append, recovery) = bench_cspot_storage(seed);
    out.push(append);
    out.push(recovery);
    eprintln!("  cfd sweep ...");
    out.push(bench_cfd_sweep());
    eprintln!("  fleet step ...");
    out.push(bench_fleet_step(seed));
    eprintln!("  event step ...");
    out.push(bench_event_step());
    eprintln!("  idle skip ...");
    out.push(bench_idle_skip(seed));
    eprintln!("  closed loop ...");
    let (wall, virt) = bench_closed_loop(seed);
    out.push(wall);
    out.push(virt);
    eprintln!("  ric loop ...");
    out.push(bench_ric_loop(seed));
    eprintln!("  ric reaction ...");
    out.push(bench_ric_reaction(seed));
    eprintln!("  profile overhead ...");
    out.push(bench_profile_overhead());
    eprintln!("  critical path extract ...");
    out.push(bench_critical_extract());
    eprintln!("  lint workspace ...");
    out.push(bench_lint_workspace());
    out
}

fn main() -> ExitCode {
    let mut emit: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut tolerance = 0.10;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--emit" => emit = args.next().map(PathBuf::from),
            "--compare" => baseline = args.next().map(PathBuf::from),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--tolerance takes a fraction, e.g. 0.10");
            }
            other => {
                eprintln!("unknown argument {other}; flags: --emit PATH | --compare PATH | --tolerance FRAC");
                return ExitCode::FAILURE;
            }
        }
    }

    let seed = effective_seed(42);
    println!("Perf trajectory — {SCHEMA} (scale {})", perf_scale());
    print_run_header(seed, &obs_from_env());
    let metrics = run_probes(seed);
    println!(
        "\n{:<28} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "metric", "n", "p50", "p99", "mean", "max"
    );
    for m in &metrics {
        println!(
            "{:<28} {:>6} {:>9.3} {} {:>9.3} {} {:>9.3} {} {:>9.3} {}",
            m.name, m.n, m.p50, m.unit, m.p99, m.unit, m.mean, m.unit, m.max, m.unit
        );
    }
    let doc = render(seed, &metrics);
    if let Some(path) = &emit {
        write_atomic(path, &doc);
        println!("\nwrote {}", path.display());
    } else {
        let p = write_results("perf_trajectory.json", &doc);
        println!("\nwrote {}", p.display());
    }
    match &baseline {
        Some(b) => {
            if compare(b, &metrics, tolerance) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        None => ExitCode::SUCCESS,
    }
}
