//! Perf trajectory: a schema-versioned performance snapshot of the hot
//! paths, plus a regression gate over a committed baseline.
//!
//! Five probes cover the layers a PR typically touches:
//!
//! * `histogram_record_ns` — one log-linear histogram record (the cost
//!   every instrumented call site pays when observability is on);
//! * `span_record_ns` — one completed span through the tracer *and* the
//!   black-box flight-recorder sink;
//! * `cspot_append_us` — one two-phase remote append over the paper
//!   topology (protocol + storage CPU; the virtual clock makes the
//!   simulated network free);
//! * `cfd_sweep_ms` — one solver step on a small mesh;
//! * `cycle_wall_ms` — one full orchestrated report cycle, wall clock,
//!   with `cycle_transfer_virtual_ms` (deterministic virtual time) from
//!   the same run as a machine-independent companion.
//!
//! Run: `cargo run -p xg-bench --release --bin perf_trajectory`
//! (writes `results/perf_trajectory.json`), or
//! `-- --emit BENCH_pr3.json` to write a baseline, or
//! `-- --compare BENCH_pr3.json [--tolerance 0.10]` to run the gate: it
//! exits nonzero when any metric's p99 regresses more than the tolerance
//! over the baseline. `XG_PERF_SCALE=0.1` shrinks iteration counts for
//! CI; wall-clock numbers move with the host, so CI gates should widen
//! the tolerance rather than trust a baseline from another machine.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use xg_bench::{effective_seed, obs_from_env, print_run_header, write_results};
use xg_cfd::prelude::*;
use xg_cspot::netsim::{SimClock, Topology};
use xg_cspot::node::CspotNode;
use xg_cspot::protocol::{RemoteAppender, RemoteConfig};
use xg_fabric::orchestrator::{FabricConfig, XgFabric};
use xg_obs::Obs;

/// The emitted document's schema tag; bump on any field change.
const SCHEMA: &str = "xg-perf-trajectory/1";

/// Summary statistics of one probe's samples.
struct Summary {
    name: &'static str,
    unit: &'static str,
    n: usize,
    p50: f64,
    p99: f64,
    mean: f64,
    max: f64,
}

fn summarize(name: &'static str, unit: &'static str, mut samples: Vec<f64>) -> Summary {
    assert!(!samples.is_empty(), "{name}: no samples");
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    let rank = |q: f64| samples[(q * (n - 1) as f64).floor() as usize];
    Summary {
        name,
        unit,
        n,
        p50: rank(0.5),
        p99: rank(0.99),
        mean: samples.iter().sum::<f64>() / n as f64,
        max: samples[n - 1],
    }
}

/// Iteration count scaled by `XG_PERF_SCALE` (floor 8 keeps quantiles
/// meaningful on the smallest CI runs).
fn scaled(base: usize) -> usize {
    ((base as f64 * perf_scale()) as usize).max(8)
}

fn perf_scale() -> f64 {
    std::env::var("XG_PERF_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| s.is_finite() && *s > 0.0)
        .unwrap_or(1.0)
}

fn bench_histogram_record() -> Summary {
    let obs = Obs::enabled();
    let h = obs.registry().expect("obs enabled").histogram("bench.hist");
    const BATCH: usize = 128;
    let batches = scaled(256);
    let mut samples = Vec::with_capacity(batches);
    for b in 0..batches {
        let start = Instant::now();
        for i in 0..BATCH {
            h.record(1.0 + (b * BATCH + i) as f64);
        }
        samples.push(start.elapsed().as_nanos() as f64 / BATCH as f64);
    }
    summarize("histogram_record_ns", "ns", samples)
}

fn bench_span_record() -> Summary {
    let obs = Obs::enabled();
    let tracer = obs.tracer().expect("obs enabled");
    let trace = tracer.new_trace();
    const BATCH: usize = 32;
    let batches = scaled(128);
    let mut samples = Vec::with_capacity(batches);
    for b in 0..batches {
        let start = Instant::now();
        for i in 0..BATCH {
            let t = (b * BATCH + i) as f64;
            tracer.record_sim_s(trace, None, "bench.span", t, t + 0.5, vec![]);
        }
        samples.push(start.elapsed().as_nanos() as f64 / BATCH as f64);
        // Keep the tracer's buffer flat so later batches don't pay for
        // earlier ones; the recorder ring is bounded by construction.
        tracer.take_spans();
    }
    summarize("span_record_ns", "ns", samples)
}

fn bench_cspot_append(seed: u64) -> Summary {
    let topo = Topology::paper();
    let server = Arc::new(CspotNode::in_memory("UCSB"));
    server.create_log("bench", 1024, 4096).expect("fresh log");
    let mut appender = RemoteAppender::new(
        SimClock::new(),
        topo.route("UNL-5G", "UCSB").expect("route exists").clone(),
        RemoteConfig::default(),
        seed,
    );
    let payload = vec![0u8; 1024];
    let appends = scaled(400);
    let mut samples = Vec::with_capacity(appends);
    for _ in 0..appends {
        let start = Instant::now();
        appender
            .append(&server, "bench", &payload)
            .expect("append over healthy route");
        samples.push(start.elapsed().as_nanos() as f64 / 1_000.0);
    }
    summarize("cspot_append_us", "us", samples)
}

fn bench_cfd_sweep() -> Summary {
    let mesh = Mesh::generate(&DomainSpec::cups_default().with_cells(16, 12, 4));
    let bc = BoundarySpec::intact(6.0, 270.0, 24.0);
    let mut sim = Simulation::new(mesh, bc, SolverConfig::default());
    let steps = scaled(40);
    let mut samples = Vec::with_capacity(steps);
    for _ in 0..steps {
        let start = Instant::now();
        sim.step();
        samples.push(start.elapsed().as_secs_f64() * 1_000.0);
    }
    summarize("cfd_sweep_ms", "ms", samples)
}

fn bench_closed_loop(seed: u64) -> (Summary, Summary) {
    let mut fab = XgFabric::new(FabricConfig {
        seed,
        cfd_cells: [14, 12, 5],
        cfd_steps: 25,
        obs: Obs::enabled(),
        ..Default::default()
    });
    let cycles = scaled(30);
    let mut wall = Vec::with_capacity(cycles);
    for c in 0..cycles {
        // A weather front partway through makes some cycles carry the
        // full detect → CFD → return path, not just telemetry.
        if c == cycles / 2 {
            fab.force_front();
        }
        let start = Instant::now();
        fab.run_report_cycle().expect("healthy closed loop");
        wall.push(start.elapsed().as_secs_f64() * 1_000.0);
    }
    let virtual_ms = fab.timeline().telemetry_latencies_ms();
    (
        summarize("cycle_wall_ms", "ms", wall),
        summarize("cycle_transfer_virtual_ms", "ms", virtual_ms),
    )
}

fn run_probes(seed: u64) -> Vec<Summary> {
    let mut out = Vec::new();
    eprintln!("  histogram record ...");
    out.push(bench_histogram_record());
    eprintln!("  span record ...");
    out.push(bench_span_record());
    eprintln!("  cspot append ...");
    out.push(bench_cspot_append(seed));
    eprintln!("  cfd sweep ...");
    out.push(bench_cfd_sweep());
    eprintln!("  closed loop ...");
    let (wall, virt) = bench_closed_loop(seed);
    out.push(wall);
    out.push(virt);
    out
}

/// Render the document. One metric per line: greppable, diffable, and
/// parseable by [`parse_metrics`] without a JSON library.
fn render(seed: u64, metrics: &[Summary]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"scale\": {},\n", perf_scale()));
    s.push_str("  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\":\"{}\",\"unit\":\"{}\",\"n\":{},\"p50\":{:.3},\"p99\":{:.3},\"mean\":{:.3},\"max\":{:.3}}}{}\n",
            m.name,
            m.unit,
            m.n,
            m.p50,
            m.p99,
            m.mean,
            m.max,
            if i + 1 < metrics.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extract `(name, p99)` pairs from a document [`render`] produced.
///
/// Deliberately line-oriented rather than a JSON parser: the gate only
/// ever reads files this binary wrote, and a format drift should fail
/// loudly (no metrics parsed) rather than half-parse.
fn parse_metrics(doc: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in doc.lines() {
        let Some(name) = extract_str(line, "name") else {
            continue;
        };
        if let Some(p99) = extract_f64(line, "p99") {
            out.push((name, p99));
        }
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let rest = line.split(&format!("\"{key}\":\"")).nth(1)?;
    Some(rest.split('"').next()?.to_string())
}

fn extract_f64(line: &str, key: &str) -> Option<f64> {
    let rest = line.split(&format!("\"{key}\":")).nth(1)?;
    rest.trim_start()
        .split([',', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

fn schema_of(doc: &str) -> Option<String> {
    doc.lines()
        .find(|l| l.contains("\"schema\""))
        .and_then(|l| l.split('"').nth(3).map(str::to_string))
}

/// Atomic write for arbitrary paths (baselines live outside `results/`).
fn write_atomic(path: &Path, contents: &str) {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents).expect("baseline writable");
    std::fs::rename(&tmp, path).expect("baseline renamable");
}

fn compare(baseline_path: &Path, current: &[Summary], tolerance: f64) -> ExitCode {
    let doc = match std::fs::read_to_string(baseline_path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot read baseline {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    match schema_of(&doc).as_deref() {
        Some(SCHEMA) => {}
        other => {
            eprintln!("baseline schema {other:?}, expected {SCHEMA:?}");
            return ExitCode::FAILURE;
        }
    }
    let baseline = parse_metrics(&doc);
    if baseline.is_empty() {
        eprintln!("baseline {} holds no metrics", baseline_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "\n{:<28} {:>12} {:>12} {:>8}  verdict (tolerance +{:.0}%)",
        "metric",
        "base p99",
        "now p99",
        "delta",
        tolerance * 100.0
    );
    let mut failed = false;
    for (name, base_p99) in &baseline {
        let Some(m) = current.iter().find(|m| m.name == *name) else {
            println!(
                "{name:<28} {base_p99:>12.3} {:>12} {:>8}  MISSING",
                "-", "-"
            );
            failed = true;
            continue;
        };
        let delta = m.p99 / base_p99 - 1.0;
        let regressed = delta > tolerance;
        failed |= regressed;
        println!(
            "{:<28} {:>12.3} {:>12.3} {:>7.1}%  {}",
            name,
            base_p99,
            m.p99,
            delta * 100.0,
            if regressed { "REGRESSED" } else { "ok" }
        );
    }
    for m in current {
        if !baseline.iter().any(|(n, _)| n == m.name) {
            println!(
                "{:<28} {:>12} {:>12.3} {:>8}  new (no baseline)",
                m.name, "-", m.p99, "-"
            );
        }
    }
    if failed {
        eprintln!(
            "\nperf gate FAILED: p99 regression beyond {:.0}%",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("\nperf gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut emit: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut tolerance = 0.10;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--emit" => emit = args.next().map(PathBuf::from),
            "--compare" => baseline = args.next().map(PathBuf::from),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--tolerance takes a fraction, e.g. 0.10");
            }
            other => {
                eprintln!("unknown argument {other}; flags: --emit PATH | --compare PATH | --tolerance FRAC");
                return ExitCode::FAILURE;
            }
        }
    }

    let seed = effective_seed(42);
    println!("Perf trajectory — {SCHEMA} (scale {})", perf_scale());
    print_run_header(seed, &obs_from_env());
    let metrics = run_probes(seed);
    println!(
        "\n{:<28} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "metric", "n", "p50", "p99", "mean", "max"
    );
    for m in &metrics {
        println!(
            "{:<28} {:>6} {:>9.3} {} {:>9.3} {} {:>9.3} {} {:>9.3} {}",
            m.name, m.n, m.p50, m.unit, m.p99, m.unit, m.mean, m.unit, m.max, m.unit
        );
    }
    let doc = render(seed, &metrics);
    if let Some(path) = &emit {
        write_atomic(path, &doc);
        println!("\nwrote {}", path.display());
    } else {
        let p = write_results("perf_trajectory.json", &doc);
        println!("\nwrote {}", p.display());
    }
    match &baseline {
        Some(b) => compare(b, &metrics, tolerance),
        None => ExitCode::SUCCESS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Summary {
        Summary {
            name: "histogram_record_ns",
            unit: "ns",
            n: 100,
            p50: 10.0,
            p99: 42.5,
            mean: 12.0,
            max: 80.0,
        }
    }

    #[test]
    fn render_roundtrips_through_parser() {
        let doc = render(7, &[sample()]);
        assert_eq!(schema_of(&doc).as_deref(), Some(SCHEMA));
        let parsed = parse_metrics(&doc);
        assert_eq!(parsed, vec![("histogram_record_ns".to_string(), 42.5)]);
    }

    #[test]
    fn summarize_orders_quantiles() {
        let s = summarize("cfd_sweep_ms", "ms", (1..=100).map(f64::from).collect());
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }
}
