//! Table 1: CSPOT message latency for a 1 KB payload.
//!
//! Measures the time to deliver a 1 KB message payload, 30 times
//! back-to-back, discarding the first sample (connection start-up
//! penalty), over the paper's three paths:
//!
//! | Path                  | Paper mean | Paper SD |
//! |-----------------------|-----------:|---------:|
//! | UNL→UCSB (5G+Int.)    |     101 ms |    17 ms |
//! | UNL→UCSB (Internet)   |      17 ms |   0.8 ms |
//! | UCSB→ND  (Internet)   |      92 ms |     1 ms |
//!
//! Also reports the client-side size-cache variant the paper discusses
//! ("this optimization effectively halves the message latency").
//!
//! Run: `cargo run -p xg-bench --release --bin table1_cspot_latency`

use std::sync::Arc;
use xg_bench::{effective_seed, obs_from_env, print_run_header, write_results};
use xg_cspot::prelude::*;
use xg_net::units::SampleStats;

const MESSAGES: usize = 30;

fn measure(route_from: &str, route_to: &str, use_cache: bool, seed: u64) -> SampleStats {
    let topo = Topology::paper();
    let server = Arc::new(CspotNode::in_memory(route_to));
    server
        .create_log("bench", 1024, 4096)
        .expect("fresh server log");
    let cfg = RemoteConfig {
        use_size_cache: use_cache,
        ..Default::default()
    };
    let mut appender = RemoteAppender::new(
        SimClock::new(),
        topo.route(route_from, route_to)
            .expect("route exists")
            .clone(),
        cfg,
        seed,
    );
    let payload = vec![0u8; 1024];
    let series = appender
        .measure_latency_series(&server, "bench", &payload, MESSAGES)
        .expect("healthy path");
    SampleStats::of(&series).expect("29 samples")
}

fn main() {
    let base_seed = effective_seed(0x7AB1E0);
    println!("Table 1 — CSPOT 1 KB message latency (30 back-to-back, first discarded)");
    print_run_header(base_seed, &obs_from_env());
    println!();
    println!(
        "{:<26} {:>12} {:>10} {:>12} {:>10}",
        "path", "paper (ms)", "paper SD", "measured", "SD"
    );
    let rows = [
        ("UNL->UCSB (5G+Int.)", "UNL-5G", "UCSB", 101.0, 17.0),
        ("UNL->UCSB (Internet)", "UNL", "UCSB", 17.0, 0.8),
        ("UCSB->ND (Internet)", "UCSB", "ND", 92.0, 1.0),
    ];
    let mut csv = String::from("path,paper_mean_ms,paper_sd_ms,measured_mean_ms,measured_sd_ms\n");
    for (label, from, to, paper_mean, paper_sd) in rows {
        let stats = measure(from, to, false, base_seed ^ 1);
        println!(
            "{:<26} {:>12.1} {:>10.1} {:>12.1} {:>10.1}",
            label, paper_mean, paper_sd, stats.mean, stats.sd
        );
        csv.push_str(&format!(
            "{label},{paper_mean},{paper_sd},{:.2},{:.2}\n",
            stats.mean, stats.sd
        ));
    }

    println!("\nSize-cache optimization (paper: \"effectively halves the message latency\"):");
    let plain = measure("UCSB", "ND", false, base_seed ^ 2);
    let cached = measure("UCSB", "ND", true, base_seed ^ 2);
    println!(
        "  UCSB->ND two-phase {:.1} ms  |  size-cached {:.1} ms  |  ratio {:.2}",
        plain.mean,
        cached.mean,
        cached.mean / plain.mean
    );
    csv.push_str(&format!(
        "UCSB->ND size-cached,-,-,{:.2},{:.2}\n",
        cached.mean, cached.sd
    ));
    let path = write_results("table1_cspot_latency.csv", &csv);
    println!("\nwrote {}", path.display());
}
