//! Ablation studies for the design choices called out in DESIGN.md §4.
//!
//! These measure *simulated outcomes* (latency, fairness, wasted HPC
//! runs), complementing the wall-clock Criterion benches:
//!
//! 2. Pilot strategies — on-demand vs proactive vs reactive: response
//!    latency against idle node-hours.
//! 3. TDD slot pattern — uplink throughput under uplink-heavy vs
//!    downlink-heavy patterns.
//! 4. Scheduler discipline — round-robin vs proportional-fair per-user
//!    split under asymmetric channels (Fig. 5's "uneven user allocation").
//! 6. Change-detector vote threshold — false triggers (wasted HPC runs)
//!    vs missed fronts across 1-of-3 / 2-of-3 / 3-of-3 voting.
//!
//! Run: `cargo run -p xg-bench --release --bin ablations`

use xg_bench::{effective_seed, obs_from_env, print_run_header, write_results};
use xg_hpc::cluster::ClusterSim;
use xg_hpc::pilot::{PilotController, PilotControllerConfig, PilotStrategy};
use xg_hpc::site::SiteProfile;
use xg_laminar::change::ChangeDetector;
use xg_net::device::UnitVariation;
use xg_net::mac::SchedulerKind;
use xg_net::prelude::*;
use xg_net::rat::TddPattern;
use xg_net::traffic::TrafficModel;
use xg_sensors::facility::CupsFacility;
use xg_sensors::network::SensorNetwork;

fn main() {
    // Each study derives its own stream from the base seed with a fixed
    // offset, chosen so the historical per-study seeds are reproduced when
    // XG_SEED is unset.
    let seed = effective_seed(7);
    print_run_header(seed, &obs_from_env());
    println!();
    let mut csv = String::from("study,variant,metric,value\n");

    pilot_strategies(&mut csv, seed);
    interactive_vs_batch(&mut csv, seed.wrapping_add(6));
    tdd_patterns(&mut csv, seed.wrapping_add(4));
    scheduler_fairness(&mut csv, seed.wrapping_add(6));
    vote_thresholds(&mut csv, seed.wrapping_add(70));
    dynamic_vs_static_slicing(&mut csv, seed.wrapping_add(48));

    let path = write_results("ablations.csv", &csv);
    println!("\nwrote {}", path.display());
}

/// Ablation 2: pilot strategies on a busy 32-node cluster.
fn pilot_strategies(csv: &mut String, seed: u64) {
    println!("Ablation: pilot provisioning strategies (busy 32-node cluster)\n");
    println!(
        "{:<22} {:>14} {:>16}",
        "strategy", "task wait (s)", "idle node-hours"
    );
    for (name, strategy) in [
        ("on-demand (paper)", PilotStrategy::OnDemand),
        (
            "proactive warm=4",
            PilotStrategy::Proactive { warm_nodes: 4 },
        ),
        ("adaptive warm=4", PilotStrategy::Adaptive { warm_nodes: 4 }),
        ("reactive", PilotStrategy::Reactive),
    ] {
        let cluster = ClusterSim::new(32).with_background_load(900.0, 5400.0, 8, seed);
        let mut cfg = PilotControllerConfig::paper_default(32);
        cfg.strategy = strategy;
        let mut ctl = PilotController::new(cluster, cfg);
        // Warm-up, then a trigger every hour for six hours.
        ctl.advance_to(1800.0);
        for hour in 1..=6 {
            let t = hour as f64 * 3600.0;
            ctl.advance_to(t);
            ctl.on_data(2048.0);
            ctl.submit_task(1, 420.0);
        }
        ctl.advance_to(8.0 * 3600.0);
        let tasks = ctl.completed_tasks();
        let mean_wait = if tasks.is_empty() {
            f64::NAN
        } else {
            tasks.iter().map(|t| t.wait_s).sum::<f64>() / tasks.len() as f64
        };
        let idle_h = ctl.idle_node_seconds() / 3600.0;
        println!("{name:<22} {mean_wait:>14.1} {idle_h:>16.1}");
        csv.push_str(&format!("pilot,{name},task_wait_s,{mean_wait:.1}\n"));
        csv.push_str(&format!("pilot,{name},idle_node_hours,{idle_h:.1}\n"));
    }
    println!("  -> proactive minimizes latency at an idle-resource cost; reactive the reverse (paper §3.6).\n");
}

/// Ablation: interactive vs batch pilots (§3.6: "interactive pilots
/// ensure rapid responsiveness ... batch pilots optimize throughput and
/// resource utilization ... at the cost of latency from scheduling").
/// The interactive path is a small dedicated partition with no competing
/// load; the batch path is the busy main queue.
fn interactive_vs_batch(csv: &mut String, seed: u64) {
    println!("Ablation: interactive vs batch pilots (busy main queue)\n");
    println!("{:<24} {:>16}", "pilot kind", "task wait (s)");
    // Batch: the busy 32-node main machine, pilot through the queue.
    let batch_site = SiteProfile {
        name: "batch-queue".into(),
        // A heavily subscribed main queue (the 0-24 h regime of §4.4).
        bg_interarrival_s: 300.0,
        bg_runtime_s: 4.0 * 3600.0,
        ..SiteProfile::notre_dame_crc()
    };
    // Interactive: a 2-node dedicated partition (idle by construction).
    let interactive_site = SiteProfile {
        name: "interactive-partition".into(),
        nodes: 2,
        bg_interarrival_s: f64::INFINITY,
        ..SiteProfile::notre_dame_crc()
    };
    for (name, site, busy) in [
        ("batch (main queue)", batch_site, true),
        ("interactive (partition)", interactive_site, false),
    ] {
        // Saturate before the pilot is submitted so the batch pilot truly
        // queues: pre-load, then create the controller.
        let mut cluster = if busy {
            site.build_cluster(seed)
        } else {
            site.build_idle_cluster()
        };
        cluster.advance_to(6.0 * 3600.0);
        let mut cfg = PilotControllerConfig::paper_default(site.nodes);
        cfg.strategy = PilotStrategy::Reactive;
        let mut ctl = PilotController::new(cluster, cfg);
        ctl.on_data(1024.0); // submit the pilot now
        ctl.submit_task(1, 420.0);
        ctl.advance_to(30.0 * 3600.0);
        let wait = ctl
            .completed_tasks()
            .first()
            .map(|t| t.wait_s)
            .unwrap_or(f64::INFINITY);
        println!("{name:<24} {wait:>16.0}");
        csv.push_str(&format!("pilot_kind,{name},task_wait_s,{wait:.1}\n"));
    }
    println!("  -> the dedicated interactive partition absorbs real-time tasks at");
    println!("     once; the batch queue imposes scheduling latency (paper §3.6).\n");
}

/// Ablation 3: TDD slot pattern sensitivity at 40 MHz.
fn tdd_patterns(csv: &mut String, seed: u64) {
    println!("Ablation: TDD slot pattern (RPi, 40 MHz)\n");
    println!(
        "{:<18} {:>10} {:>14}",
        "pattern", "UL frac", "uplink (Mbps)"
    );
    for (name, pattern) in [
        ("DDSUU (deployed)", TddPattern::uplink_heavy()),
        ("DDDSU (eMBB)", TddPattern::downlink_heavy()),
        ("DSUUU", TddPattern::parse("DSUUU").unwrap()),
    ] {
        let cell = CellConfig::new(Rat::Nr5g, Duplex::Tdd(pattern.clone()), MHz(40.0));
        let mut sim = LinkSimulator::try_new(cell, seed).expect("ablation configs are valid");
        let ue = sim
            .attach(DeviceClass::RaspberryPi, Modem::Rm530nGl)
            .expect("attach");
        let mbps = sim.iperf_uplink(ue, 20).mean_mbps();
        println!(
            "{:<18} {:>10.3} {:>14.2}",
            name,
            pattern.uplink_fraction(),
            mbps
        );
        csv.push_str(&format!("tdd_pattern,{name},uplink_mbps,{mbps:.2}\n"));
    }
    println!("  -> uplink throughput tracks the pattern's UL symbol fraction.\n");
}

/// Ablation 4: scheduler discipline under asymmetric UEs.
fn scheduler_fairness(csv: &mut String, seed: u64) {
    println!("Ablation: MAC scheduler discipline (2 UEs, one 4.5 dB weaker)\n");
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>10}",
        "discipline", "UE1 (Mbps)", "UE2 (Mbps)", "aggregate", "ratio"
    );
    for (name, kind) in [
        ("round-robin", SchedulerKind::RoundRobin),
        ("proportional-fair", SchedulerKind::ProportionalFair),
    ] {
        let cell = CellConfig::new(Rat::Nr5g, Duplex::Fdd, MHz(20.0)).with_scheduler(kind);
        let mut sim = LinkSimulator::try_new(cell, seed).expect("ablation configs are valid");
        sim.attach_with(
            DeviceClass::RaspberryPi,
            Modem::Rm530nGl,
            Snssai::embb(0),
            UnitVariation::rpi_unit_a(), // weaker unit
        )
        .expect("attach");
        sim.attach_with(
            DeviceClass::RaspberryPi,
            Modem::Rm530nGl,
            Snssai::embb(0),
            UnitVariation::default(),
        )
        .expect("attach");
        let runs = sim.iperf_uplink_all(30);
        let (m1, m2) = (runs[0].mean_mbps(), runs[1].mean_mbps());
        println!(
            "{:<20} {:>12.2} {:>12.2} {:>12.2} {:>10.2}",
            name,
            m1,
            m2,
            m1 + m2,
            m2 / m1.max(1e-9)
        );
        csv.push_str(&format!("scheduler,{name},ue1_mbps,{m1:.2}\n"));
        csv.push_str(&format!("scheduler,{name},ue2_mbps,{m2:.2}\n"));
    }
    println!("  -> full-buffer PF and RR converge to similar splits; the Fig. 5 'uneven\n     user allocation' stems from the channel asymmetry itself.\n");
}

/// Ablation: dynamic (demand-tracking) vs static slicing under a bursty
/// co-tenant — the §5 future-work controller's payoff.
fn dynamic_vs_static_slicing(csv: &mut String, seed: u64) {
    println!("Ablation: dynamic vs static slicing (bursty video + burst uploads)\n");
    println!(
        "{:<18} {:>16} {:>16}",
        "policy", "burst tput (Mbps)", "video tput (Mbps)"
    );
    for (name, dynamic) in [("static 20/80", false), ("dynamic", true)] {
        let cell = CellConfig::new(Rat::Nr5g, Duplex::tdd_default(), MHz(40.0)).with_slices(
            SliceConfig::new(vec![
                xg_net::slice::SliceProfile {
                    snssai: Snssai::miot(1),
                    prb_share: 0.2,
                },
                xg_net::slice::SliceProfile {
                    snssai: Snssai::embb(1),
                    prb_share: 0.8,
                },
            ])
            .unwrap(),
        );
        let mut sim = LinkSimulator::try_new(cell, seed).expect("ablation configs are valid");
        let uploader = sim
            .attach_with(
                DeviceClass::RaspberryPi,
                Modem::Rm530nGl,
                Snssai::miot(1),
                UnitVariation::default(),
            )
            .unwrap();
        let video = sim
            .attach_with(
                DeviceClass::RaspberryPi,
                Modem::Rm530nGl,
                Snssai::embb(1),
                UnitVariation::default(),
            )
            .unwrap();
        // Video idles at 2 Mbps while the robot uploads a camera sweep
        // (full buffer) through the IoT slice.
        sim.set_traffic(video, TrafficModel::Cbr { rate_mbps: 2.0 })
            .unwrap();
        let mut slicer = DynamicSlicer::try_new(vec![Snssai::miot(1), Snssai::embb(1)], 0.1, 0.5)
            .expect("two slices with a 0.1 floor are feasible");
        let mut upload_total = 0.0;
        let mut video_total = 0.0;
        let seconds = 20;
        for _ in 0..seconds {
            let results = sim.measure_second();
            for (h, m) in results {
                if h == uploader {
                    upload_total += m;
                } else if h == video {
                    video_total += m;
                }
            }
            if dynamic {
                slicer.observe(0, 30.0); // upload demand high
                slicer.observe(1, 2.0); // video demand low
                sim.set_slices(slicer.recompute().unwrap()).unwrap();
            }
        }
        println!(
            "{:<18} {:>16.2} {:>16.2}",
            name,
            upload_total / seconds as f64,
            video_total / seconds as f64
        );
        csv.push_str(&format!(
            "dynslice,{name},upload_mbps,{:.2}\n",
            upload_total / seconds as f64
        ));
        csv.push_str(&format!(
            "dynslice,{name},video_mbps,{:.2}\n",
            video_total / seconds as f64
        ));
    }
    println!("  -> dynamic slicing reclaims idle video PRBs for the upload without");
    println!("     starving the video stream (its CBR demand stays satisfied).\n");
}

/// Ablation 6: vote threshold vs wasted HPC runs and missed fronts.
fn vote_thresholds(csv: &mut String, seed: u64) {
    println!("Ablation: change-detector vote threshold (30 days of telemetry)\n");
    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "votes", "false trig.", "fronts hit", "fronts missed"
    );
    for votes_needed in 1..=3u8 {
        let detector = ChangeDetector {
            votes_needed,
            ..Default::default()
        };
        // One 30-day run: fronts forced on a fixed schedule (every 16
        // detection cycles). A trigger within 3 checks of a front start
        // (onset or decay of the front both shift conditions) counts as a
        // hit; any other trigger is a false positive.
        let mut net = SensorNetwork::cups_default(CupsFacility::default(), seed);
        let mut history: Vec<f64> = Vec::new();
        let mut false_triggers = 0u32;
        let mut fronts_hit = 0u32;
        let mut fronts_total = 0u32;
        let mut since_front = i32::MAX;
        let mut current_front_hit = false;
        let checks = 30 * 48; // 30 days of 30-minute checks
        for check in 0..checks {
            if check % 16 == 8 {
                net.force_front();
                if fronts_total > 0 && current_front_hit {
                    fronts_hit += 1;
                }
                fronts_total += 1;
                current_front_hit = false;
                since_front = 0;
            }
            // 6 reports per check.
            for _ in 0..6 {
                let _ =
                    net.advance_to(net.now().saturating_add(SimNs::from_secs_f64(
                        xg_sensors::network::REPORT_INTERVAL_S,
                    )));
                let reports = net.take_reports();
                let mean =
                    reports.iter().map(|r| r.wind_speed_ms).sum::<f64>() / reports.len() as f64;
                history.push(mean);
            }
            if let Some(vote) = detector.evaluate(&history) {
                if vote.changed {
                    if since_front <= 3 {
                        current_front_hit = true;
                    } else {
                        false_triggers += 1;
                    }
                }
            }
            since_front = since_front.saturating_add(1);
        }
        if fronts_total > 0 && current_front_hit {
            fronts_hit += 1;
        }
        let misses = fronts_total - fronts_hit;
        println!("{votes_needed:<10} {false_triggers:>14} {fronts_hit:>14} {misses:>14}");
        csv.push_str(&format!(
            "vote_threshold,{votes_needed},false_triggers,{false_triggers}\n"
        ));
        csv.push_str(&format!("vote_threshold,{votes_needed},misses,{misses}\n"));
    }
    println!(
        "  -> stricter voting wastes fewer HPC runs; 2-of-3 balances both (paper's arbitration).\n"
    );
}
