//! Figure 4: single-user uplink throughput across bandwidths, duplexing
//! modes, and devices.
//!
//! Reproduces the paper's sweep: 4G FDD at 5/10/15/20 MHz, 5G FDD at
//! 5/10/15/20 MHz, and 5G TDD at 10–50 MHz, for a laptop, a Raspberry Pi,
//! and a smartphone, collecting 100 iperf3-style samples per point.
//!
//! Run: `cargo run -p xg-bench --release --bin fig4_single_user`

use xg_bench::scenario::ScenarioBuilder;
use xg_bench::{
    cell, effective_seed, iperf_samples, obs_from_env, print_run_header, sweeps, write_results,
};
use xg_net::prelude::*;

/// Paper anchor values (Mbps) for the printed comparison.
const PAPER_ANCHORS: &[(&str, &str, f64)] = &[
    ("4G FDD 20 MHz", "Smartphone", 43.83),
    ("4G FDD 20 MHz", "Laptop", 10.41),
    ("4G FDD 20 MHz", "RPi", 2.23),
    ("5G FDD 20 MHz", "Smartphone", 58.89),
    ("5G FDD 20 MHz", "RPi", 52.36),
    ("5G FDD 20 MHz", "Laptop", 40.83),
    ("5G TDD 50 MHz", "RPi", 65.97),
    ("5G TDD 50 MHz", "Laptop", 58.31),
    ("5G TDD 50 MHz", "Smartphone", 14.40),
];

fn main() {
    let samples = iperf_samples();
    let base_seed = effective_seed(0xF164);
    let mut csv = String::from("config,device,n,mean_mbps,sd_mbps\n");
    let mut rows: Vec<IperfSummary> = Vec::new();

    let configs: Vec<(Rat, Duplex, Vec<f64>)> = vec![
        (Rat::Lte4g, Duplex::Fdd, sweeps::LTE_FDD.to_vec()),
        (Rat::Nr5g, Duplex::Fdd, sweeps::NR_FDD.to_vec()),
        (Rat::Nr5g, Duplex::tdd_default(), sweeps::NR_TDD.to_vec()),
    ];
    println!("Figure 4 — single-user uplink throughput ({samples} samples/point)");
    print_run_header(base_seed, &obs_from_env());
    println!();
    println!(
        "{:<16} {:<12} {:>16}",
        "config", "device", "mean ± sd (Mbps)"
    );
    for (rat, duplex, bws) in configs {
        for &bw in &bws {
            for device in DeviceClass::all() {
                let seed = base_seed ^ (bw as u64) << 8 ^ device as u64;
                let mut sc = ScenarioBuilder::new(rat, duplex.clone(), bw)
                    .seed(seed)
                    .ue(device)
                    .build()
                    .expect("paper sweep configs are valid");
                let run = sc.sim.iperf_uplink(sc.ues[0], samples);
                let summary = run.summary();
                println!(
                    "{:<16} {:<12} {:>16}",
                    summary.config,
                    summary.device,
                    cell(summary.mean_mbps, summary.sd_mbps)
                );
                csv.push_str(&summary.csv_row());
                csv.push('\n');
                rows.push(summary);
            }
        }
    }

    println!("\nPaper-vs-measured anchors:");
    println!(
        "{:<16} {:<12} {:>10} {:>10} {:>8}",
        "config", "device", "paper", "measured", "ratio"
    );
    for &(config, device, paper) in PAPER_ANCHORS {
        if let Some(row) = rows
            .iter()
            .find(|r| r.config == config && r.device == device)
        {
            println!(
                "{:<16} {:<12} {:>10.2} {:>10.2} {:>8.2}",
                config,
                device,
                paper,
                row.mean_mbps,
                row.mean_mbps / paper
            );
        }
    }
    let path = write_results("fig4_single_user.csv", &csv);
    println!("\nwrote {}", path.display());
}
