//! The `xg-perf-trajectory/1` document: summary statistics per metric,
//! a line-oriented JSON renderer, the matching parser, and the p99
//! regression gate. Shared by `perf_trajectory` (the cross-layer probe
//! suite) and `fleet_scaling` (the RAN fleet serial-vs-parallel sweep)
//! so both emit baselines the same CI gate can consume.

use std::path::Path;

/// The emitted document's schema tag; bump on any field change.
pub const SCHEMA: &str = "xg-perf-trajectory/1";

/// Summary statistics of one probe's samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Metric name (one token, no quotes).
    pub name: String,
    /// Unit label (ns/us/ms).
    pub unit: String,
    /// Sample count.
    pub n: usize,
    /// Median.
    pub p50: f64,
    /// 99th percentile (the gated statistic).
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest sample.
    pub max: f64,
}

/// Sort the samples and extract the summary quantiles.
pub fn summarize(name: &str, unit: &str, mut samples: Vec<f64>) -> Summary {
    assert!(!samples.is_empty(), "{name}: no samples");
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    let rank = |q: f64| samples[(q * (n - 1) as f64).floor() as usize];
    Summary {
        name: name.to_string(),
        unit: unit.to_string(),
        n,
        p50: rank(0.5),
        p99: rank(0.99),
        mean: samples.iter().sum::<f64>() / n as f64,
        max: samples[n - 1],
    }
}

/// Iteration count scaled by `XG_PERF_SCALE` (floor 8 keeps quantiles
/// meaningful on the smallest CI runs).
pub fn scaled(base: usize) -> usize {
    ((base as f64 * perf_scale()) as usize).max(8)
}

/// The `XG_PERF_SCALE` multiplier (1.0 when unset or invalid).
pub fn perf_scale() -> f64 {
    std::env::var("XG_PERF_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| s.is_finite() && *s > 0.0)
        .unwrap_or(1.0)
}

/// Render the document. One metric per line: greppable, diffable, and
/// parseable by [`parse_metrics`] without a JSON library.
///
/// The header records the xg-lint rule-set version active when the
/// baseline was produced: a rule-set change usually means determinism
/// fixes (e.g. `HashMap` → `BTreeMap`) landed, which can legitimately
/// shift p99s, so [`compare`] warns when the versions differ.
pub fn render(seed: u64, metrics: &[Summary]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!(
        "  \"lint_rules\": \"{}\",\n",
        xg_lint::RULES_VERSION
    ));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"scale\": {},\n", perf_scale()));
    s.push_str("  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\":\"{}\",\"unit\":\"{}\",\"n\":{},\"p50\":{:.3},\"p99\":{:.3},\"mean\":{:.3},\"max\":{:.3}}}{}\n",
            m.name,
            m.unit,
            m.n,
            m.p50,
            m.p99,
            m.mean,
            m.max,
            if i + 1 < metrics.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extract `(name, p99)` pairs from a document [`render`] produced.
///
/// Deliberately line-oriented rather than a JSON parser: the gate only
/// ever reads files this crate wrote, and a format drift should fail
/// loudly (no metrics parsed) rather than half-parse.
pub fn parse_metrics(doc: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in doc.lines() {
        let Some(name) = extract_str(line, "name") else {
            continue;
        };
        if let Some(p99) = extract_f64(line, "p99") {
            out.push((name, p99));
        }
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let rest = line.split(&format!("\"{key}\":\"")).nth(1)?;
    Some(rest.split('"').next()?.to_string())
}

fn extract_f64(line: &str, key: &str) -> Option<f64> {
    let rest = line.split(&format!("\"{key}\":")).nth(1)?;
    rest.trim_start()
        .split([',', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

/// The document's schema tag, if present.
pub fn schema_of(doc: &str) -> Option<String> {
    doc.lines()
        .find(|l| l.contains("\"schema\""))
        .and_then(|l| l.split('"').nth(3).map(str::to_string))
}

/// The xg-lint rule-set version the document was produced under, if
/// present. Baselines predating the `lint_rules` header return `None`.
pub fn lint_rules_of(doc: &str) -> Option<String> {
    doc.lines()
        .find(|l| l.contains("\"lint_rules\""))
        .and_then(|l| l.split('"').nth(3).map(str::to_string))
}

/// Atomic write for arbitrary paths (baselines live outside `results/`).
pub fn write_atomic(path: &Path, contents: &str) {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents).expect("baseline writable");
    std::fs::rename(&tmp, path).expect("baseline renamable");
}

/// Compare current metrics against a committed baseline, printing a
/// verdict table. Returns `false` when any metric's p99 regressed more
/// than `tolerance` over the baseline (or the baseline is unusable).
pub fn compare(baseline_path: &Path, current: &[Summary], tolerance: f64) -> bool {
    let doc = match std::fs::read_to_string(baseline_path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot read baseline {}: {e}", baseline_path.display());
            return false;
        }
    };
    match schema_of(&doc).as_deref() {
        Some(SCHEMA) => {}
        other => {
            eprintln!("baseline schema {other:?}, expected {SCHEMA:?}");
            return false;
        }
    }
    // A rule-set drift is a warning, not a failure: the baseline is
    // still comparable, but determinism fixes between versions (BTree
    // migrations, panic removals) can shift p99s for honest reasons.
    let base_rules = lint_rules_of(&doc);
    if base_rules.as_deref() != Some(xg_lint::RULES_VERSION) {
        eprintln!(
            "warning: baseline lint rule-set {} differs from current {:?}; \
             p99 shifts may stem from determinism fixes, not regressions",
            base_rules
                .map(|v| format!("{v:?}"))
                .unwrap_or_else(|| "(unrecorded)".to_string()),
            xg_lint::RULES_VERSION
        );
    }
    let baseline = parse_metrics(&doc);
    if baseline.is_empty() {
        eprintln!("baseline {} holds no metrics", baseline_path.display());
        return false;
    }
    println!(
        "\n{:<28} {:>12} {:>12} {:>8}  verdict (tolerance +{:.0}%)",
        "metric",
        "base p99",
        "now p99",
        "delta",
        tolerance * 100.0
    );
    let mut failed = false;
    for (name, base_p99) in &baseline {
        let Some(m) = current.iter().find(|m| m.name == *name) else {
            println!(
                "{name:<28} {base_p99:>12.3} {:>12} {:>8}  MISSING",
                "-", "-"
            );
            failed = true;
            continue;
        };
        let delta = m.p99 / base_p99 - 1.0;
        let regressed = delta > tolerance;
        failed |= regressed;
        println!(
            "{:<28} {:>12.3} {:>12.3} {:>7.1}%  {}",
            name,
            base_p99,
            m.p99,
            delta * 100.0,
            if regressed { "REGRESSED" } else { "ok" }
        );
    }
    for m in current {
        if !baseline.iter().any(|(n, _)| n == &m.name) {
            println!(
                "{:<28} {:>12} {:>12.3} {:>8}  new (no baseline)",
                m.name, "-", m.p99, "-"
            );
        }
    }
    if failed {
        eprintln!(
            "\nperf gate FAILED: p99 regression beyond {:.0}%",
            tolerance * 100.0
        );
    } else {
        println!("\nperf gate passed");
    }
    !failed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Summary {
        Summary {
            name: "histogram_record_ns".into(),
            unit: "ns".into(),
            n: 100,
            p50: 10.0,
            p99: 42.5,
            mean: 12.0,
            max: 80.0,
        }
    }

    #[test]
    fn render_roundtrips_through_parser() {
        let doc = render(7, &[sample()]);
        assert_eq!(schema_of(&doc).as_deref(), Some(SCHEMA));
        let parsed = parse_metrics(&doc);
        assert_eq!(parsed, vec![("histogram_record_ns".to_string(), 42.5)]);
    }

    #[test]
    fn summarize_orders_quantiles() {
        let s = summarize("cfd_sweep_ms", "ms", (1..=100).map(f64::from).collect());
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn render_stamps_the_lint_rule_set_version() {
        let doc = render(7, &[sample()]);
        assert_eq!(lint_rules_of(&doc).as_deref(), Some(xg_lint::RULES_VERSION));
        // Baselines predating the header parse as unrecorded.
        let legacy: String = doc
            .lines()
            .filter(|l| !l.contains("\"lint_rules\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(lint_rules_of(&legacy), None);
    }

    #[test]
    fn rule_set_drift_warns_but_does_not_fail_the_gate() {
        let doc = render(7, &[sample()]);
        let legacy: String = doc
            .lines()
            .filter(|l| !l.contains("\"lint_rules\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let path = std::env::temp_dir().join(format!("xg-traj-drift-{}.json", std::process::id()));
        write_atomic(&path, &legacy);
        let ok = compare(&path, &[sample()], 0.10);
        let _ = std::fs::remove_file(&path);
        assert!(ok, "version drift must warn, not fail");
    }

    #[test]
    fn dynamic_metric_names_survive_the_roundtrip() {
        let m = summarize("fleet16_parallel_ms", "ms", vec![3.0, 4.0, 5.0]);
        let parsed = parse_metrics(&render(1, &[m]));
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "fleet16_parallel_ms");
    }
}
