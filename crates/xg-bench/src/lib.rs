//! Shared helpers for the figure-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §3 for the index) and writes its data to the
//! `results/` directory at the workspace root, printing a paper-vs-measured
//! comparison to stdout.

use std::path::PathBuf;

pub mod scenario;
pub mod trace;
pub mod traj;

/// Directory where figure data lands (`results/` under the workspace).
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    std::fs::create_dir_all(&dir).expect("results directory must be creatable");
    dir
}

/// Locate the workspace root by walking up from the current directory to
/// the first `Cargo.toml` containing `[workspace]`.
pub fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd readable");
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return std::env::current_dir().expect("cwd readable");
        }
    }
}

/// Write a results file, returning its path.
///
/// The write is atomic (temp file + rename in the same directory): a
/// crash mid-write can never leave a truncated file at the final name,
/// and readers only ever see the previous run or the complete new one.
pub fn write_results(name: &str, contents: &str) -> PathBuf {
    write_results_bytes(name, contents.as_bytes())
}

/// Write binary results (e.g. PGM images), atomically like
/// [`write_results`].
pub fn write_results_bytes(name: &str, contents: &[u8]) -> PathBuf {
    let dir = results_dir();
    let path = dir.join(name);
    let tmp = dir.join(format!(".{name}.tmp"));
    std::fs::write(&tmp, contents).expect("results file writable");
    std::fs::rename(&tmp, &path).expect("results file renamable");
    path
}

/// Delete any stale copies of a binary's outputs before it starts
/// computing. A run that dies between its first and last `write_results`
/// call would otherwise leave the untouched files from an *earlier* run
/// sitting next to the fresh ones, silently mixing two configurations in
/// one `results/` directory.
pub fn claim_results(names: &[&str]) {
    let dir = results_dir();
    for name in names {
        std::fs::remove_file(dir.join(name)).ok();
    }
}

/// The observability handle a figure binary runs under: disabled by
/// default, enabled with `XG_OBS=1` (or `true`/`on`/`yes`).
pub fn obs_from_env() -> xg_obs::Obs {
    xg_obs::Obs::from_env()
}

/// Print the standard reproducibility header every binary emits before
/// its results: the effective RNG seed and whether observability is on.
pub fn print_run_header(seed: u64, obs: &xg_obs::Obs) {
    println!("seed = {seed}");
    println!("obs = {}", obs.status());
}

/// Samples per iperf configuration. The paper collects 100; override with
/// `XG_SAMPLES` for quick runs.
pub fn iperf_samples() -> usize {
    std::env::var("XG_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
}

/// The RNG seed every binary runs under: `XG_SEED` when set and parseable,
/// otherwise the binary's historical default. Each binary prints the
/// effective seed in its results header so a captured run is reproducible.
pub fn effective_seed(default: u64) -> u64 {
    std::env::var("XG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Escape one CSV field per RFC 4180: fields containing a comma, quote,
/// or line break are quoted, with embedded quotes doubled.
pub fn csv_escape(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Minimal CSV builder shared by the binaries that emit CSV
/// (`reliability_study`, `latency_budget`). Every field goes through
/// [`csv_escape`], so scenario labels with commas stay one column.
#[derive(Debug, Default)]
pub struct CsvWriter {
    out: String,
}

impl CsvWriter {
    /// An empty document.
    pub fn new() -> Self {
        CsvWriter::default()
    }

    /// Append one row.
    pub fn row<I>(&mut self, fields: I)
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut first = true;
        for f in fields {
            if !first {
                self.out.push(',');
            }
            first = false;
            self.out.push_str(&csv_escape(f.as_ref()));
        }
        self.out.push('\n');
    }

    /// The document so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consume into the final document.
    pub fn into_string(self) -> String {
        self.out
    }
}

/// The paper's bandwidth sweeps (MHz).
pub mod sweeps {
    /// 4G FDD bandwidths (Fig. 4/5).
    pub const LTE_FDD: [f64; 4] = [5.0, 10.0, 15.0, 20.0];
    /// 5G FDD bandwidths.
    pub const NR_FDD: [f64; 4] = [5.0, 10.0, 15.0, 20.0];
    /// 5G TDD bandwidths.
    pub const NR_TDD: [f64; 6] = [10.0, 15.0, 20.0, 30.0, 40.0, 50.0];
}

/// Format a mean ± sd cell.
pub fn cell(mean: f64, sd: f64) -> String {
    format!("{mean:7.2} ±{sd:5.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_found() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").exists());
    }

    #[test]
    fn results_roundtrip() {
        let p = write_results("selftest.txt", "hello");
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "hello");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn writes_are_atomic_and_claimable() {
        let p = write_results("selftest_atomic.txt", "v1");
        let tmp = p.parent().unwrap().join(".selftest_atomic.txt.tmp");
        assert!(!tmp.exists(), "temp file must not outlive the rename");
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "v1");
        claim_results(&["selftest_atomic.txt"]);
        assert!(!p.exists(), "claiming deletes the stale output");
        // Claiming a file that never existed is not an error.
        claim_results(&["selftest_never_written.txt"]);
    }

    #[test]
    fn sample_env_default() {
        // Without the env var the paper default applies.
        if std::env::var("XG_SAMPLES").is_err() {
            assert_eq!(iperf_samples(), 100);
        }
    }

    #[test]
    fn seed_env_default() {
        if std::env::var("XG_SEED").is_err() {
            assert_eq!(effective_seed(71), 71);
        }
    }

    #[test]
    fn csv_escaping_quotes_only_when_needed() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn csv_writer_builds_rows() {
        let mut w = CsvWriter::new();
        w.row(["stage", "mean_s"]);
        w.row(["cfd, solve".to_string(), format!("{:.2}", 420.39)]);
        assert_eq!(w.as_str(), "stage,mean_s\n\"cfd, solve\",420.39\n");
        assert_eq!(w.into_string().lines().count(), 2);
    }
}
