//! Shared bench scenario construction.
//!
//! Every figure bin used to repeat the same ritual: build a
//! [`CellConfig`], maybe bolt on slices, construct a simulator, attach
//! UEs with the paper-default modem for the RAT, wire observability.
//! [`ScenarioBuilder`] centralizes that setup on top of
//! [`LinkSimulator::builder`], so a bin describes *what* it measures
//! (cell shape + UE roster) and nothing else — and every bin surfaces
//! invalid configurations the same way, as a [`NetError`] at `build()`.

use xg_net::device::UnitVariation;
use xg_net::prelude::*;
use xg_obs::Obs;

/// One UE to attach at build time.
#[derive(Debug, Clone)]
struct UeSpec {
    device: DeviceClass,
    modem: Modem,
    snssai: Option<Snssai>,
    variation: UnitVariation,
}

/// Declarative setup for one bench measurement: cell shape, then UE
/// roster, then `build()`.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    cell: CellConfig,
    seed: u64,
    obs: Obs,
    ues: Vec<UeSpec>,
}

/// A built scenario: the simulator plus the attached UE handles in
/// roster order.
pub struct Scenario {
    /// The configured link simulator.
    pub sim: LinkSimulator,
    /// Handles of the roster's UEs, in [`ScenarioBuilder::ue`] order.
    pub ues: Vec<UeHandle>,
}

impl ScenarioBuilder {
    /// A cell of the given shape with no UEs yet.
    pub fn new(rat: Rat, duplex: Duplex, bandwidth_mhz: f64) -> Self {
        ScenarioBuilder {
            cell: CellConfig::new(rat, duplex, MHz(bandwidth_mhz)),
            seed: 0,
            obs: Obs::disabled(),
            ues: Vec::new(),
        }
    }

    /// Replace the cell's slice layout.
    pub fn slices(mut self, slices: SliceConfig) -> Self {
        self.cell = self.cell.with_slices(slices);
        self
    }

    /// Replace the cell's MAC scheduler.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.cell = self.cell.with_scheduler(kind);
        self
    }

    /// RNG seed for the simulator.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Observability handle propagated to the simulator.
    pub fn obs(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self
    }

    /// Attach a UE with the paper-default modem for this cell's RAT, on
    /// the default slice, with no unit variation.
    pub fn ue(self, device: DeviceClass) -> Self {
        let modem = Modem::paper_default(device, self.cell.rat);
        self.ue_full(device, modem, None, UnitVariation::default())
    }

    /// Attach a UE on a specific slice with explicit unit variation
    /// (the Fig. 6 two-RPi setup), keeping the paper-default modem.
    pub fn ue_on_slice(
        self,
        device: DeviceClass,
        snssai: Snssai,
        variation: UnitVariation,
    ) -> Self {
        let modem = Modem::paper_default(device, self.cell.rat);
        self.ue_full(device, modem, Some(snssai), variation)
    }

    /// Attach a UE with everything explicit.
    pub fn ue_full(
        mut self,
        device: DeviceClass,
        modem: Modem,
        snssai: Option<Snssai>,
        variation: UnitVariation,
    ) -> Self {
        self.ues.push(UeSpec {
            device,
            modem,
            snssai,
            variation,
        });
        self
    }

    /// Build the simulator and attach the roster.
    pub fn build(self) -> Result<Scenario, NetError> {
        let mut sim = LinkSimulator::builder(self.cell)
            .seed(self.seed)
            .obs(&self.obs)
            .build()?;
        let mut ues = Vec::with_capacity(self.ues.len());
        for spec in self.ues {
            let ue = match spec.snssai {
                Some(snssai) => sim.attach_with(spec.device, spec.modem, snssai, spec.variation)?,
                None => sim.attach(spec.device, spec.modem)?,
            };
            ues.push(ue);
        }
        Ok(Scenario { sim, ues })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_user_scenario_measures() {
        let mut sc = ScenarioBuilder::new(Rat::Nr5g, Duplex::Fdd, 20.0)
            .seed(42)
            .ue(DeviceClass::RaspberryPi)
            .build()
            .unwrap();
        assert_eq!(sc.ues.len(), 1);
        let mbps = sc.sim.iperf_uplink(sc.ues[0], 5).mean_mbps();
        assert!(mbps > 20.0, "{mbps}");
    }

    #[test]
    fn sliced_two_user_scenario_builds() {
        let sc = ScenarioBuilder::new(Rat::Nr5g, Duplex::tdd_default(), 40.0)
            .slices(SliceConfig::complementary_pair(0.3).unwrap())
            .seed(7)
            .ue_on_slice(
                DeviceClass::RaspberryPi,
                Snssai::miot(1),
                UnitVariation::rpi_unit_a(),
            )
            .ue_on_slice(
                DeviceClass::RaspberryPi,
                Snssai::miot(2),
                UnitVariation::default(),
            )
            .build()
            .unwrap();
        assert_eq!(sc.ues.len(), 2);
    }

    #[test]
    fn invalid_bandwidth_surfaces_as_error() {
        let res = ScenarioBuilder::new(Rat::Nr5g, Duplex::Fdd, 7.0)
            .ue(DeviceClass::Laptop)
            .build();
        assert!(matches!(res, Err(NetError::InvalidBandwidth(_))));
    }
}
