//! Criterion benches for the Laminar runtime: deployment, injection with
//! cascade firing, and crash-recovery replay.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;
use xg_cspot::CspotNode;
use xg_laminar::prelude::*;

/// A 3-stage pipeline graph: (a, b) -> sum -> scaled -> negated.
fn pipeline_graph() -> Graph {
    let mut g = GraphBuilder::new("bench");
    let a = g.source("a", TypeTag::F64).unwrap();
    let b = g.source("b", TypeTag::F64).unwrap();
    let sum = g
        .op(
            "sum",
            vec![TypeTag::F64, TypeTag::F64],
            TypeTag::F64,
            ops::add2(),
        )
        .unwrap();
    let scaled = g
        .op("scaled", vec![TypeTag::F64], TypeTag::F64, ops::scale(2.0))
        .unwrap();
    let neg = g
        .op("neg", vec![TypeTag::F64], TypeTag::F64, ops::neg())
        .unwrap();
    g.connect(a, sum, 0);
    g.connect(b, sum, 1);
    g.connect(sum, scaled, 0);
    g.connect(scaled, neg, 0);
    g.build().unwrap()
}

fn laminar(c: &mut Criterion) {
    let mut group = c.benchmark_group("laminar");
    group.sample_size(30);

    group.bench_function("deploy_5_node_graph", |b| {
        b.iter_batched(
            || Arc::new(CspotNode::in_memory("X")),
            |node| LaminarRuntime::deploy(pipeline_graph(), node).unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("inject_with_3_stage_cascade", |b| {
        b.iter_batched(
            || {
                (
                    LaminarRuntime::deploy(pipeline_graph(), Arc::new(CspotNode::in_memory("X")))
                        .unwrap(),
                    0u64,
                )
            },
            |(rt, _)| {
                for e in 1..=16u64 {
                    rt.inject("a", e, Value::F64(e as f64)).unwrap();
                    rt.inject("b", e, Value::F64(1.0)).unwrap();
                }
                rt
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("recover_16_epochs", |b| {
        b.iter_batched(
            || {
                // Inputs written without handlers: everything replays in
                // recover().
                let node = Arc::new(CspotNode::in_memory("X"));
                let g = pipeline_graph();
                let cfg = DeployConfig::default();
                for id in g.topo_order() {
                    node.open_log(&g.log_name(*id), cfg.element_size, cfg.history)
                        .unwrap();
                }
                let a = g.node_id("a").unwrap();
                let bsrc = g.node_id("b").unwrap();
                for e in 1..=16u64 {
                    let mut entry = vec![0u8; cfg.element_size];
                    entry[..8].copy_from_slice(&e.to_le_bytes());
                    let enc = Value::F64(e as f64).encode();
                    entry[8..8 + enc.len()].copy_from_slice(&enc);
                    node.put(&g.log_name(a), &entry).unwrap();
                    node.put(&g.log_name(bsrc), &entry).unwrap();
                }
                LaminarRuntime::deploy(pipeline_graph(), node).unwrap()
            },
            |rt| rt.recover().unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("change_graph_evaluate", |b| {
        let rt = LaminarRuntime::deploy(
            build_change_graph("bench_change", ChangeDetector::default()).unwrap(),
            Arc::new(CspotNode::in_memory("X")),
        )
        .unwrap();
        let prev = Value::F64Vec(vec![3.0, 3.1, 2.9, 3.05, 2.95, 3.0]);
        let recent = Value::F64Vec(vec![7.0, 7.1, 6.9, 7.05, 6.95, 7.0]);
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            rt.inject("prev_window", epoch, prev.clone()).unwrap();
            rt.inject("recent_window", epoch, recent.clone()).unwrap();
            rt.read("detect", epoch).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, laminar);
criterion_main!(benches);
