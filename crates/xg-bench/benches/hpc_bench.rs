//! Criterion benches for the HPC substrate: discrete-event cluster
//! advancement under load, pilot-controller stepping, and multi-site
//! routing decisions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use xg_hpc::cluster::{ClusterSim, JobRequest};
use xg_hpc::multisite::MultiSiteController;
use xg_hpc::pilot::{PilotController, PilotControllerConfig, PilotStrategy};
use xg_hpc::site::SiteProfile;

fn cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpc_cluster");
    group.sample_size(20);

    group.bench_function("advance_1h_busy_32node", |b| {
        b.iter_batched(
            || ClusterSim::new(32).with_background_load(300.0, 5400.0, 8, 7),
            |mut cluster| {
                cluster.advance_to(3600.0);
                cluster
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("submit_and_schedule_100_jobs", |b| {
        b.iter_batched(
            || ClusterSim::new(64),
            |mut cluster| {
                for i in 0..100u32 {
                    cluster.submit(JobRequest {
                        nodes: 1 + i % 8,
                        walltime_s: 1800.0,
                        runtime_s: 1200.0,
                    });
                }
                cluster.advance_to(48.0 * 3600.0);
                cluster
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn pilot(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpc_pilot");
    group.sample_size(20);

    group.bench_function("controller_8h_with_hourly_triggers", |b| {
        b.iter_batched(
            || {
                let mut cfg = PilotControllerConfig::paper_default(32);
                cfg.strategy = PilotStrategy::Adaptive { warm_nodes: 2 };
                PilotController::new(
                    ClusterSim::new(32).with_background_load(900.0, 5400.0, 8, 3),
                    cfg,
                )
            },
            |mut ctl| {
                for hour in 1..=8 {
                    ctl.advance_to(hour as f64 * 3600.0);
                    ctl.on_data(2048.0);
                    ctl.submit_task(1, 420.0);
                }
                ctl
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("multisite_routing_12_tasks", |b| {
        b.iter_batched(
            || {
                MultiSiteController::new(
                    vec![
                        (SiteProfile::notre_dame_crc(), true),
                        (SiteProfile::anvil(), false),
                        (SiteProfile::stampede3(), true),
                    ],
                    5,
                )
            },
            |mut ctl| {
                ctl.advance_to(1800.0);
                for hour in 1..=6 {
                    ctl.advance_to(1800.0 + hour as f64 * 3600.0);
                    ctl.submit_task(1, 420.0).unwrap();
                    ctl.submit_task(1, 420.0).unwrap();
                }
                ctl.completed_total()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, cluster, pilot);
criterion_main!(benches);
