//! Criterion benches for the CFD solver: mesh generation (the serial
//! phase of Fig. 7), the pressure Poisson solve, one full projection step,
//! and thread-count scaling of a step (the real-solver half of Fig. 7's
//! strong-scaling story, bounded by the host's cores).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use xg_cfd::boundary::BoundarySpec;
use xg_cfd::field::Field3;
use xg_cfd::poisson;
use xg_cfd::prelude::*;

fn mesh_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cfd_mesh");
    group.sample_size(20);
    for (name, cells) in [
        ("coarse_24x20x6", [24usize, 20, 6]),
        ("fine_48x40x10", [48, 40, 10]),
    ] {
        group.bench_function(name, |b| {
            let spec = DomainSpec::cups_default().with_cells(cells[0], cells[1], cells[2]);
            b.iter(|| Mesh::generate(&spec))
        });
    }
    group.finish();
}

fn poisson_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("cfd_poisson");
    group.sample_size(15);
    group.bench_function("jacobi_120it_36x30x8", |b| {
        let mut rhs = Field3::zeros(36, 30, 8);
        for (i, v) in rhs.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as f64) * 0.37).sin();
        }
        let mean = rhs.mean();
        rhs.as_mut_slice().iter_mut().for_each(|x| *x -= mean);
        b.iter_batched(
            || Field3::zeros(36, 30, 8),
            |mut p| poisson::solve(&mut p, &rhs, [2.5, 2.5, 1.0], 120, 0.0),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn solver_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("cfd_step");
    group.sample_size(15);
    group.bench_function("step_36x30x8", |b| {
        let mesh = Mesh::generate(&DomainSpec::cups_default().with_cells(36, 30, 8));
        let mut sim = Simulation::new(
            mesh,
            BoundarySpec::intact(5.0, 270.0, 22.0),
            SolverConfig::default(),
        );
        sim.run(10); // warm flow
        b.iter(|| sim.step())
    });

    // Thread scaling of the step (meaningful only on multi-core hosts, but
    // harmless everywhere).
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut threads = 1usize;
    while threads <= host {
        group.bench_function(format!("step_36x30x8_threads{threads}"), |b| {
            let t = threads;
            b.iter_batched(
                || {
                    let mesh = Mesh::generate(&DomainSpec::cups_default().with_cells(36, 30, 8));
                    let mut sim = Simulation::new(
                        mesh,
                        BoundarySpec::intact(5.0, 270.0, 22.0),
                        SolverConfig::default(),
                    );
                    sim.run(5);
                    sim
                },
                |mut sim| run_with_threads(t, move || sim.step()),
                BatchSize::SmallInput,
            )
        });
        threads *= 2;
    }
    group.finish();
}

criterion_group!(benches, mesh_generation, poisson_solve, solver_step);
criterion_main!(benches);
