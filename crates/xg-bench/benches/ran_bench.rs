//! Criterion benches for the RAN simulator: the cost of simulating one
//! second of uplink under different cell configurations, and the MAC
//! scheduler disciplines in isolation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use xg_net::mac::{MacScheduler, SchedulerKind, UlRequest};
use xg_net::prelude::*;

fn sim_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("ran_sim_second");
    group.sample_size(20);

    group.bench_function("5g_fdd20_1ue", |b| {
        b.iter_batched(
            || {
                let mut sim =
                    LinkSimulator::try_new(CellConfig::new(Rat::Nr5g, Duplex::Fdd, MHz(20.0)), 1)
                        .unwrap();
                sim.attach(DeviceClass::RaspberryPi, Modem::Rm530nGl)
                    .unwrap();
                sim
            },
            |mut sim| sim.measure_second(),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("5g_tdd40_2ue_sliced", |b| {
        b.iter_batched(
            || {
                let cell = CellConfig::new(Rat::Nr5g, Duplex::tdd_default(), MHz(40.0))
                    .with_slices(SliceConfig::complementary_pair(0.5).unwrap());
                let mut sim = LinkSimulator::try_new(cell, 2).unwrap();
                for sd in [1, 2] {
                    sim.attach_with(
                        DeviceClass::RaspberryPi,
                        Modem::Rm530nGl,
                        Snssai::miot(sd),
                        Default::default(),
                    )
                    .unwrap();
                }
                sim
            },
            |mut sim| sim.measure_second(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("mac_scheduler");
    let requests: Vec<UlRequest> = (0..16)
        .map(|ue| UlRequest {
            ue,
            inst_eff: 2.0 + (ue as f64) * 0.1,
            weight: 1.0,
        })
        .collect();
    for kind in [SchedulerKind::RoundRobin, SchedulerKind::ProportionalFair] {
        group.bench_function(format!("{kind:?}_16ue_106prb"), |b| {
            let mut sched = MacScheduler::new(kind);
            b.iter(|| {
                let grants = sched.allocate(106, &requests);
                for &(ue, prbs) in &grants {
                    sched.observe(ue, prbs as f64 * 400.0);
                }
                grants
            })
        });
    }
    group.finish();
}

criterion_group!(benches, sim_second, scheduler);
criterion_main!(benches);
