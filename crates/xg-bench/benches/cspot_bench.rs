//! Criterion benches for the CSPOT runtime: local append cost (the atomic
//! sequence-number path), dedup lookup overhead, handler dispatch, and the
//! two-phase vs size-cached remote protocol (the §4.2 ablation, measured
//! here as implementation cost; the latency ablation is in
//! `table1_cspot_latency`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;
use xg_cspot::prelude::*;

fn local_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("cspot_local");
    group.sample_size(30);
    let payload = vec![7u8; 1024];

    group.bench_function("append_1kb", |b| {
        let node = CspotNode::in_memory("UCSB");
        node.create_log("l", 1024, 1_000_000).unwrap();
        b.iter(|| node.put("l", &payload).unwrap())
    });

    group.bench_function("append_1kb_with_token", |b| {
        let node = CspotNode::in_memory("UCSB");
        node.create_log("l", 1024, 1_000_000).unwrap();
        let mut token = 0u128;
        b.iter(|| {
            token += 1;
            node.put_with_token("l", token, &payload).unwrap()
        })
    });

    group.bench_function("append_1kb_with_handler", |b| {
        let node = CspotNode::in_memory("UCSB");
        node.create_log("l", 1024, 1_000_000).unwrap();
        node.register_handler("l", Arc::new(|_, _, _, _| {}));
        b.iter(|| node.put("l", &payload).unwrap())
    });

    group.bench_function("get_random", |b| {
        let node = CspotNode::in_memory("UCSB");
        node.create_log("l", 1024, 100_000).unwrap();
        for _ in 0..10_000 {
            node.put("l", &payload).unwrap();
        }
        let mut seq = 0u64;
        b.iter(|| {
            seq = seq % 10_000 + 1;
            node.get("l", seq).unwrap()
        })
    });
    group.finish();
}

fn remote_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("cspot_remote");
    group.sample_size(20);
    let payload = vec![7u8; 1024];
    let topo = Topology::paper();
    for (name, cache) in [("two_phase", false), ("size_cached", true)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let server = CspotNode::in_memory("UCSB");
                    server.create_log("l", 1024, 100_000).unwrap();
                    let cfg = RemoteConfig {
                        use_size_cache: cache,
                        ..Default::default()
                    };
                    let appender = RemoteAppender::new(
                        SimClock::new(),
                        topo.route("UNL", "UCSB").unwrap().clone(),
                        cfg,
                        1,
                    );
                    (server, appender)
                },
                |(server, mut appender)| {
                    for _ in 0..32 {
                        appender.append(&server, "l", &payload).unwrap();
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, local_append, remote_append);
criterion_main!(benches);
