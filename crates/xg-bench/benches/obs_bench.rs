//! Criterion bench for observability overhead: the full closed loop with
//! metrics + tracing enabled must stay within 5% of the uninstrumented
//! runtime (the disabled handle reduces every call-site to an `Option`
//! branch).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use xg_fabric::orchestrator::{FabricConfig, XgFabric};
use xg_hpc::site::SiteProfile;
use xg_obs::Obs;

fn config(obs: Obs) -> FabricConfig {
    FabricConfig {
        seed: 71,
        cfd_cells: [12, 10, 4],
        cfd_steps: 10,
        failover_sites: vec![SiteProfile::anvil()],
        obs,
        ..Default::default()
    }
}

/// Two hours of reports around a forced front: telemetry, detection, a
/// triggered CFD, and the results return all execute.
fn run_loop(mut fab: XgFabric) -> XgFabric {
    fab.force_front();
    fab.run_cycles(48).expect("healthy run");
    fab
}

fn obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);

    group.bench_function("closed_loop_disabled", |b| {
        b.iter_batched(
            || XgFabric::new(config(Obs::disabled())),
            run_loop,
            BatchSize::SmallInput,
        )
    });

    group.bench_function("closed_loop_enabled", |b| {
        b.iter_batched(
            || XgFabric::new(config(Obs::enabled())),
            run_loop,
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
