//! Criterion benches for the statistical change-detection battery: the
//! paper's Laminar program runs these every 30 minutes, so their cost is
//! irrelevant end-to-end — these benches document that (nanoseconds vs a
//! 1800 s duty cycle) and track regressions in the numerics.

use criterion::{criterion_group, criterion_main, Criterion};
use xg_laminar::stats::{ks_test, mann_whitney_u, vote_change, welch_t_test};

fn battery(c: &mut Criterion) {
    let mut group = c.benchmark_group("change_detection");
    let prev = [3.0, 3.2, 2.9, 3.1, 3.05, 2.95];
    let recent = [4.0, 4.2, 3.9, 4.1, 4.05, 3.95];

    group.bench_function("welch_t_6v6", |b| {
        b.iter(|| welch_t_test(&prev, &recent).unwrap())
    });
    group.bench_function("mann_whitney_6v6", |b| {
        b.iter(|| mann_whitney_u(&prev, &recent).unwrap())
    });
    group.bench_function("ks_6v6", |b| b.iter(|| ks_test(&prev, &recent).unwrap()));
    group.bench_function("vote_battery_6v6", |b| {
        b.iter(|| vote_change(&prev, &recent, 0.05, 2))
    });

    // Larger windows (an hour of 1-minute telemetry) stay trivially cheap.
    let big_prev: Vec<f64> = (0..60)
        .map(|i| 3.0 + (i as f64 * 0.7).sin() * 0.3)
        .collect();
    let big_recent: Vec<f64> = (0..60)
        .map(|i| 3.4 + (i as f64 * 0.9).cos() * 0.3)
        .collect();
    group.bench_function("vote_battery_60v60", |b| {
        b.iter(|| vote_change(&big_prev, &big_recent, 0.05, 2))
    });
    group.finish();
}

criterion_group!(benches, battery);
criterion_main!(benches);
