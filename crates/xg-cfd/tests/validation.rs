//! Physical validation of the CFD solver beyond unit level: conservation,
//! direction, qualitative references, and resolution consistency.

use xg_cfd::boundary::BoundarySpec;
use xg_cfd::mesh::{DomainSpec, Mesh};
use xg_cfd::solver::{Simulation, SolverConfig};

fn open_box(cells: [usize; 3]) -> Mesh {
    Mesh::generate(&DomainSpec {
        size_m: [60.0, 50.0, 10.0],
        cells,
        canopy: vec![],
    })
}

#[test]
fn mass_balance_inflow_vs_outflow() {
    // Steady west wind through an empty porous box: the inflow through the
    // west boundary must roughly match the outflow through the east
    // boundary once the flow develops (projection enforces interior
    // continuity; boundaries follow).
    let mesh = open_box([20, 16, 8]);
    let bc = BoundarySpec::intact(5.0, 270.0, 20.0);
    let mut sim = Simulation::new(mesh, bc, SolverConfig::default());
    sim.run(150);
    let (nx, ny, nz) = (sim.u.nx, sim.u.ny, sim.u.nz);
    let mut inflow = 0.0;
    let mut outflow = 0.0;
    for k in 1..nz - 1 {
        for j in 1..ny - 1 {
            inflow += sim.u.at(0, j, k);
            outflow += sim.u.at(nx - 1, j, k);
        }
    }
    assert!(inflow > 0.0, "west face must admit flow");
    let imbalance = (inflow - outflow).abs() / inflow.max(1e-9);
    assert!(
        imbalance < 0.35,
        "in {inflow:.2} vs out {outflow:.2} (imbalance {imbalance:.2})"
    );
}

#[test]
fn flow_direction_follows_wind_for_all_cardinal_winds() {
    for (dir, expect_u, expect_v) in [
        (270.0, 1.0, 0.0), // from west -> +x
        (90.0, -1.0, 0.0), // from east -> -x
        (180.0, 0.0, 1.0), // from south -> +y
        (0.0, 0.0, -1.0),  // from north -> -y
    ] {
        let mesh = open_box([16, 16, 6]);
        let bc = BoundarySpec::intact(5.0, dir, 20.0);
        let mut sim = Simulation::new(mesh, bc, SolverConfig::default());
        sim.run(80);
        let (i, j, k) = (sim.u.nx / 2, sim.u.ny / 2, sim.u.nz - 2);
        let (u, v) = (sim.u.at(i, j, k), sim.v.at(i, j, k));
        if expect_u != 0.0 {
            assert!(
                u * expect_u > 0.0,
                "dir {dir}: u {u} should have sign {expect_u}"
            );
        }
        if expect_v != 0.0 {
            assert!(
                v * expect_v > 0.0,
                "dir {dir}: v {v} should have sign {expect_v}"
            );
        }
    }
}

#[test]
fn canopy_slows_flow_relative_to_open_box() {
    let spec_open = DomainSpec {
        size_m: [60.0, 50.0, 10.0],
        cells: [20, 16, 8],
        canopy: vec![],
    };
    let mut spec_trees = spec_open.clone();
    spec_trees.canopy = vec![xg_cfd::mesh::CanopyBlock {
        min: [15.0, 5.0, 0.0],
        max: [45.0, 45.0, 5.0],
    }];
    let bc = BoundarySpec::intact(5.0, 270.0, 20.0);
    let mut open = Simulation::new(
        Mesh::generate(&spec_open),
        bc.clone(),
        SolverConfig::default(),
    );
    let mut trees = Simulation::new(Mesh::generate(&spec_trees), bc, SolverConfig::default());
    open.run(100);
    trees.run(100);
    assert!(
        trees.mean_interior_wind() < open.mean_interior_wind(),
        "canopy drag must slow the flow: {} vs {}",
        trees.mean_interior_wind(),
        open.mean_interior_wind()
    );
}

#[test]
fn resolution_consistency_of_interior_wind() {
    // The mean interior wind should be grid-converged to within ~30%
    // between a coarse and a refined mesh (first-order upwind converges
    // slowly, but the bulk statistic must be stable).
    let bc = BoundarySpec::intact(5.0, 270.0, 20.0);
    let mut coarse = Simulation::new(open_box([14, 12, 6]), bc.clone(), SolverConfig::default());
    let mut fine = Simulation::new(open_box([28, 24, 10]), bc, SolverConfig::default());
    coarse.run(120);
    fine.run(240); // same physical time at half the cell size => CFL-safe
    let (a, b) = (coarse.mean_interior_wind(), fine.mean_interior_wind());
    let rel = (a - b).abs() / b.max(1e-9);
    assert!(rel < 0.35, "coarse {a:.3} vs fine {b:.3} (rel {rel:.2})");
}

#[test]
fn energy_bounded_over_long_run() {
    // No spurious energy injection: kinetic energy must stay bounded by
    // the inflow scale over a long integration.
    let mesh = open_box([16, 14, 6]);
    let bc = BoundarySpec::intact(6.0, 270.0, 22.0);
    let mut sim = Simulation::new(mesh, bc, SolverConfig::default());
    let mut max_ke = 0.0f64;
    for _ in 0..20 {
        sim.run(25);
        let ke: f64 = sim
            .u
            .as_slice()
            .iter()
            .zip(sim.v.as_slice())
            .zip(sim.w.as_slice())
            .map(|((u, v), w)| u * u + v * v + w * w)
            .sum();
        max_ke = max_ke.max(ke);
        assert!(ke.is_finite());
    }
    let cells = sim.u.len() as f64;
    // Mean speed bound: free stream 6 m/s (cell-mean KE << 6²).
    assert!(
        max_ke / cells < 36.0,
        "cell-mean KE {} exceeds the inflow scale",
        max_ke / cells
    );
}

#[test]
fn stronger_breach_stronger_signal() {
    // Twin residual grows monotonically with breach size.
    let spec = DomainSpec::cups_default().with_cells(20, 16, 6);
    let base_bc = BoundarySpec::intact(6.0, 270.0, 22.0);
    let mut intact = Simulation::new(
        Mesh::generate(&spec),
        base_bc.clone(),
        SolverConfig::default(),
    );
    intact.run(60);
    let reference = intact.mean_interior_wind();
    let mut last = reference;
    for porosity in [0.4, 0.7, 1.0] {
        let mut bc = base_bc.clone();
        bc.west.set_panel(6, porosity);
        let mut sim = Simulation::new(Mesh::generate(&spec), bc, SolverConfig::default());
        sim.run(60);
        let wind = sim.mean_interior_wind();
        assert!(
            wind >= last * 0.98,
            "interior wind should grow with breach size: {wind} after {last}"
        );
        last = wind;
    }
    assert!(last > reference * 1.02, "largest breach clearly visible");
}
