//! Pressure Poisson solver.
//!
//! Solves `∇²p = rhs` with homogeneous Neumann boundaries (and the
//! compatibility gauge fixed by subtracting the mean) using damped Jacobi
//! iteration. Jacobi is chosen over Gauss–Seidel deliberately: with double
//! buffering every sweep reads only the previous iterate, so the result is
//! **bitwise identical for any thread count** — the determinism property
//! the solver tests rely on.

use crate::field::Field3;
use rayon::prelude::*;

/// Result of a Poisson solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Final max-abs residual.
    pub residual: f64,
}

/// Solve `∇²p = rhs` in place (p is the initial guess and the result).
///
/// `d` are the cell sizes; iterates until `max_iters` or the max-abs
/// update falls below `tol`.
pub fn solve(
    p: &mut Field3,
    rhs: &Field3,
    d: [f64; 3],
    max_iters: usize,
    tol: f64,
) -> PoissonStats {
    let (nx, ny, nz) = (p.nx, p.ny, p.nz);
    let slab = nx * ny;
    let (idx2, idy2, idz2) = (
        1.0 / (d[0] * d[0]),
        1.0 / (d[1] * d[1]),
        1.0 / (d[2] * d[2]),
    );
    let denom = 2.0 * (idx2 + idy2 + idz2);
    let mut next = p.clone();
    let mut stats = PoissonStats {
        iterations: 0,
        residual: f64::INFINITY,
    };
    for it in 0..max_iters {
        let cur = p.as_slice();
        let rhs_s = rhs.as_slice();
        // Parallel over z-slabs; each slab writes only its own chunk.
        let max_delta = next
            .as_mut_slice()
            .par_chunks_mut(slab)
            .enumerate()
            .map(|(k, out)| {
                let mut local_max: f64 = 0.0;
                for j in 0..ny {
                    for i in 0..nx {
                        let c = (k * ny + j) * nx + i;
                        // Neumann: mirror at boundaries (ghost = interior).
                        let xm = if i > 0 { cur[c - 1] } else { cur[c] };
                        let xp = if i + 1 < nx { cur[c + 1] } else { cur[c] };
                        let ym = if j > 0 { cur[c - nx] } else { cur[c] };
                        let yp = if j + 1 < ny { cur[c + nx] } else { cur[c] };
                        let zm = if k > 0 { cur[c - slab] } else { cur[c] };
                        let zp = if k + 1 < nz { cur[c + slab] } else { cur[c] };
                        let val = ((xm + xp) * idx2 + (ym + yp) * idy2 + (zm + zp) * idz2
                            - rhs_s[c])
                            / denom;
                        let o = j * nx + i;
                        local_max = local_max.max((val - cur[c]).abs());
                        out[o] = val;
                    }
                }
                local_max
            })
            // xg-lint: allow(float-reduce, max is associative and commutative; result is order-independent)
            .reduce(|| 0.0f64, f64::max);
        std::mem::swap(p, &mut next);
        stats.iterations = it + 1;
        stats.residual = max_delta;
        if max_delta < tol {
            break;
        }
    }
    // Fix the Neumann gauge: zero-mean pressure.
    let mean = p.mean();
    p.as_mut_slice().iter_mut().for_each(|x| *x -= mean);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Apply the discrete Neumann Laplacian to a field.
    fn laplacian(p: &Field3, d: [f64; 3]) -> Field3 {
        let (nx, ny, nz) = (p.nx, p.ny, p.nz);
        let mut out = Field3::zeros(nx, ny, nz);
        let (idx2, idy2, idz2) = (
            1.0 / (d[0] * d[0]),
            1.0 / (d[1] * d[1]),
            1.0 / (d[2] * d[2]),
        );
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = p.at(i, j, k);
                    let xm = if i > 0 { p.at(i - 1, j, k) } else { c };
                    let xp = if i + 1 < nx { p.at(i + 1, j, k) } else { c };
                    let ym = if j > 0 { p.at(i, j - 1, k) } else { c };
                    let yp = if j + 1 < ny { p.at(i, j + 1, k) } else { c };
                    let zm = if k > 0 { p.at(i, j, k - 1) } else { c };
                    let zp = if k + 1 < nz { p.at(i, j, k + 1) } else { c };
                    out.set(
                        i,
                        j,
                        k,
                        (xm + xp - 2.0 * c) * idx2
                            + (ym + yp - 2.0 * c) * idy2
                            + (zm + zp - 2.0 * c) * idz2,
                    );
                }
            }
        }
        out
    }

    #[test]
    fn solves_manufactured_problem() {
        // rhs = ∇² of a known zero-mean field; the solver must recover a
        // field whose Laplacian matches rhs.
        let (nx, ny, nz) = (16, 12, 8);
        let d = [1.0, 1.0, 1.0];
        let mut truth = Field3::zeros(nx, ny, nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let x = i as f64 / nx as f64;
                    let y = j as f64 / ny as f64;
                    let z = k as f64 / nz as f64;
                    truth.set(
                        i,
                        j,
                        k,
                        (std::f64::consts::PI * x).cos()
                            * (std::f64::consts::PI * y).cos()
                            * (0.5 * std::f64::consts::PI * z).cos(),
                    );
                }
            }
        }
        let rhs = laplacian(&truth, d);
        let mut p = Field3::zeros(nx, ny, nz);
        let stats = solve(&mut p, &rhs, d, 20_000, 1e-12);
        assert!(stats.residual < 1e-10, "residual {}", stats.residual);
        // Laplacian of the answer matches rhs.
        let lap = laplacian(&p, d);
        let mut max_err = 0.0f64;
        for (a, b) in lap.as_slice().iter().zip(rhs.as_slice()) {
            max_err = max_err.max((a - b).abs());
        }
        assert!(max_err < 1e-8, "max laplacian error {max_err}");
    }

    #[test]
    fn zero_rhs_gives_zero_mean_constant() {
        let rhs = Field3::zeros(8, 8, 4);
        let mut p = Field3::filled(8, 8, 4, 5.0);
        solve(&mut p, &rhs, [1.0, 1.0, 1.0], 100, 1e-12);
        // Constant field with the gauge removed: everything ~0.
        assert!(p.max_abs() < 1e-9);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (nx, ny, nz) = (12, 10, 6);
        let mut rhs = Field3::zeros(nx, ny, nz);
        for (i, v) in rhs.as_mut_slice().iter_mut().enumerate() {
            // Deterministic pseudo-random rhs.
            *v = ((i as f64 * 0.7312).sin() * 10.0).fract();
        }
        // Zero-mean rhs for compatibility.
        let mean = rhs.mean();
        rhs.as_mut_slice().iter_mut().for_each(|x| *x -= mean);

        let solve_with = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut p = Field3::zeros(nx, ny, nz);
            let rhs = rhs.clone();
            pool.install(|| solve(&mut p, &rhs, [1.0, 1.0, 1.0], 200, 0.0));
            p
        };
        let p1 = solve_with(1);
        let p4 = solve_with(4);
        assert_eq!(
            p1.as_slice(),
            p4.as_slice(),
            "Jacobi must be bitwise deterministic across thread counts"
        );
    }

    #[test]
    fn early_exit_on_tolerance() {
        let rhs = Field3::zeros(8, 8, 4);
        let mut p = Field3::zeros(8, 8, 4);
        let stats = solve(&mut p, &rhs, [1.0, 1.0, 1.0], 1000, 1e-9);
        assert!(stats.iterations < 10, "converged in {}", stats.iterations);
    }
}
