//! Structured hexahedral mesh generation for the screen-house domain.
//!
//! The paper's pipeline generates an OpenFOAM mesh of the CUPS structure
//! before every solve; mesh generation is part of the "total execution
//! time" Fig. 7 plots and is inherently serial, which is what bends the
//! strong-scaling curve. This module reproduces both the geometry work
//! (cell typing, canopy blocks, per-panel wall porosity) and its serial
//! cost profile.

use serde::{Deserialize, Serialize};

/// What occupies a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellType {
    /// Open air.
    Fluid,
    /// Tree canopy: fluid with a drag sink.
    Canopy,
}

/// An axis-aligned canopy block (a tree row) in domain coordinates (m).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CanopyBlock {
    /// Lower corner (m).
    pub min: [f64; 3],
    /// Upper corner (m).
    pub max: [f64; 3],
}

/// Physical description of the domain to mesh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainSpec {
    /// Domain size (m): x, y, z.
    pub size_m: [f64; 3],
    /// Target cells along each axis.
    pub cells: [usize; 3],
    /// Tree rows.
    pub canopy: Vec<CanopyBlock>,
}

impl DomainSpec {
    /// The CUPS screen house (120 × 100 × 8.5 m) with north-south tree
    /// rows, at a default example resolution.
    pub fn cups_default() -> Self {
        let mut canopy = Vec::new();
        // Ten tree rows, 4 m wide, 4.5 m tall, running the width of the
        // house with 8 m aisles.
        let mut x = 8.0;
        while x + 4.0 < 120.0 {
            canopy.push(CanopyBlock {
                min: [x, 4.0, 0.0],
                max: [x + 4.0, 96.0, 4.5],
            });
            x += 12.0;
        }
        DomainSpec {
            size_m: [120.0, 100.0, 8.5],
            cells: [48, 40, 10],
            canopy,
        }
    }

    /// Same geometry at a different resolution.
    pub fn with_cells(mut self, nx: usize, ny: usize, nz: usize) -> Self {
        self.cells = [nx, ny, nz];
        self
    }
}

/// The generated mesh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mesh {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Cells along z.
    pub nz: usize,
    /// Cell size (m) along each axis.
    pub d: [f64; 3],
    /// Cell types, indexed `(k * ny + j) * nx + i`.
    pub cell_type: Vec<CellType>,
}

impl Mesh {
    /// Generate a mesh from a domain spec. This is the serial phase of the
    /// CFD pipeline.
    ///
    /// Panics on a degenerate spec (zero cells or non-positive size).
    pub fn generate(spec: &DomainSpec) -> Mesh {
        let [nx, ny, nz] = spec.cells;
        assert!(nx > 2 && ny > 2 && nz > 2, "mesh must be at least 3^3");
        assert!(
            spec.size_m.iter().all(|&s| s > 0.0),
            "domain size must be positive"
        );
        let d = [
            spec.size_m[0] / nx as f64,
            spec.size_m[1] / ny as f64,
            spec.size_m[2] / nz as f64,
        ];
        let mut cell_type = vec![CellType::Fluid; nx * ny * nz];
        for k in 0..nz {
            let z = (k as f64 + 0.5) * d[2];
            for j in 0..ny {
                let y = (j as f64 + 0.5) * d[1];
                for i in 0..nx {
                    let x = (i as f64 + 0.5) * d[0];
                    let inside_canopy = spec.canopy.iter().any(|c| {
                        x >= c.min[0]
                            && x <= c.max[0]
                            && y >= c.min[1]
                            && y <= c.max[1]
                            && z >= c.min[2]
                            && z <= c.max[2]
                    });
                    if inside_canopy {
                        cell_type[(k * ny + j) * nx + i] = CellType::Canopy;
                    }
                }
            }
        }
        Mesh {
            nx,
            ny,
            nz,
            d,
            cell_type,
        }
    }

    /// Total cells.
    pub fn cell_count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Type of cell `(i, j, k)`.
    #[inline(always)]
    pub fn cell(&self, i: usize, j: usize, k: usize) -> CellType {
        self.cell_type[(k * self.ny + j) * self.nx + i]
    }

    /// Fraction of cells inside canopy.
    pub fn canopy_fraction(&self) -> f64 {
        let canopy = self
            .cell_type
            .iter()
            .filter(|&&c| c == CellType::Canopy)
            .count();
        canopy as f64 / self.cell_count() as f64
    }

    /// Domain size (m).
    pub fn size_m(&self) -> [f64; 3] {
        [
            self.nx as f64 * self.d[0],
            self.ny as f64 * self.d[1],
            self.nz as f64 * self.d[2],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cups_mesh_generates() {
        let mesh = Mesh::generate(&DomainSpec::cups_default());
        assert_eq!(mesh.cell_count(), 48 * 40 * 10);
        let frac = mesh.canopy_fraction();
        assert!(
            frac > 0.05 && frac < 0.5,
            "tree rows should occupy a plausible fraction: {frac}"
        );
        let size = mesh.size_m();
        assert!((size[0] - 120.0).abs() < 1e-9);
        assert!((size[2] - 8.5).abs() < 1e-9);
    }

    #[test]
    fn canopy_cells_in_right_places() {
        let mesh = Mesh::generate(&DomainSpec::cups_default());
        // Top layer is above the 4.5 m canopy.
        let top = mesh.nz - 1;
        for j in 0..mesh.ny {
            for i in 0..mesh.nx {
                assert_eq!(mesh.cell(i, j, top), CellType::Fluid);
            }
        }
        // Perimeter aisle (y near 0) has no canopy.
        for i in 0..mesh.nx {
            assert_eq!(mesh.cell(i, 0, 0), CellType::Fluid);
        }
    }

    #[test]
    fn resolution_override() {
        let spec = DomainSpec::cups_default().with_cells(24, 20, 6);
        let mesh = Mesh::generate(&spec);
        assert_eq!(mesh.cell_count(), 24 * 20 * 6);
        // Cell sizes scale inversely with resolution.
        assert!((mesh.d[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn canopy_fraction_roughly_resolution_independent() {
        let coarse = Mesh::generate(&DomainSpec::cups_default().with_cells(24, 20, 6));
        let fine = Mesh::generate(&DomainSpec::cups_default().with_cells(96, 80, 20));
        assert!(
            (coarse.canopy_fraction() - fine.canopy_fraction()).abs() < 0.08,
            "{} vs {}",
            coarse.canopy_fraction(),
            fine.canopy_fraction()
        );
    }

    #[test]
    #[should_panic(expected = "at least 3^3")]
    fn degenerate_spec_rejected() {
        Mesh::generate(&DomainSpec::cups_default().with_cells(1, 40, 10));
    }
}
