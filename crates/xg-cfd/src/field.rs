//! Flat 3-D scalar fields.
//!
//! Storage is a single `Vec<f64>` indexed `(k * ny + j) * nx + i`, so a
//! z-slab (one k) is contiguous — the unit of rayon parallelism in the
//! solver sweeps.

use serde::{Deserialize, Serialize};

/// A scalar field on an `nx × ny × nz` grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field3 {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Cells along z.
    pub nz: usize,
    data: Vec<f64>,
}

impl Field3 {
    /// A field initialized to `value`.
    pub fn filled(nx: usize, ny: usize, nz: usize, value: f64) -> Self {
        Field3 {
            nx,
            ny,
            nz,
            data: vec![value; nx * ny * nz],
        }
    }

    /// A zero field.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        Field3::filled(nx, ny, nz, 0.0)
    }

    /// Total cell count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the grid is degenerate.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Linear index of `(i, j, k)`.
    #[inline(always)]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        (k * self.ny + j) * self.nx + i
    }

    /// Read `(i, j, k)`.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// Write `(i, j, k)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let idx = self.idx(i, j, k);
        self.data[idx] = v;
    }

    /// Raw slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fill with a constant.
    pub fn fill(&mut self, v: f64) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Maximum absolute value.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Mean value.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// Sum of values.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Cells per z-slab (`nx * ny`).
    #[inline]
    pub fn slab_len(&self) -> usize {
        self.nx * self.ny
    }

    /// Trilinear-free nearest-cell probe at fractional grid coordinates.
    pub fn probe_nearest(&self, fx: f64, fy: f64, fz: f64) -> f64 {
        let i = (fx.round().max(0.0) as usize).min(self.nx - 1);
        let j = (fy.round().max(0.0) as usize).min(self.ny - 1);
        let k = (fz.round().max(0.0) as usize).min(self.nz - 1);
        self.at(i, j, k)
    }

    /// Trilinear interpolation at fractional grid coordinates (clamped to
    /// the grid). Smoother than [`Self::probe_nearest`] for point probes
    /// like the digital twin's station comparisons.
    pub fn probe_trilinear(&self, fx: f64, fy: f64, fz: f64) -> f64 {
        let cx = fx.clamp(0.0, (self.nx - 1) as f64);
        let cy = fy.clamp(0.0, (self.ny - 1) as f64);
        let cz = fz.clamp(0.0, (self.nz - 1) as f64);
        let (i0, j0, k0) = (
            cx.floor() as usize,
            cy.floor() as usize,
            cz.floor() as usize,
        );
        let (i1, j1, k1) = (
            (i0 + 1).min(self.nx - 1),
            (j0 + 1).min(self.ny - 1),
            (k0 + 1).min(self.nz - 1),
        );
        let (tx, ty, tz) = (cx - i0 as f64, cy - j0 as f64, cz - k0 as f64);
        let lerp = |a: f64, b: f64, t: f64| a + (b - a) * t;
        let c00 = lerp(self.at(i0, j0, k0), self.at(i1, j0, k0), tx);
        let c10 = lerp(self.at(i0, j1, k0), self.at(i1, j1, k0), tx);
        let c01 = lerp(self.at(i0, j0, k1), self.at(i1, j0, k1), tx);
        let c11 = lerp(self.at(i0, j1, k1), self.at(i1, j1, k1), tx);
        lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut f = Field3::zeros(4, 3, 2);
        assert_eq!(f.len(), 24);
        f.set(1, 2, 1, 7.5);
        assert_eq!(f.at(1, 2, 1), 7.5);
        assert_eq!(f.as_slice()[f.idx(1, 2, 1)], 7.5);
        // Slabs are contiguous: idx(i, j, k) - idx(0, 0, k) < slab_len.
        assert!(f.idx(3, 2, 1) - f.idx(0, 0, 1) < f.slab_len());
    }

    #[test]
    fn stats() {
        let mut f = Field3::filled(2, 2, 1, 1.0);
        f.set(0, 0, 0, -5.0);
        assert_eq!(f.max_abs(), 5.0);
        assert_eq!(f.sum(), -2.0);
        assert_eq!(f.mean(), -0.5);
        f.fill(2.0);
        assert_eq!(f.mean(), 2.0);
    }

    #[test]
    fn probe_clamps() {
        let mut f = Field3::zeros(3, 3, 3);
        f.set(2, 2, 2, 9.0);
        assert_eq!(f.probe_nearest(10.0, 10.0, 10.0), 9.0);
        f.set(0, 0, 0, 4.0);
        assert_eq!(f.probe_nearest(-3.0, -1.0, 0.2), 4.0);
    }

    #[test]
    fn trilinear_interpolates_linearly() {
        // A field linear in x: f(i) = 2i. Interpolation must be exact.
        let mut f = Field3::zeros(4, 3, 3);
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..4 {
                    f.set(i, j, k, 2.0 * i as f64);
                }
            }
        }
        assert!((f.probe_trilinear(1.5, 1.0, 1.0) - 3.0).abs() < 1e-12);
        assert!((f.probe_trilinear(2.25, 0.5, 2.0) - 4.5).abs() < 1e-12);
        // At grid points it matches the stored value.
        assert_eq!(f.probe_trilinear(3.0, 2.0, 2.0), 6.0);
        // Clamped outside the grid.
        assert_eq!(f.probe_trilinear(99.0, 99.0, 99.0), 6.0);
        assert_eq!(f.probe_trilinear(-5.0, 0.0, 0.0), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn out_of_bounds_debug_panics() {
        let f = Field3::zeros(2, 2, 2);
        f.at(2, 0, 0);
    }
}
