//! Thread-pool control and the paper-scale performance model.
//!
//! Fig. 7 plots the full CFD computation (including mesh generation) on a
//! 64-core Notre Dame node: 10 runs per core count, 420.39 ± 36.29 s at 64
//! cores. The real solver in this crate scales with rayon, but this
//! reproduction machine may have fewer cores than the paper's node, so the
//! figure is regenerated in two parts:
//!
//! * **measured** — the real solver timed under rayon pools of 1..host
//!   cores on a scaled-down mesh (validates that the parallel sweeps
//!   actually scale);
//! * **modelled** — [`CfdPerfModel`], a serial-fraction + communication
//!   model calibrated so the 64-core point lands at the paper's 420 s, used
//!   to extrapolate the full 1..64-core curve and the §4.4 multi-node
//!   behaviour (OpenFOAM alone fastest on 2×64 cores, total application
//!   slower on >1 node).

use rayon::ThreadPool;
use serde::{Deserialize, Serialize};

/// Build a rayon pool of exactly `threads` threads and run `f` inside it.
///
/// All solver parallelism is scoped to the given pool, so nested callers
/// can benchmark specific thread counts regardless of the global pool.
pub fn run_with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    let pool: ThreadPool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        // xg-lint: allow(panicking-call, pool build only fails on OS thread exhaustion; no typed-error path to thread through bench callers)
        .expect("thread pool construction cannot fail for sane sizes");
    pool.install(f)
}

/// Calibrated performance model of the paper's full CFD pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfdPerfModel {
    /// Serial phase per run (mesh generation + input-file preparation), s.
    pub serial_s: f64,
    /// Parallelizable solver work, core-seconds.
    pub solve_core_s: f64,
    /// Per-core synchronization overhead coefficient (s per core): the
    /// reduction/barrier cost that grows with the worker count.
    pub sync_per_core_s: f64,
    /// Additional serial cost per extra *node* for input distribution and
    /// output gathering (fraction of `serial_s` per extra node).
    pub per_node_serial_frac: f64,
    /// Inter-node parallel efficiency (MPI over the interconnect).
    pub internode_efficiency: f64,
    /// Cores per node.
    pub cores_per_node: u32,
    /// Run-to-run relative standard deviation (Fig. 7's whiskers:
    /// 36.29 / 420.39 ≈ 8.6%).
    pub rel_sd: f64,
}

impl CfdPerfModel {
    /// Calibration for the Notre Dame node: solves
    /// `serial + W/64 + sync·64 = 420.39` with a serial phase of ~180 s,
    /// giving W = 15 065 core-seconds (t(1) ≈ 4.2 h, speedup(64) ≈ 36×).
    pub fn notre_dame() -> Self {
        CfdPerfModel {
            serial_s: 180.0,
            solve_core_s: 15_065.0,
            sync_per_core_s: 0.08,
            per_node_serial_frac: 0.6,
            internode_efficiency: 0.8,
            cores_per_node: 64,
            rel_sd: 0.086,
        }
    }

    /// Mean total single-node runtime at `cores` workers (s).
    pub fn total_time_s(&self, cores: u32) -> f64 {
        let c = cores.max(1) as f64;
        self.serial_s + self.solve_core_s / c + self.sync_per_core_s * c
    }

    /// Speedup relative to one core.
    pub fn speedup(&self, cores: u32) -> f64 {
        self.total_time_s(1) / self.total_time_s(cores)
    }

    /// Solver-only time (no serial phase) on `nodes` full nodes: this is
    /// the quantity the paper says is "fastest on 2 nodes, each with 64
    /// cores".
    pub fn multi_node_solve_s(&self, nodes: u32) -> f64 {
        let n = nodes.max(1) as f64;
        let cores = n * self.cores_per_node as f64;
        let eff = if nodes > 1 {
            self.internode_efficiency.powf(n - 1.0).max(0.3)
        } else {
            1.0
        };
        self.solve_core_s / (cores * eff)
            + self.sync_per_core_s * self.cores_per_node as f64
            + if nodes > 1 { 25.0 * (n - 1.0) } else { 0.0 }
    }

    /// Total application time on `nodes` nodes: input generation and
    /// output postprocessing grow with node count, which is why the total
    /// application slows down beyond one node (§4.4).
    pub fn multi_node_total_s(&self, nodes: u32) -> f64 {
        let n = nodes.max(1) as f64;
        let serial = self.serial_s * (1.0 + self.per_node_serial_frac * (n - 1.0));
        serial + self.multi_node_solve_s(nodes)
    }

    /// A deterministic per-run jitter factor for run `i` of a sweep
    /// (quasi-Gaussian via a fixed low-discrepancy phase), giving the
    /// Fig. 7 whiskers without a live RNG.
    pub fn run_jitter(&self, run: u32) -> f64 {
        let phase = (run as f64 * 0.618_033_988_749_895).fract();
        // Inverse-CDF-ish triangular approximation of N(1, rel_sd).
        let z = (phase * 2.0 - 1.0) * 1.73;
        1.0 + self.rel_sd * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_runs_closure() {
        let sum: u64 = run_with_threads(2, || (0..1000u64).sum());
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn calibration_hits_paper_64_core_point() {
        let m = CfdPerfModel::notre_dame();
        let t64 = m.total_time_s(64);
        assert!(
            (t64 - 420.39).abs() < 25.0,
            "paper: 420.39 s at 64 cores; model {t64}"
        );
    }

    #[test]
    fn scaling_curve_shape() {
        let m = CfdPerfModel::notre_dame();
        // Monotone decreasing through 64 cores.
        let mut last = f64::INFINITY;
        for c in [1u32, 2, 4, 8, 16, 32, 64] {
            let t = m.total_time_s(c);
            assert!(t < last, "t({c}) = {t} must improve on {last}");
            last = t;
        }
        // Diminishing returns: speedup(64) well below 64.
        let s = m.speedup(64);
        assert!(s > 10.0 && s < 60.0, "speedup(64) = {s}");
        // Efficiency drops with core count.
        assert!(m.speedup(8) / 8.0 > m.speedup(64) / 64.0);
    }

    #[test]
    fn multi_node_crossover_matches_paper() {
        let m = CfdPerfModel::notre_dame();
        // OpenFOAM alone: fastest on 2 nodes (paper §4.4).
        let s1 = m.multi_node_solve_s(1);
        let s2 = m.multi_node_solve_s(2);
        let s4 = m.multi_node_solve_s(4);
        assert!(s2 < s1, "solver faster on 2 nodes: {s2} vs {s1}");
        assert!(s4 > s2, "solver slower again on 4 nodes: {s4} vs {s2}");
        // Total application: slower on >1 node.
        let t1 = m.multi_node_total_s(1);
        let t2 = m.multi_node_total_s(2);
        assert!(t2 > t1, "total app slows down multi-node: {t2} vs {t1}");
    }

    #[test]
    fn jitter_centered_and_bounded() {
        let m = CfdPerfModel::notre_dame();
        let n = 100;
        let mean: f64 = (0..n).map(|i| m.run_jitter(i)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "jitter mean {mean}");
        for i in 0..n {
            let j = m.run_jitter(i);
            assert!(j > 0.7 && j < 1.3, "jitter {j}");
        }
    }
}
