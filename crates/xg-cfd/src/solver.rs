//! Incompressible projection-method solver.
//!
//! A Chorin-style fractional-step scheme on a collocated structured grid:
//!
//! 1. explicit momentum predictor — first-order upwind advection, central
//!    eddy-viscosity diffusion, Boussinesq buoyancy on `w`, quadratic
//!    canopy drag in canopy cells;
//! 2. porous-wall boundary conditions (screen inflow/outflow per panel);
//! 3. pressure Poisson projection ([`crate::poisson`]);
//! 4. velocity correction and temperature advection–diffusion.
//!
//! Every sweep is double-buffered and slab-parallel with rayon, so results
//! are bitwise identical for any thread count — verified by tests. This is
//! the "OpenFOAM" of the reproduction: the same role, the same phase
//! structure (serial meshing + parallel solve), at laptop scale.

use crate::boundary::BoundarySpec;
use crate::field::Field3;
use crate::mesh::{CellType, Mesh};
use crate::poisson;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;
use xg_obs::{Counter, Gauge, Histogram, Obs};

/// Pre-resolved solver instruments. The CFD solve is the only stage of
/// the closed loop that burns real CPU, so its histograms record *wall*
/// milliseconds (everything else in the fabric records virtual time).
#[derive(Debug, Clone)]
struct CfdObs {
    /// Wall time of one full time step, ms.
    step_wall_ms: Arc<Histogram>,
    /// Wall time of one transport sweep (momentum or temperature), ms.
    sweep_wall_ms: Arc<Histogram>,
    /// Sweep wall time divided by the rayon worker count, ms.
    sweep_wall_ms_per_worker: Arc<Histogram>,
    /// Final Poisson residual per projection.
    poisson_residual: Arc<Histogram>,
    /// Jacobi iterations per projection.
    poisson_iters: Arc<Histogram>,
    /// Time steps completed.
    steps: Arc<Counter>,
    /// Rayon worker count in effect.
    workers: Arc<Gauge>,
    /// The full handle: the measured step/sweep durations also feed the
    /// hierarchical profiler (`cfd.step` / `cfd.step/sweep`) so the CFD
    /// solve shows up in cross-layer attribution without extra timers.
    handle: Obs,
}

impl CfdObs {
    fn new(obs: &Obs) -> Option<Self> {
        let reg = obs.registry()?;
        Some(CfdObs {
            handle: obs.clone(),
            step_wall_ms: reg.histogram("cfd.step.wall_ms"),
            sweep_wall_ms: reg.histogram("cfd.sweep.wall_ms"),
            sweep_wall_ms_per_worker: reg.histogram("cfd.sweep.wall_ms_per_worker"),
            poisson_residual: reg.histogram("cfd.poisson.residual"),
            poisson_iters: reg.histogram("cfd.poisson.iterations"),
            steps: reg.counter("cfd.steps"),
            workers: reg.gauge("cfd.rayon.workers"),
        })
    }
}

/// Solver tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Time step (s). Chosen for CFL stability at the configured grid.
    pub dt_s: f64,
    /// Eddy (turbulent) kinematic viscosity (m²/s).
    pub nu: f64,
    /// Thermal diffusivity (m²/s).
    pub alpha_t: f64,
    /// Thermal expansion coefficient (1/K) for Boussinesq buoyancy.
    pub beta: f64,
    /// Gravitational acceleration (m/s²).
    pub gravity: f64,
    /// Canopy drag coefficient × leaf area density (1/m).
    pub canopy_cd_a: f64,
    /// Max Jacobi iterations per projection.
    pub poisson_iters: usize,
    /// Poisson convergence tolerance.
    pub poisson_tol: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            dt_s: 0.08,
            nu: 0.5,
            alpha_t: 0.5,
            beta: 3.4e-3,
            gravity: 9.81,
            canopy_cd_a: 0.4,
            poisson_iters: 120,
            poisson_tol: 1e-6,
        }
    }
}

/// The simulation state.
#[derive(Debug, Clone)]
pub struct Simulation {
    /// The mesh.
    pub mesh: Mesh,
    /// Boundary conditions.
    pub bc: BoundarySpec,
    /// Solver configuration.
    pub config: SolverConfig,
    /// Velocity x-component (m/s).
    pub u: Field3,
    /// Velocity y-component (m/s).
    pub v: Field3,
    /// Velocity z-component (m/s).
    pub w: Field3,
    /// Temperature (°C).
    pub t: Field3,
    /// Pressure (kinematic).
    pub p: Field3,
    steps_done: usize,
    obs: Option<CfdObs>,
}

impl Simulation {
    /// Initialize a quiescent interior at ambient temperature.
    pub fn new(mesh: Mesh, bc: BoundarySpec, config: SolverConfig) -> Self {
        let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
        let t = Field3::filled(nx, ny, nz, bc.ambient_temp_c);
        let mut sim = Simulation {
            mesh,
            bc,
            config,
            u: Field3::zeros(nx, ny, nz),
            v: Field3::zeros(nx, ny, nz),
            w: Field3::zeros(nx, ny, nz),
            t,
            p: Field3::zeros(nx, ny, nz),
            steps_done: 0,
            obs: None,
        };
        sim.apply_velocity_bcs();
        sim
    }

    /// Attach an observability handle: per-step wall time, per-sweep
    /// wall time, and per-projection residual/iteration histograms land
    /// in its registry. Instrumentation only reads clocks — the solve
    /// stays bitwise deterministic across thread counts.
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs = CfdObs::new(obs);
    }

    /// Steps taken so far.
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// CFL number at the current state (must stay < 1 for stability).
    pub fn cfl(&self) -> f64 {
        let umax = self.u.max_abs().max(self.v.max_abs()).max(self.w.max_abs());
        let dmin = self.mesh.d.iter().cloned().fold(f64::INFINITY, f64::min);
        umax * self.config.dt_s / dmin
    }

    /// Impose wall/screen boundary conditions on the velocity fields.
    ///
    /// * Vertical screen walls: porosity-scaled normal inflow where the
    ///   wind blows inward; zero-gradient outflow elsewhere.
    /// * Ground (k = 0): no-slip.
    /// * Roof (k = nz−1): rigid lid (w = 0), free slip for u, v.
    pub fn apply_velocity_bcs(&mut self) {
        let (nx, ny, nz) = (self.u.nx, self.u.ny, self.u.nz);
        let (wind_u, wind_v) = self.bc.wind_uv();
        // West & east walls (x boundaries): normal component is u.
        for k in 0..nz {
            for j in 0..ny {
                let frac = (j as f64 + 0.5) / ny as f64;
                // West (x = 0): inward normal +x.
                let por = self.bc.west.at(frac);
                if wind_u > 0.0 {
                    self.u.set(0, j, k, wind_u * por);
                    self.v.set(0, j, k, 0.0);
                } else {
                    let inner = self.u.at(1, j, k);
                    self.u.set(0, j, k, inner);
                    let vi = self.v.at(1, j, k);
                    self.v.set(0, j, k, vi);
                }
                // East (x = nx-1): inward normal −x.
                let por = self.bc.east.at(frac);
                if wind_u < 0.0 {
                    self.u.set(nx - 1, j, k, wind_u * por);
                    self.v.set(nx - 1, j, k, 0.0);
                } else {
                    let inner = self.u.at(nx - 2, j, k);
                    self.u.set(nx - 1, j, k, inner);
                    let vi = self.v.at(nx - 2, j, k);
                    self.v.set(nx - 1, j, k, vi);
                }
            }
        }
        // South & north walls (y boundaries): normal component is v.
        for k in 0..nz {
            for i in 0..nx {
                let frac = (i as f64 + 0.5) / nx as f64;
                let por = self.bc.south.at(frac);
                if wind_v > 0.0 {
                    self.v.set(i, 0, k, wind_v * por);
                    self.u.set(i, 0, k, 0.0);
                } else {
                    let inner = self.v.at(i, 1, k);
                    self.v.set(i, 0, k, inner);
                    let ui = self.u.at(i, 1, k);
                    self.u.set(i, 0, k, ui);
                }
                let por = self.bc.north.at(frac);
                if wind_v < 0.0 {
                    self.v.set(i, ny - 1, k, wind_v * por);
                    self.u.set(i, ny - 1, k, 0.0);
                } else {
                    let inner = self.v.at(i, ny - 2, k);
                    self.v.set(i, ny - 1, k, inner);
                    let ui = self.u.at(i, ny - 2, k);
                    self.u.set(i, ny - 1, k, ui);
                }
            }
        }
        // Ground and roof.
        for j in 0..ny {
            for i in 0..nx {
                self.u.set(i, j, 0, 0.0);
                self.v.set(i, j, 0, 0.0);
                self.w.set(i, j, 0, 0.0);
                self.w.set(i, j, nz - 1, 0.0);
                let ub = self.u.at(i, j, nz - 2);
                let vb = self.v.at(i, j, nz - 2);
                self.u.set(i, j, nz - 1, ub);
                self.v.set(i, j, nz - 1, vb);
            }
        }
    }

    /// One explicit sweep for a transported scalar: upwind advection +
    /// central diffusion, returning the updated interior field.
    fn transport_sweep(
        &self,
        phi: &Field3,
        diffusivity: f64,
        extra: impl Fn(usize, usize, usize, f64) -> f64 + Sync,
    ) -> Field3 {
        // xg-lint: allow(wall-clock, obs-gated wall timing of a real CPU solve; never feeds sim state)
        let sweep_timer = self.obs.as_ref().map(|_| Instant::now());
        let (nx, ny, nz) = (phi.nx, phi.ny, phi.nz);
        let slab = nx * ny;
        let dt = self.config.dt_s;
        let [dx, dy, dz] = self.mesh.d;
        let mut out = phi.clone();
        let u = self.u.as_slice();
        let v = self.v.as_slice();
        let w = self.w.as_slice();
        let cur = phi.as_slice();
        out.as_mut_slice()
            .par_chunks_mut(slab)
            .enumerate()
            .for_each(|(k, slab_out)| {
                if k == 0 || k == nz - 1 {
                    return; // boundary slabs handled by BCs
                }
                for j in 1..ny - 1 {
                    for i in 1..nx - 1 {
                        let c = (k * ny + j) * nx + i;
                        let (uc, vc, wc) = (u[c], v[c], w[c]);
                        let phic = cur[c];
                        // First-order upwind advection.
                        let dphidx = if uc > 0.0 {
                            (phic - cur[c - 1]) / dx
                        } else {
                            (cur[c + 1] - phic) / dx
                        };
                        let dphidy = if vc > 0.0 {
                            (phic - cur[c - nx]) / dy
                        } else {
                            (cur[c + nx] - phic) / dy
                        };
                        let dphidz = if wc > 0.0 {
                            (phic - cur[c - slab]) / dz
                        } else {
                            (cur[c + slab] - phic) / dz
                        };
                        let adv = uc * dphidx + vc * dphidy + wc * dphidz;
                        // Central diffusion.
                        let lap = (cur[c - 1] + cur[c + 1] - 2.0 * phic) / (dx * dx)
                            + (cur[c - nx] + cur[c + nx] - 2.0 * phic) / (dy * dy)
                            + (cur[c - slab] + cur[c + slab] - 2.0 * phic) / (dz * dz);
                        let mut val = phic + dt * (-adv + diffusivity * lap);
                        val = extra(i, j, k, val);
                        slab_out[j * nx + i] = val;
                    }
                }
            });
        if let (Some(o), Some(t0)) = (&self.obs, sweep_timer) {
            let elapsed = t0.elapsed();
            let ms = elapsed.as_secs_f64() * 1e3;
            o.sweep_wall_ms.record(ms);
            o.sweep_wall_ms_per_worker
                .record(ms / rayon::current_num_threads().max(1) as f64);
            if let Some(p) = o.handle.profiler() {
                p.record_at("cfd.step/sweep", elapsed.as_nanos() as u64);
            }
        }
        out
    }

    /// Advance one time step.
    pub fn step(&mut self) {
        // xg-lint: allow(wall-clock, obs-gated wall timing of a real CPU solve; never feeds sim state)
        let step_timer = self.obs.as_ref().map(|_| Instant::now());
        let cfg = self.config;
        let dt = cfg.dt_s;
        let mesh = &self.mesh;
        let t_ref = self.bc.ambient_temp_c;

        // 1. Momentum predictor.
        let u_snapshot = self.u.clone();
        let v_snapshot = self.v.clone();
        let w_snapshot = self.w.clone();
        let drag = |sim: &Simulation, i: usize, j: usize, k: usize, comp: f64| -> f64 {
            if sim.mesh.cell(i, j, k) == CellType::Canopy {
                let c = sim.u.idx(i, j, k);
                let speed = (sim.u.as_slice()[c].powi(2)
                    + sim.v.as_slice()[c].powi(2)
                    + sim.w.as_slice()[c].powi(2))
                .sqrt();
                comp / (1.0 + dt * cfg.canopy_cd_a * speed)
            } else {
                comp
            }
        };
        let _ = mesh;
        let u_star =
            self.transport_sweep(&u_snapshot, cfg.nu, |i, j, k, val| drag(self, i, j, k, val));
        let v_star =
            self.transport_sweep(&v_snapshot, cfg.nu, |i, j, k, val| drag(self, i, j, k, val));
        let t_field = &self.t;
        let w_star = self.transport_sweep(&w_snapshot, cfg.nu, |i, j, k, val| {
            // Boussinesq buoyancy: warm air rises.
            let buoy = cfg.gravity * cfg.beta * (t_field.at(i, j, k) - t_ref);
            drag(self, i, j, k, val + dt * buoy)
        });
        self.u = u_star;
        self.v = v_star;
        self.w = w_star;
        self.apply_velocity_bcs();

        // 2. Projection: solve ∇²p = div(u*) / dt.
        let mut rhs = self.divergence();
        let inv_dt = 1.0 / dt;
        rhs.as_mut_slice().iter_mut().for_each(|x| *x *= inv_dt);
        // Neumann compatibility: remove the mean source.
        let mean = rhs.mean();
        rhs.as_mut_slice().iter_mut().for_each(|x| *x -= mean);
        let stats = poisson::solve(
            &mut self.p,
            &rhs,
            self.mesh.d,
            cfg.poisson_iters,
            cfg.poisson_tol,
        );
        if let Some(o) = &self.obs {
            o.poisson_residual.record(stats.residual);
            o.poisson_iters.record(stats.iterations as f64);
        }

        // 3. Velocity correction: u -= dt ∇p (interior, central gradient).
        let (nx, ny, nz) = (self.u.nx, self.u.ny, self.u.nz);
        let slab = nx * ny;
        let [dx, dy, dz] = self.mesh.d;
        let p = self.p.as_slice().to_vec();
        let correct = |field: &mut Field3, axis: usize| {
            field
                .as_mut_slice()
                .par_chunks_mut(slab)
                .enumerate()
                .for_each(|(k, out)| {
                    if k == 0 || k == nz - 1 {
                        return;
                    }
                    for j in 1..ny - 1 {
                        for i in 1..nx - 1 {
                            let c = (k * ny + j) * nx + i;
                            let grad = match axis {
                                0 => (p[c + 1] - p[c - 1]) / (2.0 * dx),
                                1 => (p[c + nx] - p[c - nx]) / (2.0 * dy),
                                _ => (p[c + slab] - p[c - slab]) / (2.0 * dz),
                            };
                            out[j * nx + i] -= dt * grad;
                        }
                    }
                });
        };
        correct(&mut self.u, 0);
        correct(&mut self.v, 1);
        correct(&mut self.w, 2);
        self.apply_velocity_bcs();

        // 4. Temperature transport with ground heating and inflow at
        // ambient temperature.
        let ground_t = self.bc.ground_temp_c;
        let t_new = self.transport_sweep(&self.t.clone(), cfg.alpha_t, |_, _, _, val| val);
        self.t = t_new;
        let (nx, ny, nz) = (self.t.nx, self.t.ny, self.t.nz);
        for j in 0..ny {
            for i in 0..nx {
                self.t.set(i, j, 0, ground_t);
                let below = self.t.at(i, j, nz - 2);
                self.t.set(i, j, nz - 1, below);
            }
        }
        for k in 0..nz {
            for j in 0..ny {
                self.t.set(0, j, k, t_ref);
                self.t.set(nx - 1, j, k, t_ref);
            }
            for i in 0..nx {
                self.t.set(i, 0, k, t_ref);
                self.t.set(i, ny - 1, k, t_ref);
            }
        }
        if let (Some(o), Some(t0)) = (&self.obs, step_timer) {
            let elapsed = t0.elapsed();
            o.step_wall_ms.record(elapsed.as_secs_f64() * 1e3);
            o.steps.inc();
            o.workers.set(rayon::current_num_threads() as f64);
            if let Some(p) = o.handle.profiler() {
                p.record_at("cfd.step", elapsed.as_nanos() as u64);
            }
        }
        self.steps_done += 1;
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Step until the flow is statistically steady: stop when the mean
    /// interior wind changes by less than `tol` (relative) between
    /// consecutive 10-step blocks, or after `max_steps`. Returns the steps
    /// taken.
    pub fn run_until_steady(&mut self, max_steps: usize, tol: f64) -> usize {
        let mut last = self.mean_interior_wind();
        let mut steps = 0;
        while steps < max_steps {
            let block = 10.min(max_steps - steps);
            self.run(block);
            steps += block;
            let cur = self.mean_interior_wind();
            let rel = (cur - last).abs() / cur.abs().max(1e-9);
            if rel < tol {
                return steps;
            }
            last = cur;
        }
        steps
    }

    /// Central-difference divergence of the velocity field (interior; zero
    /// on boundary cells).
    pub fn divergence(&self) -> Field3 {
        let (nx, ny, nz) = (self.u.nx, self.u.ny, self.u.nz);
        let slab = nx * ny;
        let [dx, dy, dz] = self.mesh.d;
        let mut div = Field3::zeros(nx, ny, nz);
        let u = self.u.as_slice();
        let v = self.v.as_slice();
        let w = self.w.as_slice();
        div.as_mut_slice()
            .par_chunks_mut(slab)
            .enumerate()
            .for_each(|(k, out)| {
                if k == 0 || k == nz - 1 {
                    return;
                }
                for j in 1..ny - 1 {
                    for i in 1..nx - 1 {
                        let c = (k * ny + j) * nx + i;
                        out[j * nx + i] = (u[c + 1] - u[c - 1]) / (2.0 * dx)
                            + (v[c + nx] - v[c - nx]) / (2.0 * dy)
                            + (w[c + slab] - w[c - slab]) / (2.0 * dz);
                    }
                }
            });
        div
    }

    /// Horizontal wind speed at a physical position (m), trilinearly
    /// interpolated between cell centres.
    pub fn wind_speed_at(&self, x: f64, y: f64, z: f64) -> f64 {
        let [dx, dy, dz] = self.mesh.d;
        let (fx, fy, fz) = (x / dx - 0.5, y / dy - 0.5, z / dz - 0.5);
        let u = self.u.probe_trilinear(fx, fy, fz);
        let v = self.v.probe_trilinear(fx, fy, fz);
        (u * u + v * v).sqrt()
    }

    /// Mean interior wind speed over fluid cells (excluding boundaries).
    pub fn mean_interior_wind(&self) -> f64 {
        let (nx, ny, nz) = (self.u.nx, self.u.ny, self.u.nz);
        let mut sum = 0.0;
        let mut count = 0usize;
        for k in 1..nz - 1 {
            for j in 1..ny - 1 {
                for i in 1..nx - 1 {
                    let u = self.u.at(i, j, k);
                    let v = self.v.at(i, j, k);
                    sum += (u * u + v * v).sqrt();
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::DomainSpec;

    fn small_sim(wind: f64, dir: f64) -> Simulation {
        let spec = DomainSpec::cups_default().with_cells(20, 16, 6);
        let mesh = Mesh::generate(&spec);
        let bc = BoundarySpec::intact(wind, dir, 22.0);
        Simulation::new(mesh, bc, SolverConfig::default())
    }

    #[test]
    fn obs_records_sweep_and_poisson_metrics() {
        let obs = Obs::enabled();
        let mut sim = small_sim(5.0, 270.0);
        sim.set_obs(&obs);
        sim.run(3);
        let reg = obs.registry().unwrap();
        assert_eq!(reg.counter("cfd.steps").get(), 3);
        assert_eq!(reg.histogram("cfd.step.wall_ms").count(), 3);
        // Four sweeps per step: u, v, w, temperature.
        assert_eq!(reg.histogram("cfd.sweep.wall_ms").count(), 12);
        assert_eq!(reg.histogram("cfd.sweep.wall_ms_per_worker").count(), 12);
        assert_eq!(reg.histogram("cfd.poisson.residual").count(), 3);
        assert_eq!(reg.histogram("cfd.poisson.iterations").count(), 3);
        assert!(reg.gauge("cfd.rayon.workers").get() >= 1.0);
        // Instrumentation must not perturb the solve itself.
        let mut plain = small_sim(5.0, 270.0);
        plain.run(3);
        assert_eq!(sim.u.as_slice(), plain.u.as_slice());
        assert_eq!(sim.p.as_slice(), plain.p.as_slice());
    }

    #[test]
    fn stays_stable_and_bounded() {
        let mut sim = small_sim(5.0, 270.0);
        sim.run(60);
        assert!(sim.cfl() < 1.0, "CFL {}", sim.cfl());
        assert!(sim.u.max_abs() < 20.0);
        assert!(sim.t.max_abs() < 100.0);
        assert!(sim.u.as_slice().iter().all(|x| x.is_finite()));
        assert!(sim.p.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn west_wind_drives_eastward_interior_flow() {
        let mut sim = small_sim(6.0, 270.0); // wind from west -> +x flow
        sim.run(80);
        let mid = sim.u.at(sim.u.nx / 2, sim.u.ny / 2, sim.u.nz - 2);
        assert!(mid > 0.05, "interior u should be positive: {mid}");
        // Interior speed attenuated below free stream by the screen.
        assert!(sim.mean_interior_wind() < 6.0);
    }

    #[test]
    fn projection_reduces_divergence() {
        let mut sim = small_sim(5.0, 270.0);
        // Run a few steps, then compare pre/post projection divergence by
        // stepping once more and inspecting the final divergence level.
        sim.run(30);
        let div = sim.divergence().max_abs();
        // The projected field's divergence must be small relative to the
        // velocity scale over a cell (u/dx ~ 5/6 ≈ 0.8 1/s).
        assert!(div < 0.3, "post-projection divergence {div}");
    }

    #[test]
    fn calm_conditions_stay_calm() {
        let mut sim = small_sim(0.0, 0.0);
        sim.run(30);
        assert!(
            sim.mean_interior_wind() < 0.05,
            "no wind, no flow: {}",
            sim.mean_interior_wind()
        );
    }

    #[test]
    fn breach_admits_a_jet() {
        let spec = DomainSpec::cups_default().with_cells(20, 16, 6);
        let mesh = Mesh::generate(&spec);
        // Intact run.
        let bc = BoundarySpec::intact(6.0, 270.0, 22.0);
        let mut intact = Simulation::new(mesh.clone(), bc.clone(), SolverConfig::default());
        intact.run(60);
        // Breach in the west wall, mid-height panel.
        let mut breached_bc = bc;
        breached_bc.west.set_panel(6, 1.0);
        let mut breached = Simulation::new(mesh, breached_bc, SolverConfig::default());
        breached.run(60);
        assert!(
            breached.mean_interior_wind() > intact.mean_interior_wind() * 1.02,
            "breach must raise interior wind: {} vs {}",
            breached.mean_interior_wind(),
            intact.mean_interior_wind()
        );
        // The jet is local: wind near the breached panel exceeds the
        // intact value by more than the far-field does.
        let y_panel = (6.5 / 12.0) * 100.0;
        let near_b = breached.wind_speed_at(8.0, y_panel, 4.0);
        let near_i = intact.wind_speed_at(8.0, y_panel, 4.0);
        assert!(near_b > near_i, "jet at breach: {near_b} vs {near_i}");
    }

    #[test]
    fn stronger_wind_stronger_interior_flow() {
        let mut calm = small_sim(2.0, 270.0);
        let mut windy = small_sim(8.0, 270.0);
        calm.run(60);
        windy.run(60);
        assert!(windy.mean_interior_wind() > 2.0 * calm.mean_interior_wind());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let run_with = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let mut sim = small_sim(5.0, 270.0);
                sim.run(10);
                (sim.u, sim.p)
            })
        };
        let (u1, p1) = run_with(1);
        let (u3, p3) = run_with(3);
        assert_eq!(
            u1.as_slice(),
            u3.as_slice(),
            "velocity must be bitwise equal"
        );
        assert_eq!(
            p1.as_slice(),
            p3.as_slice(),
            "pressure must be bitwise equal"
        );
    }

    #[test]
    fn steady_state_detection() {
        let mut sim = small_sim(5.0, 270.0);
        let steps = sim.run_until_steady(400, 0.01);
        assert!(steps < 400, "must converge before the cap: {steps}");
        assert!(steps >= 20, "cannot be steady instantly: {steps}");
        // Once steady, further stepping barely changes the bulk statistic.
        let before = sim.mean_interior_wind();
        sim.run(20);
        let after = sim.mean_interior_wind();
        assert!((after - before).abs() / before.max(1e-9) < 0.05);
    }

    #[test]
    fn buoyancy_lifts_warm_air() {
        // Hot ground, no wind: expect upward w in the interior.
        let spec = DomainSpec {
            size_m: [40.0, 40.0, 10.0],
            cells: [12, 12, 8],
            canopy: vec![],
        };
        let mesh = Mesh::generate(&spec);
        let mut bc = BoundarySpec::intact(0.0, 0.0, 20.0);
        bc.ground_temp_c = 45.0;
        let mut sim = Simulation::new(mesh, bc, SolverConfig::default());
        sim.run(80);
        // Mean vertical velocity in the lower interior should be upward.
        let mut wsum = 0.0;
        let mut n = 0;
        for j in 1..sim.w.ny - 1 {
            for i in 1..sim.w.nx - 1 {
                wsum += sim.w.at(i, j, 2);
                n += 1;
            }
        }
        assert!(
            wsum / n as f64 > 1e-4,
            "warm ground must drive updraft: {}",
            wsum / n as f64
        );
    }
}
