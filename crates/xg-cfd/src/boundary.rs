//! Boundary conditions for the screen-house solve.
//!
//! The free-stream wind hits the porous screen walls; each wall panel
//! admits `porosity × (wind · inward normal)` of normal inflow. Intact
//! 50-mesh screen has porosity ~0.25; a breached panel approaches 1.0 and
//! admits a jet — the aerodynamic signature the digital twin looks for.

use serde::{Deserialize, Serialize};

/// Per-panel porosity of one wall (panels indexed along the wall).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WallPorosity {
    /// Porosity of each panel in [0, 1].
    pub panels: Vec<f64>,
}

impl WallPorosity {
    /// A uniform wall.
    pub fn uniform(porosity: f64, panels: usize) -> Self {
        WallPorosity {
            panels: vec![porosity.clamp(0.0, 1.0); panels],
        }
    }

    /// Porosity at a fractional position `frac` ∈ [0, 1] along the wall.
    pub fn at(&self, frac: f64) -> f64 {
        if self.panels.is_empty() {
            return 0.0;
        }
        let idx = ((frac.clamp(0.0, 1.0)) * self.panels.len() as f64) as usize;
        self.panels[idx.min(self.panels.len() - 1)]
    }

    /// Set one panel's porosity (breach injection).
    pub fn set_panel(&mut self, panel: usize, porosity: f64) {
        if let Some(p) = self.panels.get_mut(panel) {
            *p = porosity.clamp(0.0, 1.0);
        }
    }
}

/// Full boundary specification for one solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundarySpec {
    /// Free-stream wind speed (m/s).
    pub wind_speed_ms: f64,
    /// Meteorological wind direction (deg, 0 = from north = blowing −y).
    pub wind_dir_deg: f64,
    /// Ambient (exterior) temperature (°C).
    pub ambient_temp_c: f64,
    /// Ground temperature (°C) — drives buoyancy.
    pub ground_temp_c: f64,
    /// Porosity of the four walls: west (x=0), east, south (y=0), north.
    pub west: WallPorosity,
    /// East wall.
    pub east: WallPorosity,
    /// South wall.
    pub south: WallPorosity,
    /// North wall.
    pub north: WallPorosity,
}

impl BoundarySpec {
    /// Intact screen house under the given wind.
    pub fn intact(wind_speed_ms: f64, wind_dir_deg: f64, ambient_temp_c: f64) -> Self {
        let p = 0.25;
        let n = 12;
        BoundarySpec {
            wind_speed_ms,
            wind_dir_deg,
            ambient_temp_c,
            ground_temp_c: ambient_temp_c + 2.0,
            west: WallPorosity::uniform(p, n),
            east: WallPorosity::uniform(p, n),
            south: WallPorosity::uniform(p, n),
            north: WallPorosity::uniform(p, n),
        }
    }

    /// Wind velocity components (u along +x = east, v along +y = north).
    ///
    /// Meteorological convention: direction is where the wind comes FROM,
    /// so wind from the north (0°) blows southward (−y).
    pub fn wind_uv(&self) -> (f64, f64) {
        let rad = self.wind_dir_deg.to_radians();
        let u = -self.wind_speed_ms * rad.sin();
        let v = -self.wind_speed_ms * rad.cos();
        (u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wind_vector_convention() {
        // Wind from north (0°) blows toward -y.
        let b = BoundarySpec::intact(5.0, 0.0, 20.0);
        let (u, v) = b.wind_uv();
        assert!(u.abs() < 1e-9);
        assert!((v + 5.0).abs() < 1e-9);
        // Wind from west (270°) blows toward +x.
        let b = BoundarySpec::intact(3.0, 270.0, 20.0);
        let (u, v) = b.wind_uv();
        assert!((u - 3.0).abs() < 1e-9);
        assert!(v.abs() < 1e-6);
    }

    #[test]
    fn porosity_lookup() {
        let mut w = WallPorosity::uniform(0.25, 4);
        w.set_panel(2, 0.9);
        assert_eq!(w.at(0.0), 0.25);
        assert_eq!(w.at(0.6), 0.9); // panel 2 covers [0.5, 0.75)
        assert_eq!(w.at(1.0), 0.25); // clamped into last panel
                                     // Out-of-range set is a no-op.
        w.set_panel(99, 1.0);
        assert_eq!(w.panels.len(), 4);
    }

    #[test]
    fn porosity_clamped() {
        let w = WallPorosity::uniform(3.0, 2);
        assert_eq!(w.at(0.1), 1.0);
        let w = WallPorosity::uniform(-1.0, 2);
        assert_eq!(w.at(0.1), 0.0);
        let empty = WallPorosity { panels: vec![] };
        assert_eq!(empty.at(0.5), 0.0);
    }
}
