//! Field output: the Fig. 3 "sample output" panel.
//!
//! The paper's artifact renders OpenFOAM's VTK output with ParaView into a
//! PNG of the airflow around the farm, "with the wind velocity represented
//! by color gradients". Here the equivalent raster is produced directly:
//! a horizontal slice of velocity magnitude written as CSV (for plotting)
//! or as a binary PGM image (directly viewable grayscale).

use crate::solver::Simulation;
use std::fmt::Write as _;

/// Velocity-magnitude raster of the horizontal slice at level `k`.
///
/// Returns `(nx, ny, values)` with `values[j * nx + i]` in m/s.
pub fn velocity_magnitude_slice(sim: &Simulation, k: usize) -> (usize, usize, Vec<f64>) {
    let (nx, ny) = (sim.u.nx, sim.u.ny);
    let k = k.min(sim.u.nz - 1);
    let mut out = vec![0.0; nx * ny];
    for j in 0..ny {
        for i in 0..nx {
            let u = sim.u.at(i, j, k);
            let v = sim.v.at(i, j, k);
            let w = sim.w.at(i, j, k);
            out[j * nx + i] = (u * u + v * v + w * w).sqrt();
        }
    }
    (nx, ny, out)
}

/// CSV rendering of a slice: header row `x0..x{nx-1}`, one row per j.
pub fn slice_to_csv(nx: usize, ny: usize, values: &[f64]) -> String {
    assert_eq!(values.len(), nx * ny);
    let mut s = String::with_capacity(nx * ny * 8);
    for j in 0..ny {
        for i in 0..nx {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{:.4}", values[j * nx + i]);
        }
        s.push('\n');
    }
    s
}

/// Velocity-magnitude raster of the vertical slice at row `j` (an x–z
/// cross-section, useful for seeing the canopy wind shadow and the roof
/// boundary layer).
pub fn velocity_magnitude_vertical_slice(sim: &Simulation, j: usize) -> (usize, usize, Vec<f64>) {
    let (nx, nz) = (sim.u.nx, sim.u.nz);
    let j = j.min(sim.u.ny - 1);
    let mut out = vec![0.0; nx * nz];
    for k in 0..nz {
        for i in 0..nx {
            let u = sim.u.at(i, j, k);
            let v = sim.v.at(i, j, k);
            let w = sim.w.at(i, j, k);
            out[k * nx + i] = (u * u + v * v + w * w).sqrt();
        }
    }
    (nx, nz, out)
}

/// Legacy-ASCII VTK structured-points dataset of the full state: velocity
/// vectors, velocity magnitude, pressure, and temperature. This is the
/// format the paper's pipeline hands to ParaView.
pub fn to_vtk(sim: &Simulation, title: &str) -> String {
    let (nx, ny, nz) = (sim.u.nx, sim.u.ny, sim.u.nz);
    let [dx, dy, dz] = sim.mesh.d;
    let n = nx * ny * nz;
    let mut s = String::with_capacity(n * 64);
    s.push_str("# vtk DataFile Version 3.0\n");
    let _ = writeln!(s, "{title}");
    s.push_str("ASCII\nDATASET STRUCTURED_POINTS\n");
    let _ = writeln!(s, "DIMENSIONS {nx} {ny} {nz}");
    let _ = writeln!(s, "ORIGIN {} {} {}", dx / 2.0, dy / 2.0, dz / 2.0);
    let _ = writeln!(s, "SPACING {dx} {dy} {dz}");
    let _ = writeln!(s, "POINT_DATA {n}");
    s.push_str("VECTORS velocity double\n");
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let _ = writeln!(
                    s,
                    "{:.5} {:.5} {:.5}",
                    sim.u.at(i, j, k),
                    sim.v.at(i, j, k),
                    sim.w.at(i, j, k)
                );
            }
        }
    }
    for (name, field) in [("pressure", &sim.p), ("temperature", &sim.t)] {
        let _ = writeln!(s, "SCALARS {name} double 1");
        s.push_str("LOOKUP_TABLE default\n");
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let _ = writeln!(s, "{:.5}", field.at(i, j, k));
                }
            }
        }
    }
    s
}

/// Binary PGM (P5) rendering with auto-scaled intensity.
pub fn slice_to_pgm(nx: usize, ny: usize, values: &[f64]) -> Vec<u8> {
    assert_eq!(values.len(), nx * ny);
    let max = values.iter().cloned().fold(1e-12f64, f64::max);
    let mut out = format!("P5\n{nx} {ny}\n255\n").into_bytes();
    out.extend(values.iter().map(|&v| ((v / max) * 255.0).round() as u8));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::BoundarySpec;
    use crate::mesh::{DomainSpec, Mesh};
    use crate::solver::SolverConfig;

    fn sim() -> Simulation {
        let mesh = Mesh::generate(&DomainSpec::cups_default().with_cells(12, 10, 4));
        let mut s = Simulation::new(
            mesh,
            BoundarySpec::intact(5.0, 270.0, 22.0),
            SolverConfig::default(),
        );
        s.run(10);
        s
    }

    #[test]
    fn slice_extracts_magnitudes() {
        let s = sim();
        let (nx, ny, vals) = velocity_magnitude_slice(&s, 2);
        assert_eq!(vals.len(), nx * ny);
        assert!(vals.iter().all(|v| *v >= 0.0 && v.is_finite()));
        assert!(vals.iter().any(|v| *v > 0.0), "flow must be visible");
        // k clamped.
        let (_, _, top) = velocity_magnitude_slice(&s, 999);
        assert_eq!(top.len(), nx * ny);
    }

    #[test]
    fn csv_shape() {
        let s = sim();
        let (nx, ny, vals) = velocity_magnitude_slice(&s, 2);
        let csv = slice_to_csv(nx, ny, &vals);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), ny);
        assert_eq!(lines[0].split(',').count(), nx);
    }

    #[test]
    fn vertical_slice_shape() {
        let s = sim();
        let (nx, nz, vals) = velocity_magnitude_vertical_slice(&s, 5);
        assert_eq!(nx, s.u.nx);
        assert_eq!(nz, s.u.nz);
        assert_eq!(vals.len(), nx * nz);
        assert!(vals.iter().all(|v| v.is_finite() && *v >= 0.0));
        // Ground row (k = 0) is no-slip: zero speed.
        assert!(vals[..nx].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn vtk_dataset_well_formed() {
        let s = sim();
        let vtk = to_vtk(&s, "cups test");
        assert!(vtk.starts_with("# vtk DataFile Version 3.0\n"));
        assert!(vtk.contains("DATASET STRUCTURED_POINTS"));
        assert!(vtk.contains(&format!("DIMENSIONS {} {} {}", s.u.nx, s.u.ny, s.u.nz)));
        assert!(vtk.contains("VECTORS velocity double"));
        assert!(vtk.contains("SCALARS pressure double 1"));
        assert!(vtk.contains("SCALARS temperature double 1"));
        // One vector line per point plus two scalar blocks of n lines.
        let n = s.u.nx * s.u.ny * s.u.nz;
        let data_lines = vtk
            .lines()
            .filter(|l| {
                l.chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '-')
            })
            .count();
        // n vector lines + 2n scalar lines + a handful of header numerics.
        assert!(data_lines >= 3 * n, "{data_lines} vs {}", 3 * n);
    }

    #[test]
    fn pgm_header_and_size() {
        let s = sim();
        let (nx, ny, vals) = velocity_magnitude_slice(&s, 2);
        let pgm = slice_to_pgm(nx, ny, &vals);
        let header = format!("P5\n{nx} {ny}\n255\n");
        assert!(pgm.starts_with(header.as_bytes()));
        assert_eq!(pgm.len(), header.len() + nx * ny);
        // Max intensity cell is 255.
        assert!(pgm[header.len()..].contains(&255));
    }
}
