//! Digital-twin comparison and breach localization.
//!
//! §2: "once the model is calibrated, a deviation between predicted and
//! measured airflow can portend a possible screen breach and, perhaps, an
//! area of the structure where the breach may have occurred." The twin
//! compares the CFD prediction (run with *intact*-screen boundary
//! conditions) against in-situ measurements; a significant positive
//! residual flags a breach, and the wall panel nearest the largest local
//! residual localizes it for robot dispatch.

use crate::solver::Simulation;
use serde::{Deserialize, Serialize};

/// One interior measurement point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Position (m).
    pub x: f64,
    /// Position (m).
    pub y: f64,
    /// Position (m).
    pub z: f64,
    /// Measured horizontal wind speed (m/s).
    pub wind_ms: f64,
}

/// Twin verdict for one comparison cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwinReport {
    /// Mean measured minus predicted wind (m/s).
    pub mean_residual_ms: f64,
    /// Largest single-point residual (m/s).
    pub max_residual_ms: f64,
    /// Index (into the measurement list) of the largest residual.
    pub max_residual_point: usize,
    /// Whether the divergence exceeds the breach threshold.
    pub breach_suspected: bool,
    /// Suspected breach region: the (x, y) of the most anomalous
    /// measurement, projected to the nearest wall.
    pub suspect_region: Option<(f64, f64)>,
}

/// The digital twin: prediction vs measurement comparator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DigitalTwin {
    /// Residual (m/s) above which a breach is suspected. Must sit above
    /// the calibrated model error + sensor noise floor.
    pub breach_threshold_ms: f64,
}

impl Default for DigitalTwin {
    fn default() -> Self {
        DigitalTwin {
            breach_threshold_ms: 0.35,
        }
    }
}

/// Decay length (m) assumed for a breach jet when matching the residual
/// pattern against candidate wall panels.
const LOCALIZE_DECAY_M: f64 = 40.0;

impl DigitalTwin {
    /// Compare measurements with the prediction in `sim`.
    ///
    /// Returns `None` for an empty measurement set. Localization projects
    /// the most anomalous point to the nearest wall; with sparse interior
    /// stations prefer [`Self::compare_with_candidates`].
    pub fn compare(&self, sim: &Simulation, measurements: &[Measurement]) -> Option<TwinReport> {
        self.compare_with_candidates(sim, measurements, &[])
    }

    /// Compare and, on suspicion, localize the breach against a candidate
    /// list of wall-panel centres (m) via a matched filter: the panel whose
    /// exponential-decay footprint best correlates with the residual
    /// pattern wins. With an empty candidate list the most anomalous
    /// measurement is projected to the nearest wall instead.
    pub fn compare_with_candidates(
        &self,
        sim: &Simulation,
        measurements: &[Measurement],
        candidates: &[(f64, f64)],
    ) -> Option<TwinReport> {
        if measurements.is_empty() {
            return None;
        }
        let mut residuals = Vec::with_capacity(measurements.len());
        for m in measurements {
            let predicted = sim.wind_speed_at(m.x, m.y, m.z);
            residuals.push(m.wind_ms - predicted);
        }
        let mean = residuals.iter().sum::<f64>() / residuals.len() as f64;
        let (max_idx, max_res) = residuals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, &r)| (i, r))?;
        let breach = max_res > self.breach_threshold_ms;
        let suspect = if !breach {
            None
        } else if candidates.is_empty() {
            let m = measurements[max_idx];
            let size = sim.mesh.size_m();
            Some(nearest_wall_point(m.x, m.y, size[0], size[1]))
        } else {
            candidates
                .iter()
                .map(|&(cx, cy)| {
                    // Normalized matched-filter score of this candidate's
                    // decay footprint against the residual pattern.
                    let mut dot = 0.0;
                    let mut norm = 0.0;
                    for (m, &r) in measurements.iter().zip(&residuals) {
                        let d = ((m.x - cx).powi(2) + (m.y - cy).powi(2)).sqrt();
                        let w = (-d / LOCALIZE_DECAY_M).exp();
                        dot += r * w;
                        norm += w * w;
                    }
                    ((cx, cy), dot / norm.sqrt().max(1e-12))
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(pos, _)| pos)
        };
        Some(TwinReport {
            mean_residual_ms: mean,
            max_residual_ms: max_res,
            max_residual_point: max_idx,
            breach_suspected: breach,
            suspect_region: suspect,
        })
    }
}

/// Project an interior point to the nearest wall (x, y).
fn nearest_wall_point(x: f64, y: f64, lx: f64, ly: f64) -> (f64, f64) {
    let d_west = x;
    let d_east = lx - x;
    let d_south = y;
    let d_north = ly - y;
    let min = d_west.min(d_east).min(d_south).min(d_north);
    if min == d_west {
        (0.0, y)
    } else if min == d_east {
        (lx, y)
    } else if min == d_south {
        (x, 0.0)
    } else {
        (x, ly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::BoundarySpec;
    use crate::mesh::{DomainSpec, Mesh};
    use crate::solver::SolverConfig;

    fn predicted_sim() -> Simulation {
        let mesh = Mesh::generate(&DomainSpec::cups_default().with_cells(20, 16, 6));
        let mut s = Simulation::new(
            mesh,
            BoundarySpec::intact(6.0, 270.0, 22.0),
            SolverConfig::default(),
        );
        s.run(60);
        s
    }

    fn probe_points(sim: &Simulation) -> Vec<(f64, f64, f64)> {
        let size = sim.mesh.size_m();
        vec![
            (size[0] * 0.25, size[1] * 0.25, 4.0),
            (size[0] * 0.75, size[1] * 0.25, 4.0),
            (size[0] * 0.5, size[1] * 0.5, 4.0),
            (size[0] * 0.25, size[1] * 0.75, 4.0),
            (size[0] * 0.75, size[1] * 0.75, 4.0),
        ]
    }

    #[test]
    fn matching_measurements_no_breach() {
        let sim = predicted_sim();
        let measurements: Vec<Measurement> = probe_points(&sim)
            .into_iter()
            .map(|(x, y, z)| Measurement {
                x,
                y,
                z,
                wind_ms: sim.wind_speed_at(x, y, z) + 0.05, // small sensor noise
            })
            .collect();
        let report = DigitalTwin::default().compare(&sim, &measurements).unwrap();
        assert!(!report.breach_suspected, "{report:?}");
        assert!(report.suspect_region.is_none());
        assert!(report.mean_residual_ms.abs() < 0.2);
    }

    #[test]
    fn breach_measurements_flagged_and_localized() {
        let sim = predicted_sim();
        let pts = probe_points(&sim);
        let measurements: Vec<Measurement> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y, z))| Measurement {
                x,
                y,
                z,
                // Point 0 at (0.25·L, 0.25·W) — nearest the south wall —
                // sees a jet.
                wind_ms: sim.wind_speed_at(x, y, z) + if i == 0 { 1.5 } else { 0.02 },
            })
            .collect();
        let report = DigitalTwin::default().compare(&sim, &measurements).unwrap();
        assert!(report.breach_suspected);
        assert_eq!(report.max_residual_point, 0);
        let (_, wy) = report.suspect_region.unwrap();
        assert_eq!(wy, 0.0, "suspect region on the south wall");
    }

    #[test]
    fn empty_measurements_none() {
        let sim = predicted_sim();
        assert!(DigitalTwin::default().compare(&sim, &[]).is_none());
    }

    #[test]
    fn nearest_wall_projection() {
        assert_eq!(nearest_wall_point(1.0, 50.0, 120.0, 100.0), (0.0, 50.0));
        assert_eq!(nearest_wall_point(119.0, 50.0, 120.0, 100.0), (120.0, 50.0));
        assert_eq!(nearest_wall_point(60.0, 2.0, 120.0, 100.0), (60.0, 0.0));
        assert_eq!(nearest_wall_point(60.0, 99.0, 120.0, 100.0), (60.0, 100.0));
    }

    #[test]
    fn threshold_controls_sensitivity() {
        let sim = predicted_sim();
        let pts = probe_points(&sim);
        let measurements: Vec<Measurement> = pts
            .iter()
            .map(|&(x, y, z)| Measurement {
                x,
                y,
                z,
                wind_ms: sim.wind_speed_at(x, y, z) + 0.3,
            })
            .collect();
        let strict = DigitalTwin {
            breach_threshold_ms: 0.1,
        };
        let lax = DigitalTwin {
            breach_threshold_ms: 1.0,
        };
        assert!(
            strict
                .compare(&sim, &measurements)
                .unwrap()
                .breach_suspected
        );
        assert!(!lax.compare(&sim, &measurements).unwrap().breach_suspected);
    }
}
