//! # xg-cfd — finite-volume CFD solver (OpenFOAM substitute)
//!
//! The paper's application runs OpenFOAM to "model airflow and heat
//! transfer inside the CUPS (a 100,000 cubic meter screen house) to predict
//! internal conditions based on sensor measurements at the boundaries"
//! (§1), on a single 64-core node where the full computation (including
//! mesh generation) averages 420.39 s (§4.3, Fig. 7). This crate implements
//! the same pipeline from scratch:
//!
//! * [`mesh`] — structured hexahedral mesh generation over the screen-house
//!   domain, with canopy blocks and per-wall-panel porosity. Mesh
//!   generation is deliberately a serial phase, as in the paper's runs,
//!   because it bounds strong scaling (Fig. 7's plateau).
//! * [`field`] — flat 3-D scalar fields with slab-parallel sweep support.
//! * [`boundary`] — boundary conditions derived from wind speed/direction
//!   and screen porosity (breaches appear as high-porosity panels that
//!   admit jets).
//! * [`poisson`] — the pressure Poisson solver (Jacobi, double-buffered:
//!   bitwise-deterministic regardless of thread count).
//! * [`solver`] — the incompressible projection-method solver with upwind
//!   advection, eddy-viscosity diffusion, Boussinesq buoyancy, and canopy
//!   drag.
//! * [`parallel`] — rayon thread-pool control plus the calibrated
//!   performance model used to reproduce Fig. 7's scaling curve at paper
//!   scale (and the §4.4 multi-node slowdown).
//! * [`output`] — rasterized field output (CSV / PGM), the Fig. 3 panel.
//! * [`twin`] — digital-twin comparison: predicted vs measured interior
//!   wind, divergence scoring, and breach localization.

//! ```
//! use xg_cfd::prelude::*;
//!
//! // A reduced-resolution screen-house solve under a west wind.
//! let mesh = Mesh::generate(&DomainSpec::cups_default().with_cells(16, 14, 5));
//! let bc = xg_cfd::boundary::BoundarySpec::intact(5.0, 270.0, 22.0);
//! let mut sim = Simulation::new(mesh, bc, SolverConfig::default());
//! sim.run(30);
//! assert!(sim.mean_interior_wind() > 0.0);
//! assert!(sim.cfl() < 1.0, "stable step");
//! ```

// Non-test library code must thread typed errors instead of panicking:
// the same invariant xg-lint's panicking-call rule enforces for expect/panic.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod boundary;
pub mod field;
pub mod mesh;
pub mod output;
pub mod parallel;
pub mod poisson;
pub mod solver;
pub mod twin;

/// Commonly used types.
pub mod prelude {
    pub use crate::boundary::{BoundarySpec, WallPorosity};
    pub use crate::field::Field3;
    pub use crate::mesh::{CellType, DomainSpec, Mesh};
    pub use crate::parallel::{run_with_threads, CfdPerfModel};
    pub use crate::solver::{Simulation, SolverConfig};
    pub use crate::twin::{DigitalTwin, TwinReport};
}

pub use prelude::*;
