//! Property-based invariants of the CSPOT runtime.

use proptest::prelude::*;
use std::sync::Arc;
use xg_cspot::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// File-backend durability: any sequence of appends recovers exactly
    /// across a close/reopen cycle.
    #[test]
    fn file_backend_roundtrip(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 6), 1..20),
        case_id in 0u64..u64::MAX,
    ) {
        let dir = std::env::temp_dir()
            .join(format!("xg-prop-{}-{case_id:x}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let node = CspotNode::durable("UNL", &dir);
            node.create_log("p", 6, 1000).unwrap();
            for p in &payloads {
                node.put("p", p).unwrap();
            }
        }
        let node = CspotNode::durable("UNL", &dir);
        let log = node.open_log("p", 6, 1000).unwrap();
        prop_assert_eq!(log.len(), payloads.len());
        for (i, p) in payloads.iter().enumerate() {
            prop_assert_eq!(&log.get(i as u64 + 1).unwrap(), p);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The remote protocol delivers exactly once under arbitrary ack-loss
    /// schedules, and the sequence order matches the send order.
    #[test]
    fn remote_exactly_once_under_ack_loss(
        losses in proptest::collection::vec(0u32..3, 1..12),
        seed in 0u64..10_000,
    ) {
        let server = Arc::new(CspotNode::in_memory("UCSB"));
        server.create_log("l", 8, 10_000).unwrap();
        let cfg = RemoteConfig {
            timeout_ms: 10.0,
            ..Default::default()
        };
        let mut appender = RemoteAppender::new(
            SimClock::new(),
            RoutePath::single(PathModel::wired(1.0, 0.05)),
            cfg,
            seed,
        );
        for (i, &loss) in losses.iter().enumerate() {
            appender.inject_ack_loss(loss);
            let o = appender
                .append(&server, "l", &(i as u64).to_le_bytes())
                .unwrap();
            prop_assert_eq!(o.seq, i as u64 + 1);
            prop_assert_eq!(o.attempts, loss + 1);
        }
        prop_assert_eq!(server.log("l").unwrap().len(), losses.len());
    }

    /// Latency over a jitter-free route is deterministic: base × 4
    /// crossings + storage, independent of payload content.
    #[test]
    fn latency_composition(base in 0.5f64..50.0, payload in proptest::collection::vec(any::<u8>(), 16)) {
        let server = Arc::new(CspotNode::in_memory("UCSB"));
        server.create_log("l", 16, 100).unwrap();
        let cfg = RemoteConfig {
            storage_jitter_ms: 0.0,
            connect_ms: 0.0,
            ..Default::default()
        };
        let mut appender = RemoteAppender::new(
            SimClock::new(),
            RoutePath::single(PathModel::wired(base, 0.0)),
            cfg,
            1,
        );
        let o = appender.append(&server, "l", &payload).unwrap();
        let expect = 4.0 * base.max(0.1) + 2.0;
        prop_assert!((o.latency_ms - expect).abs() < 0.02, "{} vs {}", o.latency_ms, expect);
    }

    /// Gateway drains preserve order and count for any buffered stream,
    /// regardless of where a partition interrupts.
    #[test]
    fn gateway_drain_order(
        n_before in 1usize..8,
        n_during in 0usize..8,
        seed in 0u64..1000,
    ) {
        let local = Arc::new(CspotNode::in_memory("UNL"));
        local.create_log("buf", 8, 1024).unwrap();
        let remote = Arc::new(CspotNode::in_memory("UCSB"));
        remote.create_log("dst", 8, 1024).unwrap();
        let cfg = RemoteConfig {
            timeout_ms: 5.0,
            max_attempts: 2,
            ..Default::default()
        };
        let appender = RemoteAppender::new(
            SimClock::new(),
            RoutePath::single(PathModel::wired(1.0, 0.0)),
            cfg,
            seed,
        );
        let mut gw = Gateway::new(local, "buf", "dst", appender).unwrap();
        let mut sent = 0u64;
        for _ in 0..n_before {
            gw.buffer(&sent.to_le_bytes()).unwrap();
            sent += 1;
        }
        gw.drain(&remote);
        gw.route_mut().set_partitioned(true);
        for _ in 0..n_during {
            gw.buffer(&sent.to_le_bytes()).unwrap();
            sent += 1;
        }
        gw.drain(&remote); // fails silently, parks data
        gw.route_mut().set_partitioned(false);
        gw.drain(&remote);
        let log = remote.log("dst").unwrap();
        prop_assert_eq!(log.len() as u64, sent);
        for i in 0..sent {
            prop_assert_eq!(remote.get("dst", i + 1).unwrap(), i.to_le_bytes());
        }
    }

    /// The outage process's long-run availability converges to the
    /// analytic `mtbf/(mtbf+mttr)` for any parameters and seed. The horizon
    /// scales with the cycle length so every case sees many hundreds of
    /// up/down cycles; tolerance is loose because exponential holding
    /// times have heavy relative variance.
    #[test]
    fn outage_availability_converges(
        mtbf_s in 200.0f64..20_000.0,
        mttr_s in 50.0f64..5_000.0,
        seed in 0u64..10_000,
    ) {
        let config = OutageConfig { mtbf_s, mttr_s };
        let mut process = OutageProcess::new(config, seed);
        let cycle = mtbf_s + mttr_s;
        let horizon = 2_000.0 * cycle;
        let step = cycle / 3.0;
        let mut down_total = 0.0;
        let mut t = 0.0;
        while t < horizon {
            t += step;
            let (_, down) = process.advance_time(t);
            down_total += down;
        }
        let measured = 1.0 - down_total / t;
        let expect = config.availability();
        prop_assert!(
            (measured - expect).abs() < 0.04,
            "availability {} vs analytic {} (mtbf {}, mttr {}, seed {})",
            measured, expect, mtbf_s, mttr_s, seed
        );
    }
}
