//! The field gateway agent.
//!
//! §3.2: each Raspberry Pi runs "a software agent called CSPOT, which
//! continuously forwards sensor data using standard IP networking
//! protocols to external endpoints". The agent couples a **local durable
//! buffer log** with a **drain loop** over the remote append protocol, so
//! connectivity loss (frequent in remote 5G deployments, §3.1) never loses
//! data: samples park in the local log and drain exactly once when the
//! path heals.

use crate::error::{CspotError, Result};
use crate::node::CspotNode;
use crate::protocol::{AppendOutcome, RemoteAppender};

/// Cursor state: the gateway tracks the highest locally-buffered sequence
/// number it has successfully relayed (persisted in its own meta log so a
/// gateway restart resumes the drain).
const CURSOR_LOG: &str = "gateway.cursor";

/// A store-and-forward gateway from a local buffer log to a remote log.
pub struct Gateway {
    /// The field node holding the local buffer.
    local: std::sync::Arc<CspotNode>,
    /// Name of the local buffer log.
    buffer_log: String,
    /// Name of the remote destination log.
    remote_log: String,
    /// Name of the cursor log (distinct per gateway when several share a
    /// field node).
    cursor_log: String,
    appender: RemoteAppender,
}

/// Result of one drain pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrainReport {
    /// Elements relayed this pass.
    pub relayed: usize,
    /// Elements still waiting (path failed mid-drain).
    pub remaining: usize,
    /// Total virtual-time latency spent (ms).
    pub latency_ms: f64,
}

impl Gateway {
    /// Create a gateway. The buffer log must already exist on `local`;
    /// the cursor log is created (or recovered) automatically.
    pub fn new(
        local: std::sync::Arc<CspotNode>,
        buffer_log: &str,
        remote_log: &str,
        appender: RemoteAppender,
    ) -> Result<Self> {
        Self::with_cursor_log(local, buffer_log, remote_log, CURSOR_LOG, appender)
    }

    /// Like [`Gateway::new`] but with an explicit cursor-log name, so
    /// several gateways can share one field node without clobbering each
    /// other's drain cursors.
    pub fn with_cursor_log(
        local: std::sync::Arc<CspotNode>,
        buffer_log: &str,
        remote_log: &str,
        cursor_log: &str,
        appender: RemoteAppender,
    ) -> Result<Self> {
        // Cursor entries are 8-byte little-endian sequence numbers.
        local.open_log(cursor_log, 8, 64)?;
        local.log(buffer_log)?; // validate existence
        Ok(Gateway {
            local,
            buffer_log: buffer_log.to_string(),
            remote_log: remote_log.to_string(),
            cursor_log: cursor_log.to_string(),
            appender,
        })
    }

    /// Highest buffered sequence successfully relayed (0 = none).
    pub fn cursor(&self) -> u64 {
        self.local
            .log(&self.cursor_log)
            .ok()
            .and_then(|log| {
                log.latest_seq().and_then(|seq| {
                    log.get(seq)
                        .ok()
                        .and_then(|b| b.get(..8).and_then(|s| s.try_into().ok()))
                        .map(u64::from_le_bytes)
                })
            })
            .unwrap_or(0)
    }

    fn advance_cursor(&self, to: u64) -> Result<()> {
        self.local.put(&self.cursor_log, &to.to_le_bytes())?;
        Ok(())
    }

    /// Buffer one sample locally (never touches the network).
    pub fn buffer(&self, payload: &[u8]) -> Result<u64> {
        self.local.put(&self.buffer_log, payload)
    }

    /// Elements buffered but not yet relayed.
    pub fn backlog(&self) -> usize {
        let log = match self.local.log(&self.buffer_log) {
            Ok(l) => l,
            Err(_) => return 0,
        };
        log.scan_from(self.cursor() + 1).len()
    }

    /// Drain the backlog to the remote node, stopping at the first
    /// failure (e.g. an ongoing partition). Each element is relayed with
    /// an idempotency token derived from its buffer sequence number, so a
    /// drain interrupted after the remote append but before the cursor
    /// update cannot duplicate on retry.
    pub fn drain(&mut self, remote: &CspotNode) -> DrainReport {
        let mut relayed = 0usize;
        let mut latency_ms = 0.0;
        let pending: Vec<(u64, Vec<u8>)> = match self.local.log(&self.buffer_log) {
            Ok(log) => log.scan_from(self.cursor() + 1),
            Err(_) => Vec::new(),
        };
        let total = pending.len();
        for (seq, payload) in pending {
            match self.relay_one(remote, seq, &payload) {
                Ok(outcome) => {
                    latency_ms += outcome.latency_ms;
                    if self.advance_cursor(seq).is_err() {
                        break;
                    }
                    relayed += 1;
                }
                Err(_) => break,
            }
        }
        DrainReport {
            relayed,
            remaining: total - relayed,
            latency_ms,
        }
    }

    fn relay_one(
        &mut self,
        remote: &CspotNode,
        buffer_seq: u64,
        payload: &[u8],
    ) -> std::result::Result<AppendOutcome, CspotError> {
        // Token namespace: gateway buffer sequence numbers, offset so they
        // never collide with the appender's own token counter space.
        let token = 0x6A7E_0000_0000_0000_u128 << 64 | buffer_seq as u128;
        self.appender
            .append_with_token(remote, &self.remote_log, payload, token)
    }

    /// Mutable access to the underlying route (partition injection).
    pub fn route_mut(&mut self) -> &mut crate::netsim::RoutePath {
        self.appender.route_mut()
    }

    /// Attach observability to the underlying remote appender (per-phase
    /// append RTTs and retry counters for every relayed element).
    pub fn set_obs(&mut self, obs: &xg_obs::Obs) {
        self.appender.set_obs(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::{PathModel, RoutePath, SimClock};
    use crate::protocol::RemoteConfig;
    use std::sync::Arc;

    fn setup() -> (Gateway, Arc<CspotNode>) {
        let local = Arc::new(CspotNode::in_memory("UNL"));
        local.create_log("buf", 8, 1024).unwrap();
        let remote = Arc::new(CspotNode::in_memory("UCSB"));
        remote.create_log("telemetry", 8, 1024).unwrap();
        let cfg = RemoteConfig {
            timeout_ms: 20.0,
            max_attempts: 3,
            ..Default::default()
        };
        let appender = RemoteAppender::new(
            SimClock::new(),
            RoutePath::single(PathModel::wired(3.0, 0.2)),
            cfg,
            1,
        );
        let gw = Gateway::new(local, "buf", "telemetry", appender).unwrap();
        (gw, remote)
    }

    #[test]
    fn buffer_then_drain() {
        let (mut gw, remote) = setup();
        for i in 0..5u64 {
            gw.buffer(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(gw.backlog(), 5);
        let report = gw.drain(&remote);
        assert_eq!(report.relayed, 5);
        assert_eq!(report.remaining, 0);
        assert_eq!(gw.backlog(), 0);
        assert_eq!(remote.latest_seq("telemetry").unwrap(), Some(5));
        // Order preserved.
        for i in 0..5u64 {
            assert_eq!(remote.get("telemetry", i + 1).unwrap(), i.to_le_bytes());
        }
    }

    #[test]
    fn drain_is_incremental() {
        let (mut gw, remote) = setup();
        gw.buffer(&1u64.to_le_bytes()).unwrap();
        gw.drain(&remote);
        gw.buffer(&2u64.to_le_bytes()).unwrap();
        let report = gw.drain(&remote);
        assert_eq!(report.relayed, 1, "only the new element relays");
        assert_eq!(remote.log("telemetry").unwrap().len(), 2);
    }

    #[test]
    fn partition_parks_data_then_drains_exactly_once() {
        let (mut gw, remote) = setup();
        gw.route_mut().set_partitioned(true);
        for i in 0..4u64 {
            gw.buffer(&i.to_le_bytes()).unwrap();
        }
        let during = gw.drain(&remote);
        assert_eq!(during.relayed, 0);
        assert_eq!(during.remaining, 4);
        assert_eq!(gw.backlog(), 4, "data parked locally");

        gw.route_mut().set_partitioned(false);
        let after = gw.drain(&remote);
        assert_eq!(after.relayed, 4);
        assert_eq!(remote.log("telemetry").unwrap().len(), 4, "exactly once");
        // A second drain relays nothing.
        assert_eq!(gw.drain(&remote).relayed, 0);
    }

    #[test]
    fn empty_drain_is_noop() {
        let (mut gw, remote) = setup();
        let r = gw.drain(&remote);
        assert_eq!(r.relayed, 0);
        assert_eq!(r.remaining, 0);
        assert_eq!(r.latency_ms, 0.0);
    }

    #[test]
    fn two_gateways_on_one_node_keep_independent_cursors() {
        let local = Arc::new(CspotNode::in_memory("UNL"));
        local.create_log("buf_a", 8, 1024).unwrap();
        local.create_log("buf_b", 8, 1024).unwrap();
        let remote = Arc::new(CspotNode::in_memory("UCSB"));
        remote.create_log("dst_a", 8, 1024).unwrap();
        remote.create_log("dst_b", 8, 1024).unwrap();
        let mk_appender = |seed| {
            RemoteAppender::new(
                SimClock::new(),
                RoutePath::single(PathModel::wired(3.0, 0.2)),
                RemoteConfig::default(),
                seed,
            )
        };
        let mut a = Gateway::with_cursor_log(
            Arc::clone(&local),
            "buf_a",
            "dst_a",
            "cur_a",
            mk_appender(1),
        )
        .unwrap();
        let mut b = Gateway::with_cursor_log(
            Arc::clone(&local),
            "buf_b",
            "dst_b",
            "cur_b",
            mk_appender(2),
        )
        .unwrap();
        for i in 0..3u64 {
            a.buffer(&i.to_le_bytes()).unwrap();
        }
        b.buffer(&9u64.to_le_bytes()).unwrap();
        assert_eq!(a.drain(&remote).relayed, 3);
        // A's cursor advance must not make B think it already drained.
        assert_eq!(b.backlog(), 1);
        assert_eq!(b.drain(&remote).relayed, 1);
        assert_eq!(remote.log("dst_a").unwrap().len(), 3);
        assert_eq!(remote.log("dst_b").unwrap().len(), 1);
    }

    #[test]
    fn gateway_restart_resumes_from_cursor() {
        // Durable local node: the cursor survives a gateway power cycle.
        let dir = std::env::temp_dir().join(format!("xg-gw-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let remote = Arc::new(CspotNode::in_memory("UCSB"));
        remote.create_log("telemetry", 8, 1024).unwrap();
        let mk_appender = || {
            RemoteAppender::new(
                SimClock::new(),
                RoutePath::single(PathModel::wired(3.0, 0.2)),
                RemoteConfig::default(),
                1,
            )
        };
        {
            let local = Arc::new(CspotNode::durable("UNL", &dir));
            local.create_log("buf", 8, 1024).unwrap();
            let mut gw =
                Gateway::new(Arc::clone(&local), "buf", "telemetry", mk_appender()).unwrap();
            gw.buffer(&1u64.to_le_bytes()).unwrap();
            gw.buffer(&2u64.to_le_bytes()).unwrap();
            gw.drain(&remote);
            gw.buffer(&3u64.to_le_bytes()).unwrap();
            // Crash before draining element 3.
        }
        let local = Arc::new(CspotNode::durable("UNL", &dir));
        local.open_log("buf", 8, 1024).unwrap();
        let mut gw = Gateway::new(local, "buf", "telemetry", mk_appender()).unwrap();
        assert_eq!(gw.cursor(), 2, "cursor recovered");
        assert_eq!(gw.backlog(), 1);
        let r = gw.drain(&remote);
        assert_eq!(r.relayed, 1);
        assert_eq!(remote.log("telemetry").unwrap().len(), 3, "no duplicates");
    }
}
