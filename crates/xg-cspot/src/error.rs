//! Error type for the CSPOT runtime.

use std::fmt;

/// Errors produced by CSPOT log, node, and protocol operations.
#[derive(Debug)]
pub enum CspotError {
    /// The named log does not exist in the node's namespace.
    UnknownLog(String),
    /// A log with this name already exists.
    LogExists(String),
    /// The payload does not match the log's fixed element size.
    ElementSizeMismatch {
        /// The log's configured element size.
        expected: usize,
        /// The payload length supplied.
        got: usize,
    },
    /// The requested sequence number is not (or no longer) in the log's
    /// circular history window.
    SeqOutOfRange {
        /// Requested sequence number.
        seq: u64,
        /// Earliest retained sequence number (if any entries exist).
        earliest: Option<u64>,
        /// Latest sequence number (if any entries exist).
        latest: Option<u64>,
    },
    /// The append was written but the acknowledgment (sequence number) was
    /// lost — the paper's second failure mode. Retrying with the same
    /// idempotency token is safe.
    AckLost,
    /// The remote operation exhausted its retry budget (e.g. persistent
    /// network partition).
    RetriesExhausted {
        /// Number of attempts made.
        attempts: u32,
        /// Virtual time spent retrying before giving up (ms).
        elapsed_ms: f64,
    },
    /// Underlying storage failure.
    Storage(std::io::Error),
    /// A *sealed* segment failed its integrity check during recovery.
    ///
    /// Unlike a torn tail in the active segment (which is silently
    /// truncated — the crash interrupted an in-flight write), corruption
    /// behind the seal means acknowledged data was damaged at rest.
    /// Recovery fail-stops rather than silently dropping history.
    CorruptSegment {
        /// File name of the damaged segment.
        segment: String,
        /// What failed (frame CRC, footer CRC, missing footer, …).
        detail: String,
    },
    /// A replica was offered a record whose sequence number skips ahead
    /// of its next expected one — records were lost in between (e.g.
    /// compacted away on the primary before the follower caught up).
    ReplicaGap {
        /// The follower's next expected sequence number.
        expected: u64,
        /// The sequence number actually offered.
        got: u64,
    },
}

impl fmt::Display for CspotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CspotError::UnknownLog(name) => write!(f, "unknown log '{name}'"),
            CspotError::LogExists(name) => write!(f, "log '{name}' already exists"),
            CspotError::ElementSizeMismatch { expected, got } => {
                write!(f, "element size mismatch: expected {expected}, got {got}")
            }
            CspotError::SeqOutOfRange {
                seq,
                earliest,
                latest,
            } => write!(
                f,
                "sequence {seq} out of range (retained: {earliest:?}..={latest:?})"
            ),
            CspotError::AckLost => write!(f, "append acknowledged sequence number lost"),
            CspotError::RetriesExhausted {
                attempts,
                elapsed_ms,
            } => {
                write!(
                    f,
                    "remote operation failed after {attempts} attempts ({elapsed_ms:.1} ms of virtual time)"
                )
            }
            CspotError::Storage(e) => write!(f, "storage error: {e}"),
            CspotError::CorruptSegment { segment, detail } => {
                write!(f, "sealed segment '{segment}' is corrupt: {detail}")
            }
            CspotError::ReplicaGap { expected, got } => {
                write!(
                    f,
                    "replica gap: expected sequence {expected}, offered {got}"
                )
            }
        }
    }
}

impl std::error::Error for CspotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CspotError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CspotError {
    fn from(e: std::io::Error) -> Self {
        CspotError::Storage(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CspotError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = CspotError::ElementSizeMismatch {
            expected: 64,
            got: 65,
        };
        assert!(e.to_string().contains("64"));
        assert!(e.to_string().contains("65"));
        let e = CspotError::SeqOutOfRange {
            seq: 9,
            earliest: Some(10),
            latest: Some(20),
        };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn storage_engine_errors_carry_context() {
        let e = CspotError::CorruptSegment {
            segment: "00000000000000000001.seg".into(),
            detail: "record CRC mismatch at offset 128".into(),
        };
        let s = e.to_string();
        assert!(s.contains("00000000000000000001.seg"));
        assert!(s.contains("offset 128"));
        let e = CspotError::ReplicaGap {
            expected: 10,
            got: 15,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains("15"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("disk gone");
        let e: CspotError = io.into();
        assert!(matches!(e, CspotError::Storage(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
