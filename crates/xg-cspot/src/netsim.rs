//! Wide-area network substrate: virtual clock, path models, topology.
//!
//! The paper's Table 1 measures CSPOT 1 KB message latency over three
//! paths: UNL→UCSB across the private 5G network plus the Internet
//! (101 ± 17 ms), UNL→UCSB over the wired Internet (17 ± 0.8 ms), and
//! UCSB→ND over the Internet (92 ± 1 ms). [`Topology::paper`] encodes a
//! path model calibrated to reproduce those numbers through the two-phase
//! append protocol in [`crate::protocol`].

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared virtual clock in microseconds.
///
/// All protocol latency accounting runs in virtual time — nothing sleeps.
/// Microsecond integer resolution keeps the clock atomically updatable.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.micros.load(Ordering::Relaxed) as f64 / 1e3
    }

    /// Advance the clock by `ms` milliseconds.
    pub fn advance_ms(&self, ms: f64) {
        let delta = (ms * 1e3).max(0.0).round() as u64;
        self.micros.fetch_add(delta, Ordering::Relaxed);
    }
}

impl xg_sim::Advance for SimClock {
    type Error = std::convert::Infallible;

    fn now(&self) -> xg_sim::SimNs {
        xg_sim::SimNs(self.micros.load(Ordering::Relaxed) * 1_000)
    }

    /// Absolute-time view of the relative [`advance_ms`] primitive
    /// (which stays: replication tests drive the clock by deltas).
    /// Backwards targets are no-ops.
    ///
    /// [`advance_ms`]: SimClock::advance_ms
    fn advance_to(&mut self, t: xg_sim::SimNs) -> Result<(), Self::Error> {
        let target = t.0 / 1_000;
        // fetch_max: monotone even if several handles race.
        self.micros.fetch_max(target, Ordering::Relaxed);
        Ok(())
    }
}

/// One network segment's latency/loss model.
///
/// One-way delay is `base + N(0, jitter)` truncated below at `min_ms`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathModel {
    /// Mean one-way delay (ms).
    pub base_one_way_ms: f64,
    /// Gaussian jitter SD (ms).
    pub jitter_sigma_ms: f64,
    /// Probability that a crossing is lost.
    pub loss_prob: f64,
    /// Hard floor on one-way delay (ms).
    pub min_ms: f64,
    /// When true the segment drops everything (network partition).
    pub partitioned: bool,
}

impl PathModel {
    /// A deterministic-ish wired segment.
    pub fn wired(base_one_way_ms: f64, jitter_sigma_ms: f64) -> Self {
        PathModel {
            base_one_way_ms,
            jitter_sigma_ms,
            loss_prob: 0.0,
            min_ms: 0.1,
            partitioned: false,
        }
    }

    /// The calibrated private-5G access segment: ~21 ms mean one-way
    /// (air-interface + UL scheduling grant latency) with heavy jitter, the
    /// source of Table 1's 17 ms standard deviation. Loss is zero here —
    /// the paper's measurement campaign completed without retries; loss and
    /// partition behaviour are exercised through explicit fault injection.
    pub fn private_5g_access() -> Self {
        PathModel {
            base_one_way_ms: 21.0,
            jitter_sigma_ms: 8.5,
            loss_prob: 0.0,
            min_ms: 2.0,
            partitioned: false,
        }
    }

    /// Sample a one-way crossing. `None` means the message was lost.
    pub fn sample_one_way<R: Rng>(&self, rng: &mut R) -> Option<f64> {
        if self.partitioned {
            return None;
        }
        if self.loss_prob > 0.0 && rng.gen::<f64>() < self.loss_prob {
            return None;
        }
        let jitter = gaussian(rng) * self.jitter_sigma_ms;
        Some((self.base_one_way_ms + jitter).max(self.min_ms))
    }
}

/// A route: one or more segments in series (e.g. 5G access then Internet).
///
/// A crossing's latency is the sum of segment latencies; the crossing is
/// lost if any segment drops it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutePath {
    /// Segments in order from source to destination.
    pub segments: Vec<PathModel>,
}

impl RoutePath {
    /// A single-segment route.
    pub fn single(segment: PathModel) -> Self {
        RoutePath {
            segments: vec![segment],
        }
    }

    /// Sample one crossing over all segments.
    pub fn sample_one_way<R: Rng>(&self, rng: &mut R) -> Option<f64> {
        let mut total = 0.0;
        for seg in &self.segments {
            total += seg.sample_one_way(rng)?;
        }
        Some(total)
    }

    /// Partition or heal every segment of the route.
    pub fn set_partitioned(&mut self, partitioned: bool) {
        for seg in &mut self.segments {
            seg.partitioned = partitioned;
        }
    }

    /// Mean one-way latency ignoring loss (sum of segment bases).
    pub fn mean_one_way_ms(&self) -> f64 {
        self.segments.iter().map(|s| s.base_one_way_ms).sum()
    }
}

/// Named-site topology: a directory of routes between sites.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    routes: BTreeMap<(String, String), RoutePath>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Register a bidirectional route between two sites.
    pub fn add_route(&mut self, a: &str, b: &str, path: RoutePath) {
        self.routes
            .insert((a.to_string(), b.to_string()), path.clone());
        self.routes.insert((b.to_string(), a.to_string()), path);
    }

    /// Route between two sites, if registered.
    pub fn route(&self, from: &str, to: &str) -> Option<&RoutePath> {
        self.routes.get(&(from.to_string(), to.to_string()))
    }

    /// Mutable route access (for partition injection).
    pub fn route_mut(&mut self, from: &str, to: &str) -> Option<&mut RoutePath> {
        self.routes.get_mut(&(from.to_string(), to.to_string()))
    }

    /// Partition or heal both directions of a route.
    pub fn set_partitioned(&mut self, a: &str, b: &str, partitioned: bool) {
        for key in [
            (a.to_string(), b.to_string()),
            (b.to_string(), a.to_string()),
        ] {
            if let Some(r) = self.routes.get_mut(&key) {
                r.set_partitioned(partitioned);
            }
        }
    }

    /// The paper's three-site topology, calibrated against Table 1.
    ///
    /// * `UNL-5G ↔ UCSB`: 5G access segment + UNL↔UCSB Internet segment.
    /// * `UNL ↔ UCSB`: wired Internet, 3.75 ms one-way.
    /// * `UCSB ↔ ND`: wired Internet, 22.5 ms one-way.
    pub fn paper() -> Self {
        let mut t = Topology::new();
        let unl_ucsb_wire = PathModel::wired(3.75, 0.4);
        t.add_route("UNL", "UCSB", RoutePath::single(unl_ucsb_wire.clone()));
        t.add_route(
            "UNL-5G",
            "UCSB",
            RoutePath {
                segments: vec![PathModel::private_5g_access(), unl_ucsb_wire],
            },
        );
        t.add_route("UCSB", "ND", RoutePath::single(PathModel::wired(22.5, 0.5)));
        t
    }
}

/// Standard normal via Box–Muller (in-tree, same as `xg-net`).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clock_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_ms(), 0.0);
        c.advance_ms(12.5);
        assert!((c.now_ms() - 12.5).abs() < 1e-3);
        let c2 = c.clone();
        c2.advance_ms(1.0);
        assert!((c.now_ms() - 13.5).abs() < 1e-3, "clones share time");
    }

    #[test]
    fn wired_path_latency_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = PathModel::wired(10.0, 0.5);
        let n = 10_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| p.sample_one_way(&mut rng).unwrap())
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!(samples.iter().all(|&s| s >= 0.1));
    }

    #[test]
    fn partitioned_path_drops_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = PathModel::wired(5.0, 0.1);
        p.partitioned = true;
        for _ in 0..100 {
            assert!(p.sample_one_way(&mut rng).is_none());
        }
    }

    #[test]
    fn lossy_path_drops_sometimes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = PathModel::wired(5.0, 0.1);
        p.loss_prob = 0.3;
        let losses = (0..10_000)
            .filter(|_| p.sample_one_way(&mut rng).is_none())
            .count();
        let rate = losses as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "loss rate {rate}");
    }

    #[test]
    fn route_sums_segments() {
        let r = RoutePath {
            segments: vec![PathModel::wired(3.0, 0.0), PathModel::wired(4.0, 0.0)],
        };
        let mut rng = StdRng::seed_from_u64(4);
        let s = r.sample_one_way(&mut rng).unwrap();
        assert!((s - 7.0).abs() < 1e-9);
        assert_eq!(r.mean_one_way_ms(), 7.0);
    }

    #[test]
    fn route_lost_if_any_segment_drops() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut bad = PathModel::wired(1.0, 0.0);
        bad.partitioned = true;
        let r = RoutePath {
            segments: vec![PathModel::wired(1.0, 0.0), bad],
        };
        assert!(r.sample_one_way(&mut rng).is_none());
    }

    #[test]
    fn topology_bidirectional() {
        let t = Topology::paper();
        assert!(t.route("UNL", "UCSB").is_some());
        assert!(t.route("UCSB", "UNL").is_some());
        assert!(t.route("UCSB", "ND").is_some());
        assert!(t.route("ND", "UCSB").is_some());
        assert!(t.route("UNL", "ND").is_none(), "no direct UNL-ND route");
    }

    #[test]
    fn topology_partition_and_heal() {
        let mut t = Topology::paper();
        let mut rng = StdRng::seed_from_u64(6);
        t.set_partitioned("UNL", "UCSB", true);
        assert!(t
            .route("UNL", "UCSB")
            .unwrap()
            .sample_one_way(&mut rng)
            .is_none());
        t.set_partitioned("UNL", "UCSB", false);
        assert!(t
            .route("UNL", "UCSB")
            .unwrap()
            .sample_one_way(&mut rng)
            .is_some());
    }

    #[test]
    fn paper_topology_5g_route_is_slower() {
        let t = Topology::paper();
        let wired = t.route("UNL", "UCSB").unwrap().mean_one_way_ms();
        let over_5g = t.route("UNL-5G", "UCSB").unwrap().mean_one_way_ms();
        assert!(
            over_5g > 5.0 * wired,
            "5G access dominates: {over_5g} vs {wired}"
        );
    }
}
