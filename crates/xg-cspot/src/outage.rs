//! Connectivity-outage process for remote 5G deployments.
//!
//! §3.1: "devices operating in remote locations using 5G connectivity can
//! be subject to frequent network interruption. Because all program state
//! is logged, programs can simply pause until connectivity is restored."
//! [`OutageProcess`] is a two-state (up/down) Markov process in virtual
//! time that drives a route's partition flag, so delay-tolerance tests and
//! the reliability study can subject the data path to realistic
//! interruption patterns.

use crate::netsim::RoutePath;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the up/down alternating-renewal process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageConfig {
    /// Mean time between failures (s) — exponential.
    pub mtbf_s: f64,
    /// Mean time to repair (s) — exponential.
    pub mttr_s: f64,
}

impl OutageConfig {
    /// A flaky remote 5G link: an interruption every ~2 h lasting ~4 min.
    pub fn flaky_5g() -> Self {
        OutageConfig {
            mtbf_s: 7_200.0,
            mttr_s: 240.0,
        }
    }

    /// Long-run availability of the link.
    pub fn availability(&self) -> f64 {
        self.mtbf_s / (self.mtbf_s + self.mttr_s)
    }
}

/// The outage process: advances in virtual time, reporting state changes.
#[derive(Debug, Clone)]
pub struct OutageProcess {
    config: OutageConfig,
    rng: StdRng,
    /// Whether the link is currently up.
    up: bool,
    /// Virtual time of the next state transition (s).
    next_transition_s: f64,
    now_s: f64,
}

impl OutageProcess {
    /// Start an outage process (link initially up).
    pub fn new(config: OutageConfig, seed: u64) -> Self {
        assert!(config.mtbf_s > 0.0 && config.mttr_s > 0.0);
        let mut p = OutageProcess {
            config,
            rng: StdRng::seed_from_u64(seed),
            up: true,
            next_transition_s: 0.0,
            now_s: 0.0,
        };
        p.next_transition_s = p.sample_holding();
        p
    }

    fn sample_holding(&mut self) -> f64 {
        let mean = if self.up {
            self.config.mtbf_s
        } else {
            self.config.mttr_s
        };
        self.now_s - mean * (1.0 - self.rng.gen::<f64>()).ln()
    }

    /// Whether the link is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// The process parameters.
    pub fn config(&self) -> OutageConfig {
        self.config
    }

    /// Advance virtual time to `t` (s) without touching any route — the
    /// caller reads [`is_up`](Self::is_up) and applies the state itself.
    /// Returns the number of transitions and the time spent down in
    /// `(now, t]`, so fault drivers can account availability exactly even
    /// when outages start and end between observation points.
    pub fn advance_time(&mut self, t: f64) -> (usize, f64) {
        assert!(t >= self.now_s, "time cannot run backwards");
        let mut transitions = 0;
        let mut down_s = 0.0;
        while self.next_transition_s <= t {
            let held = self.next_transition_s - self.now_s;
            if !self.up {
                down_s += held;
            }
            self.now_s = self.next_transition_s;
            self.up = !self.up;
            transitions += 1;
            self.next_transition_s = self.sample_holding();
        }
        if !self.up {
            down_s += t - self.now_s;
        }
        self.now_s = t;
        (transitions, down_s)
    }

    /// Advance virtual time to `t` (s), applying any state changes to the
    /// route's partition flag. Returns the number of transitions.
    pub fn advance_to(&mut self, t: f64, route: &mut RoutePath) -> usize {
        let (transitions, _) = self.advance_time(t);
        route.set_partitioned(!self.up);
        transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::PathModel;

    #[test]
    fn availability_formula() {
        let c = OutageConfig {
            mtbf_s: 900.0,
            mttr_s: 100.0,
        };
        assert!((c.availability() - 0.9).abs() < 1e-12);
        assert!(OutageConfig::flaky_5g().availability() > 0.95);
    }

    #[test]
    fn long_run_availability_matches_config() {
        let config = OutageConfig {
            mtbf_s: 1_000.0,
            mttr_s: 250.0,
        };
        let mut process = OutageProcess::new(config, 7);
        let mut route = RoutePath::single(PathModel::wired(1.0, 0.0));
        // Sample the up-state fraction over a long horizon.
        let mut up_time = 0.0;
        let step = 50.0;
        let horizon = 2_000_000.0;
        let mut t = 0.0;
        while t < horizon {
            t += step;
            process.advance_to(t, &mut route);
            if process.is_up() {
                up_time += step;
            }
        }
        let measured = up_time / horizon;
        let expect = config.availability();
        assert!(
            (measured - expect).abs() < 0.03,
            "availability {measured} vs {expect}"
        );
    }

    #[test]
    fn route_partition_follows_state() {
        let mut process = OutageProcess::new(
            OutageConfig {
                mtbf_s: 100.0,
                mttr_s: 100.0,
            },
            3,
        );
        let mut route = RoutePath::single(PathModel::wired(1.0, 0.0));
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut saw_down = false;
        let mut saw_up = false;
        for t in 1..200 {
            process.advance_to(t as f64 * 25.0, &mut route);
            let delivered = route.sample_one_way(&mut rng).is_some();
            assert_eq!(delivered, process.is_up(), "route must track the process");
            saw_down |= !delivered;
            saw_up |= delivered;
        }
        assert!(saw_down && saw_up, "both states must occur");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = OutageConfig::flaky_5g();
        let mut a = OutageProcess::new(cfg, 42);
        let mut b = OutageProcess::new(cfg, 42);
        let mut ra = RoutePath::single(PathModel::wired(1.0, 0.0));
        let mut rb = RoutePath::single(PathModel::wired(1.0, 0.0));
        for t in 1..100 {
            a.advance_to(t as f64 * 600.0, &mut ra);
            b.advance_to(t as f64 * 600.0, &mut rb);
            assert_eq!(a.is_up(), b.is_up());
        }
    }

    #[test]
    fn downtime_accounting_is_exact() {
        // Coarse observation cannot hide short outages: the integrated
        // downtime from advance_time must equal 1 - availability in the
        // long run, even when whole outages fall between observations.
        let config = OutageConfig {
            mtbf_s: 500.0,
            mttr_s: 125.0,
        };
        let mut process = OutageProcess::new(config, 11);
        let horizon = 4_000_000.0;
        let step = 10_000.0; // far coarser than MTTR
        let mut down_total = 0.0;
        let mut t = 0.0;
        while t < horizon {
            t += step;
            let (_, down) = process.advance_time(t);
            down_total += down;
        }
        let measured = 1.0 - down_total / horizon;
        let expect = config.availability();
        assert!(
            (measured - expect).abs() < 0.02,
            "availability {measured} vs {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "time cannot run backwards")]
    fn monotone_time_enforced() {
        let mut p = OutageProcess::new(OutageConfig::flaky_5g(), 1);
        let mut r = RoutePath::single(PathModel::wired(1.0, 0.0));
        p.advance_to(100.0, &mut r);
        p.advance_to(50.0, &mut r);
    }
}
