//! The CSPOT remote-append protocol.
//!
//! The paper (§4.2) describes the internal messaging protocol, built on
//! ZeroMQ and "optimized for reliability and not message latency": to append
//! to a remote log, the client first requests the log's fixed element size
//! from the hosting site, then sends the element itself. Each append is
//! acknowledged with a sequence number *after* the data is in persistent
//! storage. The client-side **size cache** optimization halves the latency
//! but fails if the server-side element size changes without a cache update
//! — both behaviours are reproduced here.
//!
//! Reliability semantics: every phase can lose its message. The client
//! retries on timeout with a stable idempotency token, so a retried append
//! whose acknowledgment was lost is absorbed by the server-side dedup —
//! exactly-once delivery built from at-least-once retries.

use crate::error::{CspotError, Result};
use crate::netsim::{RoutePath, SimClock};
use crate::node::CspotNode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use xg_obs::{Counter, Histogram, Obs};

/// Pre-resolved instruments for the append protocol (one registry lookup
/// at attach time; the hot path touches only `Arc`s).
#[derive(Debug, Clone)]
struct ProtocolObs {
    /// Phase-1 (size fetch) duration per attempt, ms of virtual time.
    phase1_ms: Arc<Histogram>,
    /// Phase-2 (ship + storage + ack) duration on success, ms.
    phase2_ms: Arc<Histogram>,
    /// End-to-end logical append latency including retries, ms.
    total_ms: Arc<Histogram>,
    /// Attempts per successful logical append.
    attempts: Arc<Histogram>,
    /// Successful logical appends.
    ok: Arc<Counter>,
    /// Attempts beyond the first (timeouts, lost acks).
    retries: Arc<Counter>,
    /// Logical appends that exhausted the retry budget.
    exhausted: Arc<Counter>,
    /// The full handle, kept for profiler attribution of append work.
    handle: Obs,
}

impl ProtocolObs {
    fn new(obs: &Obs) -> Option<Self> {
        let reg = obs.registry()?;
        Some(ProtocolObs {
            handle: obs.clone(),
            phase1_ms: reg.histogram("cspot.append.phase1_ms"),
            phase2_ms: reg.histogram("cspot.append.phase2_ms"),
            total_ms: reg.histogram("cspot.append.total_ms"),
            attempts: reg.histogram("cspot.append.attempts"),
            ok: reg.counter("cspot.append.ok"),
            retries: reg.counter("cspot.append.retries"),
            exhausted: reg.counter("cspot.append.exhausted"),
        })
    }
}

/// Tunables of the remote append protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteConfig {
    /// Cache the remote log's element size client-side, skipping phase 1 on
    /// subsequent appends (the optimization §4.2 discusses).
    pub use_size_cache: bool,
    /// Server-side persistent-storage append latency, mean (ms).
    pub storage_append_ms: f64,
    /// Storage latency jitter SD (ms).
    pub storage_jitter_ms: f64,
    /// Client timeout per exchange before retrying (ms).
    pub timeout_ms: f64,
    /// Retry budget per logical append.
    pub max_attempts: u32,
    /// One-time connection establishment cost (ms) added to the first
    /// exchange — the "initial connection start-up penalty" that makes the
    /// paper discard the first of its 30 latency samples.
    pub connect_ms: f64,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            use_size_cache: false,
            storage_append_ms: 2.0,
            storage_jitter_ms: 0.1,
            timeout_ms: 500.0,
            max_attempts: 1_000,
            connect_ms: 35.0,
        }
    }
}

/// Result of a successful remote append.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppendOutcome {
    /// Sequence number assigned by the remote log.
    pub seq: u64,
    /// End-to-end latency of the logical append, including retries (ms,
    /// virtual time).
    pub latency_ms: f64,
    /// Number of attempts (1 = no retries).
    pub attempts: u32,
}

/// A client endpoint appending to a remote CSPOT node over a route.
pub struct RemoteAppender {
    clock: SimClock,
    route: RoutePath,
    config: RemoteConfig,
    rng: StdRng,
    size_cache: BTreeMap<String, usize>,
    token_seed: u128,
    token_counter: u128,
    connected: bool,
    /// Fault injection: number of upcoming server acks to drop.
    drop_acks: u32,
    obs: Option<ProtocolObs>,
}

impl RemoteAppender {
    /// Create an appender over `route`, sharing the given virtual clock.
    pub fn new(clock: SimClock, route: RoutePath, config: RemoteConfig, seed: u64) -> Self {
        RemoteAppender {
            clock,
            route,
            config,
            rng: StdRng::seed_from_u64(seed),
            size_cache: BTreeMap::new(),
            token_seed: (seed as u128) << 64,
            token_counter: 0,
            connected: false,
            drop_acks: 0,
            obs: None,
        }
    }

    /// Attach an observability handle: per-phase RTT histograms and
    /// retry counters land in its registry. A disabled handle detaches.
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs = ProtocolObs::new(obs);
    }

    /// Mutable access to the route, for partition injection mid-test.
    pub fn route_mut(&mut self) -> &mut RoutePath {
        &mut self.route
    }

    /// Drop the next `n` server acknowledgments (the data is appended but
    /// the sequence number never reaches the client).
    pub fn inject_ack_loss(&mut self, n: u32) {
        self.drop_acks += n;
    }

    /// Invalidate the client-side size cache for a log (required after a
    /// server-side element-size change; see the paper's caveat).
    pub fn invalidate_size_cache(&mut self, log: &str) {
        self.size_cache.remove(log);
    }

    fn fresh_token(&mut self) -> u128 {
        self.token_counter += 1;
        self.token_seed | self.token_counter
    }

    /// One crossing over the route; advances the clock by the sampled
    /// latency, or by the timeout if the message is lost. Returns whether
    /// the crossing succeeded.
    fn cross(&mut self) -> bool {
        match self.route.sample_one_way(&mut self.rng) {
            Some(ms) => {
                self.clock.advance_ms(ms);
                true
            }
            None => {
                self.clock.advance_ms(self.config.timeout_ms);
                false
            }
        }
    }

    /// Append `payload` to `log` on the remote `target` node.
    ///
    /// Blocks (in virtual time) until acknowledged or the retry budget is
    /// exhausted. Implements the paper's full two-phase protocol with
    /// optional size caching and retry-until-sequence-number semantics.
    pub fn append(
        &mut self,
        target: &CspotNode,
        log: &str,
        payload: &[u8],
    ) -> Result<AppendOutcome> {
        let token = self.fresh_token();
        self.append_with_token(target, log, payload, token)
    }

    /// Append with a caller-chosen idempotency token.
    ///
    /// Use when the *caller* owns retry semantics across its own restarts
    /// (e.g. the store-and-forward gateway derives tokens from its buffer
    /// sequence numbers, so even a crash between the remote append and the
    /// cursor update cannot duplicate).
    pub fn append_with_token(
        &mut self,
        target: &CspotNode,
        log: &str,
        payload: &[u8],
        token: u128,
    ) -> Result<AppendOutcome> {
        let start = self.clock.now_ms();
        // Wall-time attribution of the append's compute cost (the virtual
        // protocol latency is already covered by the phase histograms).
        let handle = self.obs.as_ref().map(|o| o.handle.clone());
        let _prof = handle
            .as_ref()
            .and_then(Obs::profiler)
            .map(|p| p.scope("cspot.append"));
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if attempts > self.config.max_attempts {
                if let Some(o) = &self.obs {
                    o.exhausted.inc();
                    o.retries.add((attempts - 1) as u64);
                }
                return Err(CspotError::RetriesExhausted {
                    attempts: attempts - 1,
                    elapsed_ms: self.clock.now_ms() - start,
                });
            }
            if !self.connected {
                // Connection establishment happens once per endpoint and is
                // why the paper discards its first latency sample.
                self.clock.advance_ms(self.config.connect_ms);
                self.connected = true;
            }
            // Phase 1: fetch the element size (unless cached).
            let phase1_start = self.clock.now_ms();
            let element_size = if self.config.use_size_cache {
                match self.size_cache.get(log).copied() {
                    Some(sz) => sz,
                    None => match self.fetch_size(target, log) {
                        Some(sz) => {
                            self.size_cache.insert(log.to_string(), sz);
                            sz
                        }
                        None => continue, // lost; retry
                    },
                }
            } else {
                match self.fetch_size(target, log) {
                    Some(sz) => sz,
                    None => continue,
                }
            };
            let phase2_start = self.clock.now_ms();
            if let Some(o) = &self.obs {
                o.phase1_ms.record(phase2_start - phase1_start);
            }
            if payload.len() != element_size {
                // With a stale cache this surfaces as a failed append — the
                // exact failure mode the paper warns about.
                return Err(CspotError::ElementSizeMismatch {
                    expected: element_size,
                    got: payload.len(),
                });
            }
            // Phase 2: ship the element.
            if !self.cross() {
                continue; // request lost in flight
            }
            // Server: durable append (idempotent under our token).
            let storage = (self.config.storage_append_ms
                + gaussian(&mut self.rng) * self.config.storage_jitter_ms)
                .max(0.1);
            self.clock.advance_ms(storage);
            let seq = target.put_with_token(log, token, payload)?;
            // Ack crossing (possibly dropped by fault injection or loss).
            if self.drop_acks > 0 {
                self.drop_acks -= 1;
                self.clock.advance_ms(self.config.timeout_ms);
                continue; // client never saw the seq: retry
            }
            if !self.cross() {
                continue;
            }
            let latency_ms = self.clock.now_ms() - start;
            if let Some(o) = &self.obs {
                o.phase2_ms.record(self.clock.now_ms() - phase2_start);
                o.total_ms.record(latency_ms);
                o.attempts.record(attempts as f64);
                o.ok.inc();
                o.retries.add((attempts - 1) as u64);
            }
            return Ok(AppendOutcome {
                seq,
                latency_ms,
                attempts,
            });
        }
    }

    /// Phase-1 exchange: request + response crossing. Returns the element
    /// size, or `None` if either crossing was lost.
    fn fetch_size(&mut self, target: &CspotNode, log: &str) -> Option<usize> {
        if !self.cross() {
            return None;
        }
        let size = target.log(log).ok().map(|l| l.element_size())?;
        if !self.cross() {
            return None;
        }
        Some(size)
    }

    /// Measure a back-to-back latency series the way the paper does: send
    /// `n` messages, discard the first (connection start-up), return the
    /// remaining per-message latencies in ms.
    pub fn measure_latency_series(
        &mut self,
        target: &CspotNode,
        log: &str,
        payload: &[u8],
        n: usize,
    ) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(n.saturating_sub(1));
        for i in 0..n {
            let o = self.append(target, log, payload)?;
            if i > 0 {
                out.push(o.latency_ms);
            }
        }
        Ok(out)
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::{PathModel, Topology};

    fn server_1kb() -> CspotNode {
        let node = CspotNode::in_memory("UCSB");
        node.create_log("data", 1024, 4096).unwrap();
        node
    }

    fn appender(route: RoutePath, cfg: RemoteConfig) -> RemoteAppender {
        RemoteAppender::new(SimClock::new(), route, cfg, 42)
    }

    #[test]
    fn append_assigns_sequences() {
        let server = server_1kb();
        let mut a = appender(
            RoutePath::single(PathModel::wired(3.75, 0.0)),
            RemoteConfig::default(),
        );
        let payload = vec![0u8; 1024];
        let o1 = a.append(&server, "data", &payload).unwrap();
        let o2 = a.append(&server, "data", &payload).unwrap();
        assert_eq!(o1.seq, 1);
        assert_eq!(o2.seq, 2);
        assert_eq!(o1.attempts, 1);
    }

    #[test]
    fn two_phase_latency_is_two_rtts_plus_storage() {
        let server = server_1kb();
        let cfg = RemoteConfig {
            storage_jitter_ms: 0.0,
            connect_ms: 0.0,
            ..Default::default()
        };
        let mut a = appender(RoutePath::single(PathModel::wired(3.75, 0.0)), cfg);
        let o = a.append(&server, "data", &vec![0u8; 1024]).unwrap();
        // 4 crossings * 3.75 + 2.0 storage = 17 ms: the paper's Table 1
        // UNL->UCSB (Internet) row.
        assert!((o.latency_ms - 17.0).abs() < 0.2, "{}", o.latency_ms);
    }

    #[test]
    fn size_cache_halves_latency() {
        let server = server_1kb();
        let cfg = RemoteConfig {
            storage_jitter_ms: 0.0,
            connect_ms: 0.0,
            use_size_cache: true,
            ..Default::default()
        };
        let mut a = appender(RoutePath::single(PathModel::wired(3.75, 0.0)), cfg);
        let payload = vec![0u8; 1024];
        let first = a.append(&server, "data", &payload).unwrap();
        let second = a.append(&server, "data", &payload).unwrap();
        // First append still pays the size fetch; the second skips it.
        assert!((first.latency_ms - 17.0).abs() < 0.2);
        assert!(
            (second.latency_ms - 9.5).abs() < 0.2,
            "{}",
            second.latency_ms
        );
    }

    #[test]
    fn stale_size_cache_fails_append() {
        let server = CspotNode::in_memory("UCSB");
        server.create_log("data", 16, 64).unwrap();
        let cfg = RemoteConfig {
            use_size_cache: true,
            ..Default::default()
        };
        let mut a = appender(RoutePath::single(PathModel::wired(1.0, 0.0)), cfg);
        a.append(&server, "data", &[0u8; 16]).unwrap();
        // Simulate a server-side size change by swapping in a new server
        // whose log has a different element size.
        let server2 = CspotNode::in_memory("UCSB");
        server2.create_log("data", 32, 64).unwrap();
        // The cached size (16) no longer matches: appending 32 bytes fails
        // client-side, exactly the hazard the paper describes.
        let err = a.append(&server2, "data", &[0u8; 32]).unwrap_err();
        assert!(matches!(err, CspotError::ElementSizeMismatch { .. }));
        // After invalidating the cache, the append succeeds.
        a.invalidate_size_cache("data");
        assert!(a.append(&server2, "data", &[0u8; 32]).is_ok());
    }

    #[test]
    fn ack_loss_retried_exactly_once_semantics() {
        let server = server_1kb();
        let mut a = appender(
            RoutePath::single(PathModel::wired(2.0, 0.0)),
            RemoteConfig::default(),
        );
        a.inject_ack_loss(2);
        let o = a.append(&server, "data", &vec![7u8; 1024]).unwrap();
        assert_eq!(o.attempts, 3, "two lost acks then success");
        assert_eq!(o.seq, 1);
        // The element was appended exactly once despite three attempts.
        assert_eq!(server.log("data").unwrap().len(), 1);
        // Latency includes the two timeouts.
        assert!(o.latency_ms > 2.0 * 500.0);
    }

    #[test]
    fn partition_then_heal_delays_but_delivers() {
        // Delay-tolerant networking: a partitioned path makes the append
        // spin in retries; healing lets it complete, data intact.
        let server = server_1kb();
        let cfg = RemoteConfig {
            timeout_ms: 50.0,
            max_attempts: 10_000,
            ..Default::default()
        };
        let mut a = appender(RoutePath::single(PathModel::wired(2.0, 0.0)), cfg);
        // Run the first append to establish the connection.
        a.append(&server, "data", &vec![1u8; 1024]).unwrap();
        a.route_mut().set_partitioned(true);
        // Appending now would never finish; emulate the application-level
        // pattern: bounded retries fail, then the program pauses and
        // retries after connectivity restoration.
        let short = RemoteConfig {
            timeout_ms: 50.0,
            max_attempts: 5,
            ..Default::default()
        };
        // Swap in a bounded-retry appender sharing the same route state.
        let mut bounded = RemoteAppender::new(
            SimClock::new(),
            {
                let mut r = RoutePath::single(PathModel::wired(2.0, 0.0));
                r.set_partitioned(true);
                r
            },
            short,
            7,
        );
        let err = bounded
            .append(&server, "data", &vec![2u8; 1024])
            .unwrap_err();
        assert!(matches!(err, CspotError::RetriesExhausted { .. }));
        // Heal and retry: delivery resumes.
        bounded.route_mut().set_partitioned(false);
        let o = bounded.append(&server, "data", &vec![2u8; 1024]).unwrap();
        assert_eq!(o.seq, 2);
    }

    #[test]
    fn retry_exhaustion_reports_attempts_and_elapsed_time() {
        // 100% loss: every crossing is dropped, so the retry budget is the
        // only way out. The error must say how many attempts were made and
        // how much virtual time the appender burned before giving up.
        let server = server_1kb();
        let mut lossy = PathModel::wired(2.0, 0.0);
        lossy.loss_prob = 1.0;
        let cfg = RemoteConfig {
            timeout_ms: 50.0,
            max_attempts: 8,
            connect_ms: 0.0,
            ..Default::default()
        };
        let mut a = appender(RoutePath::single(lossy), cfg);
        let err = a.append(&server, "data", &vec![3u8; 1024]).unwrap_err();
        match err {
            CspotError::RetriesExhausted {
                attempts,
                elapsed_ms,
            } => {
                assert_eq!(attempts, 8, "budget of 8 attempts fully spent");
                // Each attempt loses its first crossing and waits out the
                // timeout, so at least 8 * 50 ms of virtual time elapsed.
                assert!(
                    elapsed_ms >= 8.0 * 50.0,
                    "elapsed {elapsed_ms} ms under 100% loss"
                );
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        // Display carries both fields for operators reading logs.
        let msg = CspotError::RetriesExhausted {
            attempts: 8,
            elapsed_ms: 400.0,
        }
        .to_string();
        assert!(msg.contains('8') && msg.contains("400.0"), "{msg}");
    }

    #[test]
    fn latency_series_discards_first() {
        let server = server_1kb();
        let t = Topology::paper();
        let cfg = RemoteConfig {
            connect_ms: 35.0,
            ..Default::default()
        };
        let mut a = RemoteAppender::new(
            SimClock::new(),
            t.route("UNL", "UCSB").unwrap().clone(),
            cfg,
            9,
        );
        let series = a
            .measure_latency_series(&server, "data", &vec![0u8; 1024], 30)
            .unwrap();
        assert_eq!(series.len(), 29);
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        // Paper Table 1: UNL->UCSB (Internet) = 17 ms +/- 0.8.
        assert!((mean - 17.0).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn obs_records_per_phase_rtt_and_retries() {
        let server = server_1kb();
        let cfg = RemoteConfig {
            storage_jitter_ms: 0.0,
            connect_ms: 0.0,
            ..Default::default()
        };
        let mut a = appender(RoutePath::single(PathModel::wired(3.75, 0.0)), cfg);
        let obs = Obs::enabled();
        a.set_obs(&obs);
        a.inject_ack_loss(1);
        a.append(&server, "data", &vec![0u8; 1024]).unwrap();
        let reg = obs.registry().unwrap();
        // Phase 1 = two crossings = 7.5 ms on every attempt.
        let p1 = reg.histogram("cspot.append.phase1_ms").snapshot();
        assert_eq!(p1.count(), 2, "one per attempt");
        assert!((p1.max().unwrap() - 7.5).abs() < 0.1, "{:?}", p1.max());
        // Phase 2 = ship + storage + ack = 9.5 ms, success only.
        let p2 = reg.histogram("cspot.append.phase2_ms").snapshot();
        assert_eq!(p2.count(), 1);
        assert!((p2.max().unwrap() - 9.5).abs() < 0.1, "{:?}", p2.max());
        assert_eq!(reg.counter("cspot.append.ok").get(), 1);
        assert_eq!(reg.counter("cspot.append.retries").get(), 1);
        // Total latency includes the lost-ack timeout.
        let total = reg.histogram("cspot.append.total_ms").snapshot();
        assert!(total.max().unwrap() > 500.0);
    }

    #[test]
    fn paper_5g_route_latency_band() {
        let server = server_1kb();
        let t = Topology::paper();
        let mut a = RemoteAppender::new(
            SimClock::new(),
            t.route("UNL-5G", "UCSB").unwrap().clone(),
            RemoteConfig::default(),
            11,
        );
        let series = a
            .measure_latency_series(&server, "data", &vec![0u8; 1024], 30)
            .unwrap();
        let n = series.len() as f64;
        let mean = series.iter().sum::<f64>() / n;
        let sd = (series.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt();
        // Paper Table 1: 101 +/- 17 ms. Allow wide tolerance: 29 samples.
        assert!((mean - 101.0).abs() < 15.0, "mean {mean}");
        assert!(sd > 5.0 && sd < 35.0, "sd {sd}");
    }
}
