//! Pluggable log persistence.
//!
//! CSPOT implements logs in persistent storage so that power loss and other
//! device failures "that do not destroy the log storage are treated in the
//! same way as network interruption" (§3.1). Two backends are provided:
//!
//! * [`MemBackend`] — volatile, for simulations that do not exercise
//!   crash recovery (fast; used by the latency benchmarks).
//! * [`FileBackend`] — an append-only record file with per-record CRC
//!   framing. Recovery scans the file and truncates at the first torn or
//!   corrupt record, exactly like a write-ahead log. Fault injection can
//!   drop the unsynced tail to simulate power loss.

use crate::error::Result;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Decode a fixed-width field at `off`; `None` when the buffer is too
/// short (a torn tail, never an error during recovery).
fn field<const N: usize>(bytes: &[u8], off: usize) -> Option<[u8; N]> {
    bytes
        .get(off..off.checked_add(N)?)
        .and_then(|s| s.try_into().ok())
}

/// A durable record: sequence number, idempotency token, payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Log sequence number (1-based).
    pub seq: u64,
    /// Idempotency token supplied by the appender (0 = none).
    pub token: u128,
    /// Element payload.
    pub payload: Vec<u8>,
}

/// Storage backend for one log.
pub trait StorageBackend: Send {
    /// Durably append a record (implies sync for backends that buffer).
    fn append(&mut self, record: &Record) -> Result<()>;
    /// Read every intact record, in append order, truncating any torn tail.
    fn recover(&mut self) -> Result<Vec<Record>>;
    /// Whether this backend survives a process crash.
    fn is_durable(&self) -> bool;
}

/// Volatile in-memory backend.
#[derive(Debug, Default)]
pub struct MemBackend {
    records: Vec<Record>,
}

impl MemBackend {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        MemBackend::default()
    }
}

impl StorageBackend for MemBackend {
    fn append(&mut self, record: &Record) -> Result<()> {
        self.records.push(record.clone());
        Ok(())
    }

    fn recover(&mut self) -> Result<Vec<Record>> {
        Ok(self.records.clone())
    }

    fn is_durable(&self) -> bool {
        false
    }
}

/// FNV-1a checksum used for record framing (in-tree to keep dependencies to
/// the approved list).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// File-backed write-ahead-log backend.
///
/// Record wire format (little endian):
/// `[u32 payload_len][u64 seq][u128 token][payload][u32 fnv1a]` where the
/// checksum covers everything before it.
pub struct FileBackend {
    path: PathBuf,
    writer: BufWriter<File>,
    /// When true, `append` buffers without flushing, so a simulated crash
    /// loses the tail — used by power-loss tests.
    defer_sync: bool,
}

impl FileBackend {
    /// Open (or create) the log file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(crate::error::CspotError::Storage)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        Ok(FileBackend {
            path,
            writer: BufWriter::new(file),
            defer_sync: false,
        })
    }

    /// Enable or disable deferred sync (fault injection for power-loss
    /// simulation). With deferred sync on, appends may be lost on crash.
    pub fn set_defer_sync(&mut self, defer: bool) {
        self.defer_sync = defer;
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Simulate a power loss: drop any buffered-but-unsynced bytes by
    /// reopening the file handle without flushing.
    pub fn simulate_power_loss(&mut self) -> Result<()> {
        // Replace the writer without flushing; the BufWriter's buffer (the
        // "page cache") is discarded.
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)?;
        let old = std::mem::replace(&mut self.writer, BufWriter::new(file));
        // Forget the old writer's buffered bytes: into_parts gives us the
        // raw file and discards the buffer without flushing.
        let _ = old.into_parts();
        Ok(())
    }

    fn encode(record: &Record) -> Vec<u8> {
        let mut buf = Vec::with_capacity(4 + 8 + 16 + record.payload.len() + 4);
        buf.extend_from_slice(&(record.payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&record.seq.to_le_bytes());
        buf.extend_from_slice(&record.token.to_le_bytes());
        buf.extend_from_slice(&record.payload);
        let crc = fnv1a(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }
}

impl StorageBackend for FileBackend {
    fn append(&mut self, record: &Record) -> Result<()> {
        let buf = Self::encode(record);
        self.writer.write_all(&buf)?;
        if !self.defer_sync {
            self.writer.flush()?;
            self.writer.get_ref().sync_data()?;
        }
        Ok(())
    }

    fn recover(&mut self) -> Result<Vec<Record>> {
        self.writer.flush().ok();
        let mut file = File::open(&self.path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut records = Vec::new();
        let mut off = 0usize;
        let mut valid_end = 0usize;
        while off + 4 + 8 + 16 + 4 <= bytes.len() {
            let Some(len_bytes) = field::<4>(&bytes, off) else {
                break; // torn tail
            };
            let len = u32::from_le_bytes(len_bytes) as usize;
            let total = 4 + 8 + 16 + len + 4;
            if off + total > bytes.len() {
                break; // torn tail
            }
            let body = &bytes[off..off + total - 4];
            let (Some(crc_bytes), Some(seq_bytes), Some(token_bytes)) = (
                field::<4>(&bytes, off + total - 4),
                field::<8>(&bytes, off + 4),
                field::<16>(&bytes, off + 12),
            ) else {
                break; // torn tail
            };
            if fnv1a(body) != u32::from_le_bytes(crc_bytes) {
                break; // corrupt record: truncate here
            }
            let seq = u64::from_le_bytes(seq_bytes);
            let token = u128::from_le_bytes(token_bytes);
            let payload = bytes[off + 28..off + 28 + len].to_vec();
            records.push(Record {
                seq,
                token,
                payload,
            });
            off += total;
            valid_end = off;
        }
        // Physically truncate any torn tail so subsequent appends are clean.
        if valid_end < bytes.len() {
            let f = OpenOptions::new().write(true).open(&self.path)?;
            f.set_len(valid_end as u64)?;
            let mut w = OpenOptions::new().append(true).open(&self.path)?;
            w.seek(SeekFrom::End(0))?;
            self.writer = BufWriter::new(w);
        }
        Ok(records)
    }

    fn is_durable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xg-cspot-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(seq: u64, payload: &[u8]) -> Record {
        Record {
            seq,
            token: seq as u128 * 1000,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn mem_backend_roundtrip() {
        let mut b = MemBackend::new();
        b.append(&rec(1, b"a")).unwrap();
        b.append(&rec(2, b"bb")).unwrap();
        let rs = b.recover().unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[1].payload, b"bb");
        assert!(!b.is_durable());
    }

    #[test]
    fn file_backend_roundtrip() {
        let path = tmpdir().join("roundtrip.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut b = FileBackend::open(&path).unwrap();
            b.append(&rec(1, b"hello")).unwrap();
            b.append(&rec(2, b"world")).unwrap();
        }
        let mut b = FileBackend::open(&path).unwrap();
        let rs = b.recover().unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].payload, b"hello");
        assert_eq!(rs[1].seq, 2);
        assert_eq!(rs[1].token, 2000);
        assert!(b.is_durable());
    }

    #[test]
    fn file_backend_tokens_persist() {
        let path = tmpdir().join("tokens.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut b = FileBackend::open(&path).unwrap();
            b.append(&Record {
                seq: 1,
                token: 0xDEADBEEF,
                payload: vec![1, 2, 3],
            })
            .unwrap();
        }
        let mut b = FileBackend::open(&path).unwrap();
        let rs = b.recover().unwrap();
        assert_eq!(rs[0].token, 0xDEADBEEF);
    }

    #[test]
    fn corrupt_tail_truncated() {
        let path = tmpdir().join("corrupt.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut b = FileBackend::open(&path).unwrap();
            b.append(&rec(1, b"good")).unwrap();
            b.append(&rec(2, b"alsogood")).unwrap();
        }
        // Corrupt the last byte (inside the CRC of record 2).
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let mut b = FileBackend::open(&path).unwrap();
        let rs = b.recover().unwrap();
        assert_eq!(rs.len(), 1, "corrupt record must be dropped");
        assert_eq!(rs[0].payload, b"good");
        // The file is truncated, so a fresh append lands cleanly after
        // record 1.
        b.append(&rec(2, b"retry")).unwrap();
        let rs = b.recover().unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[1].payload, b"retry");
    }

    #[test]
    fn torn_tail_truncated() {
        let path = tmpdir().join("torn.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut b = FileBackend::open(&path).unwrap();
            b.append(&rec(1, b"complete")).unwrap();
            b.append(&rec(2, b"will-be-torn")).unwrap();
        }
        // Tear the file mid-record-2.
        let bytes = std::fs::read(&path).unwrap();
        let first_len = 4 + 8 + 16 + b"complete".len() + 4;
        std::fs::write(&path, &bytes[..first_len + 10]).unwrap();

        let mut b = FileBackend::open(&path).unwrap();
        let rs = b.recover().unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].payload, b"complete");
    }

    #[test]
    fn power_loss_drops_unsynced_tail() {
        let path = tmpdir().join("powerloss.log");
        let _ = std::fs::remove_file(&path);
        let mut b = FileBackend::open(&path).unwrap();
        b.append(&rec(1, b"synced")).unwrap();
        b.set_defer_sync(true);
        b.append(&rec(2, b"buffered")).unwrap();
        b.simulate_power_loss().unwrap();
        let rs = b.recover().unwrap();
        assert_eq!(rs.len(), 1, "unsynced append must vanish on power loss");
        assert_eq!(rs[0].payload, b"synced");
    }

    #[test]
    fn empty_file_recovers_empty() {
        let path = tmpdir().join("empty.log");
        let _ = std::fs::remove_file(&path);
        let mut b = FileBackend::open(&path).unwrap();
        assert!(b.recover().unwrap().is_empty());
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(&[]), 0x811c9dc5);
        // Differs for different inputs.
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
