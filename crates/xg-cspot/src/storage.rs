//! Pluggable log persistence.
//!
//! CSPOT implements logs in persistent storage so that power loss and other
//! device failures "that do not destroy the log storage are treated in the
//! same way as network interruption" (§3.1). Three backends are provided:
//!
//! * [`MemBackend`] — volatile, for simulations that do not exercise
//!   crash recovery (fast; used by the latency benchmarks).
//! * [`FileBackend`] — a single append-only record file with per-record
//!   CRC framing. Recovery streams the file record by record (memory
//!   stays O(record), not O(log)) and truncates at the first torn or
//!   corrupt record, exactly like a write-ahead log.
//! * [`crate::segment::SegmentedBackend`] — the production engine:
//!   fixed-size sealed segments with footers, group commit, retention
//!   compaction, and fail-stop semantics for at-rest corruption.
//!
//! All durable backends share one record wire format (little endian):
//! `[u32 payload_len][u64 seq][u128 token][payload][u32 fnv1a]` where the
//! checksum covers everything before it.

use crate::error::Result;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, ErrorKind, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Fixed bytes before the payload: `u32 len + u64 seq + u128 token`.
pub(crate) const FRAME_HEADER: usize = 4 + 8 + 16;
/// Trailing checksum bytes.
pub(crate) const FRAME_TRAILER: usize = 4;
/// Payloads above this are never written by any backend; a decoded length
/// beyond it means the length field itself is corrupt (and guards the
/// recovery path against pathological allocations).
pub(crate) const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

/// A durable record: sequence number, idempotency token, payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Log sequence number (1-based).
    pub seq: u64,
    /// Idempotency token supplied by the appender (0 = none).
    pub token: u128,
    /// Element payload.
    pub payload: Vec<u8>,
}

/// Acknowledgment of one append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendAck {
    /// The record's sequence number, echoed back.
    pub seq: u64,
    /// Whether the record is on stable storage *right now*. Group-commit
    /// backends return `false` between syncs; the record becomes durable
    /// at the next [`StorageBackend::sync`] (watch
    /// [`StorageBackend::committed_seq`]).
    pub durable: bool,
}

/// What a streaming recovery pass found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Intact records streamed to the sink.
    pub records: u64,
    /// Torn/corrupt tail bytes physically truncated from the active end.
    pub truncated_bytes: u64,
    /// Sealed segments verified (0 for single-file backends).
    pub sealed_segments: usize,
}

/// Storage backend for one log.
///
/// Recovery is *streaming*: records are pushed through a sink callback one
/// at a time, so a caller that only keeps a bounded window (the log's
/// circular history) never materializes the whole log in memory.
pub trait StorageBackend: Send {
    /// Append a record. The ack says whether it is already durable;
    /// buffered backends defer durability to [`StorageBackend::sync`].
    fn append(&mut self, record: &Record) -> Result<AppendAck>;

    /// Flush and fsync anything buffered. After `Ok`, every acked append
    /// is durable and [`StorageBackend::committed_seq`] reflects it.
    fn sync(&mut self) -> Result<()>;

    /// Highest sequence number known durable (`None` before the first
    /// durable append).
    fn committed_seq(&self) -> Option<u64>;

    /// Stream every intact record, in append order, into `sink`,
    /// truncating any torn tail. Corruption *behind a seal* is a typed
    /// [`crate::error::CspotError::CorruptSegment`] fail-stop instead.
    fn recover_scan(&mut self, sink: &mut dyn FnMut(Record)) -> Result<RecoverySummary>;

    /// Re-read up to `max` records with `seq >= from` from storage, in
    /// order. This reads persisted state (replication uses it), so
    /// buffered-but-unflushed appends may not yet be visible.
    fn read_from(&mut self, from: u64, max: usize) -> Result<Vec<Record>>;

    /// All records of the sealed region containing `from`, when the
    /// backend can ship a whole sealed unit at once (`None` otherwise —
    /// the replicator falls back to batched tail streaming).
    fn sealed_records_from(&mut self, from: u64) -> Result<Option<Vec<Record>>> {
        let _ = from;
        Ok(None)
    }

    /// Whether this backend survives a process crash.
    fn is_durable(&self) -> bool;

    // --- fault injection (defaults: unsupported) -------------------------

    /// Simulate power loss: everything not fsynced is gone. Returns
    /// `false` when the backend does not support the simulation.
    fn simulate_power_loss(&mut self) -> Result<bool> {
        Ok(false)
    }

    /// Make the next append write only a partial frame (torn write), then
    /// fail. Returns `false` when unsupported.
    fn inject_torn_write(&mut self) -> bool {
        false
    }

    /// Stall (`true`) or release (`false`) fsync: while stalled, `sync`
    /// returns without making anything durable. Returns `false` when
    /// unsupported.
    fn set_sync_stall(&mut self, on: bool) -> bool {
        let _ = on;
        false
    }

    /// Flip one byte inside sealed segment `k` (0 = oldest retained), a
    /// bit-rot simulation. `Ok(false)` when there is no such segment or
    /// the backend has no sealed segments.
    fn corrupt_sealed_segment(&mut self, k: usize) -> Result<bool> {
        let _ = k;
        Ok(false)
    }
}

/// FNV-1a running update over `bytes` from hash state `h`.
pub(crate) fn fnv1a_update(mut h: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// FNV-1a offset basis (the hash of empty input).
pub(crate) const FNV_OFFSET: u32 = 0x811c_9dc5;

/// FNV-1a checksum used for record framing (in-tree to keep dependencies
/// to the approved list).
pub(crate) fn fnv1a(bytes: &[u8]) -> u32 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// Encode a record into its wire frame.
pub(crate) fn encode_record(record: &Record) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_HEADER + record.payload.len() + FRAME_TRAILER);
    buf.extend_from_slice(&(record.payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&record.seq.to_le_bytes());
    buf.extend_from_slice(&record.token.to_le_bytes());
    buf.extend_from_slice(&record.payload);
    let crc = fnv1a(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Result of decoding one frame from a byte slice.
#[derive(Debug)]
pub(crate) enum FrameDecode {
    /// A complete, checksummed record; the next frame starts at `next`.
    Ok { record: Record, next: usize },
    /// The buffer ends mid-frame (a torn tail).
    Torn,
    /// A complete frame whose checksum (or length field) is wrong.
    Corrupt,
}

/// Decode the frame starting at `off` within `bytes`.
pub(crate) fn decode_frame(bytes: &[u8], off: usize) -> FrameDecode {
    let Some(head) = bytes.get(off..off + FRAME_HEADER) else {
        return FrameDecode::Torn;
    };
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
    if len > MAX_PAYLOAD {
        return FrameDecode::Corrupt;
    }
    let total = FRAME_HEADER + len + FRAME_TRAILER;
    let Some(frame) = bytes.get(off..off + total) else {
        return FrameDecode::Torn;
    };
    let body = &frame[..FRAME_HEADER + len];
    let stored = u32::from_le_bytes([
        frame[FRAME_HEADER + len],
        frame[FRAME_HEADER + len + 1],
        frame[FRAME_HEADER + len + 2],
        frame[FRAME_HEADER + len + 3],
    ]);
    if fnv1a(body) != stored {
        return FrameDecode::Corrupt;
    }
    let seq = u64::from_le_bytes([
        frame[4], frame[5], frame[6], frame[7], frame[8], frame[9], frame[10], frame[11],
    ]);
    let mut token_bytes = [0u8; 16];
    token_bytes.copy_from_slice(&frame[12..28]);
    FrameDecode::Ok {
        record: Record {
            seq,
            token: u128::from_le_bytes(token_bytes),
            payload: frame[FRAME_HEADER..FRAME_HEADER + len].to_vec(),
        },
        next: off + total,
    }
}

/// Volatile in-memory backend.
#[derive(Debug, Default)]
pub struct MemBackend {
    records: Vec<Record>,
}

impl MemBackend {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        MemBackend::default()
    }
}

impl StorageBackend for MemBackend {
    fn append(&mut self, record: &Record) -> Result<AppendAck> {
        self.records.push(record.clone());
        Ok(AppendAck {
            seq: record.seq,
            durable: false,
        })
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }

    fn committed_seq(&self) -> Option<u64> {
        // Volatile "durability": the backend retains what it has for as
        // long as the process lives; simulations treat that as committed.
        self.records.last().map(|r| r.seq)
    }

    fn recover_scan(&mut self, sink: &mut dyn FnMut(Record)) -> Result<RecoverySummary> {
        for r in &self.records {
            sink(r.clone());
        }
        Ok(RecoverySummary {
            records: self.records.len() as u64,
            ..Default::default()
        })
    }

    fn read_from(&mut self, from: u64, max: usize) -> Result<Vec<Record>> {
        Ok(self
            .records
            .iter()
            .filter(|r| r.seq >= from)
            .take(max)
            .cloned()
            .collect())
    }

    fn is_durable(&self) -> bool {
        false
    }
}

/// Single-file write-ahead-log backend (the pre-segmented engine, kept
/// for tests and small fixed-size state logs).
pub struct FileBackend {
    path: PathBuf,
    writer: BufWriter<File>,
    /// When true, `append` buffers without flushing, so a simulated crash
    /// loses the tail — used by power-loss tests.
    defer_sync: bool,
    committed: Option<u64>,
}

impl FileBackend {
    /// Open (or create) the log file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(crate::error::CspotError::Storage)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        Ok(FileBackend {
            path,
            writer: BufWriter::new(file),
            defer_sync: false,
            committed: None,
        })
    }

    /// Enable or disable deferred sync (fault injection for power-loss
    /// simulation). With deferred sync on, appends may be lost on crash.
    pub fn set_defer_sync(&mut self, defer: bool) {
        self.defer_sync = defer;
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl StorageBackend for FileBackend {
    fn append(&mut self, record: &Record) -> Result<AppendAck> {
        let buf = encode_record(record);
        self.writer.write_all(&buf)?;
        let durable = if self.defer_sync {
            false
        } else {
            self.writer.flush()?;
            self.writer.get_ref().sync_data()?;
            self.committed = Some(record.seq);
            true
        };
        Ok(AppendAck {
            seq: record.seq,
            durable,
        })
    }

    fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    fn committed_seq(&self) -> Option<u64> {
        self.committed
    }

    fn recover_scan(&mut self, sink: &mut dyn FnMut(Record)) -> Result<RecoverySummary> {
        // A swallowed flush here would silently feed recovery a stale
        // file image; the error must surface through the typed path.
        self.writer.flush()?;
        let file = File::open(&self.path)?;
        let file_len = file.metadata()?.len();
        let mut reader = BufReader::with_capacity(64 * 1024, file);
        let mut summary = RecoverySummary::default();
        let mut valid_end = 0u64;
        // Ends on clean EOF, a torn tail, or a corrupt record.
        while let Some((record, frame_len)) = read_frame(&mut reader)? {
            valid_end += frame_len;
            summary.records += 1;
            self.committed = Some(record.seq);
            sink(record);
        }
        // Physically truncate any torn tail so subsequent appends are clean.
        if valid_end < file_len {
            summary.truncated_bytes = file_len - valid_end;
            let f = OpenOptions::new().write(true).open(&self.path)?;
            f.set_len(valid_end)?;
            let mut w = OpenOptions::new().append(true).open(&self.path)?;
            w.seek(SeekFrom::End(0))?;
            self.writer = BufWriter::new(w);
        }
        Ok(summary)
    }

    fn read_from(&mut self, from: u64, max: usize) -> Result<Vec<Record>> {
        self.writer.flush()?;
        let file = File::open(&self.path)?;
        let mut reader = BufReader::with_capacity(64 * 1024, file);
        let mut out = Vec::new();
        while out.len() < max {
            match read_frame(&mut reader)? {
                Some((record, _)) if record.seq >= from => out.push(record),
                Some(_) => {}
                None => break,
            }
        }
        Ok(out)
    }

    fn is_durable(&self) -> bool {
        true
    }

    fn simulate_power_loss(&mut self) -> Result<bool> {
        // Replace the writer without flushing; the BufWriter's buffer (the
        // "page cache") is discarded.
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)?;
        let old = std::mem::replace(&mut self.writer, BufWriter::new(file));
        // Forget the old writer's buffered bytes: into_parts gives us the
        // raw file and discards the buffer without flushing.
        let _ = old.into_parts();
        Ok(true)
    }
}

/// Read one frame from a sequential reader. `Ok(Some((record, bytes)))`
/// for an intact record, `Ok(None)` on clean EOF *or* a torn/corrupt
/// tail (single-file recovery treats both as "stop and truncate here").
fn read_frame<R: Read>(reader: &mut R) -> Result<Option<(Record, u64)>> {
    let mut head = [0u8; FRAME_HEADER];
    match reader.read_exact(&mut head) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
    if len > MAX_PAYLOAD {
        return Ok(None); // corrupt length field
    }
    let mut payload = vec![0u8; len];
    match reader.read_exact(&mut payload) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let mut crc = [0u8; FRAME_TRAILER];
    match reader.read_exact(&mut crc) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let computed = fnv1a_update(fnv1a_update(FNV_OFFSET, &head), &payload);
    if computed != u32::from_le_bytes(crc) {
        return Ok(None); // corrupt record: truncate here
    }
    let seq = u64::from_le_bytes([
        head[4], head[5], head[6], head[7], head[8], head[9], head[10], head[11],
    ]);
    let mut token_bytes = [0u8; 16];
    token_bytes.copy_from_slice(&head[12..28]);
    let total = (FRAME_HEADER + len + FRAME_TRAILER) as u64;
    Ok(Some((
        Record {
            seq,
            token: u128::from_le_bytes(token_bytes),
            payload,
        },
        total,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xg-cspot-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(seq: u64, payload: &[u8]) -> Record {
        Record {
            seq,
            token: seq as u128 * 1000,
            payload: payload.to_vec(),
        }
    }

    fn recover_all(b: &mut dyn StorageBackend) -> Vec<Record> {
        let mut out = Vec::new();
        b.recover_scan(&mut |r| out.push(r)).unwrap();
        out
    }

    #[test]
    fn mem_backend_roundtrip() {
        let mut b = MemBackend::new();
        b.append(&rec(1, b"a")).unwrap();
        b.append(&rec(2, b"bb")).unwrap();
        let rs = recover_all(&mut b);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[1].payload, b"bb");
        assert!(!b.is_durable());
        assert_eq!(b.committed_seq(), Some(2));
    }

    #[test]
    fn file_backend_roundtrip() {
        let path = tmpdir().join("roundtrip.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut b = FileBackend::open(&path).unwrap();
            let ack = b.append(&rec(1, b"hello")).unwrap();
            assert!(ack.durable, "default FileBackend syncs every append");
            b.append(&rec(2, b"world")).unwrap();
        }
        let mut b = FileBackend::open(&path).unwrap();
        let rs = recover_all(&mut b);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].payload, b"hello");
        assert_eq!(rs[1].seq, 2);
        assert_eq!(rs[1].token, 2000);
        assert!(b.is_durable());
        assert_eq!(b.committed_seq(), Some(2));
    }

    #[test]
    fn file_backend_tokens_persist() {
        let path = tmpdir().join("tokens.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut b = FileBackend::open(&path).unwrap();
            b.append(&Record {
                seq: 1,
                token: 0xDEADBEEF,
                payload: vec![1, 2, 3],
            })
            .unwrap();
        }
        let mut b = FileBackend::open(&path).unwrap();
        let rs = recover_all(&mut b);
        assert_eq!(rs[0].token, 0xDEADBEEF);
    }

    #[test]
    fn corrupt_tail_truncated() {
        let path = tmpdir().join("corrupt.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut b = FileBackend::open(&path).unwrap();
            b.append(&rec(1, b"good")).unwrap();
            b.append(&rec(2, b"alsogood")).unwrap();
        }
        // Corrupt the last byte (inside the CRC of record 2).
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let mut b = FileBackend::open(&path).unwrap();
        let rs = recover_all(&mut b);
        assert_eq!(rs.len(), 1, "corrupt record must be dropped");
        assert_eq!(rs[0].payload, b"good");
        // The file is truncated, so a fresh append lands cleanly after
        // record 1.
        b.append(&rec(2, b"retry")).unwrap();
        let rs = recover_all(&mut b);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[1].payload, b"retry");
    }

    #[test]
    fn torn_tail_truncated_and_counted() {
        let path = tmpdir().join("torn.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut b = FileBackend::open(&path).unwrap();
            b.append(&rec(1, b"complete")).unwrap();
            b.append(&rec(2, b"will-be-torn")).unwrap();
        }
        // Tear the file mid-record-2.
        let bytes = std::fs::read(&path).unwrap();
        let first_len = FRAME_HEADER + b"complete".len() + FRAME_TRAILER;
        std::fs::write(&path, &bytes[..first_len + 10]).unwrap();

        let mut b = FileBackend::open(&path).unwrap();
        let mut rs = Vec::new();
        let summary = b.recover_scan(&mut |r| rs.push(r)).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].payload, b"complete");
        assert_eq!(summary.truncated_bytes, 10);
        assert_eq!(summary.records, 1);
    }

    #[test]
    fn power_loss_drops_unsynced_tail() {
        let path = tmpdir().join("powerloss.log");
        let _ = std::fs::remove_file(&path);
        let mut b = FileBackend::open(&path).unwrap();
        let ack = b.append(&rec(1, b"synced")).unwrap();
        assert!(ack.durable);
        b.set_defer_sync(true);
        let ack = b.append(&rec(2, b"buffered")).unwrap();
        assert!(!ack.durable, "deferred append is not yet durable");
        assert!(b.simulate_power_loss().unwrap());
        let rs = recover_all(&mut b);
        assert_eq!(rs.len(), 1, "unsynced append must vanish on power loss");
        assert_eq!(rs[0].payload, b"synced");
    }

    #[test]
    fn read_from_skips_and_bounds() {
        let path = tmpdir().join("readfrom.log");
        let _ = std::fs::remove_file(&path);
        let mut b = FileBackend::open(&path).unwrap();
        for s in 1..=5 {
            b.append(&rec(s, &[s as u8; 3])).unwrap();
        }
        let rs = b.read_from(3, 2).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].seq, 3);
        assert_eq!(rs[1].seq, 4);
        assert!(b.read_from(9, 10).unwrap().is_empty());
    }

    #[test]
    fn empty_file_recovers_empty() {
        let path = tmpdir().join("empty.log");
        let _ = std::fs::remove_file(&path);
        let mut b = FileBackend::open(&path).unwrap();
        assert!(recover_all(&mut b).is_empty());
        assert_eq!(b.committed_seq(), None);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(&[]), FNV_OFFSET);
        // Differs for different inputs.
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        // Incremental update matches one-shot hashing.
        assert_eq!(fnv1a(b"split input"), {
            let h = fnv1a_update(FNV_OFFSET, b"split ");
            fnv1a_update(h, b"input")
        });
    }

    #[test]
    fn frame_decode_roundtrip_and_damage() {
        let r = rec(7, b"payload");
        let frame = encode_record(&r);
        match decode_frame(&frame, 0) {
            FrameDecode::Ok { record, next } => {
                assert_eq!(record, r);
                assert_eq!(next, frame.len());
            }
            other => panic!("expected Ok, got {other:?}"),
        }
        // Truncated → torn.
        assert!(matches!(
            decode_frame(&frame[..frame.len() - 1], 0),
            FrameDecode::Torn
        ));
        // Bit flip → corrupt.
        let mut bad = frame.clone();
        bad[10] ^= 0x40;
        assert!(matches!(decode_frame(&bad, 0), FrameDecode::Corrupt));
        // Absurd length field → corrupt, not an allocation attempt.
        let mut huge = frame;
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_frame(&huge, 0), FrameDecode::Corrupt));
    }
}
