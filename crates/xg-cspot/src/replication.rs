//! Primary → follower log replication over the simulated WAN.
//!
//! xGFabric sites replicate their CSPOT logs asynchronously so a farm
//! gateway's history survives the gateway: a follower at the HPC site
//! pulls records over [`crate::netsim`] and applies them in order through
//! its own storage engine. Two transfer modes compose:
//!
//! * **Sealed-segment catch-up** — when the follower is far behind (fresh
//!   follower, long partition), whole sealed segments ship as one unit
//!   per round trip ([`crate::log::Log::sealed_records_from`]). The unit
//!   is bounded by `segment_bytes`, so a round trip moves thousands of
//!   records instead of `batch`.
//! * **Tail streaming** — near the head, records ship in `batch`-sized
//!   reads from the primary's durable storage.
//!
//! The follower applies records with [`crate::log::Log::apply_replica`]:
//! next-expected applies, already-held drops idempotently (a re-shipped
//! batch after a lost crossing), anything that skips ahead is a
//! [`crate::error::CspotError::ReplicaGap`] — the primary compacted
//! history the follower never saw, which is an operator-visible error,
//! not something to paper over.
//!
//! A partition simply makes crossings return `None`: the pump reports
//! [`PumpOutcome::Unreachable`] and virtual time advances by the timeout.
//! After heal, the next pump resumes from the follower's durable state —
//! no session to re-establish, because the protocol is stateless pull.
//! All latency is virtual ([`SimClock`]) and all randomness flows from
//! the seeded RNG, so replication runs are deterministic.

use crate::error::Result;
use crate::log::{Log, ReplicaApply};
use crate::netsim::{RoutePath, SimClock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xg_obs::Obs;

/// Tunables of a replication link.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationConfig {
    /// Records per tail-streaming read.
    pub batch: usize,
    /// Virtual time charged when a crossing is lost or the route is
    /// partitioned (the puller's request timeout).
    pub timeout_ms: f64,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            batch: 64,
            timeout_ms: 250.0,
        }
    }
}

/// What one [`Replicator::pump`] round accomplished.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PumpOutcome {
    /// The follower already matched the primary; nothing shipped.
    UpToDate,
    /// Records shipped and applied.
    Shipped {
        /// Records newly applied on the follower.
        applied: u64,
        /// Records offered that the follower already held.
        duplicates: u64,
        /// True when this round moved a whole sealed segment.
        sealed_unit: bool,
    },
    /// The route dropped the crossing (loss or partition); the timeout
    /// was charged to virtual time.
    Unreachable,
}

/// A pull-based replication link from one primary log to one follower.
pub struct Replicator {
    clock: SimClock,
    route: RoutePath,
    rng: StdRng,
    config: ReplicationConfig,
    obs: Obs,
}

impl Replicator {
    /// Build a link over `route`, drawing all crossing latencies from a
    /// RNG seeded with `seed` (deterministic replay).
    pub fn new(clock: SimClock, route: RoutePath, config: ReplicationConfig, seed: u64) -> Self {
        Replicator {
            clock,
            route,
            rng: StdRng::seed_from_u64(seed),
            config,
            obs: Obs::disabled(),
        }
    }

    /// Attach an observability handle: pump rounds land in the profiler
    /// as `cspot.repl.pump` (apply/sync work attributed as children).
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
    }

    /// Mutable route access (partition injection and heal).
    pub fn route_mut(&mut self) -> &mut RoutePath {
        &mut self.route
    }

    /// One replication round: request the follower's frontier, read from
    /// the primary's durable storage, ship, apply. Two crossings of
    /// virtual latency (request + response) per round.
    pub fn pump(&mut self, primary: &Log, follower: &Log) -> Result<PumpOutcome> {
        let handle = self.obs.clone();
        let prof = handle.profiler();
        let _round = prof.map(|p| p.scope("cspot.repl.pump"));
        // Crossing 1: the puller asks the follower-side agent for its
        // frontier — local in this simulation, but the latency is real.
        let from = follower.latest_seq().map(|s| s + 1).unwrap_or(1);
        if primary.latest_seq().map(|s| s < from).unwrap_or(true) {
            return Ok(PumpOutcome::UpToDate);
        }
        let Some(req_ms) = self.route.sample_one_way(&mut self.rng) else {
            self.clock.advance_ms(self.config.timeout_ms);
            return Ok(PumpOutcome::Unreachable);
        };
        // Far behind: ship the whole sealed segment containing `from`.
        let (records, sealed_unit) = match primary.sealed_records_from(from)? {
            Some(seg) if !seg.is_empty() => (seg, true),
            _ => (primary.read_records_from(from, self.config.batch)?, false),
        };
        if records.is_empty() {
            // The frontier is durable-lagging the primary's in-memory head
            // (group-commit window); nothing shippable yet.
            self.clock.advance_ms(req_ms);
            return Ok(PumpOutcome::UpToDate);
        }
        // Crossing 2: the records travel back.
        let Some(resp_ms) = self.route.sample_one_way(&mut self.rng) else {
            self.clock.advance_ms(req_ms + self.config.timeout_ms);
            return Ok(PumpOutcome::Unreachable);
        };
        self.clock.advance_ms(req_ms + resp_ms);
        let mut applied = 0u64;
        let mut duplicates = 0u64;
        {
            let _apply = prof.map(|p| p.scope_under("cspot.repl.pump", "apply"));
            for record in &records {
                match follower.apply_replica(record)? {
                    ReplicaApply::Applied => applied += 1,
                    ReplicaApply::Duplicate => duplicates += 1,
                }
            }
        }
        {
            // The follower's group-commit fsync — usually the round's
            // dominant real (non-virtual) cost on durable backends.
            let _sync = prof.map(|p| p.scope_under("cspot.repl.pump", "sync"));
            follower.sync()?;
        }
        Ok(PumpOutcome::Shipped {
            applied,
            duplicates,
            sealed_unit,
        })
    }

    /// Pump until the follower has caught up with the primary's durable
    /// frontier (or `max_rounds` elapse — bounded so a standing partition
    /// cannot spin forever). Returns total records applied.
    pub fn catch_up(&mut self, primary: &Log, follower: &Log, max_rounds: usize) -> Result<u64> {
        let mut total = 0u64;
        for _ in 0..max_rounds {
            match self.pump(primary, follower)? {
                PumpOutcome::UpToDate => break,
                PumpOutcome::Shipped { applied, .. } => total += applied,
                PumpOutcome::Unreachable => {}
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use crate::netsim::PathModel;
    use crate::segment::{SegmentConfig, SegmentedBackend, SyncPolicy};
    use crate::storage::MemBackend;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xg-repl-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn mem_log(history: usize) -> Log {
        Log::create(
            LogConfig {
                name: "t".into(),
                element_size: 8,
                history,
            },
            Box::new(MemBackend::new()),
        )
        .unwrap()
    }

    fn seg_log(dir: &PathBuf, cfg: SegmentConfig) -> Log {
        Log::create(
            LogConfig {
                name: "t".into(),
                element_size: 8,
                history: 1 << 20,
            },
            Box::new(SegmentedBackend::open(dir, cfg).unwrap()),
        )
        .unwrap()
    }

    fn small_cfg() -> SegmentConfig {
        SegmentConfig {
            segment_bytes: 160, // 4 records of 8-byte payloads per segment
            retain_segments: None,
            sync: SyncPolicy::EveryAppend,
            index_stride: 2,
        }
    }

    fn wired_replicator(seed: u64) -> Replicator {
        Replicator::new(
            SimClock::new(),
            RoutePath::single(PathModel::wired(5.0, 0.2)),
            ReplicationConfig::default(),
            seed,
        )
    }

    fn payload(i: u64) -> [u8; 8] {
        i.to_le_bytes()
    }

    #[test]
    fn follower_converges_and_stays_converged() {
        let primary = mem_log(1 << 20);
        let follower = mem_log(1 << 20);
        for i in 1..=100 {
            primary.append_with_token(i as u128, &payload(i)).unwrap();
        }
        let mut r = wired_replicator(1);
        let applied = r.catch_up(&primary, &follower, 100).unwrap();
        assert_eq!(applied, 100);
        assert_eq!(follower.latest_seq(), Some(100));
        assert_eq!(r.pump(&primary, &follower).unwrap(), PumpOutcome::UpToDate);
        // Token dedup state replicates too.
        assert_eq!(follower.has_token(42), Some(42));
        // Contents match.
        for i in 1..=100u64 {
            assert_eq!(follower.get(i).unwrap(), payload(i));
        }
    }

    #[test]
    fn sealed_segments_ship_whole() {
        let pdir = tmpdir("ship-p");
        let fdir = tmpdir("ship-f");
        let primary = seg_log(&pdir, small_cfg());
        let follower = seg_log(&fdir, small_cfg());
        for i in 1..=10 {
            primary.append(&payload(i)).unwrap();
        }
        let mut r = wired_replicator(2);
        let first = r.pump(&primary, &follower).unwrap();
        assert_eq!(
            first,
            PumpOutcome::Shipped {
                applied: 4,
                duplicates: 0,
                sealed_unit: true
            },
            "first round moves a whole sealed segment"
        );
        let total = r.catch_up(&primary, &follower, 100).unwrap();
        assert_eq!(total + 4, 10);
        assert_eq!(follower.latest_seq(), Some(10));
    }

    #[test]
    fn partition_then_heal_catches_up() {
        let primary = mem_log(1 << 20);
        let follower = mem_log(1 << 20);
        for i in 1..=20 {
            primary.append(&payload(i)).unwrap();
        }
        let mut r = wired_replicator(3);
        r.route_mut().set_partitioned(true);
        let t0 = 0.0;
        assert_eq!(
            r.pump(&primary, &follower).unwrap(),
            PumpOutcome::Unreachable
        );
        assert_eq!(follower.latest_seq(), None);
        r.route_mut().set_partitioned(false);
        let applied = r.catch_up(&primary, &follower, 100).unwrap();
        assert_eq!(applied, 20);
        assert!(r.clock.now_ms() > t0, "timeouts and crossings took time");
    }

    #[test]
    fn reshipped_batch_is_idempotent() {
        let primary = mem_log(1 << 20);
        let follower = mem_log(1 << 20);
        for i in 1..=5 {
            primary.append(&payload(i)).unwrap();
        }
        let mut r = wired_replicator(4);
        r.catch_up(&primary, &follower, 100).unwrap();
        // Re-offer history manually (a duplicate ship after a lost ack).
        let records = primary.read_records_from(1, 10).unwrap();
        for rec in &records {
            assert_eq!(
                follower.apply_replica(rec).unwrap(),
                ReplicaApply::Duplicate
            );
        }
        assert_eq!(follower.latest_seq(), Some(5), "no duplicates appended");
    }

    #[test]
    fn gap_is_an_error_not_a_silent_skip() {
        let follower = mem_log(1 << 20);
        let rec = crate::storage::Record {
            seq: 7,
            token: 0,
            payload: payload(7).to_vec(),
        };
        let err = follower.apply_replica(&rec).unwrap_err();
        assert!(matches!(
            err,
            crate::error::CspotError::ReplicaGap {
                expected: 1,
                got: 7
            }
        ));
    }

    #[test]
    fn pump_rounds_land_in_the_profiler() {
        let primary = mem_log(1 << 20);
        let follower = mem_log(1 << 20);
        for i in 1..=10 {
            primary.append(&payload(i)).unwrap();
        }
        let obs = Obs::enabled();
        let mut r = wired_replicator(5);
        r.set_obs(&obs);
        r.catch_up(&primary, &follower, 100).unwrap();
        let snap = obs.profiler().unwrap().snapshot();
        let pump = &snap.nodes["cspot.repl.pump"];
        assert!(pump.calls >= 1);
        assert!(snap.nodes.contains_key("cspot.repl.pump/apply"));
        assert!(snap.nodes.contains_key("cspot.repl.pump/sync"));
        assert!(pump.total_ns >= pump.child_ns);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let primary = mem_log(1 << 20);
            let follower = mem_log(1 << 20);
            for i in 1..=50 {
                primary.append(&payload(i)).unwrap();
            }
            let mut r = Replicator::new(
                SimClock::new(),
                RoutePath::single(PathModel {
                    loss_prob: 0.2,
                    ..PathModel::wired(5.0, 1.0)
                }),
                ReplicationConfig {
                    batch: 7,
                    timeout_ms: 50.0,
                },
                seed,
            );
            r.catch_up(&primary, &follower, 1000).unwrap();
            (follower.latest_seq(), r.clock.now_ms())
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a, b, "same seed, same outcome and virtual time");
        assert_eq!(a.0, Some(50));
    }
}
