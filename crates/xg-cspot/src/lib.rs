//! # xg-cspot — CSPOT distributed runtime (Rust reproduction)
//!
//! CSPOT ("Serverless Platform of Things in C", Wolski et al., SEC '19) is
//! the distributed runtime underneath xGFabric. It provides reliable
//! multi-node communication built on **append-only, sequence-numbered logs
//! in persistent storage**, with single-append **event handlers** as the
//! only computational mechanism. This crate reproduces those semantics:
//!
//! * [`log`] — fixed-element-size circular logs ("WooFs") with atomic
//!   sequence-number assignment, concurrent access, and idempotency-token
//!   deduplication for exactly-once delivery.
//! * [`storage`] — pluggable persistence: the record wire format (CRC-framed
//!   records), an in-memory backend, and a simple single-file backend.
//! * [`segment`] — the production storage engine: segmented append-only
//!   log with sealed-segment footers, group-commit durability, retention
//!   compaction, streaming crash recovery (torn tails truncated, sealed
//!   corruption fail-stops), and storage fault injection.
//! * [`replication`] — asynchronous primary → follower replication over
//!   [`netsim`]: sealed-segment catch-up plus tail streaming, idempotent
//!   re-ship, deterministic under seed.
//! * [`node`] — a CSPOT namespace at a site: log directory + handler
//!   registry. Handlers fire on exactly one append and never block each
//!   other (no lock API exists, by design — see §3.4 of the paper).
//! * [`netsim`] — the wide-area substrate: virtual clock, per-path latency
//!   /jitter/loss models, partitions, and the calibrated UNL/UCSB/ND
//!   topology behind the paper's Table 1.
//! * [`protocol`] — the remote append protocol: the two-phase
//!   size-fetch-then-payload exchange over ZeroMQ that the paper describes
//!   (and its client-side size-cache optimization that halves latency),
//!   with retry-until-acknowledged and deduplication.
//!
//! ## Failure semantics (paper §3.4)
//!
//! An append fails in exactly one of two ways: the API returns an error, or
//! the append succeeded but the acknowledged sequence number was lost.
//! Retrying until a sequence number returns, with a stable idempotency
//! token, yields exactly-once delivery; tests in [`protocol`] verify this
//! under injected ack loss.
//!
//! This crate owns durable state, so panicking escape hatches are gated:
//! non-test code converts fallible paths to [`CspotError`] instead of
//! unwrapping.
//!
//! ```
//! use xg_cspot::prelude::*;
//!
//! let node = CspotNode::in_memory("UCSB");
//! // Logs have a fixed element size (here 64 bytes) and circular history.
//! node.create_log("telemetry", 64, 1024).unwrap();
//! let mut element = [0u8; 64];
//! element[..19].copy_from_slice(b"t=21.5C wind=3.2m/s");
//! let seq = node.put("telemetry", &element).unwrap();
//! assert_eq!(seq, 1);
//! let back = node.get("telemetry", seq).unwrap();
//! assert!(back.starts_with(b"t=21.5C"));
//! ```

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod error;
pub mod gateway;
pub mod log;
pub mod netsim;
pub mod node;
pub mod outage;
pub mod protocol;
pub mod replication;
pub mod segment;
pub mod storage;

/// Commonly used types.
pub mod prelude {
    pub use crate::error::CspotError;
    pub use crate::gateway::{DrainReport, Gateway};
    pub use crate::log::{Log, LogConfig, ReplicaApply};
    pub use crate::netsim::{PathModel, RoutePath, SimClock, Topology};
    pub use crate::node::CspotNode;
    pub use crate::outage::{OutageConfig, OutageProcess};
    pub use crate::protocol::{AppendOutcome, RemoteAppender, RemoteConfig};
    pub use crate::replication::{PumpOutcome, ReplicationConfig, Replicator};
    pub use crate::segment::{SegmentConfig, SegmentedBackend, SyncPolicy};
    pub use crate::storage::{
        AppendAck, FileBackend, MemBackend, Record, RecoverySummary, StorageBackend,
    };
}

pub use prelude::*;
