//! CSPOT logs ("WooFs"): fixed-element-size, sequence-numbered, circular
//! append-only logs.
//!
//! Design constraints carried over from the paper (§3.4):
//!
//! * Only the assignment of a sequence number to an appended element is
//!   atomic; reads proceed concurrently against immutable history.
//! * There is **no lock API**. Internally a mutex protects sequence
//!   assignment, but it is never held across anything that can block on the
//!   network (appends to *remote* logs are composed in
//!   [`crate::protocol`], outside this lock).
//! * Logs are single-writer-ordered but multi-producer: any number of
//!   threads may append; each append receives a unique, dense sequence
//!   number.
//! * Elements have a fixed size declared at creation (the remote protocol
//!   fetches this size before sending data — the paper's two-phase append).
//! * History is circular: a log retains its most recent `history` elements.

use crate::error::{CspotError, Result};
use crate::storage::{Record, RecoverySummary, StorageBackend};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};

/// Outcome of offering one replicated record to a follower log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaApply {
    /// The record was the follower's next expected sequence and was
    /// appended (durably, through the follower's own backend).
    Applied,
    /// The follower already holds this sequence; the offer was dropped
    /// (idempotent re-ship after a partial batch).
    Duplicate,
}

/// Static configuration of a log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogConfig {
    /// Log name, unique within a node's namespace.
    pub name: String,
    /// Fixed element size in bytes. Appends of any other size are rejected.
    pub element_size: usize,
    /// Number of elements retained (circular history).
    pub history: usize,
}

struct LogInner {
    next_seq: u64,
    entries: VecDeque<(u64, Vec<u8>)>,
    /// Idempotency-token → sequence map for exactly-once retries.
    dedup: BTreeMap<u128, u64>,
    backend: Box<dyn StorageBackend>,
    /// Fault injection: number of upcoming appends that fail as storage
    /// errors before anything is written (full disk, dying flash).
    inject_failures: u32,
}

/// A CSPOT log.
pub struct Log {
    config: LogConfig,
    recovery: RecoverySummary,
    inner: Mutex<LogInner>,
}

impl Log {
    /// Create a log over the given backend, recovering any durable records
    /// the backend already holds (crash recovery / restart).
    ///
    /// Recovery is streaming: records flow through one at a time and only
    /// the most recent `history` payloads are retained, so memory stays
    /// O(history + tokens) even over multi-gigabyte logs. Corruption in a
    /// sealed segment surfaces here as [`CspotError::CorruptSegment`].
    pub fn create(config: LogConfig, mut backend: Box<dyn StorageBackend>) -> Result<Self> {
        let mut entries = VecDeque::new();
        let mut dedup = BTreeMap::new();
        let mut next_seq = 1u64;
        let summary = backend.recover_scan(&mut |r: Record| {
            if r.token != 0 {
                dedup.insert(r.token, r.seq);
            }
            next_seq = r.seq + 1;
            entries.push_back((r.seq, r.payload));
            if entries.len() > config.history {
                entries.pop_front();
            }
        })?;
        Ok(Log {
            config,
            recovery: summary,
            inner: Mutex::new(LogInner {
                next_seq,
                entries,
                dedup,
                backend,
                inject_failures: 0,
            }),
        })
    }

    /// What recovery found when this log was created (record count, bytes
    /// truncated from a torn tail, sealed segments verified).
    pub fn recovery_summary(&self) -> RecoverySummary {
        self.recovery
    }

    /// The log's configuration.
    pub fn config(&self) -> &LogConfig {
        &self.config
    }

    /// The fixed element size (the datum the remote protocol's first phase
    /// fetches).
    pub fn element_size(&self) -> usize {
        self.config.element_size
    }

    /// Append an element, returning its sequence number (1-based, dense).
    pub fn append(&self, payload: &[u8]) -> Result<u64> {
        self.append_with_token(0, payload)
    }

    /// Append with an idempotency token: if an element with this token was
    /// already appended (a retry after a lost acknowledgment), the original
    /// sequence number is returned and no duplicate is written.
    ///
    /// Token 0 means "no token" (no deduplication).
    pub fn append_with_token(&self, token: u128, payload: &[u8]) -> Result<u64> {
        if payload.len() != self.config.element_size {
            return Err(CspotError::ElementSizeMismatch {
                expected: self.config.element_size,
                got: payload.len(),
            });
        }
        let mut inner = self.inner.lock();
        if token != 0 {
            if let Some(&seq) = inner.dedup.get(&token) {
                return Ok(seq);
            }
        }
        if inner.inject_failures > 0 {
            inner.inject_failures -= 1;
            return Err(CspotError::Storage(std::io::Error::other(
                "injected append failure",
            )));
        }
        let seq = inner.next_seq;
        let record = Record {
            seq,
            token,
            payload: payload.to_vec(),
        };
        inner.backend.append(&record)?;
        inner.next_seq += 1;
        inner.entries.push_back((seq, record.payload));
        if inner.entries.len() > self.config.history {
            inner.entries.pop_front();
        }
        if token != 0 {
            inner.dedup.insert(token, seq);
        }
        Ok(seq)
    }

    /// Inject `n` storage append failures: the next `n` (non-deduplicated)
    /// appends return [`CspotError::Storage`] without writing anything.
    /// Retries with an idempotency token remain exactly-once across the
    /// fault window.
    pub fn inject_append_failures(&self, n: u32) {
        self.inner.lock().inject_failures = n;
    }

    /// Number of injected append failures still pending.
    pub fn pending_injected_failures(&self) -> u32 {
        self.inner.lock().inject_failures
    }

    /// Read the element at `seq`.
    pub fn get(&self, seq: u64) -> Result<Vec<u8>> {
        let inner = self.inner.lock();
        let earliest = inner.entries.front().map(|&(s, _)| s);
        let latest = inner.entries.back().map(|&(s, _)| s);
        match (earliest, latest) {
            (Some(e), Some(_)) if seq >= e => {
                let idx = (seq - e) as usize;
                inner
                    .entries
                    .get(idx)
                    .map(|(_, p)| p.clone())
                    .ok_or(CspotError::SeqOutOfRange {
                        seq,
                        earliest,
                        latest,
                    })
            }
            _ => Err(CspotError::SeqOutOfRange {
                seq,
                earliest,
                latest,
            }),
        }
    }

    /// Latest assigned sequence number, if any element has been appended.
    pub fn latest_seq(&self) -> Option<u64> {
        self.inner.lock().entries.back().map(|&(s, _)| s)
    }

    /// Earliest retained sequence number.
    pub fn earliest_seq(&self) -> Option<u64> {
        self.inner.lock().entries.front().map(|&(s, _)| s)
    }

    /// Number of retained elements.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True if no elements are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all `(seq, payload)` pairs with `seq >= from`, in order.
    ///
    /// This is the primitive CSPOT handlers use to implement multi-event
    /// synchronization: since a handler fires on exactly one append, joining
    /// multiple events requires scanning log history (paper §3.4).
    pub fn scan_from(&self, from: u64) -> Vec<(u64, Vec<u8>)> {
        self.inner
            .lock()
            .entries
            .iter()
            .filter(|&&(s, _)| s >= from)
            .cloned()
            .collect()
    }

    /// The most recent `n` elements, oldest first.
    pub fn tail(&self, n: usize) -> Vec<(u64, Vec<u8>)> {
        let inner = self.inner.lock();
        let skip = inner.entries.len().saturating_sub(n);
        inner.entries.iter().skip(skip).cloned().collect()
    }

    /// Force everything appended so far onto stable storage (flush +
    /// fsync). After this returns Ok, [`Self::committed_seq`] equals
    /// [`Self::latest_seq`] (unless a sync stall is injected).
    pub fn sync(&self) -> Result<()> {
        self.inner.lock().backend.sync()
    }

    /// Highest sequence number known durable on stable storage. Under
    /// group commit this trails [`Self::latest_seq`] by up to one batch.
    pub fn committed_seq(&self) -> Option<u64> {
        self.inner.lock().backend.committed_seq()
    }

    /// Look up the sequence an idempotency token was assigned, if this
    /// token has ever been (durably) appended. Chaos clients use this
    /// after a crash to decide which writes to replay.
    pub fn has_token(&self, token: u128) -> Option<u64> {
        if token == 0 {
            return None;
        }
        self.inner.lock().dedup.get(&token).copied()
    }

    /// Read full records (seq, token, payload) from durable storage
    /// starting at `from`, at most `max`. Unlike [`Self::scan_from`] this
    /// reads through the backend, so it sees records already evicted from
    /// the circular in-memory window — the primitive replication ships.
    pub fn read_records_from(&self, from: u64, max: usize) -> Result<Vec<Record>> {
        self.inner.lock().backend.read_from(from, max)
    }

    /// If `from` falls inside a sealed segment, return that segment's
    /// records from `from` to its end (the whole-segment catch-up fast
    /// path). `None` when `from` is in the active segment or the backend
    /// has no segment structure.
    pub fn sealed_records_from(&self, from: u64) -> Result<Option<Vec<Record>>> {
        self.inner.lock().backend.sealed_records_from(from)
    }

    /// Offer a replicated record to this log (follower side).
    ///
    /// The record must be the next expected sequence (apply), an already-
    /// held one (idempotently dropped), or the offer is a gap error —
    /// followers never invent or reorder history.
    pub fn apply_replica(&self, record: &Record) -> Result<ReplicaApply> {
        if record.payload.len() != self.config.element_size {
            return Err(CspotError::ElementSizeMismatch {
                expected: self.config.element_size,
                got: record.payload.len(),
            });
        }
        let mut inner = self.inner.lock();
        let next = inner.next_seq;
        if record.seq < next {
            return Ok(ReplicaApply::Duplicate);
        }
        if record.seq > next {
            return Err(CspotError::ReplicaGap {
                expected: next,
                got: record.seq,
            });
        }
        inner.backend.append(record)?;
        inner.next_seq = record.seq + 1;
        inner
            .entries
            .push_back((record.seq, record.payload.clone()));
        if inner.entries.len() > self.config.history {
            inner.entries.pop_front();
        }
        if record.token != 0 {
            inner.dedup.insert(record.token, record.seq);
        }
        Ok(ReplicaApply::Applied)
    }

    /// Fault injection: simulate power loss (unsynced bytes vanish).
    /// Returns false if the backend has no durability to lose.
    pub fn simulate_power_loss(&self) -> Result<bool> {
        self.inner.lock().backend.simulate_power_loss()
    }

    /// Fault injection: tear the next append mid-frame. Returns false if
    /// the backend does not support it.
    pub fn inject_torn_write(&self) -> bool {
        self.inner.lock().backend.inject_torn_write()
    }

    /// Fault injection: stall (or release) fsync — appends keep landing
    /// in volatile buffers but the durable watermark freezes.
    pub fn set_sync_stall(&self, on: bool) -> bool {
        self.inner.lock().backend.set_sync_stall(on)
    }

    /// Fault injection: flip a bit inside the `k`-th sealed segment.
    /// Returns Ok(false) if there is no such segment.
    pub fn corrupt_sealed_segment(&self, k: usize) -> Result<bool> {
        self.inner.lock().backend.corrupt_sealed_segment(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemBackend;
    use std::sync::Arc;

    fn mklog(element_size: usize, history: usize) -> Log {
        Log::create(
            LogConfig {
                name: "t".into(),
                element_size,
                history,
            },
            Box::new(MemBackend::new()),
        )
        .unwrap()
    }

    #[test]
    fn injected_append_failures_then_recovery() {
        let log = mklog(3, 16);
        log.append(b"aaa").unwrap();
        log.inject_append_failures(2);
        assert_eq!(log.pending_injected_failures(), 2);
        assert!(matches!(
            log.append(b"bbb").unwrap_err(),
            CspotError::Storage(_)
        ));
        assert!(log.append(b"bbb").is_err());
        // Fault window exhausted: appends succeed again with dense seqs.
        assert_eq!(log.pending_injected_failures(), 0);
        assert_eq!(log.append(b"bbb").unwrap(), 2);
        assert_eq!(log.len(), 2, "failed appends wrote nothing");
        // Deduplicated retries are not consumed by the fault window.
        let seq = log.append_with_token(99, b"ccc").unwrap();
        log.inject_append_failures(1);
        assert_eq!(log.append_with_token(99, b"ccc").unwrap(), seq);
        assert_eq!(log.pending_injected_failures(), 1);
    }

    #[test]
    fn append_returns_dense_sequences() {
        let log = mklog(3, 16);
        assert_eq!(log.append(b"aaa").unwrap(), 1);
        assert_eq!(log.append(b"bbb").unwrap(), 2);
        assert_eq!(log.append(b"ccc").unwrap(), 3);
        assert_eq!(log.latest_seq(), Some(3));
    }

    #[test]
    fn element_size_enforced() {
        let log = mklog(4, 16);
        assert!(matches!(
            log.append(b"toolong"),
            Err(CspotError::ElementSizeMismatch {
                expected: 4,
                got: 7
            })
        ));
        assert!(log.append(b"ok!!").is_ok());
    }

    #[test]
    fn get_roundtrip() {
        let log = mklog(2, 16);
        let s1 = log.append(b"ab").unwrap();
        let s2 = log.append(b"cd").unwrap();
        assert_eq!(log.get(s1).unwrap(), b"ab");
        assert_eq!(log.get(s2).unwrap(), b"cd");
        assert!(log.get(99).is_err());
        assert!(log.get(0).is_err());
    }

    #[test]
    fn circular_history_evicts_oldest() {
        let log = mklog(1, 3);
        for b in [b"a", b"b", b"c", b"d", b"e"] {
            log.append(b.as_slice()).unwrap();
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.earliest_seq(), Some(3));
        assert_eq!(log.latest_seq(), Some(5));
        assert!(log.get(2).is_err(), "evicted element must be unreadable");
        assert_eq!(log.get(3).unwrap(), b"c");
        // Sequence numbers keep growing past eviction.
        assert_eq!(log.append(b"f").unwrap(), 6);
    }

    #[test]
    fn dedup_returns_original_seq() {
        let log = mklog(1, 16);
        let s1 = log.append_with_token(42, b"x").unwrap();
        let s2 = log.append_with_token(42, b"x").unwrap();
        assert_eq!(s1, s2);
        assert_eq!(log.len(), 1, "no duplicate element");
        // A different token appends normally.
        let s3 = log.append_with_token(43, b"y").unwrap();
        assert_eq!(s3, s1 + 1);
    }

    #[test]
    fn token_zero_never_dedups() {
        let log = mklog(1, 16);
        let s1 = log.append_with_token(0, b"x").unwrap();
        let s2 = log.append_with_token(0, b"x").unwrap();
        assert_ne!(s1, s2);
    }

    #[test]
    fn scan_and_tail() {
        let log = mklog(1, 16);
        for b in [b"a", b"b", b"c", b"d"] {
            log.append(b.as_slice()).unwrap();
        }
        let scanned = log.scan_from(3);
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[0].0, 3);
        let tail = log.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].1, b"c");
        assert_eq!(tail[1].1, b"d");
        // Tail longer than the log returns everything.
        assert_eq!(log.tail(100).len(), 4);
    }

    #[test]
    fn concurrent_appends_unique_dense_seqs() {
        let log = Arc::new(mklog(8, 100_000));
        let threads = 8;
        let per_thread = 500;
        let mut handles = Vec::new();
        for t in 0..threads {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                let mut seqs = Vec::with_capacity(per_thread);
                for i in 0..per_thread {
                    let payload = [(t as u8); 8];
                    let _ = i;
                    seqs.push(log.append(&payload).unwrap());
                }
                seqs
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (1..=(threads * per_thread) as u64).collect();
        assert_eq!(all, expect, "sequence numbers must be unique and dense");
    }

    #[test]
    fn recovery_restores_state() {
        use crate::storage::FileBackend;
        let dir = std::env::temp_dir().join(format!("xg-log-recovery-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("recover_test.log");
        let _ = std::fs::remove_file(&path);
        let cfg = LogConfig {
            name: "r".into(),
            element_size: 2,
            history: 10,
        };
        {
            let log =
                Log::create(cfg.clone(), Box::new(FileBackend::open(&path).unwrap())).unwrap();
            log.append(b"ab").unwrap();
            log.append_with_token(7, b"cd").unwrap();
        }
        // "Restart" the node: recreate the log over the same file.
        let log = Log::create(cfg, Box::new(FileBackend::open(&path).unwrap())).unwrap();
        assert_eq!(log.latest_seq(), Some(2));
        assert_eq!(log.get(1).unwrap(), b"ab");
        // Dedup state survives restart: a retried append is still absorbed.
        let s = log.append_with_token(7, b"cd").unwrap();
        assert_eq!(s, 2);
        // And new appends continue the sequence.
        assert_eq!(log.append(b"ef").unwrap(), 3);
    }
}
