//! A CSPOT node: the namespace of logs and handlers at one site.
//!
//! Event handlers are CSPOT's only computational mechanism. A handler is
//! triggered by exactly **one** log append — there is deliberately no way
//! to fire an event only after multiple appends (paper §3.4), which keeps
//! the system deadlock-free: no handler ever blocks waiting for another.
//! Multi-event synchronization is implemented *inside* handlers by scanning
//! log history (see [`crate::log::Log::scan_from`]).

use crate::error::{CspotError, Result};
use crate::log::{Log, LogConfig};
use crate::segment::{SegmentConfig, SegmentedBackend};
use crate::storage::{MemBackend, StorageBackend};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Handler signature: `(node, log_name, seq, payload)`.
pub type Handler = Arc<dyn Fn(&CspotNode, &str, u64, &[u8]) + Send + Sync>;

/// Reserved log receiving flight-recorder ("black box") bundles so crash
/// forensics survive process death; see [`CspotNode::persist_blackbox`].
pub const BLACKBOX_LOG: &str = "sys.blackbox";
const BLACKBOX_ELEMENT: usize = 256;
const BLACKBOX_HISTORY: usize = 4096;
/// Chunk framing inside `sys.blackbox` elements: a bundle begins with a
/// BEGIN element (tag + total byte length) followed by DATA elements
/// (tag + chunk length + bytes), each padded to the fixed element size.
const TAG_BEGIN: u8 = 0x01;
const TAG_DATA: u8 = 0x02;
const DATA_CAPACITY: usize = BLACKBOX_ELEMENT - 3;

enum Persistence {
    Memory,
    Directory {
        dir: PathBuf,
        storage: SegmentConfig,
    },
}

/// A CSPOT namespace at a named site.
pub struct CspotNode {
    site: String,
    persistence: Persistence,
    logs: RwLock<BTreeMap<String, Arc<Log>>>,
    handlers: RwLock<BTreeMap<String, Vec<Handler>>>,
}

impl CspotNode {
    /// A volatile node (no crash durability) at the named site.
    pub fn in_memory(site: &str) -> Self {
        CspotNode {
            site: site.to_string(),
            persistence: Persistence::Memory,
            logs: RwLock::new(BTreeMap::new()),
            handlers: RwLock::new(BTreeMap::new()),
        }
    }

    /// A durable node whose logs persist under `dir` with the default
    /// storage engine configuration. Re-opening a node on the same
    /// directory recovers all its logs (call [`Self::open_log`] per log
    /// to reload).
    pub fn durable(site: &str, dir: impl AsRef<Path>) -> Self {
        Self::durable_with_storage(site, dir, SegmentConfig::default())
    }

    /// A durable node with an explicit storage engine configuration
    /// (segment size, sync policy, retention) shared by all its logs.
    pub fn durable_with_storage(site: &str, dir: impl AsRef<Path>, storage: SegmentConfig) -> Self {
        CspotNode {
            site: site.to_string(),
            persistence: Persistence::Directory {
                dir: dir.as_ref().to_path_buf(),
                storage,
            },
            logs: RwLock::new(BTreeMap::new()),
            handlers: RwLock::new(BTreeMap::new()),
        }
    }

    /// The site name (e.g. "UNL", "UCSB", "ND").
    pub fn site(&self) -> &str {
        &self.site
    }

    fn backend_for(&self, log_name: &str) -> Result<Box<dyn StorageBackend>> {
        Ok(match &self.persistence {
            Persistence::Memory => Box::new(MemBackend::new()),
            Persistence::Directory { dir, storage } => Box::new(SegmentedBackend::open(
                dir.join(format!("{log_name}.seglog")),
                storage.clone(),
            )?),
        })
    }

    /// Create a log. Errors if the name is taken.
    pub fn create_log(&self, name: &str, element_size: usize, history: usize) -> Result<Arc<Log>> {
        let mut logs = self.logs.write();
        if logs.contains_key(name) {
            return Err(CspotError::LogExists(name.to_string()));
        }
        let log = Arc::new(Log::create(
            LogConfig {
                name: name.to_string(),
                element_size,
                history,
            },
            self.backend_for(name)?,
        )?);
        logs.insert(name.to_string(), Arc::clone(&log));
        Ok(log)
    }

    /// Open (re-load) a log after a node restart. On a durable node this
    /// recovers the log's contents from disk; the configuration must match
    /// what the log was created with.
    pub fn open_log(&self, name: &str, element_size: usize, history: usize) -> Result<Arc<Log>> {
        {
            let logs = self.logs.read();
            if let Some(log) = logs.get(name) {
                return Ok(Arc::clone(log));
            }
        }
        let log = Arc::new(Log::create(
            LogConfig {
                name: name.to_string(),
                element_size,
                history,
            },
            self.backend_for(name)?,
        )?);
        self.logs.write().insert(name.to_string(), Arc::clone(&log));
        Ok(log)
    }

    /// Look up an existing log.
    pub fn log(&self, name: &str) -> Result<Arc<Log>> {
        self.logs
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| CspotError::UnknownLog(name.to_string()))
    }

    /// Names of all logs in the namespace.
    pub fn log_names(&self) -> Vec<String> {
        self.logs.read().keys().cloned().collect()
    }

    /// Register a handler fired on every append to `log_name`.
    pub fn register_handler(&self, log_name: &str, handler: Handler) {
        self.handlers
            .write()
            .entry(log_name.to_string())
            .or_default()
            .push(handler);
    }

    /// Append to a log and fire its handlers (CSPOT's `WooFPut`).
    pub fn put(&self, log_name: &str, payload: &[u8]) -> Result<u64> {
        self.put_with_token(log_name, 0, payload)
    }

    /// Append with an idempotency token and fire handlers.
    ///
    /// Handlers fire only for *fresh* appends: a deduplicated retry returns
    /// the original sequence number without re-firing (exactly-once handler
    /// semantics).
    pub fn put_with_token(&self, log_name: &str, token: u128, payload: &[u8]) -> Result<u64> {
        let log = self.log(log_name)?;
        let before = log.latest_seq();
        let seq = log.append_with_token(token, payload)?;
        let fresh = before.is_none_or(|b| seq > b);
        if fresh {
            self.fire_handlers(log_name, seq, payload);
        }
        Ok(seq)
    }

    /// Read an element (CSPOT's `WooFGet`).
    pub fn get(&self, log_name: &str, seq: u64) -> Result<Vec<u8>> {
        self.log(log_name)?.get(seq)
    }

    /// Latest sequence number of a log (CSPOT's `WooFGetLatestSeqno`).
    pub fn latest_seq(&self, log_name: &str) -> Result<Option<u64>> {
        Ok(self.log(log_name)?.latest_seq())
    }

    /// Persist a flight-recorder bundle (any string, typically the JSONL
    /// from `xg-obs::recorder::render_bundle`) into the node's reserved
    /// `sys.blackbox` log, chunked across fixed-size elements and fsynced,
    /// so it survives process death. Returns the sequence number of the
    /// bundle's final chunk.
    pub fn persist_blackbox(&self, bundle: &str) -> Result<u64> {
        let log = self.open_log(BLACKBOX_LOG, BLACKBOX_ELEMENT, BLACKBOX_HISTORY)?;
        let bytes = bundle.as_bytes();
        let mut element = [0u8; BLACKBOX_ELEMENT];
        element[0] = TAG_BEGIN;
        element[1..5].copy_from_slice(&(bytes.len() as u32).to_le_bytes());
        let mut last = log.append(&element)?;
        for chunk in bytes.chunks(DATA_CAPACITY) {
            let mut element = [0u8; BLACKBOX_ELEMENT];
            element[0] = TAG_DATA;
            element[1..3].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
            element[3..3 + chunk.len()].copy_from_slice(chunk);
            last = log.append(&element)?;
        }
        // A black box is worthless if it rides in the group-commit buffer
        // when the lights go out.
        log.sync()?;
        Ok(last)
    }

    /// Reassemble the most recent *complete* black-box bundle from the
    /// `sys.blackbox` log, if one survived (e.g. after a restart).
    pub fn recovered_blackbox(&self) -> Result<Option<String>> {
        let log = self.open_log(BLACKBOX_LOG, BLACKBOX_ELEMENT, BLACKBOX_HISTORY)?;
        let mut complete: Option<String> = None;
        let mut pending: Option<(usize, Vec<u8>)> = None;
        for (_, element) in log.scan_from(0) {
            match element.first() {
                Some(&TAG_BEGIN) if element.len() >= 5 => {
                    let total = u32::from_le_bytes([element[1], element[2], element[3], element[4]])
                        as usize;
                    pending = Some((total, Vec::with_capacity(total)));
                    if total == 0 {
                        complete = Some(String::new());
                        pending = None;
                    }
                }
                Some(&TAG_DATA) if element.len() >= 3 => {
                    if let Some((total, buf)) = pending.as_mut() {
                        let len = u16::from_le_bytes([element[1], element[2]]) as usize;
                        let end = (3 + len).min(element.len());
                        buf.extend_from_slice(&element[3..end]);
                        if buf.len() >= *total {
                            buf.truncate(*total);
                            complete = String::from_utf8(std::mem::take(buf)).ok();
                            pending = None;
                        }
                    }
                }
                _ => pending = None,
            }
        }
        Ok(complete)
    }

    fn fire_handlers(&self, log_name: &str, seq: u64, payload: &[u8]) {
        // Clone the handler list before invoking so handlers can register
        // further handlers or put to other logs without deadlock.
        let to_fire: Vec<Handler> = self
            .handlers
            .read()
            .get(log_name)
            .map(|v| v.to_vec())
            .unwrap_or_default();
        for h in to_fire {
            h(self, log_name, seq, payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn create_and_put_get() {
        let node = CspotNode::in_memory("UCSB");
        node.create_log("a", 4, 8).unwrap();
        let seq = node.put("a", b"wxyz").unwrap();
        assert_eq!(node.get("a", seq).unwrap(), b"wxyz");
        assert_eq!(node.latest_seq("a").unwrap(), Some(seq));
    }

    #[test]
    fn duplicate_log_rejected() {
        let node = CspotNode::in_memory("UCSB");
        node.create_log("a", 4, 8).unwrap();
        assert!(matches!(
            node.create_log("a", 4, 8),
            Err(CspotError::LogExists(_))
        ));
    }

    #[test]
    fn unknown_log_errors() {
        let node = CspotNode::in_memory("UCSB");
        assert!(matches!(
            node.put("missing", b"x"),
            Err(CspotError::UnknownLog(_))
        ));
        assert!(node.get("missing", 1).is_err());
        assert!(node.latest_seq("missing").is_err());
    }

    #[test]
    fn handler_fires_once_per_append() {
        let node = CspotNode::in_memory("UCSB");
        node.create_log("a", 1, 8).unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        node.register_handler(
            "a",
            Arc::new(move |_, _, _, _| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        node.put("a", b"x").unwrap();
        node.put("a", b"y").unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn handler_not_fired_on_dedup_retry() {
        let node = CspotNode::in_memory("UCSB");
        node.create_log("a", 1, 8).unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        node.register_handler(
            "a",
            Arc::new(move |_, _, _, _| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        node.put_with_token("a", 5, b"x").unwrap();
        node.put_with_token("a", 5, b"x").unwrap(); // retry
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "exactly-once handler firing"
        );
    }

    #[test]
    fn handler_can_chain_puts() {
        // A handler appending to another log must not deadlock, and the
        // chained append fires the downstream handler.
        let node = Arc::new(CspotNode::in_memory("UCSB"));
        node.create_log("src", 1, 8).unwrap();
        node.create_log("dst", 1, 8).unwrap();
        node.register_handler(
            "src",
            Arc::new(|n, _, _, payload| {
                n.put("dst", payload).unwrap();
            }),
        );
        let hit = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hit);
        node.register_handler(
            "dst",
            Arc::new(move |_, _, _, _| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        node.put("src", b"z").unwrap();
        assert_eq!(node.latest_seq("dst").unwrap(), Some(1));
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn multi_event_synchronization_via_scan() {
        // The paper's idiom: a handler that needs N inputs scans the log
        // instead of blocking. Fire an "aggregate" only on the 3rd append.
        let node = CspotNode::in_memory("UCSB");
        node.create_log("in", 1, 16).unwrap();
        node.create_log("agg", 3, 16).unwrap();
        node.register_handler(
            "in",
            Arc::new(|n, _, _, _| {
                let log = n.log("in").unwrap();
                let tail = log.tail(3);
                if tail.len() == 3 {
                    let bytes: Vec<u8> = tail.iter().map(|(_, p)| p[0]).collect();
                    n.put("agg", &bytes).unwrap();
                }
            }),
        );
        node.put("in", b"a").unwrap();
        node.put("in", b"b").unwrap();
        assert_eq!(node.latest_seq("agg").unwrap(), None);
        node.put("in", b"c").unwrap();
        assert_eq!(node.get("agg", 1).unwrap(), b"abc");
    }

    #[test]
    fn durable_node_restart_recovers_logs() {
        let dir = std::env::temp_dir().join(format!("xg-node-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let node = CspotNode::durable("UNL", &dir);
            node.create_log("state", 2, 8).unwrap();
            node.put("state", b"s1").unwrap();
            node.put("state", b"s2").unwrap();
        }
        // Simulated power cycle: new node over the same directory.
        let node = CspotNode::durable("UNL", &dir);
        let log = node.open_log("state", 2, 8).unwrap();
        assert_eq!(log.latest_seq(), Some(2));
        assert_eq!(node.get("state", 1).unwrap(), b"s1");
        // Program state resumes exactly where it stopped.
        assert_eq!(node.put("state", b"s3").unwrap(), 3);
    }
}
