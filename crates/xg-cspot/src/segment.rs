//! Segmented append-only storage engine.
//!
//! The production backend behind durable CSPOT logs. The log is a
//! directory of fixed-size **segments**, each a run of CRC-framed records
//! (the shared wire format in [`crate::storage`]). The segment currently
//! receiving appends is *active*; when it reaches the configured size it
//! is **sealed**: a footer summarizing the segment (first/last sequence,
//! record count, a running checksum over every record byte) is written
//! and fsynced before the next segment may be created. That ordering is
//! the engine's core invariant:
//!
//! > If a segment with a higher first-sequence exists on disk, every
//! > lower segment is sealed, complete, and durable.
//!
//! Recovery therefore has exactly two regimes:
//!
//! * **Active segment** (the highest-numbered file): a torn or corrupt
//!   tail is the signature of a crash mid-write — silently truncate to
//!   the last intact record and continue. This is ordinary WAL recovery.
//! * **Sealed segments**: any damage (record CRC, footer mismatch,
//!   missing footer) means *acknowledged* data rotted at rest. Recovery
//!   fail-stops with [`CspotError::CorruptSegment`] instead of silently
//!   shortening history that replicas or handlers may have acted on.
//!
//! Durability is tunable via [`SyncPolicy`]: `EveryAppend` fsyncs each
//! record (safest, slowest); `GroupCommit { every }` batches fsyncs so
//! only ~1/N appends pay the device round-trip, keeping append p99 flat
//! as the log grows. The durable watermark is exposed as
//! `committed_seq`; acks carry `durable: false` between group commits.
//! Sealed segments older than the retention budget are deleted whole
//! (compaction is unit-of-segment, so it never rewrites data).

use crate::error::{CspotError, Result};
use crate::storage::{
    decode_frame, encode_record, fnv1a, fnv1a_update, AppendAck, FrameDecode, Record,
    RecoverySummary, StorageBackend, FNV_OFFSET, FRAME_HEADER, FRAME_TRAILER,
};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening a segment footer ("XGSF"). A footer can never be
/// confused with a record frame: read as a length field, the magic would
/// claim a ~1.2 GB payload, far above [`crate::storage::MAX_PAYLOAD`].
const FOOTER_MAGIC: [u8; 4] = *b"XGSF";
/// Footer wire size: magic + first_seq + last_seq + count + records_crc
/// + footer_crc.
const FOOTER_LEN: usize = 4 + 8 + 8 + 8 + 4 + 4;

/// When appends become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every append. Every ack is `durable: true`.
    EveryAppend,
    /// fsync once per `every` appends (and on seal / explicit sync).
    /// Acks in between are `durable: false`; a crash can lose that
    /// unsynced tail, which idempotent client replay repairs.
    GroupCommit {
        /// Appends per fsync (clamped to ≥ 1).
        every: u32,
    },
}

/// Static configuration of a [`SegmentedBackend`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentConfig {
    /// Roll (seal) the active segment once its record bytes reach this.
    pub segment_bytes: u64,
    /// Sealed segments to retain; older ones are deleted whole. `None`
    /// keeps everything.
    pub retain_segments: Option<usize>,
    /// Durability policy.
    pub sync: SyncPolicy,
    /// Sparse-index granularity: one `(seq, offset)` entry per this many
    /// records (clamped to ≥ 1).
    pub index_stride: u64,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            segment_bytes: 4 * 1024 * 1024,
            retain_segments: None,
            sync: SyncPolicy::EveryAppend,
            index_stride: 64,
        }
    }
}

/// Sealed-segment footer contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Footer {
    first_seq: u64,
    last_seq: u64,
    count: u64,
    records_crc: u32,
}

impl Footer {
    fn encode(&self) -> [u8; FOOTER_LEN] {
        let mut buf = [0u8; FOOTER_LEN];
        buf[0..4].copy_from_slice(&FOOTER_MAGIC);
        buf[4..12].copy_from_slice(&self.first_seq.to_le_bytes());
        buf[12..20].copy_from_slice(&self.last_seq.to_le_bytes());
        buf[20..28].copy_from_slice(&self.count.to_le_bytes());
        buf[28..32].copy_from_slice(&self.records_crc.to_le_bytes());
        let crc = fnv1a(&buf[0..32]);
        buf[32..36].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decode a footer from exactly [`FOOTER_LEN`] bytes; `None` when the
    /// magic or the footer's own checksum does not hold.
    fn decode(bytes: &[u8]) -> Option<Footer> {
        if bytes.len() != FOOTER_LEN || bytes[0..4] != FOOTER_MAGIC {
            return None;
        }
        let stored = u32::from_le_bytes([bytes[32], bytes[33], bytes[34], bytes[35]]);
        if fnv1a(&bytes[0..32]) != stored {
            return None;
        }
        let word = |a: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[a..a + 8]);
            u64::from_le_bytes(b)
        };
        Some(Footer {
            first_seq: word(4),
            last_seq: word(12),
            count: word(20),
            records_crc: u32::from_le_bytes([bytes[28], bytes[29], bytes[30], bytes[31]]),
        })
    }
}

/// In-memory descriptor of one sealed segment.
#[derive(Debug, Clone)]
struct SealedMeta {
    path: PathBuf,
    footer: Footer,
    /// Sparse `(seq, offset)` index. Populated for segments sealed during
    /// this process's lifetime; empty after a restart (reads then scan
    /// from the segment head, which is bounded by `segment_bytes`).
    index: Vec<(u64, u64)>,
}

/// The segment currently receiving appends.
struct ActiveSegment {
    path: PathBuf,
    writer: BufWriter<File>,
    first_seq: u64,
    last_seq: u64,
    count: u64,
    /// Record bytes written (buffered or not); the footer starts here.
    bytes: u64,
    /// Bytes known fsynced (power loss truncates the file to this).
    synced_bytes: u64,
    /// Running FNV-1a over every record byte, for the footer.
    records_crc: u32,
    /// Sparse `(seq, offset)` index.
    index: Vec<(u64, u64)>,
}

/// Segmented append-only storage engine; see the module docs.
pub struct SegmentedBackend {
    dir: PathBuf,
    config: SegmentConfig,
    sealed: Vec<SealedMeta>,
    active: Option<ActiveSegment>,
    committed: Option<u64>,
    pending_since_sync: u32,
    sync_stalled: bool,
    tear_next_append: bool,
    /// Bytes cut from the active segment's torn tail during `open`,
    /// surfaced through the recovery summary.
    truncated_at_open: u64,
    /// Set after an injected torn write: the file ends mid-frame, so
    /// further appends would corrupt the log. Only a fresh open (which
    /// truncates the torn tail) clears it.
    poisoned: bool,
}

fn segment_file_name(first_seq: u64) -> String {
    format!("{first_seq:020}.seg")
}

/// Writer sized so a whole group-commit window fits in memory: with the
/// default 8 KB buffer, appends between fsyncs still pay write(2) every
/// few records, which is exactly the syscall tail group commit exists to
/// remove. One segment of buffer (capped at 4 MiB) keeps the append hot
/// path allocation- and syscall-free until `sync` or seal.
fn segment_writer(file: File, config: &SegmentConfig) -> BufWriter<File> {
    let cap = config.segment_bytes.clamp(64 * 1024, 4 * 1024 * 1024) as usize;
    BufWriter::with_capacity(cap, file)
}

fn parse_segment_name(path: &Path) -> Option<u64> {
    let stem = path.file_stem()?.to_str()?;
    if path.extension()?.to_str()? != "seg" || stem.len() != 20 {
        return None;
    }
    stem.parse().ok()
}

fn file_name_string(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

fn corrupt(path: &Path, detail: impl Into<String>) -> CspotError {
    CspotError::CorruptSegment {
        segment: file_name_string(path),
        detail: detail.into(),
    }
}

/// What scanning one segment file found.
enum SegmentScan {
    /// Ends with a valid footer consistent with its records.
    Sealed(Footer),
    /// No footer; `valid_end` is the offset just past the last intact
    /// record (anything beyond is a torn/interrupted tail).
    Active {
        valid_end: u64,
        first_seq: u64,
        last_seq: u64,
        count: u64,
        records_crc: u32,
        index: Vec<(u64, u64)>,
    },
}

impl SegmentedBackend {
    /// Open (or create) the engine over `dir`, running recovery: sealed
    /// segments are footer-verified, the active segment's torn tail (if
    /// any) is truncated, and the writer is positioned for appends.
    ///
    /// Full record-level verification of sealed segments happens in
    /// [`StorageBackend::recover_scan`] (which the log layer always runs
    /// right after opening); `open` itself only validates footers so that
    /// mounting stays O(segment count + active segment).
    pub fn open(dir: impl AsRef<Path>, config: SegmentConfig) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut seg_files: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if let Some(first_seq) = parse_segment_name(&path) {
                seg_files.push((first_seq, path));
            }
        }
        seg_files.sort_by_key(|&(first, _)| first);

        let mut backend = SegmentedBackend {
            dir,
            config,
            sealed: Vec::new(),
            active: None,
            committed: None,
            pending_since_sync: 0,
            sync_stalled: false,
            tear_next_append: false,
            truncated_at_open: 0,
            poisoned: false,
        };
        backend.config.index_stride = backend.config.index_stride.max(1);

        let Some(((_, last_path), older)) = seg_files.split_last() else {
            return Ok(backend);
        };
        // Every segment below the highest must carry a valid footer —
        // the seal happens (durably) before a successor is created.
        for (first_seq, path) in older {
            let footer = read_footer(path)?
                .ok_or_else(|| corrupt(path, "sealed segment lacks a valid footer"))?;
            if footer.first_seq != *first_seq {
                return Err(corrupt(
                    path,
                    format!(
                        "footer first_seq {} disagrees with file name {}",
                        footer.first_seq, first_seq
                    ),
                ));
            }
            backend.committed = Some(footer.last_seq);
            backend.sealed.push(SealedMeta {
                path: path.clone(),
                footer,
                index: Vec::new(),
            });
        }
        // The highest segment: sealed if it ends in a valid footer,
        // otherwise active (truncate any torn tail and adopt it).
        let bytes = std::fs::read(last_path)?;
        match scan_segment(&bytes, backend.config.index_stride, &mut |_| {})? {
            SegmentScan::Sealed(footer) => {
                backend.committed = Some(footer.last_seq);
                backend.sealed.push(SealedMeta {
                    path: last_path.clone(),
                    footer,
                    index: Vec::new(),
                });
            }
            SegmentScan::Active {
                valid_end,
                first_seq,
                last_seq,
                count,
                records_crc,
                index,
            } => {
                if valid_end < bytes.len() as u64 {
                    backend.truncated_at_open = bytes.len() as u64 - valid_end;
                    let f = OpenOptions::new().write(true).open(last_path)?;
                    f.set_len(valid_end)?;
                    f.sync_data()?;
                }
                let file = OpenOptions::new().append(true).open(last_path)?;
                let writer = segment_writer(file, &backend.config);
                if count > 0 {
                    backend.committed = Some(last_seq);
                }
                backend.active = Some(ActiveSegment {
                    path: last_path.clone(),
                    writer,
                    first_seq,
                    last_seq,
                    count,
                    bytes: valid_end,
                    synced_bytes: valid_end,
                    records_crc,
                    index,
                });
            }
        }
        Ok(backend)
    }

    /// The engine's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of sealed segments currently retained.
    pub fn sealed_segments(&self) -> usize {
        self.sealed.len()
    }

    /// Paths of all segment files, oldest first (sealed then active).
    pub fn segment_paths(&self) -> Vec<PathBuf> {
        let mut out: Vec<PathBuf> = self.sealed.iter().map(|m| m.path.clone()).collect();
        if let Some(a) = &self.active {
            out.push(a.path.clone());
        }
        out
    }

    fn seal_active(&mut self) -> Result<()> {
        let Some(mut active) = self.active.take() else {
            return Ok(());
        };
        if active.count == 0 {
            // Nothing written; keep the empty file as the active segment.
            self.active = Some(active);
            return Ok(());
        }
        let footer = Footer {
            first_seq: active.first_seq,
            last_seq: active.last_seq,
            count: active.count,
            records_crc: active.records_crc,
        };
        active.writer.write_all(&footer.encode())?;
        active.writer.flush()?;
        // The seal invariant: the footer is durable before any successor
        // segment can exist. A stalled fsync must not break it — sealing
        // bypasses the stall simulation (the stall models a slow device,
        // not a reordering one).
        active.writer.get_ref().sync_data()?;
        self.committed = Some(active.last_seq);
        self.pending_since_sync = 0;
        self.sealed.push(SealedMeta {
            path: active.path,
            footer,
            index: std::mem::take(&mut active.index),
        });
        self.apply_retention()?;
        Ok(())
    }

    fn apply_retention(&mut self) -> Result<()> {
        if let Some(keep) = self.config.retain_segments {
            while self.sealed.len() > keep {
                let meta = self.sealed.remove(0);
                std::fs::remove_file(&meta.path)?;
            }
        }
        Ok(())
    }

    fn ensure_active(&mut self, first_seq: u64) -> Result<&mut ActiveSegment> {
        if self.active.is_none() {
            let path = self.dir.join(segment_file_name(first_seq));
            let file = OpenOptions::new().create(true).append(true).open(&path)?;
            self.active = Some(ActiveSegment {
                path,
                writer: segment_writer(file, &self.config),
                first_seq,
                last_seq: 0,
                count: 0,
                bytes: 0,
                synced_bytes: 0,
                records_crc: FNV_OFFSET,
                index: Vec::new(),
            });
        }
        // The branch above guarantees presence.
        match self.active.as_mut() {
            Some(a) => Ok(a),
            None => Err(CspotError::Storage(std::io::Error::other(
                "active segment vanished",
            ))),
        }
    }

    fn do_sync(&mut self) -> Result<()> {
        if self.sync_stalled {
            // The device is "hanging": nothing reaches stable storage and
            // the committed watermark must not advance.
            return Ok(());
        }
        if let Some(active) = self.active.as_mut() {
            active.writer.flush()?;
            active.writer.get_ref().sync_data()?;
            active.synced_bytes = active.bytes;
            if active.count > 0 {
                self.committed = Some(active.last_seq);
            }
        }
        self.pending_since_sync = 0;
        Ok(())
    }

    /// Read one segment file and return records with `seq >= from`, up to
    /// `max`, using the sparse index to skip ahead when available.
    fn read_segment_from(
        path: &Path,
        index: &[(u64, u64)],
        from: u64,
        max: usize,
        out: &mut Vec<Record>,
    ) -> Result<()> {
        let bytes = std::fs::read(path)?;
        // Last index entry at or below `from`.
        let start = index
            .iter()
            .take_while(|&&(seq, _)| seq <= from)
            .last()
            .map(|&(_, off)| off as usize)
            .unwrap_or(0);
        let mut off = start;
        while out.len() < max {
            if bytes.len() - off == FOOTER_LEN && bytes[off..off + 4] == FOOTER_MAGIC {
                break; // footer reached
            }
            match decode_frame(&bytes, off) {
                FrameDecode::Ok { record, next } => {
                    if record.seq >= from {
                        out.push(record);
                    }
                    off = next;
                }
                _ => break, // torn/corrupt tail of the active segment
            }
        }
        Ok(())
    }
}

/// Read and validate just the footer of a sealed segment file.
fn read_footer(path: &Path) -> Result<Option<Footer>> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    if len < FOOTER_LEN as u64 {
        return Ok(None);
    }
    use std::io::{Read, Seek, SeekFrom};
    file.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
    let mut buf = [0u8; FOOTER_LEN];
    file.read_exact(&mut buf)?;
    Ok(Footer::decode(&buf))
}

/// Scan a whole segment image, streaming records into `sink`. Memory is
/// O(segment) — the caller reads one segment at a time, never the log.
fn scan_segment(
    bytes: &[u8],
    index_stride: u64,
    sink: &mut dyn FnMut(Record),
) -> Result<SegmentScan> {
    let mut off = 0usize;
    let mut first_seq = 0u64;
    let mut last_seq = 0u64;
    let mut count = 0u64;
    let mut records_crc = FNV_OFFSET;
    let mut index: Vec<(u64, u64)> = Vec::new();
    loop {
        if bytes.len() - off == FOOTER_LEN && bytes[off..off + 4] == FOOTER_MAGIC {
            if let Some(footer) = Footer::decode(&bytes[off..off + FOOTER_LEN]) {
                return Ok(SegmentScan::Sealed(footer));
            }
            // Magic present but the footer checksum fails: a crash hit
            // mid-seal. The records before it are intact; treat the
            // partial footer as the torn tail of an active segment.
        }
        match decode_frame(bytes, off) {
            FrameDecode::Ok { record, next } => {
                if count == 0 {
                    first_seq = record.seq;
                }
                if count.is_multiple_of(index_stride.max(1)) {
                    index.push((record.seq, off as u64));
                }
                records_crc = fnv1a_update(records_crc, &bytes[off..next]);
                last_seq = record.seq;
                count += 1;
                sink(record);
                off = next;
            }
            FrameDecode::Torn | FrameDecode::Corrupt => {
                return Ok(SegmentScan::Active {
                    valid_end: off as u64,
                    first_seq,
                    last_seq,
                    count,
                    records_crc,
                    index,
                });
            }
        }
        if off == bytes.len() {
            return Ok(SegmentScan::Active {
                valid_end: off as u64,
                first_seq,
                last_seq,
                count,
                records_crc,
                index,
            });
        }
    }
}

/// Fully verify one *sealed* segment: every record CRC, plus the footer's
/// first/last/count/records_crc. Streams records into `sink`.
fn verify_sealed(path: &Path, expected: &Footer, sink: &mut dyn FnMut(Record)) -> Result<u64> {
    let bytes = std::fs::read(path)?;
    let mut streamed: Vec<Record> = Vec::new();
    let scan = scan_segment(&bytes, u64::MAX, &mut |r| streamed.push(r))?;
    let found = match scan {
        SegmentScan::Sealed(f) => f,
        SegmentScan::Active { valid_end, .. } => {
            return Err(corrupt(
                path,
                format!(
                    "record damage or missing footer behind the seal (intact up to byte {valid_end} of {})",
                    bytes.len()
                ),
            ));
        }
    };
    if found != *expected {
        return Err(corrupt(path, "footer changed since mount"));
    }
    let mut count = 0u64;
    let mut records_crc = FNV_OFFSET;
    let mut last = 0u64;
    let mut off = 0usize;
    // Recompute the running CRC exactly as sealing did.
    for r in &streamed {
        let frame = encode_record(r);
        records_crc = fnv1a_update(records_crc, &frame);
        off += frame.len();
        last = r.seq;
        count += 1;
    }
    let _ = off;
    if count != expected.count
        || last != expected.last_seq
        || streamed.first().map(|r| r.seq) != Some(expected.first_seq)
    {
        return Err(corrupt(
            path,
            format!(
                "footer summary mismatch: footer says {}..={} ({} records), file holds {:?}..={last} ({count})",
                expected.first_seq,
                expected.last_seq,
                expected.count,
                streamed.first().map(|r| r.seq),
            ),
        ));
    }
    if records_crc != expected.records_crc {
        return Err(corrupt(path, "segment records checksum mismatch"));
    }
    for r in streamed {
        sink(r);
    }
    Ok(count)
}

impl StorageBackend for SegmentedBackend {
    fn append(&mut self, record: &Record) -> Result<AppendAck> {
        if self.poisoned {
            return Err(CspotError::Storage(std::io::Error::other(
                "storage engine poisoned by torn write; reopen to recover",
            )));
        }
        if self.tear_next_append {
            let frame = encode_record(record);
            self.tear_next_append = false;
            self.poisoned = true;
            let torn = &frame[..frame.len() / 2];
            let active = self.ensure_active(record.seq)?;
            active.writer.write_all(torn)?;
            active.writer.flush()?;
            // The partial frame reaches stable storage (the crash tore the
            // write across sectors): after power loss it is the torn tail
            // recovery must truncate.
            active.writer.get_ref().sync_data()?;
            active.bytes += torn.len() as u64;
            active.synced_bytes = active.bytes;
            return Err(CspotError::Storage(std::io::Error::other(
                "injected torn write",
            )));
        }
        // Hot path: encode the frame piecewise straight into the buffered
        // writer — no per-append heap allocation.
        let mut head = [0u8; FRAME_HEADER];
        head[..4].copy_from_slice(&(record.payload.len() as u32).to_le_bytes());
        head[4..12].copy_from_slice(&record.seq.to_le_bytes());
        head[12..28].copy_from_slice(&record.token.to_le_bytes());
        let crc = fnv1a_update(fnv1a_update(FNV_OFFSET, &head), &record.payload);
        let trailer = crc.to_le_bytes();
        let frame_len = (FRAME_HEADER + record.payload.len() + FRAME_TRAILER) as u64;
        let stride = self.config.index_stride;
        let active = self.ensure_active(record.seq)?;
        if active.count % stride == 0 {
            active.index.push((record.seq, active.bytes));
        }
        active.writer.write_all(&head)?;
        active.writer.write_all(&record.payload)?;
        active.writer.write_all(&trailer)?;
        let rc = fnv1a_update(active.records_crc, &head);
        let rc = fnv1a_update(rc, &record.payload);
        active.records_crc = fnv1a_update(rc, &trailer);
        active.bytes += frame_len;
        active.count += 1;
        active.last_seq = record.seq;
        if active.count == 1 {
            active.first_seq = record.seq;
        }
        let full = active.bytes >= self.config.segment_bytes;
        let durable = match self.config.sync {
            SyncPolicy::EveryAppend => {
                self.do_sync()?;
                !self.sync_stalled
            }
            SyncPolicy::GroupCommit { every } => {
                self.pending_since_sync += 1;
                if self.pending_since_sync >= every.max(1) {
                    self.do_sync()?;
                    !self.sync_stalled
                } else {
                    false
                }
            }
        };
        if full {
            self.seal_active()?;
        }
        Ok(AppendAck {
            seq: record.seq,
            // Sealing fsyncs the whole segment regardless of policy.
            durable: durable || full,
        })
    }

    fn sync(&mut self) -> Result<()> {
        self.do_sync()
    }

    fn committed_seq(&self) -> Option<u64> {
        self.committed
    }

    fn recover_scan(&mut self, sink: &mut dyn FnMut(Record)) -> Result<RecoverySummary> {
        let mut summary = RecoverySummary {
            sealed_segments: self.sealed.len(),
            truncated_bytes: self.truncated_at_open,
            ..Default::default()
        };
        for meta in &self.sealed {
            summary.records += verify_sealed(&meta.path, &meta.footer, sink)?;
        }
        if let Some(active) = self.active.as_mut() {
            // `open` already truncated the torn tail; stream what's left.
            // Flush so records buffered since open (engine reuse in
            // tests) are visible to the read.
            active.writer.flush()?;
            let bytes = std::fs::read(&active.path)?;
            if let SegmentScan::Active { count, .. } =
                scan_segment(&bytes, u64::MAX, &mut |r| sink(r))?
            {
                summary.records += count;
            }
        }
        Ok(summary)
    }

    fn read_from(&mut self, from: u64, max: usize) -> Result<Vec<Record>> {
        let mut out = Vec::new();
        for meta in &self.sealed {
            if meta.footer.last_seq < from {
                continue;
            }
            Self::read_segment_from(&meta.path, &meta.index, from, max, &mut out)?;
            if out.len() >= max {
                return Ok(out);
            }
        }
        if let Some(active) = self.active.as_mut() {
            if active.count > 0 && active.last_seq >= from {
                active.writer.flush()?;
                let path = active.path.clone();
                let index = active.index.clone();
                Self::read_segment_from(&path, &index, from, max, &mut out)?;
            }
        }
        Ok(out)
    }

    fn sealed_records_from(&mut self, from: u64) -> Result<Option<Vec<Record>>> {
        let Some(meta) = self
            .sealed
            .iter()
            .find(|m| m.footer.first_seq <= from && from <= m.footer.last_seq)
        else {
            return Ok(None);
        };
        let mut out = Vec::with_capacity(meta.footer.count as usize);
        Self::read_segment_from(&meta.path, &meta.index, from, usize::MAX, &mut out)?;
        Ok(Some(out))
    }

    fn is_durable(&self) -> bool {
        true
    }

    fn simulate_power_loss(&mut self) -> Result<bool> {
        // Adversarial model: everything not fsynced is gone — both the
        // process's write buffer and the OS page cache.
        if let Some(active) = self.active.take() {
            let synced = active.synced_bytes;
            let path = active.path.clone();
            // Discard buffered bytes without flushing.
            let _ = active.writer.into_parts();
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(synced)?;
            f.sync_data()?;
            let file = OpenOptions::new().append(true).open(&path)?;
            // Reopen positioned at the synced end; in-memory counters are
            // stale now, so a real restart (fresh `open`) must follow.
            self.active = Some(ActiveSegment {
                path,
                writer: segment_writer(file, &self.config),
                first_seq: 0,
                last_seq: 0,
                count: 0,
                bytes: synced,
                synced_bytes: synced,
                records_crc: FNV_OFFSET,
                index: Vec::new(),
            });
            self.poisoned = true; // force the reopen
        }
        Ok(true)
    }

    fn inject_torn_write(&mut self) -> bool {
        self.tear_next_append = true;
        true
    }

    fn set_sync_stall(&mut self, on: bool) -> bool {
        self.sync_stalled = on;
        true
    }

    fn corrupt_sealed_segment(&mut self, k: usize) -> Result<bool> {
        let Some(meta) = self.sealed.get(k) else {
            return Ok(false);
        };
        let mut bytes = std::fs::read(&meta.path)?;
        if bytes.len() <= FOOTER_LEN {
            return Ok(false);
        }
        // Flip a bit in the middle of the record area (not the footer).
        let target = (bytes.len() - FOOTER_LEN) / 2;
        bytes[target] ^= 0x20;
        std::fs::write(&meta.path, &bytes)?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xg-segment-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rec(seq: u64, fill: u8, len: usize) -> Record {
        Record {
            seq,
            token: seq as u128,
            payload: vec![fill; len],
        }
    }

    fn small_config() -> SegmentConfig {
        SegmentConfig {
            // Frame = 28 + 8 + 4 = 40 bytes; 3 records per segment.
            segment_bytes: 120,
            retain_segments: None,
            sync: SyncPolicy::EveryAppend,
            index_stride: 2,
        }
    }

    fn recover_all(b: &mut SegmentedBackend) -> Vec<Record> {
        let mut out = Vec::new();
        b.recover_scan(&mut |r| out.push(r)).unwrap();
        out
    }

    #[test]
    fn appends_roll_into_sealed_segments() {
        let dir = tmpdir("roll");
        let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
        for s in 1..=7 {
            let ack = b.append(&rec(s, s as u8, 8)).unwrap();
            assert!(ack.durable);
            assert_eq!(ack.seq, s);
        }
        assert_eq!(b.sealed_segments(), 2, "3+3 sealed, 1 active");
        assert_eq!(b.committed_seq(), Some(7));
        let rs = recover_all(&mut b);
        assert_eq!(rs.len(), 7);
        assert_eq!(rs[6].seq, 7);
    }

    #[test]
    fn restart_recovers_across_segments() {
        let dir = tmpdir("restart");
        {
            let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
            for s in 1..=8 {
                b.append(&rec(s, 0xAB, 8)).unwrap();
            }
        }
        let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
        let rs = recover_all(&mut b);
        assert_eq!(rs.len(), 8);
        assert_eq!(
            rs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            (1..=8).collect::<Vec<u64>>()
        );
        assert_eq!(b.committed_seq(), Some(8));
        // Appends continue into the same active segment.
        let ack = b.append(&rec(9, 1, 8)).unwrap();
        assert_eq!(ack.seq, 9);
        assert_eq!(recover_all(&mut b).len(), 9);
    }

    #[test]
    fn torn_tail_in_active_segment_truncated() {
        let dir = tmpdir("torn-active");
        {
            let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
            for s in 1..=4 {
                b.append(&rec(s, 7, 8)).unwrap();
            }
        }
        // Tear the active (second) segment mid-record.
        let active = dir.join(segment_file_name(4));
        let bytes = std::fs::read(&active).unwrap();
        std::fs::write(&active, &bytes[..bytes.len() - 5]).unwrap();
        let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
        let rs = recover_all(&mut b);
        assert_eq!(rs.len(), 3, "torn record 4 silently truncated");
        // The engine accepts a re-append of the lost record.
        b.append(&rec(4, 7, 8)).unwrap();
        assert_eq!(recover_all(&mut b).len(), 4);
    }

    #[test]
    fn corruption_behind_the_seal_fail_stops() {
        let dir = tmpdir("sealed-corrupt");
        {
            let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
            for s in 1..=7 {
                b.append(&rec(s, 3, 8)).unwrap();
            }
        }
        // Flip one bit inside the *first* sealed segment's record area.
        let sealed = dir.join(segment_file_name(1));
        let mut bytes = std::fs::read(&sealed).unwrap();
        bytes[45] ^= 0x01;
        std::fs::write(&sealed, &bytes).unwrap();
        let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
        let err = b.recover_scan(&mut |_| {}).unwrap_err();
        match err {
            CspotError::CorruptSegment { segment, .. } => {
                assert_eq!(segment, segment_file_name(1));
            }
            other => panic!("expected CorruptSegment, got {other}"),
        }
    }

    #[test]
    fn missing_footer_on_non_last_segment_fail_stops_at_open() {
        let dir = tmpdir("footerless");
        {
            let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
            for s in 1..=7 {
                b.append(&rec(s, 3, 8)).unwrap();
            }
        }
        // Chop the footer off the first sealed segment.
        let sealed = dir.join(segment_file_name(1));
        let bytes = std::fs::read(&sealed).unwrap();
        std::fs::write(&sealed, &bytes[..bytes.len() - FOOTER_LEN]).unwrap();
        let err = match SegmentedBackend::open(&dir, small_config()) {
            Err(e) => e,
            Ok(_) => panic!("open must fail on a footerless sealed segment"),
        };
        assert!(matches!(err, CspotError::CorruptSegment { .. }), "{err}");
    }

    #[test]
    fn crash_mid_seal_keeps_segment_active() {
        let dir = tmpdir("mid-seal");
        {
            let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
            for s in 1..=3 {
                b.append(&rec(s, 9, 8)).unwrap();
            }
        }
        // The single segment just sealed; simulate a crash that tore the
        // footer write by chopping half the footer off.
        let seg = dir.join(segment_file_name(1));
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - FOOTER_LEN / 2]).unwrap();
        let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
        let rs = recover_all(&mut b);
        assert_eq!(rs.len(), 3, "records before the torn footer survive");
        assert_eq!(b.sealed_segments(), 0, "segment reverts to active");
        b.append(&rec(4, 9, 8)).unwrap();
        assert_eq!(recover_all(&mut b).len(), 4);
    }

    #[test]
    fn group_commit_defers_durability() {
        let dir = tmpdir("group");
        let cfg = SegmentConfig {
            sync: SyncPolicy::GroupCommit { every: 3 },
            segment_bytes: 1 << 20,
            ..small_config()
        };
        let mut b = SegmentedBackend::open(&dir, cfg).unwrap();
        assert!(!b.append(&rec(1, 1, 8)).unwrap().durable);
        assert!(!b.append(&rec(2, 1, 8)).unwrap().durable);
        assert_eq!(b.committed_seq(), None);
        assert!(b.append(&rec(3, 1, 8)).unwrap().durable, "3rd append syncs");
        assert_eq!(b.committed_seq(), Some(3));
        assert!(!b.append(&rec(4, 1, 8)).unwrap().durable);
        b.sync().unwrap();
        assert_eq!(b.committed_seq(), Some(4));
    }

    #[test]
    fn power_loss_loses_exactly_the_unsynced_tail() {
        let dir = tmpdir("powerloss");
        let cfg = SegmentConfig {
            sync: SyncPolicy::GroupCommit { every: 100 },
            segment_bytes: 1 << 20,
            ..small_config()
        };
        let mut b = SegmentedBackend::open(&dir, cfg.clone()).unwrap();
        for s in 1..=5 {
            b.append(&rec(s, 2, 8)).unwrap();
        }
        b.sync().unwrap();
        for s in 6..=9 {
            b.append(&rec(s, 2, 8)).unwrap();
        }
        assert!(b.simulate_power_loss().unwrap());
        drop(b);
        let mut b = SegmentedBackend::open(&dir, cfg).unwrap();
        let rs = recover_all(&mut b);
        assert_eq!(rs.len(), 5, "records 6..=9 were never synced");
        assert_eq!(b.committed_seq(), Some(5));
    }

    #[test]
    fn sync_stall_freezes_the_watermark() {
        let dir = tmpdir("stall");
        let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
        b.append(&rec(1, 4, 8)).unwrap();
        assert_eq!(b.committed_seq(), Some(1));
        assert!(b.set_sync_stall(true));
        let ack = b.append(&rec(2, 4, 8)).unwrap();
        assert!(!ack.durable, "stalled sync cannot promise durability");
        assert_eq!(b.committed_seq(), Some(1), "watermark frozen");
        assert!(b.set_sync_stall(false));
        b.sync().unwrap();
        assert_eq!(b.committed_seq(), Some(2));
    }

    #[test]
    fn torn_write_injection_then_recovery() {
        let dir = tmpdir("torn-inject");
        let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
        b.append(&rec(1, 5, 8)).unwrap();
        assert!(b.inject_torn_write());
        let err = b.append(&rec(2, 5, 8)).unwrap_err();
        assert!(matches!(err, CspotError::Storage(_)));
        // Engine is poisoned: further appends refuse.
        assert!(b.append(&rec(2, 5, 8)).is_err());
        drop(b);
        // Restart: the torn frame is truncated, record 1 intact.
        let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
        let mut rs = Vec::new();
        let summary = b.recover_scan(&mut |r| rs.push(r)).unwrap();
        assert_eq!(rs.len(), 1);
        assert!(summary.records == 1);
        b.append(&rec(2, 5, 8)).unwrap();
        assert_eq!(recover_all(&mut b).len(), 2);
    }

    #[test]
    fn retention_deletes_whole_oldest_segments() {
        let dir = tmpdir("retention");
        let cfg = SegmentConfig {
            retain_segments: Some(2),
            ..small_config()
        };
        let mut b = SegmentedBackend::open(&dir, cfg).unwrap();
        for s in 1..=12 {
            b.append(&rec(s, 6, 8)).unwrap();
        }
        assert_eq!(b.sealed_segments(), 2);
        // Segments 1..=6 compacted away; 7..=12 remain.
        let rs = recover_all(&mut b);
        assert_eq!(rs.first().map(|r| r.seq), Some(7));
        assert_eq!(rs.len(), 6);
        // read_from before the horizon returns what is retained.
        let got = b.read_from(1, 100).unwrap();
        assert_eq!(got.first().map(|r| r.seq), Some(7));
    }

    #[test]
    fn read_from_uses_segments_and_bounds() {
        let dir = tmpdir("readfrom");
        let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
        for s in 1..=10 {
            b.append(&rec(s, s as u8, 8)).unwrap();
        }
        let got = b.read_from(5, 3).unwrap();
        assert_eq!(got.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![5, 6, 7]);
        let got = b.read_from(9, 100).unwrap();
        assert_eq!(got.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![9, 10]);
        assert!(b.read_from(11, 1).unwrap().is_empty());
        // Payload integrity through the read path.
        assert_eq!(b.read_from(4, 1).unwrap()[0].payload, vec![4u8; 8]);
    }

    #[test]
    fn sealed_records_from_ships_whole_segments() {
        let dir = tmpdir("shipseg");
        let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
        for s in 1..=7 {
            b.append(&rec(s, 1, 8)).unwrap();
        }
        // Seq 2 lives in the first sealed segment (1..=3): the whole
        // remainder of that segment ships.
        let seg = b.sealed_records_from(2).unwrap().unwrap();
        assert_eq!(seg.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![2, 3]);
        // Seq 7 is in the active segment: no sealed unit to ship.
        assert!(b.sealed_records_from(7).unwrap().is_none());
    }

    #[test]
    fn corrupt_sealed_segment_injection_is_detected() {
        let dir = tmpdir("inject-corrupt");
        let mut b = SegmentedBackend::open(&dir, small_config()).unwrap();
        for s in 1..=7 {
            b.append(&rec(s, 8, 8)).unwrap();
        }
        assert!(b.corrupt_sealed_segment(0).unwrap());
        assert!(!b.corrupt_sealed_segment(9).unwrap(), "no such segment");
        let err = b.recover_scan(&mut |_| {}).unwrap_err();
        assert!(matches!(err, CspotError::CorruptSegment { .. }), "{err}");
    }

    #[test]
    fn empty_dir_opens_clean() {
        let dir = tmpdir("empty");
        let mut b = SegmentedBackend::open(&dir, SegmentConfig::default()).unwrap();
        assert!(recover_all(&mut b).is_empty());
        assert_eq!(b.committed_seq(), None);
        assert_eq!(b.sealed_segments(), 0);
        assert!(b.is_durable());
    }

    #[test]
    fn footer_roundtrip_and_damage() {
        let f = Footer {
            first_seq: 10,
            last_seq: 42,
            count: 33,
            records_crc: 0xDEAD,
        };
        let bytes = f.encode();
        assert_eq!(Footer::decode(&bytes), Some(f));
        let mut bad = bytes;
        bad[7] ^= 1;
        assert_eq!(Footer::decode(&bad), None);
        assert_eq!(Footer::decode(&bytes[..35]), None);
    }
}
