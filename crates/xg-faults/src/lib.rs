//! Deterministic, seeded fault injection for the xGFabric closed loop.
//!
//! The paper's reliability claim (§3.1) is that xGFabric tolerates the
//! "frequent network interruption" of remote 5G deployments: all program
//! state is logged, so "programs can simply pause until connectivity is
//! restored". Demonstrating that requires subjecting the *whole* loop —
//! radio, WAN, HPC sites, sensors, storage — to faults, not just one
//! link. A [`FaultPlan`] is a virtual-time schedule mixing scripted
//! events (a partition from t=1800 s to t=2400 s) with stochastic
//! processes (a two-state outage renewal process reused from
//! [`xg_cspot::outage`]), all derived from one seed so every chaos run
//! is exactly reproducible.
//!
//! The plan is *descriptive*: it tells the caller which [`FaultKind`]s
//! are active at each instant and keeps exact per-fault downtime
//! accounting; applying a fault to the matching subsystem (partitioning
//! a route, collapsing a cell's SNR, taking an HPC site offline) is the
//! orchestrator's job, which keeps this crate free of dependencies on
//! the rest of the stack.

use serde::{Deserialize, Serialize};
use xg_cspot::outage::{OutageConfig, OutageProcess};

/// One kind of injectable fault, spanning every layer of the stack.
///
/// Identity matters: two entries with the same `FaultKind` value target
/// the same resource, and [`FaultPlan::is_active`] compares by equality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Both directions of a WAN route drop everything
    /// (`xg_cspot::netsim` partition flag).
    RoutePartition {
        /// Route endpoint (site name).
        from: String,
        /// Route endpoint (site name).
        to: String,
    },
    /// A WAN route's segments lose packets at this probability
    /// (congestion, microwave fade) without a full partition.
    PacketLossSurge {
        /// Route endpoint (site name).
        from: String,
        /// Route endpoint (site name).
        to: String,
        /// Per-crossing loss probability while the fault is active.
        loss_prob: f64,
    },
    /// RAN degradation: a cell-wide SNR collapse (interference, weather,
    /// detuned antenna) that crushes every UE's MCS
    /// (`xg_net::sim::LinkSimulator::set_snr_offset_db`).
    RanDegradation {
        /// Cell identifier (deployment label).
        cell: String,
        /// SNR offset in dB while active (negative = degraded).
        snr_offset_db: f64,
    },
    /// A whole cell drops off the backhaul (fiber cut at the site, power
    /// loss at the gNodeB): every UE camped on it loses service while
    /// sibling cells are untouched
    /// (`xg_net::fleet::RanFleet::set_cell_snr_offset_db` driven to the
    /// noise floor, plus gateway partition when the gateway is pinned to
    /// the cell).
    CellPartition {
        /// Cell identifier (deployment label).
        cell: String,
    },
    /// One cell's E2 indication stream to the RIC is lost (xApp-plane
    /// congestion, E2 termination crash) while the cell itself keeps
    /// serving traffic: the RIC sees only the cell's cached last report,
    /// marks it stale, and holds its last-known-good policy instead of
    /// steering on dead telemetry.
    RicIndicationDrop {
        /// Cell identifier (deployment label).
        cell: String,
    },
    /// An HPC facility becomes unreachable: pilots die, in-flight tasks
    /// are lost (`xg_hpc::multisite::MultiSiteController::set_site_down`).
    HpcSiteOutage {
        /// Site name (e.g. `ND-CRC`).
        site: String,
    },
    /// An HPC facility's batch scheduler stops starting jobs; active
    /// pilots keep serving (`set_site_stalled`).
    HpcQueueStall {
        /// Site name.
        site: String,
    },
    /// A weather station stops reporting (power loss, radio failure)
    /// (`xg_sensors::network::SensorNetwork::set_station_down`).
    SensorDropout {
        /// Station id.
        station: u32,
    },
    /// A weather station reports on schedule but repeats a frozen value
    /// (`set_station_stuck`).
    SensorStuck {
        /// Station id.
        station: u32,
    },
    /// A CSPOT log's next appends fail as storage errors
    /// (`xg_cspot::log::Log::inject_append_failures`).
    StorageAppendFailure {
        /// Log name within the node's namespace.
        log: String,
        /// Appends to fail per activation.
        failures: u32,
    },
    /// A CSPOT log's next append is torn mid-frame — the write crosses a
    /// sector boundary as power dies, leaving a partial record on disk
    /// for recovery to truncate (`xg_cspot::log::Log::inject_torn_write`).
    StorageTornWrite {
        /// Log name within the node's namespace.
        log: String,
    },
    /// A bit flips at rest inside one of a CSPOT log's *sealed* segments
    /// (media decay, firmware bug). Recovery must fail-stop, never
    /// silently truncate (`xg_cspot::log::Log::corrupt_sealed_segment`).
    StorageSegmentCorrupt {
        /// Log name within the node's namespace.
        log: String,
        /// Index of the sealed segment to damage (0 = oldest).
        segment: u64,
    },
    /// A CSPOT log's fsync path hangs (dying disk, saturated controller):
    /// appends land in volatile buffers but the durable watermark freezes
    /// while active (`xg_cspot::log::Log::set_sync_stall`).
    StorageSyncStall {
        /// Log name within the node's namespace.
        log: String,
    },
}

impl FaultKind {
    /// A compact human-readable description for diagnostics (black-box
    /// bundles, timeline rendering) — stable across runs, unlike `Debug`
    /// formatting, and free of struct syntax noise.
    pub fn describe(&self) -> String {
        match self {
            FaultKind::RoutePartition { from, to } => format!("route-partition {from}<->{to}"),
            FaultKind::PacketLossSurge {
                from,
                to,
                loss_prob,
            } => format!("packet-loss {from}->{to} p={loss_prob}"),
            FaultKind::RanDegradation {
                cell,
                snr_offset_db,
            } => format!("ran-degradation {cell} snr{snr_offset_db:+}dB"),
            FaultKind::CellPartition { cell } => format!("cell-partition {cell}"),
            FaultKind::RicIndicationDrop { cell } => format!("ric-indication-drop {cell}"),
            FaultKind::HpcSiteOutage { site } => format!("hpc-outage {site}"),
            FaultKind::HpcQueueStall { site } => format!("hpc-queue-stall {site}"),
            FaultKind::SensorDropout { station } => format!("sensor-dropout station{station}"),
            FaultKind::SensorStuck { station } => format!("sensor-stuck station{station}"),
            FaultKind::StorageAppendFailure { log, failures } => {
                format!("storage-append-failure {log} x{failures}")
            }
            FaultKind::StorageTornWrite { log } => format!("storage-torn-write {log}"),
            FaultKind::StorageSegmentCorrupt { log, segment } => {
                format!("storage-segment-corrupt {log} seg{segment}")
            }
            FaultKind::StorageSyncStall { log } => format!("storage-sync-stall {log}"),
        }
    }
}

/// A visible fault state change at an observation boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultChange {
    /// Observation time at which the change was reported (s).
    pub t_s: f64,
    /// The fault that changed state.
    pub kind: FaultKind,
    /// `true` = fault became active, `false` = cleared.
    pub active: bool,
}

/// How one plan entry decides when its fault is active.
#[derive(Debug, Clone)]
enum Source {
    /// Active exactly on `[start_s, end_s)`.
    Scripted { start_s: f64, end_s: f64 },
    /// Active whenever the renewal process is in its *down* state.
    Stochastic(OutageProcess),
}

#[derive(Debug, Clone)]
struct Entry {
    kind: FaultKind,
    source: Source,
    active: bool,
    /// Exact cumulative active time (s), including activity that starts
    /// and ends between observations.
    active_s: f64,
    /// Times the fault became active.
    activations: usize,
}

/// Builder for a [`FaultPlan`].
pub struct FaultPlanBuilder {
    seed: u64,
    entries: Vec<Entry>,
    stochastic_count: u64,
}

impl FaultPlanBuilder {
    /// Schedule `kind` on the window `[start_s, start_s + duration_s)`.
    pub fn scripted(mut self, start_s: f64, duration_s: f64, kind: FaultKind) -> Self {
        assert!(start_s >= 0.0 && duration_s > 0.0, "window must be forward");
        self.entries.push(Entry {
            kind,
            source: Source::Scripted {
                start_s,
                end_s: start_s + duration_s,
            },
            active: false,
            active_s: 0.0,
            activations: 0,
        });
        self
    }

    /// Drive `kind` from a two-state renewal process: the fault is active
    /// whenever the process is down. Each stochastic entry gets its own
    /// RNG stream derived from the plan seed, so adding an entry never
    /// perturbs the schedule of the others.
    pub fn stochastic(mut self, config: OutageConfig, kind: FaultKind) -> Self {
        let stream = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.stochastic_count);
        self.stochastic_count += 1;
        self.entries.push(Entry {
            kind,
            source: Source::Stochastic(OutageProcess::new(config, stream)),
            active: false,
            active_s: 0.0,
            activations: 0,
        });
        self
    }

    /// Convenience: script a per-cell SNR fade on
    /// `[start_s, start_s + duration_s)` — targets exactly one cell of a
    /// multi-cell fleet.
    pub fn fade_cell(self, start_s: f64, duration_s: f64, cell: &str, snr_offset_db: f64) -> Self {
        self.scripted(
            start_s,
            duration_s,
            FaultKind::RanDegradation {
                cell: cell.to_string(),
                snr_offset_db,
            },
        )
    }

    /// Convenience: script a full cell partition on
    /// `[start_s, start_s + duration_s)`.
    pub fn partition_cell(self, start_s: f64, duration_s: f64, cell: &str) -> Self {
        self.scripted(
            start_s,
            duration_s,
            FaultKind::CellPartition {
                cell: cell.to_string(),
            },
        )
    }

    /// Convenience: drop one cell's E2 indication stream to the RIC on
    /// `[start_s, start_s + duration_s)` (the cell keeps serving).
    pub fn drop_indications(self, start_s: f64, duration_s: f64, cell: &str) -> Self {
        self.scripted(
            start_s,
            duration_s,
            FaultKind::RicIndicationDrop {
                cell: cell.to_string(),
            },
        )
    }

    /// Convenience: tear the named log's next append at `at_s`. The event
    /// is instantaneous — the 1 s window only gives the orchestrator's
    /// observation loop a chance to see the edge.
    pub fn torn_write(self, at_s: f64, log: &str) -> Self {
        self.scripted(
            at_s,
            1.0,
            FaultKind::StorageTornWrite {
                log: log.to_string(),
            },
        )
    }

    /// Convenience: flip a bit in sealed segment `segment` of the named
    /// log at `at_s` (instantaneous, 1 s observation window).
    pub fn corrupt_segment(self, at_s: f64, log: &str, segment: u64) -> Self {
        self.scripted(
            at_s,
            1.0,
            FaultKind::StorageSegmentCorrupt {
                log: log.to_string(),
                segment,
            },
        )
    }

    /// Convenience: stall the named log's fsync path on
    /// `[start_s, start_s + duration_s)`; the stall releases when the
    /// window closes.
    pub fn sync_stall(self, start_s: f64, duration_s: f64, log: &str) -> Self {
        self.scripted(
            start_s,
            duration_s,
            FaultKind::StorageSyncStall {
                log: log.to_string(),
            },
        )
    }

    /// Finish the plan.
    pub fn build(self) -> FaultPlan {
        FaultPlan {
            now_s: 0.0,
            entries: self.entries,
        }
    }
}

/// A deterministic virtual-time fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    now_s: f64,
    entries: Vec<Entry>,
}

impl FaultPlan {
    /// Start building a plan; `seed` determines every stochastic entry.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            entries: Vec::new(),
            stochastic_count: 0,
        }
    }

    /// A plan with no faults (the happy path).
    pub fn none() -> FaultPlan {
        FaultPlan {
            now_s: 0.0,
            entries: Vec::new(),
        }
    }

    /// Current plan time (s).
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Advance to virtual time `t` (s) and report every visible state
    /// change since the last observation, in entry order. Downtime is
    /// accounted exactly even for activity entirely between observations.
    pub fn advance_to(&mut self, t: f64) -> Vec<FaultChange> {
        assert!(t >= self.now_s, "time cannot run backwards");
        let prev = self.now_s;
        let mut changes = Vec::new();
        for e in &mut self.entries {
            let was = e.active;
            match &mut e.source {
                Source::Scripted { start_s, end_s } => {
                    let overlap = (t.min(*end_s) - prev.max(*start_s)).max(0.0);
                    e.active_s += overlap;
                    e.active = *start_s <= t && t < *end_s;
                    if e.active && !was {
                        e.activations += 1;
                    } else if !e.active && !was && overlap > 0.0 {
                        // The whole window fell between observations: it
                        // still counts as an activation (and as downtime).
                        e.activations += 1;
                    }
                }
                Source::Stochastic(p) => {
                    let (transitions, down_s) = p.advance_time(t);
                    e.active_s += down_s;
                    e.active = !p.is_up();
                    // Entries into the down state among `transitions`
                    // alternating flips, given the state we started in.
                    e.activations += if was {
                        transitions / 2
                    } else {
                        transitions.div_ceil(2)
                    };
                }
            }
            if e.active != was {
                changes.push(FaultChange {
                    t_s: t,
                    kind: e.kind.clone(),
                    active: e.active,
                });
            }
        }
        self.now_s = t;
        changes
    }

    /// The faults active at the current time.
    pub fn active(&self) -> Vec<&FaultKind> {
        self.entries
            .iter()
            .filter(|e| e.active)
            .map(|e| &e.kind)
            .collect()
    }

    /// Whether this exact fault is currently active.
    pub fn is_active(&self, kind: &FaultKind) -> bool {
        self.entries.iter().any(|e| e.active && e.kind == *kind)
    }

    /// Human-readable summary of the currently active faults, or
    /// `"none"` — the string a black-box bundle carries as context.
    pub fn describe_active(&self) -> String {
        let active: Vec<String> = self
            .entries
            .iter()
            .filter(|e| e.active)
            .map(|e| e.kind.describe())
            .collect();
        if active.is_empty() {
            "none".to_string()
        } else {
            active.join("; ")
        }
    }

    /// Exact cumulative active seconds summed over entries matching
    /// `pred`. With one entry per resource this is that resource's
    /// downtime; overlapping entries on the same resource are summed.
    pub fn active_seconds<F: Fn(&FaultKind) -> bool>(&self, pred: F) -> f64 {
        self.entries
            .iter()
            .filter(|e| pred(&e.kind))
            .map(|e| e.active_s)
            .sum()
    }

    /// Number of activations across entries matching `pred`.
    pub fn activations<F: Fn(&FaultKind) -> bool>(&self, pred: F) -> usize {
        self.entries
            .iter()
            .filter(|e| pred(&e.kind))
            .map(|e| e.activations)
            .sum()
    }

    /// Fraction of elapsed time that matching faults were active
    /// (0.0 when no time has elapsed).
    pub fn unavailability<F: Fn(&FaultKind) -> bool>(&self, pred: F) -> f64 {
        if self.now_s <= 0.0 {
            return 0.0;
        }
        self.active_seconds(pred) / self.now_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partition_5g() -> FaultKind {
        FaultKind::RoutePartition {
            from: "UNL-5G".into(),
            to: "UCSB".into(),
        }
    }

    #[test]
    fn scripted_window_exact() {
        let mut plan = FaultPlan::builder(1)
            .scripted(100.0, 50.0, partition_5g())
            .build();
        assert!(plan.advance_to(99.0).is_empty());
        assert!(!plan.is_active(&partition_5g()));
        let ch = plan.advance_to(120.0);
        assert_eq!(ch.len(), 1);
        assert!(ch[0].active);
        assert!(plan.is_active(&partition_5g()));
        let ch = plan.advance_to(160.0);
        assert_eq!(ch.len(), 1);
        assert!(!ch[0].active);
        // Exactly 50 s of downtime, one activation, no rounding.
        assert!((plan.active_seconds(|_| true) - 50.0).abs() < 1e-9);
        assert_eq!(plan.activations(|_| true), 1);
    }

    #[test]
    fn whole_window_between_observations_still_accounted() {
        let mut plan = FaultPlan::builder(2)
            .scripted(100.0, 50.0, partition_5g())
            .build();
        // Jump straight over the window: never visibly active, but the
        // downtime and the activation are both recorded.
        let ch = plan.advance_to(1000.0);
        assert!(ch.is_empty(), "state never visibly changed");
        assert!((plan.active_seconds(|_| true) - 50.0).abs() < 1e-9);
        assert_eq!(plan.activations(|_| true), 1);
        assert!((plan.unavailability(|_| true) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn stochastic_deterministic_under_seed() {
        let cfg = OutageConfig::flaky_5g();
        let mk = || {
            FaultPlan::builder(42)
                .stochastic(cfg, partition_5g())
                .build()
        };
        let (mut a, mut b) = (mk(), mk());
        for k in 1..200 {
            let t = k as f64 * 300.0;
            assert_eq!(a.advance_to(t), b.advance_to(t));
        }
        assert_eq!(
            a.active_seconds(|_| true).to_bits(),
            b.active_seconds(|_| true).to_bits()
        );
    }

    #[test]
    fn stochastic_unavailability_tracks_config() {
        let cfg = OutageConfig {
            mtbf_s: 3_000.0,
            mttr_s: 1_000.0,
        };
        let mut plan = FaultPlan::builder(7)
            .stochastic(cfg, partition_5g())
            .build();
        let horizon = 8_000_000.0;
        let mut t = 0.0;
        while t < horizon {
            t += 2_000.0;
            plan.advance_to(t);
        }
        let measured = 1.0 - plan.unavailability(|_| true);
        assert!(
            (measured - cfg.availability()).abs() < 0.02,
            "availability {measured} vs {}",
            cfg.availability()
        );
        assert!(plan.activations(|_| true) > 1_000);
    }

    #[test]
    fn mixed_entries_are_independent() {
        let snr = FaultKind::RanDegradation {
            cell: "UNL-5G".into(),
            snr_offset_db: -25.0,
        };
        let mut plan = FaultPlan::builder(3)
            .scripted(600.0, 300.0, snr.clone())
            .stochastic(OutageConfig::flaky_5g(), partition_5g())
            .build();
        // Adding the scripted entry must not perturb the stochastic
        // stream: compare with a stochastic-only plan of the same seed.
        let mut solo = FaultPlan::builder(3)
            .stochastic(OutageConfig::flaky_5g(), partition_5g())
            .build();
        for k in 1..300 {
            let t = k as f64 * 300.0;
            plan.advance_to(t);
            solo.advance_to(t);
            assert_eq!(
                plan.is_active(&partition_5g()),
                solo.is_active(&partition_5g())
            );
        }
        assert!(
            (plan.active_seconds(|k| *k == snr) - 300.0).abs() < 1e-9,
            "scripted entry accounted independently"
        );
    }

    #[test]
    fn describe_active_summarises_for_bundles() {
        let mut plan = FaultPlan::builder(9)
            .scripted(10.0, 10.0, partition_5g())
            .scripted(
                12.0,
                10.0,
                FaultKind::RanDegradation {
                    cell: "UNL-5G".into(),
                    snr_offset_db: -25.0,
                },
            )
            .build();
        assert_eq!(plan.describe_active(), "none");
        plan.advance_to(15.0);
        let s = plan.describe_active();
        assert!(s.contains("route-partition UNL-5G<->UCSB"), "{s}");
        assert!(s.contains("ran-degradation UNL-5G snr-25dB"), "{s}");
        plan.advance_to(30.0);
        assert_eq!(plan.describe_active(), "none");
    }

    #[test]
    fn active_lists_only_current_faults() {
        let drop3 = FaultKind::SensorDropout { station: 3 };
        let stuck1 = FaultKind::SensorStuck { station: 1 };
        let mut plan = FaultPlan::builder(4)
            .scripted(10.0, 10.0, drop3.clone())
            .scripted(15.0, 10.0, stuck1.clone())
            .build();
        plan.advance_to(12.0);
        assert_eq!(plan.active(), vec![&drop3]);
        plan.advance_to(18.0);
        assert_eq!(plan.active().len(), 2);
        plan.advance_to(21.0);
        assert_eq!(plan.active(), vec![&stuck1]);
        plan.advance_to(30.0);
        assert!(plan.active().is_empty());
    }

    #[test]
    fn ric_indication_drop_is_schedulable_and_described() {
        let mut plan = FaultPlan::builder(8)
            .drop_indications(100.0, 600.0, "FIELD-B")
            .build();
        plan.advance_to(150.0);
        assert!(plan.is_active(&FaultKind::RicIndicationDrop {
            cell: "FIELD-B".into(),
        }));
        assert_eq!(plan.describe_active(), "ric-indication-drop FIELD-B");
        plan.advance_to(800.0);
        assert_eq!(plan.describe_active(), "none");
        assert!(
            (plan.active_seconds(|k| matches!(k, FaultKind::RicIndicationDrop { .. })) - 600.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn per_cell_conveniences_target_named_cells() {
        let mut plan = FaultPlan::builder(5)
            .fade_cell(100.0, 50.0, "FIELD-B", -25.0)
            .partition_cell(200.0, 30.0, "FIELD-C")
            .build();
        plan.advance_to(120.0);
        assert!(plan.is_active(&FaultKind::RanDegradation {
            cell: "FIELD-B".into(),
            snr_offset_db: -25.0,
        }));
        assert_eq!(plan.describe_active(), "ran-degradation FIELD-B snr-25dB");
        plan.advance_to(210.0);
        assert!(plan.is_active(&FaultKind::CellPartition {
            cell: "FIELD-C".into(),
        }));
        assert_eq!(plan.describe_active(), "cell-partition FIELD-C");
        plan.advance_to(300.0);
        // Each convenience is its own entry with exact accounting.
        assert!(
            (plan.active_seconds(|k| matches!(k, FaultKind::CellPartition { .. })) - 30.0).abs()
                < 1e-9
        );
        assert_eq!(plan.activations(|_| true), 2);
    }

    #[test]
    fn storage_fault_conveniences_and_descriptions() {
        let mut plan = FaultPlan::builder(6)
            .torn_write(10.0, "telemetry")
            .corrupt_segment(20.0, "telemetry", 3)
            .sync_stall(30.0, 15.0, "telemetry")
            .build();
        plan.advance_to(10.5);
        assert_eq!(plan.describe_active(), "storage-torn-write telemetry");
        plan.advance_to(20.5);
        assert!(plan.is_active(&FaultKind::StorageSegmentCorrupt {
            log: "telemetry".into(),
            segment: 3,
        }));
        assert_eq!(
            plan.describe_active(),
            "storage-segment-corrupt telemetry seg3"
        );
        plan.advance_to(35.0);
        assert_eq!(plan.describe_active(), "storage-sync-stall telemetry");
        plan.advance_to(50.0);
        assert_eq!(plan.describe_active(), "none");
        // The stall window is accounted exactly.
        assert!(
            (plan.active_seconds(|k| matches!(k, FaultKind::StorageSyncStall { .. })) - 15.0).abs()
                < 1e-9
        );
        assert_eq!(plan.activations(|_| true), 3);
    }

    #[test]
    #[should_panic(expected = "time cannot run backwards")]
    fn monotone_time_enforced() {
        let mut plan = FaultPlan::none();
        let _ = plan.advance_to(10.0);
        let _ = plan.advance_to(5.0);
    }
}
