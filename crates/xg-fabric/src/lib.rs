//! # xg-fabric — end-to-end xGFabric orchestration
//!
//! The core crate of the reproduction: it wires the substrates into the
//! paper's Fig. 3 pipeline —
//!
//! ```text
//! CUPS sensors ──5G──▶ CSPOT@UNL ──Internet──▶ CSPOT repo @UCSB
//!                                                   │ Laminar change detection
//!                                                   ▼
//!                                          Pilot controller @ND ──▶ CFD run
//!                                                   │                   │
//!                                                   ▼                   ▼
//!                                            digital twin ◀── predicted field
//!                                                   │
//!                                                   ▼ breach suspect
//!                                            Farm-ng robot dispatch
//! ```
//!
//! * [`pipeline`] — the telemetry data path: station reports shipped over
//!   the private-5G + Internet route into the UCSB CSPOT repository.
//! * [`orchestrator`] — the full closed loop with virtual-time accounting:
//!   5-minute telemetry duty cycle, 30-minute change detection, pilot
//!   triggering, CFD execution, twin comparison, robot dispatch.
//! * [`robot`] — the Farm-NG wheeled robot: route planning to a suspect
//!   wall region and visual confirmation (§2's future-work loop, closed).
//! * [`timeline`] — the §4.4 end-to-end latency budget.

//! ```
//! use xg_fabric::prelude::*;
//!
//! let mut fabric = XgFabric::new(xg_fabric::orchestrator::FabricConfig {
//!     cfd_cells: [12, 10, 4], // fast doc-test resolution
//!     cfd_steps: 10,
//!     ..Default::default()
//! });
//! fabric.run_cycles(2).unwrap(); // two 5-minute reporting cycles
//! assert_eq!(fabric.timeline().telemetry_latencies_ms().len(), 2);
//! ```
//!
//! This crate drives the whole loop, so panicking escape hatches are
//! gated: non-test code converts fallible paths to [`FabricError`] (or a
//! propagated `CspotError`) instead of unwrapping.

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod backtest;
pub mod error;
pub mod intervention;
pub mod orchestrator;
pub mod pipeline;
pub mod ran;
pub mod reliability;
pub mod robot;
pub mod route;
pub mod timeline;

/// Commonly used types.
pub mod prelude {
    pub use crate::backtest::{BacktestReport, Backtester, CalibrationSample};
    pub use crate::error::FabricError;
    pub use crate::intervention::{Intervention, InterventionAdvisor, SiteConditions};
    pub use crate::orchestrator::{FabricConfig, XgFabric};
    pub use crate::pipeline::{FieldGateway, TelemetryPipeline};
    pub use crate::ran::{CellHealth, RanCellSpec, RanProbe, RanTopology, ScenarioUe};
    pub use crate::reliability::ReliabilityReport;
    pub use crate::robot::{Robot, RobotReport};
    pub use crate::route::RoutePlanner;
    pub use crate::timeline::{Event, Timeline};
}

pub use prelude::*;
