//! Calibration back-testing.
//!
//! §2: "The model results will inform both modality changes in the sensing
//! infrastructure and data calibrations (back tested against historical
//! data) that are necessary to maintain model accuracy." The twin's
//! measured/predicted scale factor drifts as sensors age and seasons turn;
//! this module re-fits the calibration over a rolling history of
//! (predicted, measured) pairs and decides when the live factor has
//! drifted enough to warrant recalibration.

use serde::{Deserialize, Serialize};

/// One historical comparison: the twin's prediction vs the aggregated
/// measurement for the same period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationSample {
    /// Timestamp (s).
    pub t_s: f64,
    /// Predicted mean interior wind (m/s).
    pub predicted_ms: f64,
    /// Measured mean interior wind (m/s).
    pub measured_ms: f64,
}

/// Result of a back-test over a window of history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BacktestReport {
    /// Least-squares calibration factor over the window
    /// (measured ≈ factor × predicted).
    pub fitted_factor: f64,
    /// RMS relative residual after applying the fitted factor.
    pub rms_residual: f64,
    /// Relative drift of the fitted factor from the live factor.
    pub drift: f64,
    /// Whether recalibration is recommended.
    pub recalibrate: bool,
}

/// The back-tester: a bounded history plus a drift threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Backtester {
    /// Max samples retained.
    pub capacity: usize,
    /// Relative drift above which recalibration is recommended.
    pub drift_threshold: f64,
    history: Vec<CalibrationSample>,
}

impl Default for Backtester {
    fn default() -> Self {
        Backtester {
            capacity: 96, // two days of 30-minute comparisons
            drift_threshold: 0.15,
            history: Vec::new(),
        }
    }
}

impl Backtester {
    /// Record a comparison (oldest samples are evicted at capacity).
    pub fn record(&mut self, sample: CalibrationSample) {
        self.history.push(sample);
        if self.history.len() > self.capacity {
            self.history.remove(0);
        }
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True if no history has been recorded.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Back-test the live calibration factor against the retained history.
    ///
    /// Returns `None` with fewer than 4 samples (no meaningful fit). The
    /// fitted factor is the least-squares solution of
    /// `measured = factor × predicted` (through the origin).
    pub fn backtest(&self, live_factor: f64) -> Option<BacktestReport> {
        if self.history.len() < 4 {
            return None;
        }
        let (mut num, mut den) = (0.0, 0.0);
        for s in &self.history {
            num += s.predicted_ms * s.measured_ms;
            den += s.predicted_ms * s.predicted_ms;
        }
        if den <= 0.0 {
            return None;
        }
        let fitted = num / den;
        let mut sq = 0.0;
        let mut n = 0usize;
        for s in &self.history {
            let adjusted = fitted * s.predicted_ms;
            if s.measured_ms.abs() > 1e-9 {
                sq += ((adjusted - s.measured_ms) / s.measured_ms).powi(2);
                n += 1;
            }
        }
        let rms = if n > 0 { (sq / n as f64).sqrt() } else { 0.0 };
        let drift = (fitted - live_factor).abs() / live_factor.abs().max(1e-9);
        Some(BacktestReport {
            fitted_factor: fitted,
            rms_residual: rms,
            drift,
            recalibrate: drift > self.drift_threshold,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, pred: f64, factor: f64, noise: f64) -> CalibrationSample {
        CalibrationSample {
            t_s: t,
            predicted_ms: pred,
            measured_ms: pred * factor + noise,
        }
    }

    #[test]
    fn needs_minimum_history() {
        let mut bt = Backtester::default();
        for i in 0..3 {
            bt.record(sample(i as f64, 1.0, 2.0, 0.0));
        }
        assert!(bt.backtest(2.0).is_none());
        bt.record(sample(3.0, 1.0, 2.0, 0.0));
        assert!(bt.backtest(2.0).is_some());
    }

    #[test]
    fn exact_factor_recovered() {
        let mut bt = Backtester::default();
        for i in 0..10 {
            bt.record(sample(i as f64, 0.5 + 0.1 * i as f64, 3.2, 0.0));
        }
        let report = bt.backtest(3.2).unwrap();
        assert!((report.fitted_factor - 3.2).abs() < 1e-12);
        assert!(report.rms_residual < 1e-12);
        assert!(!report.recalibrate);
    }

    #[test]
    fn drift_triggers_recalibration() {
        let mut bt = Backtester::default();
        // The true relationship drifted to 2.6 while the live factor says 2.0.
        for i in 0..12 {
            bt.record(sample(i as f64, 1.0 + 0.05 * i as f64, 2.6, 0.0));
        }
        let report = bt.backtest(2.0).unwrap();
        assert!((report.fitted_factor - 2.6).abs() < 1e-9);
        assert!(report.drift > 0.25);
        assert!(report.recalibrate);
    }

    #[test]
    fn small_noise_does_not_trigger() {
        let mut bt = Backtester::default();
        for i in 0..20 {
            let noise = if i % 2 == 0 { 0.03 } else { -0.03 };
            bt.record(sample(i as f64, 1.0, 2.0, noise));
        }
        let report = bt.backtest(2.0).unwrap();
        assert!(report.drift < 0.05, "drift {}", report.drift);
        assert!(!report.recalibrate);
        assert!(report.rms_residual > 0.0);
    }

    #[test]
    fn capacity_bounds_history() {
        let mut bt = Backtester {
            capacity: 5,
            ..Default::default()
        };
        // Old regime factor 1.0, new regime 3.0: with capacity 5, only the
        // new regime survives.
        for i in 0..10 {
            bt.record(sample(i as f64, 1.0, 1.0, 0.0));
        }
        for i in 10..15 {
            bt.record(sample(i as f64, 1.0, 3.0, 0.0));
        }
        assert_eq!(bt.len(), 5);
        let report = bt.backtest(1.0).unwrap();
        assert!((report.fitted_factor - 3.0).abs() < 1e-9);
        assert!(report.recalibrate);
    }

    #[test]
    fn degenerate_predictions_rejected() {
        let mut bt = Backtester::default();
        for i in 0..6 {
            bt.record(CalibrationSample {
                t_s: i as f64,
                predicted_ms: 0.0,
                measured_ms: 1.0,
            });
        }
        assert!(bt.backtest(1.0).is_none(), "zero variance in predictions");
    }
}
