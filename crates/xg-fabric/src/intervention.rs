//! Real-time intervention planning (the paper's third future-work item,
//! §5: "exploit the simulation results to perform real-time interventions
//! in the CUPS facility").
//!
//! §2 lists the decisions the CFD model supports: "input events such as
//! pesticide or fertilizer spraying, frost prevention, etc. where the
//! grower must make a decision regarding timing, location, and quantity of
//! input to apply." The advisor turns one CFD result plus current
//! conditions into concrete recommendations with the rationale attached.

use serde::{Deserialize, Serialize};
use xg_cfd::solver::Simulation;

/// Conditions snapshot used alongside the CFD result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteConditions {
    /// Exterior temperature (°C).
    pub ambient_temp_c: f64,
    /// Forecast minimum temperature for the coming night (°C).
    pub forecast_min_temp_c: f64,
    /// Relative humidity (%).
    pub rel_humidity: f64,
}

/// A recommended intervention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Intervention {
    /// Apply irrigation water for latent-heat frost protection.
    FrostProtection {
        /// Predicted minimum canopy temperature (°C).
        predicted_canopy_min_c: f64,
        /// Recommended start lead time before the minimum (s).
        lead_s: f64,
    },
    /// Conditions are right to spray (pesticide/fertilizer).
    SprayWindow {
        /// Mean interior wind (m/s) — low enough for even deposition.
        interior_wind_ms: f64,
        /// Fraction of the canopy with wind below the drift threshold.
        coverage: f64,
    },
    /// Hold off spraying: too windy or too dry.
    SprayHold {
        /// Human-readable reason.
        reason: String,
    },
}

/// Thresholds for the advisor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdvisorConfig {
    /// Canopy temperature (°C) below which frost protection starts.
    pub frost_threshold_c: f64,
    /// Interior wind (m/s) above which spray drift is unacceptable.
    pub spray_wind_limit_ms: f64,
    /// Minimum humidity (%) for spraying (evaporation control).
    pub spray_min_rh: f64,
    /// Minimum canopy fraction that must be under the wind limit.
    pub spray_min_coverage: f64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            frost_threshold_c: 1.0,
            spray_wind_limit_ms: 1.5,
            spray_min_rh: 35.0,
            spray_min_coverage: 0.8,
        }
    }
}

/// The intervention advisor.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct InterventionAdvisor {
    /// Thresholds.
    pub config: AdvisorConfig,
}

impl InterventionAdvisor {
    /// Evaluate the latest CFD result and conditions, returning zero or
    /// more recommendations.
    pub fn advise(&self, sim: &Simulation, conditions: &SiteConditions) -> Vec<Intervention> {
        let mut out = Vec::new();
        // Frost: the interior cools toward the forecast minimum; screen
        // cover keeps the canopy slightly warmer than open field (~+1.5°C
        // of radiative shelter), which the CFD's temperature field refines.
        let canopy_temp = self.canopy_min_temp(sim);
        let predicted_canopy_min_c =
            conditions.forecast_min_temp_c + (canopy_temp - conditions.ambient_temp_c);
        if predicted_canopy_min_c <= self.config.frost_threshold_c {
            out.push(Intervention::FrostProtection {
                predicted_canopy_min_c,
                // Water needs to be flowing well before the minimum: lead
                // grows with the deficit.
                lead_s: 1800.0
                    + 600.0 * (self.config.frost_threshold_c - predicted_canopy_min_c).max(0.0),
            });
        }
        // Spray decision from the wind field inside the canopy layer.
        let (mean_wind, coverage) = self.canopy_wind_stats(sim);
        if mean_wind > self.config.spray_wind_limit_ms || coverage < self.config.spray_min_coverage
        {
            out.push(Intervention::SprayHold {
                reason: format!(
                    "canopy wind {mean_wind:.2} m/s, only {:.0}% under the {:.1} m/s drift limit",
                    coverage * 100.0,
                    self.config.spray_wind_limit_ms
                ),
            });
        } else if conditions.rel_humidity < self.config.spray_min_rh {
            out.push(Intervention::SprayHold {
                reason: format!(
                    "humidity {:.0}% below the {:.0}% evaporation limit",
                    conditions.rel_humidity, self.config.spray_min_rh
                ),
            });
        } else {
            out.push(Intervention::SprayWindow {
                interior_wind_ms: mean_wind,
                coverage,
            });
        }
        out
    }

    /// Minimum temperature over the canopy layer (z ≤ 4.5 m interior).
    fn canopy_min_temp(&self, sim: &Simulation) -> f64 {
        let k_max = ((4.5 / sim.mesh.d[2]).ceil() as usize).min(sim.t.nz - 1);
        let mut min_t = f64::INFINITY;
        for k in 1..=k_max {
            for j in 1..sim.t.ny - 1 {
                for i in 1..sim.t.nx - 1 {
                    min_t = min_t.min(sim.t.at(i, j, k));
                }
            }
        }
        min_t
    }

    /// Mean horizontal wind and under-limit coverage in the canopy layer.
    fn canopy_wind_stats(&self, sim: &Simulation) -> (f64, f64) {
        let k_max = ((4.5 / sim.mesh.d[2]).ceil() as usize).min(sim.u.nz - 1);
        let mut sum = 0.0;
        let mut under = 0usize;
        let mut count = 0usize;
        for k in 1..=k_max {
            for j in 1..sim.u.ny - 1 {
                for i in 1..sim.u.nx - 1 {
                    let u = sim.u.at(i, j, k);
                    let v = sim.v.at(i, j, k);
                    let speed = (u * u + v * v).sqrt();
                    sum += speed;
                    if speed <= self.config.spray_wind_limit_ms {
                        under += 1;
                    }
                    count += 1;
                }
            }
        }
        if count == 0 {
            (0.0, 1.0)
        } else {
            (sum / count as f64, under as f64 / count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_cfd::boundary::BoundarySpec;
    use xg_cfd::mesh::{DomainSpec, Mesh};
    use xg_cfd::solver::SolverConfig;

    fn run_sim(wind: f64, ambient: f64) -> Simulation {
        let mesh = Mesh::generate(&DomainSpec::cups_default().with_cells(16, 14, 6));
        let mut sim = Simulation::new(
            mesh,
            BoundarySpec::intact(wind, 270.0, ambient),
            SolverConfig::default(),
        );
        sim.run(40);
        sim
    }

    fn mild() -> SiteConditions {
        SiteConditions {
            ambient_temp_c: 22.0,
            forecast_min_temp_c: 10.0,
            rel_humidity: 60.0,
        }
    }

    #[test]
    fn calm_mild_night_opens_spray_window() {
        let sim = run_sim(1.0, 22.0);
        let advice = InterventionAdvisor::default().advise(&sim, &mild());
        assert!(
            advice
                .iter()
                .any(|a| matches!(a, Intervention::SprayWindow { .. })),
            "{advice:?}"
        );
        assert!(!advice
            .iter()
            .any(|a| matches!(a, Intervention::FrostProtection { .. })));
    }

    #[test]
    fn windy_day_holds_spraying() {
        let sim = run_sim(9.0, 22.0);
        let advice = InterventionAdvisor::default().advise(&sim, &mild());
        match advice
            .iter()
            .find(|a| matches!(a, Intervention::SprayHold { .. }))
        {
            Some(Intervention::SprayHold { reason }) => {
                assert!(reason.contains("wind"), "{reason}");
            }
            other => panic!("expected a spray hold: {other:?}"),
        }
    }

    #[test]
    fn freezing_forecast_triggers_frost_protection() {
        let sim = run_sim(1.0, 10.0);
        let frosty = SiteConditions {
            ambient_temp_c: 10.0,
            forecast_min_temp_c: -2.0,
            rel_humidity: 70.0,
        };
        let advice = InterventionAdvisor::default().advise(&sim, &frosty);
        match advice
            .iter()
            .find(|a| matches!(a, Intervention::FrostProtection { .. }))
        {
            Some(Intervention::FrostProtection {
                predicted_canopy_min_c,
                lead_s,
            }) => {
                assert!(*predicted_canopy_min_c <= 1.0);
                assert!(*lead_s >= 1800.0, "colder nights need more lead: {lead_s}");
            }
            other => panic!("expected frost protection: {other:?}"),
        }
    }

    #[test]
    fn dry_air_holds_spraying() {
        let sim = run_sim(1.0, 22.0);
        let dry = SiteConditions {
            rel_humidity: 20.0,
            ..mild()
        };
        let advice = InterventionAdvisor::default().advise(&sim, &dry);
        match advice
            .iter()
            .find(|a| matches!(a, Intervention::SprayHold { .. }))
        {
            Some(Intervention::SprayHold { reason }) => {
                assert!(reason.contains("humidity"), "{reason}");
            }
            other => panic!("expected a humidity hold: {other:?}"),
        }
    }

    #[test]
    fn colder_forecast_more_lead() {
        let sim = run_sim(1.0, 10.0);
        let advisor = InterventionAdvisor::default();
        let lead_at = |min_c: f64| {
            let cond = SiteConditions {
                ambient_temp_c: 10.0,
                forecast_min_temp_c: min_c,
                rel_humidity: 70.0,
            };
            advisor
                .advise(&sim, &cond)
                .into_iter()
                .find_map(|a| match a {
                    Intervention::FrostProtection { lead_s, .. } => Some(lead_s),
                    _ => None,
                })
                .expect("frost advice")
        };
        assert!(lead_at(-5.0) > lead_at(-1.0));
    }
}
