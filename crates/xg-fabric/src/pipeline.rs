//! The telemetry data path: UNL sensors → 5G → Internet → UCSB repository.
//!
//! Every 5 minutes (the stations' reporting interval) the sensor network's
//! records are appended — via the CSPOT two-phase remote protocol over the
//! calibrated 5G + Internet route — into the telemetry logs at the UCSB
//! repository node. The paper measures this path at 101 ± 17 ms per 1 KB
//! message (Table 1) and notes that even an order-of-magnitude improvement
//! "would be imperceptible end-to-end" against the 300 s duty cycle.

use crate::error::FabricError;
use std::sync::Arc;
use xg_cspot::gateway::Gateway;
use xg_cspot::netsim::{SimClock, Topology};
use xg_cspot::node::CspotNode;
use xg_cspot::protocol::{RemoteAppender, RemoteConfig};
use xg_cspot::CspotError;
use xg_sensors::telemetry::TelemetryRecord;

/// Name of the raw-telemetry log at the repository.
pub const TELEMETRY_LOG: &str = "cups.telemetry";
/// Name of the per-report mean-wind log the change detector reads.
pub const WIND_LOG: &str = "cups.wind";
/// Name of the results log at the field node (CFD summaries returned to
/// the site operator).
pub const RESULTS_LOG: &str = "cups.results";
/// History retained in the repository logs (plenty for 30-min windows).
pub const LOG_HISTORY: usize = 8192;

/// Decode an 8-byte little-endian `f64` log element or fail with a typed
/// error (a wind log only ever holds 8-byte elements, so a mismatch means
/// corruption, which callers should see rather than panic over).
fn decode_wind(bytes: &[u8]) -> Result<f64, CspotError> {
    bytes
        .get(..8)
        .and_then(|b| b.try_into().ok())
        .map(f64::from_le_bytes)
        .ok_or(CspotError::ElementSizeMismatch {
            expected: 8,
            got: bytes.len(),
        })
}

/// Resolve a paper-topology route or fail with a typed error.
fn route_between(from: &str, to: &str) -> Result<xg_cspot::netsim::RoutePath, FabricError> {
    let topo = Topology::paper();
    topo.route(from, to)
        .cloned()
        .ok_or_else(|| FabricError::MissingRoute {
            from: from.to_string(),
            to: to.to_string(),
        })
}

/// The UNL→UCSB telemetry pipeline.
pub struct TelemetryPipeline {
    /// The UCSB repository node.
    pub repo: Arc<CspotNode>,
    appender: RemoteAppender,
    clock: SimClock,
}

impl TelemetryPipeline {
    /// Build the pipeline over the paper topology's `UNL-5G → UCSB` route.
    ///
    /// Creates the repository logs if absent.
    pub fn new(repo: Arc<CspotNode>, clock: SimClock, seed: u64) -> Result<Self, FabricError> {
        repo.open_log(TELEMETRY_LOG, TelemetryRecord::WIRE_SIZE, LOG_HISTORY)?;
        repo.open_log(WIND_LOG, 8, LOG_HISTORY)?;
        let route = route_between("UNL-5G", "UCSB")?;
        let appender = RemoteAppender::new(clock.clone(), route, RemoteConfig::default(), seed);
        Ok(TelemetryPipeline {
            repo,
            appender,
            clock,
        })
    }

    /// Ship one reporting cycle's records to the repository.
    ///
    /// Appends every record to [`TELEMETRY_LOG`] and the cycle's mean wind
    /// speed to [`WIND_LOG`]. Returns the total transfer latency in ms
    /// (virtual time).
    pub fn ship(&mut self, records: &[TelemetryRecord]) -> Result<f64, CspotError> {
        let start = self.clock.now_ms();
        for r in records {
            self.appender
                .append(&self.repo, TELEMETRY_LOG, &r.encode())?;
        }
        if !records.is_empty() {
            let mean_wind =
                records.iter().map(|r| r.wind_speed_ms).sum::<f64>() / records.len() as f64;
            self.appender
                .append(&self.repo, WIND_LOG, &mean_wind.to_le_bytes())?;
        }
        Ok(self.clock.now_ms() - start)
    }

    /// The most recent `n` mean-wind values at the repository, oldest
    /// first.
    pub fn wind_history(&self, n: usize) -> Result<Vec<f64>, CspotError> {
        let log = self.repo.log(WIND_LOG)?;
        log.tail(n)
            .into_iter()
            .map(|(_, bytes)| decode_wind(&bytes))
            .collect()
    }

    /// Partition or heal the access route (failure injection).
    pub fn set_partitioned(&mut self, partitioned: bool) {
        self.appender.route_mut().set_partitioned(partitioned);
    }

    /// Attach observability to the uplink appender.
    pub fn set_obs(&mut self, obs: &xg_obs::Obs) {
        self.appender.set_obs(obs);
    }
}

/// Name of the field gateway's local telemetry buffer log.
pub const BUFFER_TELEMETRY_LOG: &str = "gw.telemetry";
/// Name of the field gateway's local mean-wind buffer log.
pub const BUFFER_WIND_LOG: &str = "gw.wind";

/// One report cycle's outcome at the field gateway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleReport {
    /// Virtual-time transfer latency spent draining this cycle (ms).
    pub latency_ms: f64,
    /// Telemetry records delivered to the repository this cycle (possibly
    /// including backlog from earlier cycles).
    pub delivered: usize,
    /// Records dropped this cycle because the bounded buffer was full.
    pub dropped: usize,
    /// Records still parked locally after the drain.
    pub backlog: usize,
    /// Whether this cycle's mean-wind sample entered the wind buffer.
    pub wind_buffered: bool,
}

/// The delay-tolerant telemetry path: a bounded store-and-forward buffer
/// at the field gateway (§3.1).
///
/// Where [`TelemetryPipeline`] ships records synchronously and fails when
/// the route is down, `FieldGateway` appends every record to a durable
/// local buffer first and drains the backlog opportunistically: a
/// partition parks data, reconnection drains it exactly once, and only a
/// full buffer ever drops a record.
pub struct FieldGateway {
    /// The UCSB repository node.
    pub repo: Arc<CspotNode>,
    /// The field node holding the local buffers.
    pub field: Arc<CspotNode>,
    records: Gateway,
    wind: Gateway,
    capacity: usize,
    clock: SimClock,
    /// Nominal access-segment model, kept for degradation restore.
    access_nominal: xg_cspot::netsim::PathModel,
    buffered: u64,
    dropped: u64,
    delivered: u64,
    max_backlog: usize,
}

impl FieldGateway {
    /// Build the gateway over the paper topology's `UNL-5G → UCSB` route.
    ///
    /// `capacity` bounds the number of telemetry records parked locally;
    /// the paper's Raspberry Pi gateways have finite storage, so an
    /// unbounded buffer would be dishonest.
    pub fn new(
        repo: Arc<CspotNode>,
        field: Arc<CspotNode>,
        clock: SimClock,
        seed: u64,
        capacity: usize,
    ) -> Result<Self, FabricError> {
        repo.open_log(TELEMETRY_LOG, TelemetryRecord::WIRE_SIZE, LOG_HISTORY)?;
        repo.open_log(WIND_LOG, 8, LOG_HISTORY)?;
        // Ring capacity above the drop threshold so a full buffer refuses
        // new records instead of silently overwriting parked ones.
        let history = capacity + 16;
        field.open_log(BUFFER_TELEMETRY_LOG, TelemetryRecord::WIRE_SIZE, history)?;
        field.open_log(BUFFER_WIND_LOG, 8, history)?;
        let route = route_between("UNL-5G", "UCSB")?;
        let access_nominal = route.segments[0].clone();
        // Fail fast on a dead link: the gateway re-drains next cycle, so
        // burning a long retry budget here would only waste virtual time.
        let cfg = RemoteConfig {
            timeout_ms: 100.0,
            max_attempts: 2,
            ..Default::default()
        };
        let records = Gateway::with_cursor_log(
            Arc::clone(&field),
            BUFFER_TELEMETRY_LOG,
            TELEMETRY_LOG,
            "gw.telemetry.cursor",
            RemoteAppender::new(clock.clone(), route.clone(), cfg.clone(), seed),
        )?;
        let wind = Gateway::with_cursor_log(
            Arc::clone(&field),
            BUFFER_WIND_LOG,
            WIND_LOG,
            "gw.wind.cursor",
            RemoteAppender::new(clock.clone(), route, cfg, seed ^ 0x57494E44),
        )?;
        Ok(FieldGateway {
            repo,
            field,
            records,
            wind,
            capacity,
            clock,
            access_nominal,
            buffered: 0,
            dropped: 0,
            delivered: 0,
            max_backlog: 0,
        })
    }

    /// Buffer one cycle's records (and their mean wind) locally, then
    /// drain whatever the current link state allows.
    pub fn ship_cycle(&mut self, records: &[TelemetryRecord]) -> Result<CycleReport, FabricError> {
        let mut dropped_now = 0usize;
        for r in records {
            if self.records.backlog() >= self.capacity {
                dropped_now += 1;
                continue;
            }
            match self.records.buffer(&r.encode()) {
                Ok(_) => self.buffered += 1,
                // A local storage fault loses the record; count it rather
                // than aborting the cycle.
                Err(_) => dropped_now += 1,
            }
        }
        let mut wind_buffered = false;
        if !records.is_empty() && self.wind.backlog() < self.capacity {
            let mean_wind =
                records.iter().map(|r| r.wind_speed_ms).sum::<f64>() / records.len() as f64;
            wind_buffered = self.wind.buffer(&mean_wind.to_le_bytes()).is_ok();
        }
        self.dropped += dropped_now as u64;
        self.max_backlog = self.max_backlog.max(self.records.backlog());
        let start = self.clock.now_ms();
        let repo = Arc::clone(&self.repo);
        let r = self.records.drain(&repo);
        let w = self.wind.drain(&repo);
        self.delivered += r.relayed as u64;
        Ok(CycleReport {
            latency_ms: (self.clock.now_ms() - start).max(r.latency_ms + w.latency_ms),
            delivered: r.relayed,
            dropped: dropped_now,
            backlog: r.remaining,
            wind_buffered,
        })
    }

    /// The most recent `n` mean-wind values **at the repository** (what
    /// the change detector can actually see), oldest first.
    pub fn wind_history(&self, n: usize) -> Result<Vec<f64>, FabricError> {
        let log = self.repo.log(WIND_LOG)?;
        let hist: Result<Vec<f64>, CspotError> = log
            .tail(n)
            .into_iter()
            .map(|(_, bytes)| decode_wind(&bytes))
            .collect();
        Ok(hist?)
    }

    /// Mean-wind samples that have reached the repository.
    pub fn repo_wind_len(&self) -> usize {
        self.repo.log(WIND_LOG).map(|l| l.len()).unwrap_or(0)
    }

    /// Telemetry records parked locally, waiting for the link.
    pub fn backlog(&self) -> usize {
        self.records.backlog()
    }

    /// Records accepted into the buffer so far.
    pub fn buffered(&self) -> u64 {
        self.buffered
    }

    /// Records dropped at the full buffer (or to local storage faults).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records delivered to the repository.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Largest backlog observed.
    pub fn max_backlog(&self) -> usize {
        self.max_backlog
    }

    /// Partition or heal the uplink (both gateway streams).
    pub fn set_partitioned(&mut self, partitioned: bool) {
        self.records.route_mut().set_partitioned(partitioned);
        self.wind.route_mut().set_partitioned(partitioned);
    }

    /// Inject a packet-loss surge on every segment of the uplink.
    pub fn set_loss(&mut self, loss_prob: f64) {
        for route in [self.records.route_mut(), self.wind.route_mut()] {
            for seg in &mut route.segments {
                seg.loss_prob = loss_prob;
            }
        }
    }

    /// Attach observability to both gateway streams' remote appenders
    /// (per-phase CSPOT append RTTs for every drained element).
    pub fn set_obs(&mut self, obs: &xg_obs::Obs) {
        self.records.set_obs(obs);
        self.wind.set_obs(obs);
    }

    /// Apply or clear a RAN degradation on the 5G access segment.
    ///
    /// `fade` is the SNR offset in dB (`None` restores the nominal link).
    /// An SNR/MCS collapse shows up at this layer as a much slower first
    /// hop (long serialization at the lowest MCS). Only a *deep* fade
    /// (≤ −20 dB) also loses packets: above that, HARQ retransmissions
    /// recover every transport block and the IP layer sees pure latency.
    pub fn set_access_degraded(&mut self, fade: Option<f64>) {
        let nominal = self.access_nominal.clone();
        for route in [self.records.route_mut(), self.wind.route_mut()] {
            let seg = &mut route.segments[0];
            if let Some(snr_offset_db) = fade {
                seg.base_one_way_ms = nominal.base_one_way_ms * 8.0;
                seg.jitter_sigma_ms = nominal.jitter_sigma_ms * 4.0;
                seg.loss_prob = if snr_offset_db <= -20.0 { 0.25 } else { 0.0 };
            } else {
                let partitioned = seg.partitioned;
                *seg = nominal.clone();
                seg.partitioned = partitioned;
            }
        }
    }
}

/// A CFD result summary returned to the site operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultSummary {
    /// Completion time (s).
    pub t_s: f64,
    /// Predicted mean interior wind (m/s).
    pub predicted_wind_ms: f64,
    /// Validity window (s).
    pub validity_s: f64,
    /// Whether a breach is suspected.
    pub breach_suspected: bool,
}

impl ResultSummary {
    /// Fixed wire size of an encoded summary.
    pub const WIRE_SIZE: usize = 32;

    /// Encode to exactly [`Self::WIRE_SIZE`] bytes.
    pub fn encode(&self) -> [u8; Self::WIRE_SIZE] {
        let mut out = [0u8; Self::WIRE_SIZE];
        out[0..8].copy_from_slice(&self.t_s.to_le_bytes());
        out[8..16].copy_from_slice(&self.predicted_wind_ms.to_le_bytes());
        out[16..24].copy_from_slice(&self.validity_s.to_le_bytes());
        out[24] = self.breach_suspected as u8;
        out
    }

    /// Decode; `None` on a wrong-length buffer.
    pub fn decode(bytes: &[u8]) -> Option<ResultSummary> {
        if bytes.len() != Self::WIRE_SIZE {
            return None;
        }
        Some(ResultSummary {
            t_s: f64::from_le_bytes(bytes[0..8].try_into().ok()?),
            predicted_wind_ms: f64::from_le_bytes(bytes[8..16].try_into().ok()?),
            validity_s: f64::from_le_bytes(bytes[16..24].try_into().ok()?),
            breach_suspected: bytes[24] != 0,
        })
    }
}

/// The return data path: CFD summaries shipped from the repository back
/// over the Internet + 5G downlink to the field node at the facility,
/// where the site operator's dashboard reads them.
pub struct ResultsReturn {
    /// The field node at UNL.
    pub field: Arc<CspotNode>,
    appender: RemoteAppender,
}

impl ResultsReturn {
    /// Build the return path over the paper topology's UCSB → UNL-5G
    /// route (the same physical route as the uplink, traversed back).
    pub fn new(field: Arc<CspotNode>, clock: SimClock, seed: u64) -> Result<Self, FabricError> {
        field.open_log(RESULTS_LOG, ResultSummary::WIRE_SIZE, LOG_HISTORY)?;
        let route = route_between("UCSB", "UNL-5G")?;
        let appender = RemoteAppender::new(clock, route, RemoteConfig::default(), seed);
        Ok(ResultsReturn { field, appender })
    }

    /// Partition or heal the downlink route (failure injection).
    pub fn set_partitioned(&mut self, partitioned: bool) {
        self.appender.route_mut().set_partitioned(partitioned);
    }

    /// Attach observability to the downlink appender.
    pub fn set_obs(&mut self, obs: &xg_obs::Obs) {
        self.appender.set_obs(obs);
    }

    /// Deliver one result summary to the field node. Returns the transfer
    /// latency (ms, virtual time).
    pub fn deliver(&mut self, summary: &ResultSummary) -> Result<f64, CspotError> {
        let field = Arc::clone(&self.field);
        let outcome = self
            .appender
            .append(&field, RESULTS_LOG, &summary.encode())?;
        Ok(outcome.latency_ms)
    }

    /// The most recent result visible to the site operator.
    pub fn latest(&self) -> Option<ResultSummary> {
        let log = self.field.log(RESULTS_LOG).ok()?;
        let seq = log.latest_seq()?;
        ResultSummary::decode(&log.get(seq).ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(wind: f64, t: f64) -> TelemetryRecord {
        TelemetryRecord {
            station_id: 0,
            t_s: t,
            wind_speed_ms: wind,
            wind_dir_deg: 300.0,
            temp_c: 22.0,
            rel_humidity: 60.0,
        }
    }

    #[test]
    fn ship_lands_records_in_repo() {
        let repo = Arc::new(CspotNode::in_memory("UCSB"));
        let clock = SimClock::new();
        let mut p = TelemetryPipeline::new(Arc::clone(&repo), clock, 1).unwrap();
        let latency = p.ship(&[record(3.0, 300.0), record(3.4, 300.0)]).unwrap();
        assert!(latency > 0.0);
        assert_eq!(repo.latest_seq(TELEMETRY_LOG).unwrap(), Some(2));
        assert_eq!(repo.latest_seq(WIND_LOG).unwrap(), Some(1));
        let hist = p.wind_history(5).unwrap();
        assert_eq!(hist.len(), 1);
        assert!((hist[0] - 3.2).abs() < 1e-12);
    }

    #[test]
    fn per_cycle_latency_matches_table1_scale() {
        // 9 stations + 1 wind summary = 10 messages at ~100 ms each over
        // the 5G route: the "approximately 200 milliseconds" of §4.4 is
        // per-message-pair; a full cycle lands near 1 s — utterly
        // imperceptible against the 300 s duty cycle either way.
        let repo = Arc::new(CspotNode::in_memory("UCSB"));
        let clock = SimClock::new();
        let mut p = TelemetryPipeline::new(repo, clock, 2).unwrap();
        let records: Vec<TelemetryRecord> = (0..9)
            .map(|i| record(3.0 + i as f64 * 0.1, 300.0))
            .collect();
        // First shipment pays connection setup; measure the second.
        p.ship(&records).unwrap();
        let latency = p.ship(&records).unwrap();
        let per_msg = latency / 10.0;
        assert!(
            per_msg > 60.0 && per_msg < 160.0,
            "per-message latency {per_msg} ms vs paper's 101 ms"
        );
        assert!(latency < 0.01 * 300_000.0, "imperceptible vs duty cycle");
    }

    #[test]
    fn wind_history_ordering() {
        let repo = Arc::new(CspotNode::in_memory("UCSB"));
        let mut p = TelemetryPipeline::new(repo, SimClock::new(), 3).unwrap();
        for w in [1.0, 2.0, 3.0] {
            p.ship(&[record(w, 0.0)]).unwrap();
        }
        assert_eq!(p.wind_history(2).unwrap(), vec![2.0, 3.0]);
        assert_eq!(p.wind_history(10).unwrap().len(), 3);
    }

    #[test]
    fn result_summary_roundtrip() {
        let r = ResultSummary {
            t_s: 5821.0,
            predicted_wind_ms: 1.12,
            validity_s: 1379.0,
            breach_suspected: true,
        };
        assert_eq!(ResultSummary::decode(&r.encode()), Some(r));
        assert!(ResultSummary::decode(&[0u8; 31]).is_none());
    }

    #[test]
    fn results_return_reaches_field_node() {
        let field = Arc::new(CspotNode::in_memory("UNL"));
        let mut ret = ResultsReturn::new(Arc::clone(&field), SimClock::new(), 7).unwrap();
        assert!(ret.latest().is_none());
        let summary = ResultSummary {
            t_s: 1800.0,
            predicted_wind_ms: 0.9,
            validity_s: 1380.0,
            breach_suspected: false,
        };
        let latency = ret.deliver(&summary).unwrap();
        // Downlink over the same 5G route: ~101 ms + connection setup.
        assert!(latency > 50.0 && latency < 600.0, "{latency}");
        assert_eq!(ret.latest(), Some(summary));
    }

    fn field_gateway(capacity: usize) -> (FieldGateway, Arc<CspotNode>) {
        let repo = Arc::new(CspotNode::in_memory("UCSB"));
        let field = Arc::new(CspotNode::in_memory("UNL"));
        let fg =
            FieldGateway::new(Arc::clone(&repo), field, SimClock::new(), 11, capacity).unwrap();
        (fg, repo)
    }

    #[test]
    fn gateway_parks_data_through_partition_and_drains_on_reconnect() {
        let (mut fg, repo) = field_gateway(1024);
        let cycle = |w: f64| vec![record(w, 0.0), record(w + 0.2, 0.0)];
        let r = fg.ship_cycle(&cycle(1.0)).unwrap();
        assert_eq!(r.delivered, 2);
        assert!(r.latency_ms > 0.0);
        fg.set_partitioned(true);
        for i in 0..3 {
            let r = fg.ship_cycle(&cycle(2.0 + i as f64)).unwrap();
            assert_eq!(r.delivered, 0, "partition blocks delivery");
            assert_eq!(r.dropped, 0, "partition must not lose data");
        }
        assert_eq!(fg.backlog(), 6);
        fg.set_partitioned(false);
        let r = fg.ship_cycle(&cycle(9.0)).unwrap();
        assert_eq!(r.delivered, 8, "backlog plus current cycle drains");
        assert_eq!(r.backlog, 0);
        // 2 from the healthy first cycle + the 8 drained now, no dupes.
        assert_eq!(repo.log(TELEMETRY_LOG).unwrap().len(), 10, "exactly once");
        // Wind means arrive in order despite the outage.
        let hist = fg.wind_history(10).unwrap();
        assert_eq!(hist.len(), 5);
        assert!((hist[0] - 1.1).abs() < 1e-9 && (hist[4] - 9.1).abs() < 1e-9);
        assert_eq!(fg.dropped(), 0);
        assert_eq!(fg.delivered(), fg.buffered());
    }

    #[test]
    fn bounded_buffer_drops_and_counts_when_full() {
        let (mut fg, _repo) = field_gateway(5);
        fg.set_partitioned(true);
        let records: Vec<TelemetryRecord> = (0..3).map(|i| record(1.0 + i as f64, 0.0)).collect();
        fg.ship_cycle(&records).unwrap(); // 3 buffered
        let r = fg.ship_cycle(&records).unwrap(); // 2 buffered, 1 dropped
        assert_eq!(r.dropped, 1);
        let r = fg.ship_cycle(&records).unwrap(); // full: all dropped
        assert_eq!(r.dropped, 3);
        assert_eq!(fg.dropped(), 4);
        assert_eq!(fg.backlog(), 5);
        assert_eq!(fg.max_backlog(), 5);
    }

    #[test]
    fn missing_route_is_a_typed_error() {
        // The paper topology has no such site; construction must fail
        // with FabricError::MissingRoute, not a panic.
        let err = route_between("UNL-5G", "NOWHERE").unwrap_err();
        assert!(matches!(err, FabricError::MissingRoute { .. }));
        assert!(err.to_string().contains("NOWHERE"));
    }

    #[test]
    fn partition_blocks_then_heals() {
        let repo = Arc::new(CspotNode::in_memory("UCSB"));
        let mut p = TelemetryPipeline::new(Arc::clone(&repo), SimClock::new(), 4).unwrap();
        p.ship(&[record(1.0, 0.0)]).unwrap();
        p.set_partitioned(true);
        assert!(
            p.ship(&[record(2.0, 0.0)]).is_err(),
            "partition exhausts retries"
        );
        p.set_partitioned(false);
        p.ship(&[record(3.0, 0.0)]).unwrap();
        let hist = p.wind_history(10).unwrap();
        assert_eq!(hist.last(), Some(&3.0));
    }
}
