//! The telemetry data path: UNL sensors → 5G → Internet → UCSB repository.
//!
//! Every 5 minutes (the stations' reporting interval) the sensor network's
//! records are appended — via the CSPOT two-phase remote protocol over the
//! calibrated 5G + Internet route — into the telemetry logs at the UCSB
//! repository node. The paper measures this path at 101 ± 17 ms per 1 KB
//! message (Table 1) and notes that even an order-of-magnitude improvement
//! "would be imperceptible end-to-end" against the 300 s duty cycle.

use std::sync::Arc;
use xg_cspot::netsim::{SimClock, Topology};
use xg_cspot::node::CspotNode;
use xg_cspot::protocol::{RemoteAppender, RemoteConfig};
use xg_cspot::CspotError;
use xg_sensors::telemetry::TelemetryRecord;

/// Name of the raw-telemetry log at the repository.
pub const TELEMETRY_LOG: &str = "cups.telemetry";
/// Name of the per-report mean-wind log the change detector reads.
pub const WIND_LOG: &str = "cups.wind";
/// Name of the results log at the field node (CFD summaries returned to
/// the site operator).
pub const RESULTS_LOG: &str = "cups.results";
/// History retained in the repository logs (plenty for 30-min windows).
pub const LOG_HISTORY: usize = 8192;

/// The UNL→UCSB telemetry pipeline.
pub struct TelemetryPipeline {
    /// The UCSB repository node.
    pub repo: Arc<CspotNode>,
    appender: RemoteAppender,
    clock: SimClock,
}

impl TelemetryPipeline {
    /// Build the pipeline over the paper topology's `UNL-5G → UCSB` route.
    ///
    /// Creates the repository logs if absent.
    pub fn new(repo: Arc<CspotNode>, clock: SimClock, seed: u64) -> Result<Self, CspotError> {
        repo.open_log(TELEMETRY_LOG, TelemetryRecord::WIRE_SIZE, LOG_HISTORY)?;
        repo.open_log(WIND_LOG, 8, LOG_HISTORY)?;
        let topo = Topology::paper();
        let route = topo
            .route("UNL-5G", "UCSB")
            .expect("paper topology has the 5G route")
            .clone();
        let appender = RemoteAppender::new(clock.clone(), route, RemoteConfig::default(), seed);
        Ok(TelemetryPipeline {
            repo,
            appender,
            clock,
        })
    }

    /// Ship one reporting cycle's records to the repository.
    ///
    /// Appends every record to [`TELEMETRY_LOG`] and the cycle's mean wind
    /// speed to [`WIND_LOG`]. Returns the total transfer latency in ms
    /// (virtual time).
    pub fn ship(&mut self, records: &[TelemetryRecord]) -> Result<f64, CspotError> {
        let start = self.clock.now_ms();
        for r in records {
            self.appender
                .append(&self.repo, TELEMETRY_LOG, &r.encode())?;
        }
        if !records.is_empty() {
            let mean_wind =
                records.iter().map(|r| r.wind_speed_ms).sum::<f64>() / records.len() as f64;
            self.appender
                .append(&self.repo, WIND_LOG, &mean_wind.to_le_bytes())?;
        }
        Ok(self.clock.now_ms() - start)
    }

    /// The most recent `n` mean-wind values at the repository, oldest
    /// first.
    pub fn wind_history(&self, n: usize) -> Result<Vec<f64>, CspotError> {
        let log = self.repo.log(WIND_LOG)?;
        Ok(log
            .tail(n)
            .into_iter()
            .map(|(_, bytes)| f64::from_le_bytes(bytes[..8].try_into().expect("8-byte element")))
            .collect())
    }

    /// Partition or heal the access route (failure injection).
    pub fn set_partitioned(&mut self, partitioned: bool) {
        self.appender.route_mut().set_partitioned(partitioned);
    }
}

/// A CFD result summary returned to the site operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultSummary {
    /// Completion time (s).
    pub t_s: f64,
    /// Predicted mean interior wind (m/s).
    pub predicted_wind_ms: f64,
    /// Validity window (s).
    pub validity_s: f64,
    /// Whether a breach is suspected.
    pub breach_suspected: bool,
}

impl ResultSummary {
    /// Fixed wire size of an encoded summary.
    pub const WIRE_SIZE: usize = 32;

    /// Encode to exactly [`Self::WIRE_SIZE`] bytes.
    pub fn encode(&self) -> [u8; Self::WIRE_SIZE] {
        let mut out = [0u8; Self::WIRE_SIZE];
        out[0..8].copy_from_slice(&self.t_s.to_le_bytes());
        out[8..16].copy_from_slice(&self.predicted_wind_ms.to_le_bytes());
        out[16..24].copy_from_slice(&self.validity_s.to_le_bytes());
        out[24] = self.breach_suspected as u8;
        out
    }

    /// Decode; `None` on a wrong-length buffer.
    pub fn decode(bytes: &[u8]) -> Option<ResultSummary> {
        if bytes.len() != Self::WIRE_SIZE {
            return None;
        }
        Some(ResultSummary {
            t_s: f64::from_le_bytes(bytes[0..8].try_into().ok()?),
            predicted_wind_ms: f64::from_le_bytes(bytes[8..16].try_into().ok()?),
            validity_s: f64::from_le_bytes(bytes[16..24].try_into().ok()?),
            breach_suspected: bytes[24] != 0,
        })
    }
}

/// The return data path: CFD summaries shipped from the repository back
/// over the Internet + 5G downlink to the field node at the facility,
/// where the site operator's dashboard reads them.
pub struct ResultsReturn {
    /// The field node at UNL.
    pub field: Arc<CspotNode>,
    appender: RemoteAppender,
}

impl ResultsReturn {
    /// Build the return path over the paper topology's UCSB → UNL-5G
    /// route (the same physical route as the uplink, traversed back).
    pub fn new(field: Arc<CspotNode>, clock: SimClock, seed: u64) -> Result<Self, CspotError> {
        field.open_log(RESULTS_LOG, ResultSummary::WIRE_SIZE, LOG_HISTORY)?;
        let topo = Topology::paper();
        let route = topo
            .route("UCSB", "UNL-5G")
            .expect("paper topology is bidirectional")
            .clone();
        let appender = RemoteAppender::new(clock, route, RemoteConfig::default(), seed);
        Ok(ResultsReturn { field, appender })
    }

    /// Deliver one result summary to the field node. Returns the transfer
    /// latency (ms, virtual time).
    pub fn deliver(&mut self, summary: &ResultSummary) -> Result<f64, CspotError> {
        let field = Arc::clone(&self.field);
        let outcome = self
            .appender
            .append(&field, RESULTS_LOG, &summary.encode())?;
        Ok(outcome.latency_ms)
    }

    /// The most recent result visible to the site operator.
    pub fn latest(&self) -> Option<ResultSummary> {
        let log = self.field.log(RESULTS_LOG).ok()?;
        let seq = log.latest_seq()?;
        ResultSummary::decode(&log.get(seq).ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(wind: f64, t: f64) -> TelemetryRecord {
        TelemetryRecord {
            station_id: 0,
            t_s: t,
            wind_speed_ms: wind,
            wind_dir_deg: 300.0,
            temp_c: 22.0,
            rel_humidity: 60.0,
        }
    }

    #[test]
    fn ship_lands_records_in_repo() {
        let repo = Arc::new(CspotNode::in_memory("UCSB"));
        let clock = SimClock::new();
        let mut p = TelemetryPipeline::new(Arc::clone(&repo), clock, 1).unwrap();
        let latency = p.ship(&[record(3.0, 300.0), record(3.4, 300.0)]).unwrap();
        assert!(latency > 0.0);
        assert_eq!(repo.latest_seq(TELEMETRY_LOG).unwrap(), Some(2));
        assert_eq!(repo.latest_seq(WIND_LOG).unwrap(), Some(1));
        let hist = p.wind_history(5).unwrap();
        assert_eq!(hist.len(), 1);
        assert!((hist[0] - 3.2).abs() < 1e-12);
    }

    #[test]
    fn per_cycle_latency_matches_table1_scale() {
        // 9 stations + 1 wind summary = 10 messages at ~100 ms each over
        // the 5G route: the "approximately 200 milliseconds" of §4.4 is
        // per-message-pair; a full cycle lands near 1 s — utterly
        // imperceptible against the 300 s duty cycle either way.
        let repo = Arc::new(CspotNode::in_memory("UCSB"));
        let clock = SimClock::new();
        let mut p = TelemetryPipeline::new(repo, clock, 2).unwrap();
        let records: Vec<TelemetryRecord> = (0..9)
            .map(|i| record(3.0 + i as f64 * 0.1, 300.0))
            .collect();
        // First shipment pays connection setup; measure the second.
        p.ship(&records).unwrap();
        let latency = p.ship(&records).unwrap();
        let per_msg = latency / 10.0;
        assert!(
            per_msg > 60.0 && per_msg < 160.0,
            "per-message latency {per_msg} ms vs paper's 101 ms"
        );
        assert!(latency < 0.01 * 300_000.0, "imperceptible vs duty cycle");
    }

    #[test]
    fn wind_history_ordering() {
        let repo = Arc::new(CspotNode::in_memory("UCSB"));
        let mut p = TelemetryPipeline::new(repo, SimClock::new(), 3).unwrap();
        for w in [1.0, 2.0, 3.0] {
            p.ship(&[record(w, 0.0)]).unwrap();
        }
        assert_eq!(p.wind_history(2).unwrap(), vec![2.0, 3.0]);
        assert_eq!(p.wind_history(10).unwrap().len(), 3);
    }

    #[test]
    fn result_summary_roundtrip() {
        let r = ResultSummary {
            t_s: 5821.0,
            predicted_wind_ms: 1.12,
            validity_s: 1379.0,
            breach_suspected: true,
        };
        assert_eq!(ResultSummary::decode(&r.encode()), Some(r));
        assert!(ResultSummary::decode(&[0u8; 31]).is_none());
    }

    #[test]
    fn results_return_reaches_field_node() {
        let field = Arc::new(CspotNode::in_memory("UNL"));
        let mut ret = ResultsReturn::new(Arc::clone(&field), SimClock::new(), 7).unwrap();
        assert!(ret.latest().is_none());
        let summary = ResultSummary {
            t_s: 1800.0,
            predicted_wind_ms: 0.9,
            validity_s: 1380.0,
            breach_suspected: false,
        };
        let latency = ret.deliver(&summary).unwrap();
        // Downlink over the same 5G route: ~101 ms + connection setup.
        assert!(latency > 50.0 && latency < 600.0, "{latency}");
        assert_eq!(ret.latest(), Some(summary));
    }

    #[test]
    fn partition_blocks_then_heals() {
        let repo = Arc::new(CspotNode::in_memory("UCSB"));
        let mut p = TelemetryPipeline::new(Arc::clone(&repo), SimClock::new(), 4).unwrap();
        p.ship(&[record(1.0, 0.0)]).unwrap();
        p.set_partitioned(true);
        assert!(
            p.ship(&[record(2.0, 0.0)]).is_err(),
            "partition exhausts retries"
        );
        p.set_partitioned(false);
        p.ship(&[record(3.0, 0.0)]).unwrap();
        let hist = p.wind_history(10).unwrap();
        assert_eq!(hist.last(), Some(&3.0));
    }
}
