//! Robot route planning through the orchard.
//!
//! §2: "The xGFabric digital-physical fabric will incorporate robot-based
//! sensing and robot route planning." The screen house is full of tree
//! rows the Farm-NG cannot drive through, so a straight line to the
//! suspect panel is usually blocked; this planner runs A* on a coarse
//! occupancy grid built from the canopy blocks, producing a drivable
//! waypoint path whose length feeds the mission-time estimate.

use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use xg_cfd::mesh::{CanopyBlock, DomainSpec};

/// Planner grid resolution (m).
const CELL_M: f64 = 2.0;
/// Clearance added around obstacles (m) — half a robot width plus margin.
const INFLATE_M: f64 = 1.0;

/// An occupancy-grid route planner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutePlanner {
    nx: usize,
    ny: usize,
    blocked: Vec<bool>,
}

impl RoutePlanner {
    /// Build a planner from the facility's domain spec: canopy blocks are
    /// obstacles, everything else (aisles, perimeter road) is drivable.
    pub fn from_domain(spec: &DomainSpec) -> Self {
        let nx = (spec.size_m[0] / CELL_M).ceil() as usize + 1;
        let ny = (spec.size_m[1] / CELL_M).ceil() as usize + 1;
        let mut blocked = vec![false; nx * ny];
        for j in 0..ny {
            for i in 0..nx {
                let x = i as f64 * CELL_M;
                let y = j as f64 * CELL_M;
                let hit = spec.canopy.iter().any(|c: &CanopyBlock| {
                    x >= c.min[0] - INFLATE_M
                        && x <= c.max[0] + INFLATE_M
                        && y >= c.min[1] - INFLATE_M
                        && y <= c.max[1] + INFLATE_M
                });
                blocked[j * nx + i] = hit;
            }
        }
        RoutePlanner { nx, ny, blocked }
    }

    fn cell(&self, x: f64, y: f64) -> (usize, usize) {
        let i = ((x / CELL_M).round().max(0.0) as usize).min(self.nx - 1);
        let j = ((y / CELL_M).round().max(0.0) as usize).min(self.ny - 1);
        (i, j)
    }

    /// True if the position is inside an (inflated) obstacle.
    pub fn is_blocked(&self, x: f64, y: f64) -> bool {
        let (i, j) = self.cell(x, y);
        self.blocked[j * self.nx + i]
    }

    /// Nearest free cell to a position (breadth-first ring search), used
    /// when a target sits against an inflated wall obstacle.
    fn nearest_free(&self, i: usize, j: usize) -> Option<(usize, usize)> {
        if !self.blocked[j * self.nx + i] {
            return Some((i, j));
        }
        for r in 1..(self.nx.max(self.ny)) {
            for dj in -(r as i64)..=(r as i64) {
                for di in -(r as i64)..=(r as i64) {
                    if di.abs().max(dj.abs()) != r as i64 {
                        continue;
                    }
                    let (ni, nj) = (i as i64 + di, j as i64 + dj);
                    if ni >= 0 && nj >= 0 && (ni as usize) < self.nx && (nj as usize) < self.ny {
                        let (ni, nj) = (ni as usize, nj as usize);
                        if !self.blocked[nj * self.nx + ni] {
                            return Some((ni, nj));
                        }
                    }
                }
            }
        }
        None
    }

    /// Plan a path from `from` to `to` (m). Returns waypoints including
    /// both endpoints, or `None` if no drivable route exists.
    pub fn plan(&self, from: (f64, f64), to: (f64, f64)) -> Option<Vec<(f64, f64)>> {
        let (si, sj) = {
            let (i, j) = self.cell(from.0, from.1);
            self.nearest_free(i, j)?
        };
        let (gi, gj) = {
            let (i, j) = self.cell(to.0, to.1);
            self.nearest_free(i, j)?
        };
        // A* with octile heuristic.
        #[derive(PartialEq)]
        struct Open {
            f: f64,
            idx: usize,
        }
        impl Eq for Open {}
        impl Ord for Open {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Min-heap on f.
                other
                    .f
                    .partial_cmp(&self.f)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }
        impl PartialOrd for Open {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let idx = |i: usize, j: usize| j * self.nx + i;
        let h = |i: usize, j: usize| {
            let dx = (i as f64 - gi as f64).abs();
            let dy = (j as f64 - gj as f64).abs();
            let (a, b) = if dx > dy { (dx, dy) } else { (dy, dx) };
            (a - b) + b * std::f64::consts::SQRT_2
        };
        let n = self.nx * self.ny;
        let mut g = vec![f64::INFINITY; n];
        let mut parent = vec![usize::MAX; n];
        let mut heap = BinaryHeap::new();
        g[idx(si, sj)] = 0.0;
        heap.push(Open {
            f: h(si, sj),
            idx: idx(si, sj),
        });
        while let Some(Open { idx: cur, .. }) = heap.pop() {
            if cur == idx(gi, gj) {
                // Reconstruct.
                let mut path = Vec::new();
                let mut c = cur;
                while c != usize::MAX {
                    let (i, j) = (c % self.nx, c / self.nx);
                    path.push((i as f64 * CELL_M, j as f64 * CELL_M));
                    c = parent[c];
                }
                path.reverse();
                // Pin exact endpoints.
                if let Some(first) = path.first_mut() {
                    *first = from;
                }
                if let Some(last) = path.last_mut() {
                    *last = to;
                }
                return Some(path);
            }
            let (ci, cj) = (cur % self.nx, cur / self.nx);
            for dj in -1i64..=1 {
                for di in -1i64..=1 {
                    if di == 0 && dj == 0 {
                        continue;
                    }
                    let (ni, nj) = (ci as i64 + di, cj as i64 + dj);
                    if ni < 0 || nj < 0 || ni as usize >= self.nx || nj as usize >= self.ny {
                        continue;
                    }
                    let (ni, nj) = (ni as usize, nj as usize);
                    if self.blocked[idx(ni, nj)] {
                        continue;
                    }
                    let step = if di != 0 && dj != 0 {
                        std::f64::consts::SQRT_2
                    } else {
                        1.0
                    };
                    let cand = g[cur] + step;
                    if cand < g[idx(ni, nj)] {
                        g[idx(ni, nj)] = cand;
                        parent[idx(ni, nj)] = cur;
                        heap.push(Open {
                            f: cand + h(ni, nj),
                            idx: idx(ni, nj),
                        });
                    }
                }
            }
        }
        None
    }

    /// Length of a waypoint path (m).
    pub fn path_length_m(path: &[(f64, f64)]) -> f64 {
        path.windows(2)
            .map(|w| ((w[1].0 - w[0].0).powi(2) + (w[1].1 - w[0].1).powi(2)).sqrt())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> RoutePlanner {
        RoutePlanner::from_domain(&DomainSpec::cups_default())
    }

    #[test]
    fn open_field_is_straightish() {
        let spec = DomainSpec {
            size_m: [100.0, 100.0, 8.0],
            cells: [10, 10, 4],
            canopy: vec![],
        };
        let p = RoutePlanner::from_domain(&spec);
        let path = p.plan((0.0, 0.0), (100.0, 100.0)).expect("open field");
        let len = RoutePlanner::path_length_m(&path);
        let straight = (2.0f64).sqrt() * 100.0;
        assert!(len <= straight * 1.1, "len {len} vs straight {straight}");
    }

    #[test]
    fn tree_rows_are_avoided() {
        let p = planner();
        // Between rows x=8..12 at y=50: interior of a tree row is blocked.
        assert!(p.is_blocked(10.0, 50.0));
        // Aisle at x=6 (rows start at 8, inflated to 7): drivable.
        assert!(!p.is_blocked(5.0, 50.0));
        // A path across the orchard must exist (via the perimeter or
        // aisles) and never touch a blocked cell.
        let path = p.plan((2.0, 2.0), (118.0, 98.0)).expect("route exists");
        for &(x, y) in &path[1..path.len() - 1] {
            assert!(!p.is_blocked(x, y), "waypoint ({x},{y}) in canopy");
        }
    }

    #[test]
    fn detour_longer_than_crow_flies() {
        let p = planner();
        // Crossing all the rows east-west mid-field forces aisle detours
        // (rows span y = 4..96, so the route goes around or along them).
        let from = (2.0, 50.0);
        let to = (118.0, 50.0);
        let path = p.plan(from, to).expect("route exists");
        let len = RoutePlanner::path_length_m(&path);
        let straight = 116.0;
        assert!(len > straight, "detour required: {len} vs {straight}");
    }

    #[test]
    fn target_inside_canopy_resolves_to_nearest_aisle() {
        let p = planner();
        // Aim straight into a tree row: the planner still returns a path
        // ending at the requested coordinates (pinned), with the approach
        // through free space.
        let path = p.plan((2.0, 2.0), (10.0, 50.0)).expect("resolvable");
        assert_eq!(*path.last().unwrap(), (10.0, 50.0));
    }

    #[test]
    fn path_length_of_degenerate_paths() {
        assert_eq!(RoutePlanner::path_length_m(&[]), 0.0);
        assert_eq!(RoutePlanner::path_length_m(&[(1.0, 1.0)]), 0.0);
        let l = RoutePlanner::path_length_m(&[(0.0, 0.0), (3.0, 4.0)]);
        assert!((l - 5.0).abs() < 1e-12);
    }
}
