//! Multi-cell RAN topology for the fabric.
//!
//! The paper's deployment is one cell (UNL's 5G CBRS site). A
//! production fabric spans several: the field gateway camps on one cell
//! while remote sensor clusters ride their own. [`RanTopology`]
//! describes that layout, and [`RanProbe`] keeps a live
//! [`RanFleet`](xg_net::fleet::RanFleet) stepping alongside the
//! orchestrator so per-cell goodput and fade state are *measured* every
//! report cycle — feeding the SLO window, the timeline, and per-cell
//! fault targeting — instead of inferred from the gateway's latency
//! alone.

use std::sync::Arc;
use xg_net::device::UnitVariation;
use xg_net::e2::CellIndication;
use xg_net::fleet::{CellId, FleetUe, RanFleet};
use xg_net::prelude::{Advance, CellConfig, DeviceClass, Duplex, MHz, Modem, NetError, Rat, SimNs};
use xg_net::sim::UeHandle;
use xg_net::slice::{SliceConfig, SliceProfile, Snssai};
use xg_net::traffic::TrafficModel;
use xg_obs::Obs;
use xg_ric::RicAction;

/// SNR offset applied to a partitioned cell: far below any MCS floor,
/// so every UE on it reads ~0 goodput.
const CELL_DOWN_SNR_DB: f64 = -200.0;

/// Default probe-burst length (TTIs). Long enough to average over HARQ
/// and fast-fade jitter, short enough that a probe cycle is dominated
/// by the idle-skip, not the burst.
const DEFAULT_PROBE_BURST_SLOTS: usize = 32;

/// One scripted traffic-bearing UE attached to a cell at construction
/// (beyond the backlogged probe UEs): a weather-station cluster on the
/// mIoT slice, a pest camera on eMBB. These are the UEs a RIC steers.
#[derive(Debug, Clone)]
pub struct ScenarioUe {
    /// Device class (propagation + power profile).
    pub device: DeviceClass,
    /// Slice the UE's PDU session rides (must be admitted by the cell's
    /// slice table).
    pub snssai: Snssai,
    /// Offered-traffic model.
    pub traffic: TrafficModel,
}

/// One named cell of the deployment.
#[derive(Debug, Clone)]
pub struct RanCellSpec {
    /// Deployment label, matched by per-cell faults
    /// (`FaultKind::RanDegradation` / `FaultKind::CellPartition`).
    pub name: String,
    /// Radio configuration.
    pub config: CellConfig,
    /// Backlogged probe UEs attached at construction — the synthetic
    /// load whose measured goodput stands in for the cell's health.
    pub probe_ues: usize,
    /// Scripted traffic-bearing UEs attached after the probes (empty by
    /// default). Their cell-local ids follow the probe UEs' in order.
    pub scenario_ues: Vec<ScenarioUe>,
}

impl RanCellSpec {
    /// A cell with the paper's 20 MHz NR FDD profile and one probe UE.
    pub fn paper_default(name: &str) -> Self {
        RanCellSpec {
            name: name.to_string(),
            config: CellConfig::new(Rat::Nr5g, Duplex::Fdd, MHz(20.0)),
            probe_ues: 1,
            scenario_ues: Vec::new(),
        }
    }

    /// Replace the radio configuration (e.g. to install a slice table).
    pub fn with_config(mut self, config: CellConfig) -> Self {
        self.config = config;
        self
    }

    /// Add a scripted traffic-bearing UE.
    pub fn with_scenario_ue(mut self, ue: ScenarioUe) -> Self {
        self.scenario_ues.push(ue);
        self
    }
}

/// The fabric's multi-cell RAN layout.
#[derive(Debug, Clone)]
pub struct RanTopology {
    /// Cells in fleet order (`CellId(i)` is `cells[i]`).
    pub cells: Vec<RanCellSpec>,
    /// Which cell the field gateway camps on: faults on this cell reach
    /// the telemetry path; faults elsewhere stay local to their cell.
    pub gateway_cell: String,
    /// Simulated seconds each probe batch advances every report cycle.
    pub probe_seconds: usize,
    /// TTIs of saturating probe traffic measured at the head of each
    /// batch. Goodput is sampled over this burst; the rest of the batch
    /// idle-skips through the event engine, so a nominal cycle costs
    /// O(burst), not O(`probe_seconds` × slots-per-second). Clamped to
    /// the batch length.
    pub probe_burst_slots: usize,
    /// Worker-pool width for batched stepping (1 = serial; results are
    /// identical either way).
    pub workers: usize,
}

impl Default for RanTopology {
    /// The paper's single-cell deployment: one UNL-5G cell carrying the
    /// gateway, probed one second per cycle, stepped serially.
    fn default() -> Self {
        RanTopology {
            cells: vec![RanCellSpec::paper_default("UNL-5G")],
            gateway_cell: "UNL-5G".to_string(),
            probe_seconds: 1,
            probe_burst_slots: DEFAULT_PROBE_BURST_SLOTS,
            workers: 1,
        }
    }
}

impl RanTopology {
    /// A topology of `names.len()` paper-default cells with the gateway
    /// pinned to the first.
    pub fn with_cells(names: &[&str]) -> Self {
        assert!(!names.is_empty(), "a topology needs at least one cell");
        RanTopology {
            cells: names
                .iter()
                .map(|n| RanCellSpec::paper_default(n))
                .collect(),
            gateway_cell: names[0].to_string(),
            ..RanTopology::default()
        }
    }
}

/// Measured state of one cell after a probe batch.
#[derive(Debug, Clone, PartialEq)]
pub struct CellHealth {
    /// Deployment label.
    pub name: String,
    /// Mean probe goodput over the batch (Mbps).
    pub goodput_mbps: f64,
    /// Fade currently injected (dB, 0 = nominal).
    pub fade_db: f64,
    /// Whether the cell is partitioned off the backhaul.
    pub down: bool,
}

/// Per-cell bookkeeping alongside the fleet.
struct CellState {
    name: String,
    ues: Vec<FleetUe>,
    scenario: Vec<FleetUe>,
    fade_db: f64,
    down: bool,
    goodput_gauge: Option<Arc<xg_obs::Gauge>>,
    fade_gauge: Option<Arc<xg_obs::Gauge>>,
}

/// A live multi-cell RAN the orchestrator probes every report cycle.
pub struct RanProbe {
    fleet: RanFleet,
    cells: Vec<CellState>,
    gateway_cell: usize,
    probe_seconds: usize,
    burst_slots: usize,
    goodput_hist: Option<Arc<xg_obs::Histogram>>,
}

impl RanProbe {
    /// Build the fleet from the topology; cell RNG streams derive from
    /// `seed` (same convention as the rest of the fabric).
    pub fn try_new(topology: &RanTopology, seed: u64, obs: &Obs) -> Result<Self, NetError> {
        let gateway_cell = topology
            .cells
            .iter()
            .position(|c| c.name == topology.gateway_cell)
            .ok_or_else(|| NetError::UnknownCellName(topology.gateway_cell.clone()))?;
        let mut builder = RanFleet::builder(seed)
            .workers(topology.workers.max(1))
            .obs(obs);
        for spec in &topology.cells {
            builder = builder.cell(spec.config.clone());
        }
        let mut fleet = builder.build()?;
        let reg = obs.registry();
        let mut cells = Vec::with_capacity(topology.cells.len());
        for (i, spec) in topology.cells.iter().enumerate() {
            let mut ues = Vec::with_capacity(spec.probe_ues);
            for _ in 0..spec.probe_ues {
                let ue = fleet.attach(
                    CellId(i as u32),
                    DeviceClass::RaspberryPi,
                    Modem::paper_default(DeviceClass::RaspberryPi, spec.config.rat),
                )?;
                fleet.set_backlogged(ue, true)?;
                ues.push(ue);
            }
            let mut scenario = Vec::with_capacity(spec.scenario_ues.len());
            for s in &spec.scenario_ues {
                let ue = fleet.attach_with(
                    CellId(i as u32),
                    s.device,
                    Modem::paper_default(s.device, spec.config.rat),
                    s.snssai,
                    UnitVariation::default(),
                )?;
                fleet.set_traffic(ue, s.traffic)?;
                scenario.push(ue);
            }
            cells.push(CellState {
                name: spec.name.clone(),
                ues,
                scenario,
                fade_db: 0.0,
                down: false,
                goodput_gauge: reg
                    .map(|r| r.gauge(&format!("fabric.ran.{}.goodput_mbps", spec.name))),
                fade_gauge: reg.map(|r| r.gauge(&format!("fabric.ran.{}.fade_db", spec.name))),
            });
        }
        Ok(RanProbe {
            fleet,
            cells,
            gateway_cell,
            probe_seconds: topology.probe_seconds.max(1),
            burst_slots: topology.probe_burst_slots.max(1),
            goodput_hist: reg.map(|r| r.histogram("fabric.ran.cell_goodput_mbps")),
        })
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the topology holds no cells (never true for a built probe).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The gateway cell's deployment label.
    pub fn gateway_cell_name(&self) -> &str {
        &self.cells[self.gateway_cell].name
    }

    /// Whether `name` is the cell the field gateway camps on.
    pub fn serves_gateway(&self, name: &str) -> bool {
        self.cells[self.gateway_cell].name == name
    }

    /// Whether the gateway's cell is currently partitioned.
    pub fn gateway_cell_down(&self) -> bool {
        self.cells[self.gateway_cell].down
    }

    /// Inject (or clear, with `None`) a fade on the named cell. Returns
    /// `false` when no such cell exists (the fault is ignored).
    pub fn fade(&mut self, name: &str, snr_offset_db: Option<f64>) -> bool {
        let Some(i) = self.cells.iter().position(|c| c.name == name) else {
            return false;
        };
        self.cells[i].fade_db = snr_offset_db.unwrap_or(0.0);
        self.apply_offset(i);
        true
    }

    /// Partition the named cell on or off the backhaul. Returns `false`
    /// when no such cell exists.
    pub fn set_cell_down(&mut self, name: &str, down: bool) -> bool {
        let Some(i) = self.cells.iter().position(|c| c.name == name) else {
            return false;
        };
        self.cells[i].down = down;
        self.apply_offset(i);
        true
    }

    /// Push the combined fade/partition offset into the cell's simulator.
    fn apply_offset(&mut self, i: usize) {
        let c = &self.cells[i];
        let offset = if c.down { CELL_DOWN_SNR_DB } else { c.fade_db };
        self.fleet
            .set_cell_snr_offset_db(CellId(i as u32), offset)
            // xg-lint: allow(panicking-call, index ranges over self.cells which is built to the fleet's length)
            .expect("cell index is in range by construction");
    }

    /// Advance every cell one probe batch (sharded across the fleet's
    /// worker pool) and report measured per-cell health, in cell order.
    ///
    /// The batch is burst-then-skip on the event engine: goodput is
    /// measured over a short saturating burst (`probe_burst_slots`
    /// TTIs) at the head of the batch, then the probe UEs quiesce and
    /// the remaining `probe_seconds` idle-skip in O(1) per cell (plus
    /// whatever scenario traffic keeps cells genuinely active). Total
    /// simulated time advanced per cycle is unchanged from the legacy
    /// full-batch probe, so the `ran.fleet.sim` attribution subtree
    /// keeps the same per-cycle nanosecond totals.
    pub fn probe(&mut self) -> Vec<CellHealth> {
        let start = self.fleet.now();
        let end = SimNs(start.0 + self.probe_seconds as u64 * 1_000_000_000);
        let burst_end = SimNs((start.0 + self.burst_slots as u64 * 1_000_000).min(end.0));
        for (i, c) in self.cells.iter().enumerate() {
            let cell = self
                .fleet
                .cell_mut(CellId(i as u32))
                // xg-lint: allow(panicking-call, index ranges over self.cells which is built to the fleet's length)
                .expect("cell index is in range by construction");
            // Open a fresh measurement window: bits queued during the
            // previous batch's idle-skip must not count into the burst.
            cell.reset_windows();
            for &ue in &c.ues {
                cell.set_backlogged(ue.ue, true)
                    // xg-lint: allow(panicking-call, probe UEs were attached at construction and never detach)
                    .expect("probe UE handle is valid by construction");
            }
        }
        let _ = self.fleet.advance_to(burst_end);
        let window_s = (burst_end.0 - start.0) as f64 / 1e9;
        let health: Vec<CellHealth> = (0..self.cells.len())
            .map(|i| {
                let samples = self
                    .fleet
                    .cell_mut(CellId(i as u32))
                    // xg-lint: allow(panicking-call, index ranges over self.cells which is built to the fleet's length)
                    .expect("cell index is in range by construction")
                    .flush_second_window(window_s);
                let c = &mut self.cells[i];
                let goodput = if samples.is_empty() {
                    0.0
                } else {
                    samples.iter().map(|&(_, m)| m).sum::<f64>() / samples.len() as f64
                };
                if let Some(g) = &c.goodput_gauge {
                    g.set(goodput);
                }
                if let Some(g) = &c.fade_gauge {
                    g.set(if c.down { CELL_DOWN_SNR_DB } else { c.fade_db });
                }
                if let Some(h) = &self.goodput_hist {
                    h.record(goodput);
                }
                CellHealth {
                    name: c.name.clone(),
                    goodput_mbps: goodput,
                    fade_db: c.fade_db,
                    down: c.down,
                }
            })
            .collect();
        // Quiesce the probes: the rest of the batch idle-skips unless
        // scenario traffic keeps a cell active.
        for (i, c) in self.cells.iter().enumerate() {
            let cell = self
                .fleet
                .cell_mut(CellId(i as u32))
                // xg-lint: allow(panicking-call, index ranges over self.cells which is built to the fleet's length)
                .expect("cell index is in range by construction");
            for &ue in &c.ues {
                cell.set_backlogged(ue.ue, false)
                    // xg-lint: allow(panicking-call, probe UEs were attached at construction and never detach)
                    .expect("probe UE handle is valid by construction");
            }
        }
        let _ = self.fleet.advance_to(end);
        health
    }

    /// Borrow the underlying fleet (diagnostics, tests).
    pub fn fleet(&self) -> &RanFleet {
        &self.fleet
    }

    /// The deployment label of fleet cell `id`, if it exists.
    pub fn cell_name(&self, id: u32) -> Option<&str> {
        self.cells.get(id as usize).map(|c| c.name.as_str())
    }

    /// The fleet cell id carrying the named cell, if it exists.
    pub fn cell_id(&self, name: &str) -> Option<u32> {
        self.cells
            .iter()
            .position(|c| c.name == name)
            .map(|i| i as u32)
    }

    /// Whether the named cell is currently partitioned off the backhaul.
    pub fn cell_down(&self, name: &str) -> bool {
        self.cells.iter().any(|c| c.name == name && c.down)
    }

    /// The scenario UEs attached to the named cell (`None` for unknown
    /// cells; empty for cells without scripted traffic).
    pub fn scenario_ues(&self, name: &str) -> Option<&[FleetUe]> {
        self.cells
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.scenario.as_slice())
    }

    /// Drain every cell's E2 indication window, in cell order. Pure
    /// reads and resets — collecting never perturbs the fleet's RNG
    /// streams, so a RIC-less run and a collecting run stay bitwise
    /// identical.
    pub fn collect_indications(&mut self) -> Vec<CellIndication> {
        self.fleet.collect_indications()
    }

    /// Apply one RIC control action to the live fleet. Surfaces an
    /// invalid target (unknown cell or UE, infeasible slice table) as a
    /// typed error instead of a panic — a RIC must never crash the RAN.
    pub fn apply_ric_action(&mut self, action: &RicAction) -> Result<(), NetError> {
        match action {
            RicAction::ReapportionSlices { cell, shares } => {
                let config = SliceConfig::new(
                    shares
                        .iter()
                        .map(|&(snssai, prb_share)| SliceProfile { snssai, prb_share })
                        .collect(),
                )?;
                self.fleet.cell_mut(CellId(*cell))?.set_slices(config)
            }
            RicAction::SetPfWeight { cell, ue, weight } => self
                .fleet
                .cell_mut(CellId(*cell))?
                .set_pf_weight(UeHandle::from_id(*ue), *weight),
            RicAction::CapUeMcs { cell, ue, max_eff } => self
                .fleet
                .cell_mut(CellId(*cell))?
                .set_mcs_cap(UeHandle::from_id(*ue), *max_eff),
        }
    }

    /// The probe UEs attached to the named cell (`None` for unknown
    /// cells).
    pub fn probe_ues(&self, name: &str) -> Option<&[FleetUe]> {
        self.cells
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.ues.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_topology_matches_the_paper() {
        let topo = RanTopology::default();
        let mut probe = RanProbe::try_new(&topo, 42, &Obs::disabled()).unwrap();
        assert_eq!(probe.len(), 1);
        assert!(probe.serves_gateway("UNL-5G"));
        let health = probe.probe();
        assert_eq!(health.len(), 1);
        assert!(
            health[0].goodput_mbps > 20.0,
            "nominal probe UE must see real goodput, got {}",
            health[0].goodput_mbps
        );
    }

    #[test]
    fn unknown_gateway_cell_is_a_construction_error() {
        let topo = RanTopology {
            gateway_cell: "NOWHERE".into(),
            ..RanTopology::default()
        };
        assert!(matches!(
            RanProbe::try_new(&topo, 1, &Obs::disabled()),
            Err(NetError::UnknownCellName(_))
        ));
    }

    #[test]
    fn fade_and_partition_target_single_cells() {
        let topo = RanTopology::with_cells(&["UNL-5G", "FIELD-B"]);
        let mut probe = RanProbe::try_new(&topo, 7, &Obs::disabled()).unwrap();
        let nominal = probe.probe();
        assert!(probe.fade("FIELD-B", Some(-25.0)));
        assert!(!probe.fade("NOWHERE", Some(-25.0)), "unknown cell ignored");
        let faded = probe.probe();
        assert!(
            faded[1].goodput_mbps < nominal[1].goodput_mbps * 0.25,
            "FIELD-B must collapse: {} vs {}",
            faded[1].goodput_mbps,
            nominal[1].goodput_mbps
        );
        assert!(
            faded[0].goodput_mbps > nominal[0].goodput_mbps * 0.5,
            "UNL-5G must stay healthy: {} vs {}",
            faded[0].goodput_mbps,
            nominal[0].goodput_mbps
        );
        // Clear the fade, partition instead: goodput goes to ~zero.
        assert!(probe.fade("FIELD-B", None));
        assert!(probe.set_cell_down("FIELD-B", true));
        let downed = probe.probe();
        assert!(downed[1].goodput_mbps < 0.01, "{}", downed[1].goodput_mbps);
        assert!(!probe.gateway_cell_down(), "gateway rides its own cell");
    }

    #[test]
    fn scenario_ues_ride_slices_and_ric_actions_land() {
        let mut topo = RanTopology::default();
        topo.cells[0] = RanCellSpec::paper_default("UNL-5G")
            .with_config(
                CellConfig::new(Rat::Nr5g, Duplex::Fdd, MHz(20.0)).with_slices(
                    SliceConfig::new(vec![
                        SliceProfile {
                            snssai: Snssai::miot(1),
                            prb_share: 0.5,
                        },
                        SliceProfile {
                            snssai: Snssai::embb(1),
                            prb_share: 0.5,
                        },
                    ])
                    .unwrap(),
                ),
            )
            .with_scenario_ue(ScenarioUe {
                device: DeviceClass::RaspberryPi,
                snssai: Snssai::miot(1),
                traffic: TrafficModel::Cbr { rate_mbps: 4.0 },
            });
        topo.cells[0].probe_ues = 1;
        let mut probe = RanProbe::try_new(&topo, 11, &Obs::disabled()).unwrap();
        assert_eq!(probe.cell_id("UNL-5G"), Some(0));
        assert_eq!(probe.cell_name(0), Some("UNL-5G"));
        assert!(probe.cell_id("NOWHERE").is_none());
        let scenario = probe.scenario_ues("UNL-5G").unwrap().to_vec();
        assert_eq!(scenario.len(), 1);
        probe.probe();
        let inds = probe.collect_indications();
        assert_eq!(inds.len(), 1);
        assert_eq!(inds[0].slices.len(), 2);
        assert!(
            inds[0].slice(Snssai::miot(1)).unwrap().offered_bits > 0.0,
            "scenario CBR traffic must show up in the mIoT slice"
        );
        // All three action kinds land on the live fleet.
        probe
            .apply_ric_action(&RicAction::ReapportionSlices {
                cell: 0,
                shares: vec![(Snssai::miot(1), 0.3), (Snssai::embb(1), 0.7)],
            })
            .unwrap();
        probe
            .apply_ric_action(&RicAction::SetPfWeight {
                cell: 0,
                ue: scenario[0].ue.id(),
                weight: 2.5,
            })
            .unwrap();
        probe
            .apply_ric_action(&RicAction::CapUeMcs {
                cell: 0,
                ue: scenario[0].ue.id(),
                max_eff: Some(1.0),
            })
            .unwrap();
        let cell = probe.fleet().cell(CellId(0)).unwrap();
        assert_eq!(cell.pf_weight(scenario[0].ue).unwrap(), 2.5);
        assert_eq!(cell.mcs_cap(scenario[0].ue).unwrap(), Some(1.0));
        // Invalid targets surface as typed errors, never panics.
        assert!(probe
            .apply_ric_action(&RicAction::SetPfWeight {
                cell: 9,
                ue: 0,
                weight: 1.0,
            })
            .is_err());
        assert!(probe
            .apply_ric_action(&RicAction::CapUeMcs {
                cell: 0,
                ue: 99,
                max_eff: None,
            })
            .is_err());
    }

    #[test]
    fn probe_records_per_cell_instruments() {
        let obs = Obs::enabled();
        let topo = RanTopology::with_cells(&["UNL-5G", "FIELD-B"]);
        let mut probe = RanProbe::try_new(&topo, 3, &obs).unwrap();
        probe.fade("FIELD-B", Some(-30.0));
        probe.probe();
        let reg = obs.registry().unwrap();
        assert!(reg.gauge("fabric.ran.UNL-5G.goodput_mbps").get() > 20.0);
        assert_eq!(reg.gauge("fabric.ran.FIELD-B.fade_db").get(), -30.0);
        assert_eq!(reg.histogram("fabric.ran.cell_goodput_mbps").count(), 2);
    }
}
