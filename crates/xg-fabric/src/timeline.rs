//! End-to-end latency accounting (§4.4).
//!
//! The paper's budget: telemetry every 300 s transferring in ~10² ms; a
//! 30-minute change-detection duty cycle; ~7 minutes of CFD on 64 cores;
//! so each simulation is "valid for a minimum of 23 minutes" until the
//! next condition change. [`Timeline`] records every event of an
//! orchestrated run so the `e2e_timeline` bench can print that budget.

use serde::{Deserialize, Serialize};

/// One orchestration event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A telemetry cycle was shipped to the repository.
    TelemetryShipped {
        /// Wall-clock time (s).
        t_s: f64,
        /// Transfer latency for the whole cycle (ms).
        latency_ms: f64,
        /// Records shipped.
        records: usize,
    },
    /// The 30-minute change detector ran.
    ChangeChecked {
        /// Wall-clock time (s).
        t_s: f64,
        /// Whether a change was declared.
        changed: bool,
        /// Votes from the three tests.
        votes: u8,
    },
    /// The pilot controller evaluated Eqs. (1)–(3).
    PilotEvaluated {
        /// Wall-clock time (s).
        t_s: f64,
        /// Eq. 1 result.
        n_required: u32,
        /// Eq. 2 result.
        n_available: u32,
        /// Whether a new pilot was submitted.
        submitted: bool,
    },
    /// A CFD simulation completed.
    CfdCompleted {
        /// Wall-clock time the run finished (s).
        t_s: f64,
        /// Modelled 64-core runtime at paper scale (s).
        model_runtime_s: f64,
        /// Predicted mean interior wind (m/s).
        predicted_interior_wind: f64,
        /// Validity window until the next possible trigger (s).
        validity_s: f64,
    },
    /// The digital twin compared prediction with measurement.
    TwinCompared {
        /// Wall-clock time (s).
        t_s: f64,
        /// Max residual (m/s).
        max_residual_ms: f64,
        /// Whether a breach is suspected.
        breach_suspected: bool,
    },
    /// A CFD result summary was delivered back to the field node for the
    /// site operator (the "vice versa" path of §3.1).
    ResultsReturned {
        /// Wall-clock time (s).
        t_s: f64,
        /// Downlink transfer latency (ms).
        latency_ms: f64,
    },
    /// The intervention advisor issued a recommendation from the CFD
    /// result (frost protection, spray window/hold).
    AdvisoryIssued {
        /// Wall-clock time (s).
        t_s: f64,
        /// Human-readable recommendation.
        summary: String,
    },
    /// The robot was dispatched to a suspect region.
    RobotDispatched {
        /// Wall-clock time (s).
        t_s: f64,
        /// Mission duration (s).
        mission_s: f64,
        /// Whether the breach was visually confirmed.
        confirmed: bool,
    },
    /// An injected fault changed state.
    FaultChanged {
        /// Wall-clock time (s).
        t_s: f64,
        /// Human-readable fault description.
        fault: String,
        /// `true` = fault became active, `false` = cleared.
        active: bool,
    },
    /// The graceful-degradation ladder moved to a new level.
    DegradationChanged {
        /// Wall-clock time (s).
        t_s: f64,
        /// 0 = nominal, 1 = reduced CFD resolution, 2 = also skip
        /// non-critical results-return.
        level: u8,
    },
    /// The SLO watchdog declared an objective breached (after hysteresis).
    SloBreached {
        /// Wall-clock time (s).
        t_s: f64,
        /// The breached objective's name, e.g. `p99(fabric.cycle.transfer_ms) < 5000`.
        slo: String,
        /// The offending windowed value.
        value: f64,
        /// The objective's threshold.
        threshold: f64,
    },
    /// A previously breached objective recovered (after hysteresis).
    SloRecovered {
        /// Wall-clock time (s).
        t_s: f64,
        /// The recovered objective's name.
        slo: String,
        /// The windowed value at recovery.
        value: f64,
        /// The objective's threshold.
        threshold: f64,
    },
    /// The per-cell RAN probe batch ran (one event per report cycle).
    RanProbed {
        /// Wall-clock time (s).
        t_s: f64,
        /// Cells probed.
        cells: usize,
        /// The cell with the lowest measured goodput this batch.
        worst_cell: String,
        /// That cell's mean probe goodput (Mbps).
        worst_goodput_mbps: f64,
    },
    /// The near-RT RIC applied a control action to the live RAN.
    RicAction {
        /// Wall-clock time (s).
        t_s: f64,
        /// Name of the xApp that won the action's control knob.
        xapp: String,
        /// Human-readable action description
        /// (`xg_ric::RicAction::describe`).
        action: String,
    },
    /// A lost CFD task was resubmitted to another site.
    FailoverTriggered {
        /// Wall-clock time (s).
        t_s: f64,
        /// Site that lost the task.
        from_site: String,
        /// Site that accepted the resubmission (`None` while every site
        /// is unreachable and the task waits in backoff).
        to_site: Option<String>,
    },
}

/// The event log of one orchestrated run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Events in time order.
    pub events: Vec<Event>,
}

impl Timeline {
    /// Record an event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// Count events matching a predicate.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// Telemetry transfer latencies (ms).
    pub fn telemetry_latencies_ms(&self) -> Vec<f64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::TelemetryShipped { latency_ms, .. } => Some(*latency_ms),
                _ => None,
            })
            .collect()
    }

    /// Number of CFD runs triggered.
    pub fn cfd_runs(&self) -> usize {
        self.count(|e| matches!(e, Event::CfdCompleted { .. }))
    }

    /// Number of change checks that declared a change.
    pub fn changes_detected(&self) -> usize {
        self.count(|e| matches!(e, Event::ChangeChecked { changed: true, .. }))
    }

    /// Number of successful failover resubmissions.
    pub fn failovers(&self) -> usize {
        self.count(|e| {
            matches!(
                e,
                Event::FailoverTriggered {
                    to_site: Some(_),
                    ..
                }
            )
        })
    }

    /// Number of RIC control actions applied.
    pub fn ric_actions(&self) -> usize {
        self.count(|e| matches!(e, Event::RicAction { .. }))
    }

    /// `(t_s, xapp)` of the first RIC action, if any was applied.
    pub fn first_ric_action(&self) -> Option<(f64, &str)> {
        self.events.iter().find_map(|e| match e {
            Event::RicAction { t_s, xapp, .. } => Some((*t_s, xapp.as_str())),
            _ => None,
        })
    }

    /// Number of fault activations recorded.
    pub fn fault_activations(&self) -> usize {
        self.count(|e| matches!(e, Event::FaultChanged { active: true, .. }))
    }

    /// Number of SLO breach events.
    pub fn slo_breaches(&self) -> usize {
        self.count(|e| matches!(e, Event::SloBreached { .. }))
    }

    /// Number of SLO recovery events.
    pub fn slo_recoveries(&self) -> usize {
        self.count(|e| matches!(e, Event::SloRecovered { .. }))
    }

    /// True if any breach was confirmed by the robot.
    pub fn breach_confirmed(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                Event::RobotDispatched {
                    confirmed: true,
                    ..
                }
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let mut t = Timeline::default();
        t.push(Event::TelemetryShipped {
            t_s: 300.0,
            latency_ms: 950.0,
            records: 9,
        });
        t.push(Event::ChangeChecked {
            t_s: 1800.0,
            changed: true,
            votes: 3,
        });
        t.push(Event::CfdCompleted {
            t_s: 2220.0,
            model_runtime_s: 420.0,
            predicted_interior_wind: 1.2,
            validity_s: 1380.0,
        });
        t.push(Event::RobotDispatched {
            t_s: 2400.0,
            mission_s: 200.0,
            confirmed: true,
        });
        assert_eq!(t.telemetry_latencies_ms(), vec![950.0]);
        assert_eq!(t.cfd_runs(), 1);
        assert_eq!(t.changes_detected(), 1);
        assert!(t.breach_confirmed());
        assert_eq!(t.count(|_| true), 4);
    }
}
