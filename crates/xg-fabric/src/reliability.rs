//! Per-run reliability accounting.
//!
//! The paper's §3.1 claim is that the fabric turns infrastructure failure
//! into *delay*, never into loss. [`ReliabilityReport`] quantifies that
//! for one orchestrated run: how much of the horizon the 5G path was
//! actually usable, what happened to every telemetry record, how much the
//! 30-minute detection duty cycle slipped, and how the HPC failover layer
//! behaved.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Reliability summary of one orchestrated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityReport {
    /// Virtual-time horizon covered (s).
    pub horizon_s: f64,
    /// Fraction of the horizon during which the 5G uplink was not
    /// partitioned (exact accounting from the fault plan; 1.0 when the
    /// plan schedules no partitions).
    pub availability_experienced: f64,
    /// Telemetry records accepted into the field gateway buffer.
    pub records_buffered: u64,
    /// Records dropped because the bounded buffer was full (the only way
    /// the fabric loses telemetry).
    pub records_dropped: u64,
    /// Records delivered to the repository.
    pub records_delivered: u64,
    /// Largest gateway backlog observed (records).
    pub max_backlog: usize,
    /// Records still parked in the gateway at the end of the run.
    pub final_backlog: usize,
    /// Change-detection evaluations performed.
    pub detections: u32,
    /// Mean extra delay of a detection beyond its nominal duty-cycle slot,
    /// caused by telemetry arriving late (s).
    pub mean_detection_inflation_s: f64,
    /// CFD tasks resubmitted to another site after a loss or refusal.
    pub failovers: u32,
    /// CFD runs triggered by the change detector.
    pub cfd_triggered: u32,
    /// CFD runs that completed.
    pub cfd_completed: u32,
    /// Completed CFD runs that needed at least one failover first.
    pub cfd_recovered: u32,
    /// Report cycles spent at a degradation level above nominal.
    pub degraded_cycles: u32,
    /// Distinct impairment episodes (route down, backlog pending, or a
    /// CFD awaiting failover).
    pub impairment_episodes: u32,
    /// Mean time to recover the loop from an impairment episode (s) —
    /// from first impairment until backlog, route, and failover queue are
    /// all clean again.
    pub loop_mttr_s: f64,
}

impl ReliabilityReport {
    /// True when no telemetry was lost (the §3.1 guarantee held).
    pub fn lossless(&self) -> bool {
        self.records_dropped == 0
            && self.records_delivered + self.final_backlog as u64 == self.records_buffered
    }
}

impl fmt::Display for ReliabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "reliability over {:.0} s:", self.horizon_s)?;
        writeln!(
            f,
            "  5G availability experienced  {:6.2}%",
            self.availability_experienced * 100.0
        )?;
        writeln!(
            f,
            "  telemetry buffered/delivered {}/{} (dropped {}, final backlog {}, max backlog {})",
            self.records_buffered,
            self.records_delivered,
            self.records_dropped,
            self.final_backlog,
            self.max_backlog
        )?;
        writeln!(
            f,
            "  detections                   {} (mean inflation {:.0} s)",
            self.detections, self.mean_detection_inflation_s
        )?;
        writeln!(
            f,
            "  cfd triggered/completed      {}/{} (failovers {}, recovered {})",
            self.cfd_triggered, self.cfd_completed, self.failovers, self.cfd_recovered
        )?;
        write!(
            f,
            "  degraded cycles              {} ({} impairment episodes, loop MTTR {:.0} s)",
            self.degraded_cycles, self.impairment_episodes, self.loop_mttr_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReliabilityReport {
        ReliabilityReport {
            horizon_s: 86_400.0,
            availability_experienced: 0.97,
            records_buffered: 2592,
            records_dropped: 0,
            records_delivered: 2580,
            max_backlog: 40,
            final_backlog: 12,
            detections: 48,
            mean_detection_inflation_s: 120.0,
            failovers: 1,
            cfd_triggered: 3,
            cfd_completed: 3,
            cfd_recovered: 1,
            degraded_cycles: 9,
            impairment_episodes: 4,
            loop_mttr_s: 660.0,
        }
    }

    #[test]
    fn lossless_accounts_for_backlog() {
        let mut r = sample();
        assert!(r.lossless());
        r.records_dropped = 1;
        assert!(!r.lossless());
        r.records_dropped = 0;
        r.records_delivered = 2500;
        assert!(!r.lossless(), "unaccounted records are loss");
    }

    #[test]
    fn display_mentions_every_headline_number() {
        let s = sample().to_string();
        for needle in ["97.00%", "2592", "2580", "failovers 1", "MTTR 660"] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }
}
