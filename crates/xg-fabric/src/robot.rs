//! Farm-NG robot dispatch.
//!
//! §2: when the digital twin suspects a breach, xGFabric will "dispatch
//! the robot to surveil the region of the screen where a breach may have
//! occurred using an on-board camera". The robot here drives a straight
//! aisle-aware route to the suspect wall region, inspects, and reports
//! whether a breach is visible near that point — closing the
//! sense → compute → actuate loop the paper motivates.

use crate::route::RoutePlanner;
use serde::{Deserialize, Serialize};
use xg_sensors::facility::CupsFacility;

/// The wheeled robot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Robot {
    /// Current position (m) in facility coordinates.
    pub position: (f64, f64),
    /// Driving speed (m/s). Farm-NG Amiga-class: ~1.5 m/s.
    pub speed_ms: f64,
    /// Time spent inspecting a panel (s).
    pub inspect_s: f64,
    /// Visual detection range from the inspection point (m).
    pub camera_range_m: f64,
}

impl Default for Robot {
    fn default() -> Self {
        Robot {
            position: (60.0, 50.0),
            speed_ms: 1.5,
            inspect_s: 120.0,
            camera_range_m: 20.0,
        }
    }
}

/// Outcome of a dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobotReport {
    /// Travel time to the suspect region (s).
    pub travel_s: f64,
    /// Total mission time (travel + inspection, s).
    pub mission_s: f64,
    /// Whether a breach was visually confirmed within camera range.
    pub breach_confirmed: bool,
    /// Final robot position (m).
    pub position: (f64, f64),
}

impl Robot {
    /// Drive to `target` (m) along the planned route through the orchard
    /// aisles, inspect, and report. Falls back to the straight-line
    /// estimate when no route exists (e.g. degenerate geometry).
    pub fn dispatch_planned(
        &mut self,
        target: (f64, f64),
        facility: &CupsFacility,
        planner: &RoutePlanner,
    ) -> RobotReport {
        match planner.plan(self.position, target) {
            Some(path) => {
                let dist = RoutePlanner::path_length_m(&path);
                let travel_s = dist / self.speed_ms.max(0.1);
                self.position = target;
                let confirmed = self.can_see_breach(target, facility);
                RobotReport {
                    travel_s,
                    mission_s: travel_s + self.inspect_s,
                    breach_confirmed: confirmed,
                    position: self.position,
                }
            }
            None => self.dispatch(target, facility),
        }
    }

    fn can_see_breach(&self, target: (f64, f64), facility: &CupsFacility) -> bool {
        facility.breaches.iter().any(|b| {
            let (bx, by) = facility.panel_center(b.wall, b.panel);
            let d = ((bx - target.0).powi(2) + (by - target.1).powi(2)).sqrt();
            d <= self.camera_range_m
        })
    }

    /// Drive straight to `target` (m), inspect, and report. The
    /// ground-truth `facility` decides whether a breach is visible there.
    pub fn dispatch(&mut self, target: (f64, f64), facility: &CupsFacility) -> RobotReport {
        let dist =
            ((target.0 - self.position.0).powi(2) + (target.1 - self.position.1).powi(2)).sqrt();
        let travel_s = dist / self.speed_ms.max(0.1);
        self.position = target;
        let confirmed = self.can_see_breach(target, facility);
        RobotReport {
            travel_s,
            mission_s: travel_s + self.inspect_s,
            breach_confirmed: confirmed,
            position: self.position,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_sensors::breach::Breach;
    use xg_sensors::facility::Wall;

    #[test]
    fn travel_time_scales_with_distance() {
        let facility = CupsFacility::default();
        let mut near = Robot::default();
        let mut far = Robot {
            position: (120.0, 100.0),
            ..Robot::default()
        };
        let r_near = near.dispatch((60.0, 52.0), &facility);
        let r_far = far.dispatch((0.0, 0.0), &facility);
        assert!(r_far.travel_s > r_near.travel_s);
        assert!((r_near.mission_s - r_near.travel_s - 120.0).abs() < 1e-9);
        assert_eq!(near.position, (60.0, 52.0));
    }

    #[test]
    fn confirms_real_breach() {
        let mut facility = CupsFacility::default();
        facility.add_breach(Breach::equipment_tear(Wall::West, 5));
        let (bx, by) = facility.panel_center(Wall::West, 5);
        let mut robot = Robot::default();
        let report = robot.dispatch((bx, by), &facility);
        assert!(report.breach_confirmed);
    }

    #[test]
    fn false_alarm_not_confirmed() {
        let facility = CupsFacility::default(); // intact
        let mut robot = Robot::default();
        let report = robot.dispatch((0.0, 50.0), &facility);
        assert!(!report.breach_confirmed);
    }

    #[test]
    fn planned_dispatch_takes_longer_through_orchard() {
        use xg_cfd::mesh::DomainSpec;
        let mut facility = CupsFacility::default();
        facility.add_breach(Breach::equipment_tear(Wall::West, 5));
        let (bx, by) = facility.panel_center(Wall::West, 5);
        let planner = RoutePlanner::from_domain(&DomainSpec::cups_default());
        let mut direct = Robot {
            position: (118.0, 50.0),
            ..Robot::default()
        };
        let mut planned = Robot {
            position: (118.0, 50.0),
            ..Robot::default()
        };
        let r_direct = direct.dispatch((bx, by), &facility);
        let r_planned = planned.dispatch_planned((bx, by), &facility, &planner);
        assert!(r_planned.breach_confirmed);
        assert!(
            r_planned.travel_s >= r_direct.travel_s,
            "aisle route cannot beat the crow: {} vs {}",
            r_planned.travel_s,
            r_direct.travel_s
        );
    }

    #[test]
    fn breach_out_of_camera_range_missed() {
        let mut facility = CupsFacility::default();
        facility.add_breach(Breach::bird_strike(Wall::East, 0));
        let mut robot = Robot::default();
        // Inspect the opposite corner.
        let report = robot.dispatch((0.0, 100.0), &facility);
        assert!(!report.breach_confirmed);
    }
}
