//! The xGFabric closed loop.
//!
//! [`XgFabric`] advances the whole system on the paper's duty cycles:
//!
//! * every **300 s** the stations report and the records enter the field
//!   gateway's bounded store-and-forward buffer, which drains over
//!   5G + Internet into the UCSB repository whenever the link allows
//!   (§3.1's delay tolerance);
//! * every **30 min** (6 reports) the Laminar change detector compares the
//!   two most recent 30-minute windows *of data that actually reached the
//!   repository*; a statistically measurable change triggers the Pilot
//!   controller (Eqs. 1–4) and a CFD task routed to the best reachable
//!   HPC site;
//! * CFD tasks complete after their expected completion time; a site
//!   outage mid-run triggers failover — the task is resubmitted to the
//!   next-best site with capped exponential backoff — and on completion
//!   the **actual** solver runs at (possibly degraded) resolution, the
//!   digital twin compares prediction with measurement, and a suspected
//!   breach dispatches the Farm-NG robot.
//!
//! A [`FaultPlan`] in the configuration injects partitions, RAN collapse,
//! site outages, sensor faults, and storage faults as virtual time
//! advances; the loop degrades gracefully (buffering, failover, reduced
//! CFD resolution, skipped results-return) instead of panicking, and
//! every run can emit a [`ReliabilityReport`]. All time is virtual;
//! nothing sleeps.

use crate::backtest::{Backtester, CalibrationSample};
use crate::error::FabricError;
use crate::intervention::{Intervention, InterventionAdvisor, SiteConditions};
use crate::pipeline::{FieldGateway, ResultSummary, ResultsReturn};
use crate::ran::{RanProbe, RanTopology};
use crate::reliability::ReliabilityReport;
use crate::robot::Robot;
use crate::route::RoutePlanner;
use crate::timeline::{Event, Timeline};
use std::path::PathBuf;
use std::sync::Arc;
use xg_cfd::boundary::BoundarySpec;
use xg_cfd::mesh::{DomainSpec, Mesh};
use xg_cfd::parallel::CfdPerfModel;
use xg_cfd::solver::{Simulation, SolverConfig};
use xg_cfd::twin::{DigitalTwin, Measurement};
use xg_cspot::netsim::SimClock;
use xg_cspot::node::CspotNode;
use xg_faults::{FaultChange, FaultKind, FaultPlan};
use xg_hpc::multisite::MultiSiteController;
use xg_hpc::site::SiteProfile;
use xg_laminar::change::{build_change_graph, ChangeDetector};
use xg_laminar::runtime::LaminarRuntime;
use xg_laminar::value::Value;
use xg_obs::clock::{secs_to_us, wall_now_us};
use xg_obs::critical::{extract_critical, CriticalPath};
use xg_obs::recorder::{dump_bundle, BundleContext};
use xg_obs::slo::{Hysteresis, SloEventKind, SloOp, SloSpec, SloStat, SloWatchdog};
use xg_obs::span::SpanRecord;
use xg_obs::window::{MetricsWindow, WindowConfig};
use xg_obs::ClockDomain;
use xg_obs::{Obs, SpanId, TraceId};
use xg_ric::Ric;
use xg_sensors::breach::Breach;
use xg_sensors::facility::CupsFacility;
use xg_sensors::network::{BoundaryConditions, SensorNetwork};
use xg_sensors::qc::QcScreen;
use xg_sensors::telemetry::TelemetryRecord;
use xg_sim::{Advance, EventQueue, SimNs};

/// Full-fabric configuration.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// RNG seed for every stochastic component.
    pub seed: u64,
    /// Telemetry reporting interval (s).
    pub report_interval_s: f64,
    /// Reports per change-detection duty cycle (paper: 6 = 30 min).
    pub detect_every_reports: usize,
    /// The change detector.
    pub detector: ChangeDetector,
    /// The primary HPC site running the CFD.
    pub site: SiteProfile,
    /// Additional sites the failover layer may route CFD tasks to.
    pub failover_sites: Vec<SiteProfile>,
    /// Whether the sites' queues carry background load.
    pub busy_cluster: bool,
    /// Actual CFD resolution for the in-loop solves.
    pub cfd_cells: [usize; 3],
    /// Actual CFD steps per solve.
    pub cfd_steps: usize,
    /// Paper-scale performance model (task runtimes, Fig. 7).
    pub perf: CfdPerfModel,
    /// Cores assumed for the in-loop CFD tasks.
    pub cfd_cores: u32,
    /// The digital twin comparator.
    pub twin: DigitalTwin,
    /// Bounded capacity of the field gateway buffer (records).
    pub gateway_capacity: usize,
    /// Multi-cell RAN layout: which cells exist, which one carries the
    /// field gateway, and how the per-cycle probe batches are stepped.
    pub ran: RanTopology,
    /// Optional near-RT RIC. When present, every report cycle the fleet's
    /// E2 indications are delivered to it (cells partitioned or under a
    /// `RicIndicationDrop` fault go stale instead), its xApps run, and
    /// the resolved actions are applied to the live fleet before the next
    /// cycle. `None` (the default) runs the RAN open-loop; a RIC with
    /// zero xApps is a pure observer and leaves the run bitwise
    /// unchanged.
    pub ric: Option<Ric>,
    /// Fault schedule applied as virtual time advances.
    pub faults: FaultPlan,
    /// Observability handle. Disabled by default; an enabled handle is
    /// propagated to every layer (CSPOT appenders, pilot controllers, the
    /// in-loop CFD solver) and records one causal trace per closed-loop
    /// cycle.
    pub obs: Obs,
    /// Service-level objectives the watchdog evaluates each report cycle
    /// (requires an enabled `obs`). Breaches drive the degradation
    /// ladder; see [`default_slos`].
    pub slos: Vec<SloSpec>,
    /// Shape of the sliding window the SLOs are judged over.
    pub slo_window: WindowConfig,
    /// Consecutive-tick hysteresis preventing degradation flapping.
    pub slo_hysteresis: Hysteresis,
    /// Where to dump black-box diagnostic bundles (SLO breaches, fault
    /// activations). `None` disables dumping; the in-memory flight
    /// recorder still runs whenever `obs` is enabled.
    pub blackbox_dir: Option<PathBuf>,
}

/// The fabric's default objectives, stated against §4.4's budget:
///
/// * `p99(fabric.cycle.transfer_ms) < 5000` — a report cycle's transfer
///   must stay well inside the 300 s duty cycle; a RAN collapse blows
///   this long before any backlog forms. Breach requests ladder level 1.
/// * `delta(fabric.gateway.dropped) <= 0` — the bounded gateway buffer
///   must not shed telemetry over any window. Breach requests level 2
///   (shed the non-critical results-return before science data).
/// * `delta(fabric.gateway.delivered) > 0` — the repository must receive
///   *something* every window; total delivery stall (partition) requests
///   level 1 while the buffer absorbs the outage.
pub fn default_slos() -> Vec<SloSpec> {
    vec![
        SloSpec::new("fabric.cycle.transfer_ms", SloStat::P99, SloOp::Lt, 5_000.0)
            .min_count(2)
            .degrade_to(1),
        SloSpec::new("fabric.gateway.dropped", SloStat::Delta, SloOp::Le, 0.0).degrade_to(2),
        SloSpec::new("fabric.gateway.delivered", SloStat::Delta, SloOp::Gt, 0.0).degrade_to(1),
    ]
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            seed: 42,
            report_interval_s: 300.0,
            detect_every_reports: 6,
            detector: ChangeDetector::default(),
            site: SiteProfile::notre_dame_crc(),
            failover_sites: Vec::new(),
            busy_cluster: false,
            cfd_cells: [20, 16, 6],
            cfd_steps: 40,
            perf: CfdPerfModel::notre_dame(),
            cfd_cores: 64,
            twin: DigitalTwin::default(),
            gateway_capacity: 4096,
            ran: RanTopology::default(),
            ric: None,
            faults: FaultPlan::none(),
            obs: Obs::disabled(),
            slos: default_slos(),
            slo_window: WindowConfig::default(),
            slo_hysteresis: Hysteresis::default(),
            blackbox_dir: None,
        }
    }
}

/// Pre-resolved fabric-level instruments (one registry lookup at attach).
struct FabricObs {
    report_cycles: Arc<xg_obs::Counter>,
    degradation_level: Arc<xg_obs::Gauge>,
    degradation_transitions: Arc<xg_obs::Counter>,
    cycle_transfer_ms: Arc<xg_obs::Histogram>,
    gateway_backlog: Arc<xg_obs::Gauge>,
    gateway_dropped: Arc<xg_obs::Counter>,
    gateway_delivered: Arc<xg_obs::Counter>,
    slo_breaches: Arc<xg_obs::Counter>,
    slo_recoveries: Arc<xg_obs::Counter>,
    ric_actions: Arc<xg_obs::Counter>,
    ric_held: Arc<xg_obs::Counter>,
    ric_stale_cells: Arc<xg_obs::Gauge>,
    critical_total_ms: Arc<xg_obs::Histogram>,
    critical_depth: Arc<xg_obs::Gauge>,
}

impl FabricObs {
    fn new(obs: &Obs) -> Option<Self> {
        let reg = obs.registry()?;
        Some(FabricObs {
            report_cycles: reg.counter("fabric.report_cycles"),
            degradation_level: reg.gauge("fabric.degradation.level"),
            degradation_transitions: reg.counter("fabric.degradation.transitions"),
            cycle_transfer_ms: reg.histogram("fabric.cycle.transfer_ms"),
            gateway_backlog: reg.gauge("fabric.gateway.backlog"),
            gateway_dropped: reg.counter("fabric.gateway.dropped"),
            gateway_delivered: reg.counter("fabric.gateway.delivered"),
            slo_breaches: reg.counter("fabric.slo.breaches"),
            slo_recoveries: reg.counter("fabric.slo.recoveries"),
            ric_actions: reg.counter("fabric.ric.actions"),
            ric_held: reg.counter("fabric.ric.held"),
            ric_stale_cells: reg.gauge("fabric.ric.stale_cells"),
            critical_total_ms: reg.histogram("fabric.cycle.critical.total_ms"),
            critical_depth: reg.gauge("fabric.cycle.critical.depth"),
        })
    }

    /// Register `# HELP` texts for the fabric's headline instruments so a
    /// scraped snapshot is self-describing.
    fn register_help(reg: &xg_obs::MetricsRegistry) {
        for (name, help) in [
            ("fabric.report_cycles", "Report cycles completed"),
            (
                "fabric.cycle.transfer_ms",
                "Virtual telemetry transfer latency per report cycle",
            ),
            (
                "fabric.cycle.critical.total_ms",
                "Wall-time length of the report cycle's critical path",
            ),
            (
                "fabric.cycle.critical.depth",
                "Steps on the most recent cycle's critical path",
            ),
            (
                "fabric.degradation.level",
                "Current degradation ladder level (0 nominal)",
            ),
            (
                "fabric.gateway.backlog",
                "Telemetry records parked at the field gateway",
            ),
        ] {
            reg.set_help(name, help);
        }
    }
}

/// Per-cycle wall-span bookkeeping. Phase boundaries are captured as
/// explicit timestamps during the cycle and flushed as one span tree at
/// cycle end — root first, so every phase span can carry a parent link
/// (the tracer assigns ids at record time). Inert when observability is
/// disabled: every call reduces to one branch.
struct CycleSpans {
    obs: Obs,
    trace: TraceId,
    /// Tracer length at cycle start; `spans_from(mark)` is this cycle.
    mark: usize,
    root_start_us: u64,
    phases: Vec<(&'static str, u64, u64)>,
}

impl CycleSpans {
    fn begin(obs: &Obs) -> Self {
        match obs.tracer() {
            Some(t) => CycleSpans {
                obs: obs.clone(),
                trace: t.new_trace(),
                mark: t.len(),
                root_start_us: wall_now_us(),
                phases: Vec::with_capacity(8),
            },
            None => CycleSpans {
                obs: Obs::disabled(),
                trace: 0,
                mark: 0,
                root_start_us: 0,
                phases: Vec::new(),
            },
        }
    }

    /// Timestamp a phase start (0 when disabled).
    fn start(&self) -> u64 {
        if self.obs.is_enabled() {
            wall_now_us()
        } else {
            0
        }
    }

    /// Close a phase opened by [`CycleSpans::start`].
    fn end(&mut self, name: &'static str, start_us: u64) {
        if self.obs.is_enabled() {
            self.phases.push((name, start_us, wall_now_us()));
        }
    }

    /// Record the cycle's span tree and return this cycle's wall spans
    /// (the tree just recorded plus any other spans of this trace).
    fn flush(self) -> Option<(TraceId, Vec<SpanRecord>)> {
        let tracer = self.obs.tracer()?;
        let root = tracer.record_raw(
            self.trace,
            None,
            "fabric.cycle",
            ClockDomain::Wall,
            self.root_start_us,
            wall_now_us(),
            vec![],
        );
        for (name, s, e) in &self.phases {
            tracer.record_raw(
                self.trace,
                Some(root),
                name,
                ClockDomain::Wall,
                *s,
                *e,
                vec![],
            );
        }
        let spans: Vec<SpanRecord> = tracer
            .spans_from(self.mark)
            .into_iter()
            .filter(|s| s.trace == self.trace)
            .collect();
        Some((self.trace, spans))
    }
}

/// One phase of the report cycle, registered as a recurring event
/// source on the fabric's calendar queue. Registration order (the
/// [`PHASES`] table, mirroring how xg-ric registers xApps) fixes the
/// source id, and the scheduler's `(time, source, seq)` tie-break
/// replays the phases of a coincident cycle instant in exactly this
/// order — so one [`Advance::advance_to`] drain reproduces the legacy
/// `run_report_cycle` body statement for statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FabricPhase {
    /// Advance the fault plan and apply state changes.
    Faults,
    /// Burst-probe the RAN fleet; worst cell lands on the timeline.
    RanProbe,
    /// Deliver E2 indications to the RIC and apply its actions.
    RicStep,
    /// Drain the sensor network's report round through QC.
    SensePoll,
    /// Ship the cycle's records through the field gateway.
    GatewayShip,
    /// Advance the HPC sites; service retries and completions.
    HpcAdvance,
    /// Evaluate measured SLOs and move the degradation ladder.
    SloObserve,
    /// The 30-minute change-detection duty cycle (internally gated).
    ChangeDetect,
    /// Close the cycle: impairment tracking and span-tree flush.
    CycleClose,
}

/// The cycle's phases in registration order (= event-source id order).
const PHASES: [FabricPhase; 9] = [
    FabricPhase::Faults,
    FabricPhase::RanProbe,
    FabricPhase::RicStep,
    FabricPhase::SensePoll,
    FabricPhase::GatewayShip,
    FabricPhase::HpcAdvance,
    FabricPhase::SloObserve,
    FabricPhase::ChangeDetect,
    FabricPhase::CycleClose,
];

/// Per-cycle scratch threaded between the phase events of one cycle
/// instant: opened by `Faults`, closed (taken) by `CycleClose`.
struct CycleScratch {
    cyc: CycleSpans,
    /// QC-passed records of this cycle's report round.
    records: Vec<TelemetryRecord>,
    /// Transfer latency the gateway measured shipping them (ms).
    latency_ms: f64,
}

/// Captured trigger context for one CFD run, including the resolution
/// chosen by the degradation ladder at trigger time.
struct PendingCfd {
    trigger_t_s: f64,
    bc: BoundaryConditions,
    interior: Vec<Measurement>,
    cells: [usize; 3],
    steps: usize,
    /// Closed-loop trace this run belongs to, with the detection span it
    /// is causally downstream of (None when observability is disabled).
    trace: Option<(TraceId, SpanId)>,
}

/// A CFD task placed at a site, expected to finish at `finishes_at`.
struct InFlightCfd {
    pending: PendingCfd,
    site: String,
    finishes_at: f64,
    /// Placement attempts so far (0 = first placement succeeded).
    attempts: u32,
}

/// A CFD task lost to a site outage (or refused by every site), waiting
/// out its backoff before resubmission.
struct RetryCfd {
    pending: PendingCfd,
    from_site: String,
    attempts: u32,
    next_try_s: f64,
}

/// The orchestrated end-to-end system.
pub struct XgFabric {
    /// Configuration.
    pub config: FabricConfig,
    net: SensorNetwork,
    gateway: FieldGateway,
    hpc: MultiSiteController,
    robot: Robot,
    planner: RoutePlanner,
    advisor: InterventionAdvisor,
    /// The §3.7 change-detection program, deployed as a real Laminar
    /// dataflow on the repository's CSPOT node.
    laminar: LaminarRuntime,
    detect_epoch: u64,
    results_return: ResultsReturn,
    qc: QcScreen,
    backtester: Backtester,
    timeline: Timeline,
    t_s: f64,
    reports_done: usize,
    /// Live fault schedule (advanced copy of `config.faults`).
    faults: FaultPlan,
    in_flight: Vec<InFlightCfd>,
    retries: Vec<RetryCfd>,
    /// Degradation ladder level: 0 nominal, 1 reduced CFD resolution,
    /// 2 also skip non-critical results-return.
    degradation: u8,
    route_down: bool,
    /// The live multi-cell RAN, probed every report cycle.
    ran: RanProbe,
    /// The near-RT RIC engine (a live, stepping copy of `config.ric`).
    ric: Option<Ric>,
    /// Cells whose E2 indication stream is currently dropped by a
    /// `RicIndicationDrop` fault.
    ric_dropped: std::collections::BTreeSet<String>,
    /// Whether the gateway's serving cell is partitioned (tracked apart
    /// from `route_down` so either alone severs the telemetry path).
    gateway_cell_partitioned: bool,
    /// When a detect duty cycle was first deferred for lack of fresh
    /// repository data (partition-starved); cleared by the detection
    /// that finally runs, which is charged the wait as inflation.
    deferred_check_since: Option<f64>,
    wind_len_at_last_detect: usize,
    detections: u32,
    detection_inflation_sum_s: f64,
    failovers: u32,
    cfd_triggered: u32,
    cfd_completed: u32,
    cfd_recovered: u32,
    degraded_cycles: u32,
    impaired_since: Option<f64>,
    impairment_episodes: u32,
    impairment_total_s: f64,
    /// Twin calibration factor (measured/predicted), set by the first
    /// completed comparison ("once the model is calibrated", §2).
    calibration: Option<f64>,
    obs: Option<FabricObs>,
    /// Transfer latency of the most recent report cycle (ms, virtual),
    /// charged to the trace of any detection that cycle triggers.
    last_transfer_ms: f64,
    /// Sliding window + watchdog over the registry (enabled `obs` only).
    window: Option<MetricsWindow>,
    watchdog: Option<SloWatchdog>,
    /// Degradation level the active SLO breaches currently request; the
    /// ladder runs at max(backlog level, this).
    slo_degradation: u8,
    /// Cumulative gateway counters at the previous cycle, for deltas.
    prev_dropped: u64,
    prev_delivered: u64,
    /// Black-box bundles dumped so far (paths in `blackbox_dir`).
    bundles: Vec<PathBuf>,
    /// The most recent report cycle's wall-time critical path (enabled
    /// `obs` only); attached to every black-box bundle.
    last_critical: Option<CriticalPath>,
    /// The fabric's calendar queue: every report-cycle phase is a
    /// recurring event source on it, and [`Advance::advance_to`] is one
    /// scheduler drain. Report-interval bucket width keeps each cycle
    /// instant in a single wheel bucket.
    events: EventQueue<FabricPhase>,
    /// Scratch threaded between this cycle instant's phase events
    /// (`None` between cycles).
    cycle: Option<CycleScratch>,
}

impl XgFabric {
    /// Assemble the fabric, surfacing construction failures (a topology
    /// without the paper routes, colliding logs) as typed errors.
    pub fn try_new(config: FabricConfig) -> Result<Self, FabricError> {
        let facility = CupsFacility::default();
        let net = SensorNetwork::cups_default(facility, config.seed);
        let repo = Arc::new(CspotNode::in_memory("UCSB"));
        let field = Arc::new(CspotNode::in_memory("UNL"));
        let mut gateway = FieldGateway::new(
            Arc::clone(&repo),
            Arc::clone(&field),
            SimClock::new(),
            config.seed,
            config.gateway_capacity,
        )?;
        gateway.set_obs(&config.obs);
        let mut sites = vec![(config.site.clone(), config.busy_cluster)];
        for s in &config.failover_sites {
            sites.push((s.clone(), config.busy_cluster));
        }
        let mut hpc = MultiSiteController::new(sites, config.seed);
        hpc.set_est_task_runtime(config.perf.total_time_s(config.cfd_cores));
        hpc.set_obs(&config.obs);
        let mut results_return = ResultsReturn::new(field, SimClock::new(), config.seed ^ 0x5255)?;
        results_return.set_obs(&config.obs);
        let laminar = LaminarRuntime::deploy(
            build_change_graph("cups_change", config.detector)?,
            Arc::clone(&gateway.repo),
        )?;
        let faults = config.faults.clone();
        // The RAN fleet gets its own seed stream so growing the topology
        // never perturbs the sensor or gateway RNGs.
        let ran = RanProbe::try_new(&config.ran, config.seed ^ 0x0052_414E, &config.obs)?;
        let mut ric = config.ric.clone();
        if let Some(r) = &mut ric {
            r.set_obs(&config.obs);
        }
        let obs = FabricObs::new(&config.obs);
        if let Some(reg) = config.obs.registry() {
            FabricObs::register_help(reg);
        }
        let (window, watchdog) = if config.obs.is_enabled() {
            let watchdog = SloWatchdog::new(config.slos.clone(), config.slo_hysteresis);
            // The window feeds the watchdog alone, so it only needs to
            // diff the instruments the objectives actually read — not
            // every live histogram in the registry, every cycle.
            let mut window = MetricsWindow::new(config.slo_window);
            window.focus(watchdog.metrics());
            (Some(window), Some(watchdog))
        } else {
            (None, None)
        };
        // The first fabric configured with a black-box directory arms the
        // process-wide panic hook: a crash anywhere dumps that fabric's
        // flight recorder next to the SLO/fault bundles. One recorder per
        // process is deliberate — stacking a hook per fabric would dump
        // the same panic many times over.
        if let (Some(dir), Some(recorder)) = (&config.blackbox_dir, config.obs.recorder()) {
            static PANIC_HOOK: std::sync::Once = std::sync::Once::new();
            let (recorder, dir, seed) = (Arc::clone(recorder), dir.clone(), config.seed);
            PANIC_HOOK.call_once(move || {
                xg_obs::recorder::install_panic_hook(recorder, dir, seed);
            });
        }
        // Register the report-cycle phases as recurring event sources in
        // PHASES order: source id = registration index, so the queue's
        // (time, source, seq) tie-break replays a cycle instant in
        // exactly the legacy statement order. Each phase fires first at
        // the end of the first report interval and re-arms itself one
        // interval ahead on every pop.
        let mut events = EventQueue::with_layout(1_000_000_000, 1024);
        let first = SimNs::from_secs_f64(config.report_interval_s);
        for (source, phase) in PHASES.iter().enumerate() {
            events.push(first, source as u32, *phase);
        }
        Ok(XgFabric {
            config,
            net,
            gateway,
            hpc,
            robot: Robot::default(),
            planner: RoutePlanner::from_domain(&DomainSpec::cups_default()),
            advisor: InterventionAdvisor::default(),
            laminar,
            detect_epoch: 0,
            results_return,
            qc: QcScreen::new(),
            backtester: Backtester::default(),
            timeline: Timeline::default(),
            t_s: 0.0,
            reports_done: 0,
            faults,
            in_flight: Vec::new(),
            retries: Vec::new(),
            degradation: 0,
            route_down: false,
            ran,
            ric,
            ric_dropped: std::collections::BTreeSet::new(),
            gateway_cell_partitioned: false,
            deferred_check_since: None,
            wind_len_at_last_detect: 0,
            detections: 0,
            detection_inflation_sum_s: 0.0,
            failovers: 0,
            cfd_triggered: 0,
            cfd_completed: 0,
            cfd_recovered: 0,
            degraded_cycles: 0,
            impaired_since: None,
            impairment_episodes: 0,
            impairment_total_s: 0.0,
            calibration: None,
            obs,
            last_transfer_ms: 0.0,
            window,
            watchdog,
            slo_degradation: 0,
            prev_dropped: 0,
            prev_delivered: 0,
            bundles: Vec::new(),
            last_critical: None,
            events,
            cycle: None,
        })
    }

    /// Assemble the fabric. Construction over fresh in-memory nodes and
    /// the built-in paper topology cannot fail; use [`XgFabric::try_new`]
    /// when building from non-default parts.
    pub fn new(config: FabricConfig) -> Self {
        // xg-lint: allow(panicking-call, documented-infallible convenience constructor; fallible path is try_new)
        Self::try_new(config).expect("construction over fresh in-memory nodes")
    }

    /// The event log so far.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// The most recent CFD summary visible at the field node (what the
    /// site operator's dashboard shows).
    pub fn operator_view(&self) -> Option<ResultSummary> {
        self.results_return.latest()
    }

    /// Back-test the live twin calibration against the accumulated
    /// prediction/measurement history (None before enough CFD runs, or
    /// before the twin is calibrated).
    pub fn backtest_calibration(&self) -> Option<crate::backtest::BacktestReport> {
        self.backtester.backtest(self.calibration?)
    }

    /// Current virtual time (s).
    pub fn now_s(&self) -> f64 {
        self.t_s
    }

    /// Current degradation ladder level.
    pub fn degradation_level(&self) -> u8 {
        self.degradation
    }

    /// The SLO watchdog, when observability is enabled.
    pub fn slo_watchdog(&self) -> Option<&SloWatchdog> {
        self.watchdog.as_ref()
    }

    /// Degradation level the active SLO breaches currently request.
    pub fn slo_degradation_target(&self) -> u8 {
        self.slo_degradation
    }

    /// Black-box bundles dumped so far, in dump order.
    pub fn blackbox_bundles(&self) -> &[PathBuf] {
        &self.bundles
    }

    /// Telemetry records parked at the field gateway.
    pub fn telemetry_backlog(&self) -> usize {
        self.gateway.backlog()
    }

    /// The live multi-cell RAN probe (per-cell goodput and fade state).
    pub fn ran(&self) -> &RanProbe {
        &self.ran
    }

    /// The live near-RT RIC engine, if one is configured.
    pub fn ric(&self) -> Option<&Ric> {
        self.ric.as_ref()
    }

    /// Ground-truth facility access (scenario scripting).
    pub fn facility_mut(&mut self) -> &mut CupsFacility {
        &mut self.net.facility
    }

    /// Inject a screen breach into the ground truth.
    pub fn inject_breach(&mut self, breach: Breach) {
        self.net.facility.add_breach(breach);
    }

    /// Force a weather front on the next report.
    pub fn force_front(&mut self) {
        self.net.force_front();
    }

    /// Run one 300-second report cycle: a compatibility wrapper that
    /// drains the event queue through exactly one report interval. The
    /// cycle's phases are recurring events on the fabric's calendar
    /// queue (see [`FabricPhase`]); [`Advance::advance_to`] is the
    /// primitive.
    pub fn run_report_cycle(&mut self) -> Result<(), FabricError> {
        let interval = SimNs::from_secs_f64(self.config.report_interval_s);
        self.advance_to(self.events.now().saturating_add(interval))
    }

    /// Execute one phase event of the report cycle. Phases of one cycle
    /// instant hand the per-cycle scratch (span clock, QC-passed
    /// records, transfer latency) to each other through `self.cycle`;
    /// `Faults` opens it and `CycleClose` consumes it. A phase that
    /// finds no scratch open (its cycle was aborted by an earlier
    /// phase's error) is a no-op.
    fn run_phase(&mut self, phase: FabricPhase) -> Result<(), FabricError> {
        match phase {
            FabricPhase::Faults => {
                // One wall trace per cycle: phase boundaries are captured
                // as timestamps and flushed into a span tree at cycle
                // close, feeding the profiler's attribution tree and the
                // cycle's critical path.
                let mut cyc = CycleSpans::begin(&self.config.obs);
                self.t_s += self.config.report_interval_s;
                // Faults change state at report-cycle resolution; their
                // downtime accounting inside the plan stays exact
                // regardless.
                let ph = cyc.start();
                let changes = self.faults.advance_to(self.t_s);
                for c in &changes {
                    self.apply_fault(c);
                }
                cyc.end("fabric.faults.advance", ph);
                self.cycle = Some(CycleScratch {
                    cyc,
                    records: Vec::new(),
                    latency_ms: 0.0,
                });
            }
            FabricPhase::RanProbe => {
                // Step the RAN fleet one probe batch: measured per-cell
                // goodput lands on the registry (feeding the SLO window)
                // and the worst cell lands on the timeline, every cycle.
                let Some(mut s) = self.cycle.take() else {
                    return Ok(());
                };
                let ph = s.cyc.start();
                let health = self.ran.probe();
                s.cyc.end("fabric.ran.probe", ph);
                if let Some(worst) = health
                    .iter()
                    .min_by(|a, b| a.goodput_mbps.total_cmp(&b.goodput_mbps))
                {
                    self.timeline.push(Event::RanProbed {
                        t_s: self.t_s,
                        cells: health.len(),
                        worst_cell: worst.name.clone(),
                        worst_goodput_mbps: worst.goodput_mbps,
                    });
                }
                self.cycle = Some(s);
            }
            FabricPhase::RicStep => {
                // Near-RT RIC loop: deliver this cycle's E2 indications
                // (cells that are partitioned, or whose indication stream
                // is dropped by a fault, go stale inside the engine), run
                // the xApps, and apply the conflict-resolved actions to
                // the live fleet — so the control response lands before
                // the next probe batch. The drain itself is pure reads +
                // resets; with zero xApps the whole block emits nothing
                // and the run is bitwise identical to a RIC-less one.
                let Some(mut s) = self.cycle.take() else {
                    return Ok(());
                };
                let ph = s.cyc.start();
                if let Some(ric) = &mut self.ric {
                    let mut fresh = self.ran.collect_indications();
                    let ran = &self.ran;
                    let dropped = &self.ric_dropped;
                    fresh.retain(|ind| match ran.cell_name(ind.cell) {
                        Some(name) => !ran.cell_down(name) && !dropped.contains(name),
                        None => false,
                    });
                    let outcome = ric.step(fresh, self.t_s);
                    if let Some(o) = &self.obs {
                        o.ric_actions.add(outcome.actions.len() as u64);
                        o.ric_held.add(outcome.held as u64);
                        o.ric_stale_cells.set(outcome.stale_cells.len() as f64);
                    }
                    for (xapp, action) in &outcome.actions {
                        // A rejected action (the RAN refused the knob) is
                        // dropped; the xApp re-decides from the next
                        // indication.
                        if self.ran.apply_ric_action(action).is_ok() {
                            self.timeline.push(Event::RicAction {
                                t_s: self.t_s,
                                xapp: (*xapp).to_string(),
                                action: action.describe(),
                            });
                        }
                    }
                }
                s.cyc.end("fabric.ric.step", ph);
                self.cycle = Some(s);
            }
            FabricPhase::SensePoll => {
                let Some(mut s) = self.cycle.take() else {
                    return Ok(());
                };
                let ph = s.cyc.start();
                // Drain the sensor network's own event engine through one
                // report round, then collect what it buffered.
                let next = self
                    .net
                    .now()
                    .saturating_add(SimNs::from_secs_f64(xg_sensors::network::REPORT_INTERVAL_S));
                let _ = self.net.advance_to(next);
                let raw = self.net.take_reports();
                // Quality control before anything becomes a CFD boundary
                // condition (§2's data-calibration concern).
                let (records, _rejected) = self.qc.filter(&raw);
                s.cyc.end("fabric.sense.poll", ph);
                s.records = records;
                self.cycle = Some(s);
            }
            FabricPhase::GatewayShip => {
                let Some(mut s) = self.cycle.take() else {
                    return Ok(());
                };
                let ph = s.cyc.start();
                let cycle = self.gateway.ship_cycle(&s.records)?;
                s.cyc.end("fabric.gateway.ship", ph);
                self.last_transfer_ms = cycle.latency_ms;
                s.latency_ms = cycle.latency_ms;
                if let Some(o) = &self.obs {
                    o.report_cycles.inc();
                }
                self.timeline.push(Event::TelemetryShipped {
                    t_s: self.t_s,
                    latency_ms: cycle.latency_ms,
                    records: s.records.len(),
                });
                self.reports_done += 1;
                self.cycle = Some(s);
            }
            FabricPhase::HpcAdvance => {
                // Advance the HPC side, resubmit lost tasks, absorb
                // completions.
                let Some(mut s) = self.cycle.take() else {
                    return Ok(());
                };
                let ph = s.cyc.start();
                self.hpc.advance_to(self.t_s);
                self.service_retries();
                self.service_completions();
                s.cyc.end("fabric.hpc.advance", ph);
                self.cycle = Some(s);
            }
            FabricPhase::SloObserve => {
                // Measured SLO evaluation before change detection, so
                // this cycle's breach can move the ladder this cycle
                // (within the 300 s duty cycle).
                let Some(mut s) = self.cycle.take() else {
                    return Ok(());
                };
                let ph = s.cyc.start();
                self.observe_cycle(s.latency_ms);
                self.update_degradation(s.records.len());
                s.cyc.end("fabric.slo.observe", ph);
                self.cycle = Some(s);
            }
            FabricPhase::ChangeDetect => {
                // 30-minute change-detection duty cycle, gated on
                // telemetry that actually reached the repository: a
                // partition defers detection instead of re-reading stale
                // windows.
                let Some(mut s) = self.cycle.take() else {
                    return Ok(());
                };
                let ph = s.cyc.start();
                let repo_len = self.gateway.repo_wind_len();
                if self
                    .reports_done
                    .is_multiple_of(self.config.detect_every_reports)
                {
                    if repo_len >= 2 * self.config.detector.window
                        && repo_len
                            >= self.wind_len_at_last_detect + self.config.detect_every_reports
                    {
                        self.run_change_detection(&s.records, repo_len)?;
                    } else if self.gateway.backlog() > 0 && self.deferred_check_since.is_none() {
                        // The duty cycle wanted to run but the partition
                        // starved the repository: start the deferral
                        // clock.
                        self.deferred_check_since = Some(self.t_s);
                    }
                }
                s.cyc.end("fabric.change.detect", ph);
                self.cycle = Some(s);
            }
            FabricPhase::CycleClose => {
                let Some(s) = self.cycle.take() else {
                    return Ok(());
                };
                self.track_impairment();
                self.finish_cycle_profiling(s.cyc);
            }
        }
        Ok(())
    }

    /// Close the cycle's span tree, feed it to the profiler's
    /// attribution tree, and extract this cycle's critical path (emitted
    /// as `fabric.cycle.critical.*` and attached to black-box bundles).
    fn finish_cycle_profiling(&mut self, cyc: CycleSpans) {
        let obs = cyc.obs.clone();
        let Some((trace, spans)) = cyc.flush() else {
            return;
        };
        if let Some(prof) = obs.profiler() {
            prof.record_trace(&spans);
        }
        let Some(path) = extract_critical(&spans, trace) else {
            return;
        };
        if let Some(o) = &self.obs {
            o.critical_total_ms.record(path.total_us as f64 / 1e3);
            o.critical_depth.set(path.depth() as f64);
        }
        if let (Some(reg), Some(leaf)) = (obs.registry(), path.leaf()) {
            // Which stage gated the cycle, and by how much of the cycle:
            // a counter per leaf name (the set of names is the fixed
            // phase list, so cardinality stays bounded) plus its
            // self-time distribution.
            reg.counter(&format!("fabric.cycle.critical.leaf.{}", leaf.name))
                .inc();
            reg.histogram("fabric.cycle.critical.leaf_self_ms")
                .record(leaf.self_us as f64 / 1e3);
        }
        self.last_critical = Some(path);
    }

    /// The most recent report cycle's wall-time critical path (None until
    /// a cycle has run with observability enabled).
    pub fn last_critical(&self) -> Option<&CriticalPath> {
        self.last_critical.as_ref()
    }

    /// Run `n` report cycles (a compatibility wrapper over
    /// [`Advance::advance_to`], like [`XgFabric::run_report_cycle`]).
    pub fn run_cycles(&mut self, n: usize) -> Result<(), FabricError> {
        for _ in 0..n {
            self.run_report_cycle()?;
        }
        Ok(())
    }

    /// Reliability accounting for the run so far.
    pub fn reliability_report(&self) -> ReliabilityReport {
        let horizon = self.t_s;
        // Either the WAN route or the gateway's own cell going down
        // makes the repository unreachable from the field.
        let gateway_cell = self.ran.gateway_cell_name();
        let partition_down_s = self.faults.active_seconds(|k| match k {
            FaultKind::RoutePartition { .. } => true,
            FaultKind::CellPartition { cell } => cell == gateway_cell,
            _ => false,
        });
        let availability = if horizon > 0.0 {
            (1.0 - partition_down_s / horizon).clamp(0.0, 1.0)
        } else {
            1.0
        };
        // Close any still-open impairment episode for reporting.
        let mut episodes = self.impairment_episodes;
        let mut total_s = self.impairment_total_s;
        if let Some(start) = self.impaired_since {
            episodes += 1;
            total_s += self.t_s - start;
        }
        ReliabilityReport {
            horizon_s: horizon,
            availability_experienced: availability,
            records_buffered: self.gateway.buffered(),
            records_dropped: self.gateway.dropped(),
            records_delivered: self.gateway.delivered(),
            max_backlog: self.gateway.max_backlog(),
            final_backlog: self.gateway.backlog(),
            detections: self.detections,
            mean_detection_inflation_s: self.detection_inflation_sum_s
                / f64::from(self.detections.max(1)),
            failovers: self.failovers,
            cfd_triggered: self.cfd_triggered,
            cfd_completed: self.cfd_completed,
            cfd_recovered: self.cfd_recovered,
            degraded_cycles: self.degraded_cycles,
            impairment_episodes: episodes,
            loop_mttr_s: total_s / f64::from(episodes.max(1)),
        }
    }

    fn apply_fault(&mut self, change: &FaultChange) {
        match &change.kind {
            // The WAN route is shared; a partition entry severs both the
            // uplink and the results downlink for every cell.
            FaultKind::RoutePartition { .. } => {
                self.route_down = change.active;
                self.sync_partition();
            }
            FaultKind::PacketLossSurge { loss_prob, .. } => {
                self.gateway
                    .set_loss(if change.active { *loss_prob } else { 0.0 });
            }
            FaultKind::RanDegradation {
                cell,
                snr_offset_db,
            } => {
                let offset = change.active.then_some(*snr_offset_db);
                let known = self.ran.fade(cell, offset);
                // Only the gateway's serving cell carries telemetry; a
                // fade on any other cell stays local to the facilities
                // pinned to it (visible in that cell's probe goodput).
                if known && self.ran.serves_gateway(cell) {
                    self.gateway.set_access_degraded(offset);
                }
            }
            FaultKind::CellPartition { cell } => {
                let known = self.ran.set_cell_down(cell, change.active);
                if known && self.ran.serves_gateway(cell) {
                    self.gateway_cell_partitioned = change.active;
                    self.sync_partition();
                }
            }
            FaultKind::RicIndicationDrop { cell } => {
                if change.active {
                    self.ric_dropped.insert(cell.clone());
                } else {
                    self.ric_dropped.remove(cell);
                }
            }
            FaultKind::HpcSiteOutage { site } => {
                self.hpc.set_site_down(site, change.active);
                if change.active {
                    self.orphan_in_flight_at(&site.clone());
                }
            }
            FaultKind::HpcQueueStall { site } => {
                self.hpc.set_site_stalled(site, change.active);
            }
            FaultKind::SensorDropout { station } => {
                self.net.set_station_down(*station, change.active);
            }
            FaultKind::SensorStuck { station } => {
                self.net.set_station_stuck(*station, change.active);
            }
            FaultKind::StorageAppendFailure { log, failures } => {
                if change.active {
                    if let Ok(l) = self.gateway.repo.log(log) {
                        l.inject_append_failures(*failures);
                    }
                }
            }
            FaultKind::StorageTornWrite { log } => {
                if change.active {
                    if let Ok(l) = self.gateway.repo.log(log) {
                        l.inject_torn_write();
                    }
                }
            }
            FaultKind::StorageSegmentCorrupt { log, segment } => {
                if change.active {
                    if let Ok(l) = self.gateway.repo.log(log) {
                        // Damage is applied (or skipped when no such sealed
                        // segment exists); it surfaces at the next recovery.
                        let _ = l.corrupt_sealed_segment(*segment as usize);
                    }
                }
            }
            FaultKind::StorageSyncStall { log } => {
                if let Ok(l) = self.gateway.repo.log(log) {
                    l.set_sync_stall(change.active);
                }
            }
        }
        self.timeline.push(Event::FaultChanged {
            t_s: self.t_s,
            fault: format!("{:?}", change.kind),
            active: change.active,
        });
        if let Some(rec) = self.config.obs.recorder() {
            rec.note(
                secs_to_us(self.t_s),
                format!(
                    "fault {}: {}",
                    if change.active {
                        "activated"
                    } else {
                        "cleared"
                    },
                    change.kind.describe()
                ),
            );
        }
        // An injected-fault window opening is itself a dump trigger: the
        // bundle captures the loop state the fault is about to distort.
        if change.active {
            self.dump_blackbox(&format!("fault-window: {}", change.kind.describe()));
        }
    }

    /// The telemetry path is severed while either the WAN route or the
    /// gateway's serving cell is down; it heals only when both are back.
    fn sync_partition(&mut self) {
        let down = self.route_down || self.gateway_cell_partitioned;
        self.gateway.set_partitioned(down);
        self.results_return.set_partitioned(down);
    }

    /// Move every task expected to still be running at the dead site into
    /// the retry queue.
    fn orphan_in_flight_at(&mut self, site: &str) {
        let now = self.t_s;
        let mut kept = Vec::new();
        for f in self.in_flight.drain(..) {
            if f.site == site && f.finishes_at > now {
                self.retries.push(RetryCfd {
                    next_try_s: now + Self::backoff_s(f.attempts),
                    from_site: f.site,
                    attempts: f.attempts + 1,
                    pending: f.pending,
                });
            } else {
                kept.push(f);
            }
        }
        self.in_flight = kept;
    }

    /// Capped exponential backoff between failover placement attempts.
    fn backoff_s(attempts: u32) -> f64 {
        (300.0 * 2f64.powi(attempts.min(3) as i32)).min(1800.0)
    }

    fn service_retries(&mut self) {
        let task_runtime = self.config.perf.total_time_s(self.config.cfd_cores);
        let mut waiting = Vec::new();
        for r in std::mem::take(&mut self.retries) {
            if r.next_try_s > self.t_s {
                waiting.push(r);
                continue;
            }
            match self.hpc.submit_task_avoiding(1, task_runtime, &[]) {
                Some(p) => {
                    self.failovers += 1;
                    self.timeline.push(Event::FailoverTriggered {
                        t_s: self.t_s,
                        from_site: r.from_site,
                        to_site: Some(p.site.clone()),
                    });
                    self.in_flight.push(InFlightCfd {
                        pending: r.pending,
                        site: p.site,
                        finishes_at: self.t_s + p.expected_completion_s,
                        attempts: r.attempts,
                    });
                }
                None => {
                    // Every site still unreachable: back off harder.
                    self.timeline.push(Event::FailoverTriggered {
                        t_s: self.t_s,
                        from_site: r.from_site.clone(),
                        to_site: None,
                    });
                    waiting.push(RetryCfd {
                        next_try_s: self.t_s + Self::backoff_s(r.attempts),
                        attempts: r.attempts + 1,
                        ..r
                    });
                }
            }
        }
        self.retries = waiting;
    }

    fn service_completions(&mut self) {
        let now = self.t_s;
        let mut done: Vec<InFlightCfd> = Vec::new();
        let mut running = Vec::new();
        for f in self.in_flight.drain(..) {
            if f.finishes_at <= now {
                done.push(f);
            } else {
                running.push(f);
            }
        }
        self.in_flight = running;
        done.sort_by(|a, b| a.finishes_at.total_cmp(&b.finishes_at));
        for f in done {
            self.cfd_completed += 1;
            if f.attempts > 0 {
                self.cfd_recovered += 1;
            }
            let site = f.site;
            self.execute_cfd(f.pending, f.finishes_at, &site, f.attempts);
        }
    }

    /// Feed this cycle's measurements into the registry, advance the
    /// sliding window, and let the SLO watchdog judge it. Breach and
    /// recovery edges land on the timeline, in the flight recorder, and
    /// (when a `blackbox_dir` is configured) on disk as bundles; the
    /// resulting degradation request feeds [`Self::update_degradation`].
    fn observe_cycle(&mut self, transfer_latency_ms: f64) {
        let Some(o) = &self.obs else { return };
        o.cycle_transfer_ms.record(transfer_latency_ms);
        o.gateway_backlog.set(self.gateway.backlog() as f64);
        let dropped = self.gateway.dropped();
        let delivered = self.gateway.delivered();
        o.gateway_dropped
            .add(dropped.saturating_sub(self.prev_dropped));
        o.gateway_delivered
            .add(delivered.saturating_sub(self.prev_delivered));
        self.prev_dropped = dropped;
        self.prev_delivered = delivered;
        let (Some(window), Some(watchdog)) = (self.window.as_mut(), self.watchdog.as_mut()) else {
            return;
        };
        let Some(reg) = self.config.obs.registry() else {
            return;
        };
        window.tick(reg, self.t_s);
        let events = watchdog.evaluate(self.t_s, &window.view());
        self.slo_degradation = watchdog.degradation_target();
        for ev in events {
            let breached = ev.kind == SloEventKind::Breached;
            if let Some(o) = &self.obs {
                if breached {
                    o.slo_breaches.inc();
                } else {
                    o.slo_recoveries.inc();
                }
            }
            if let Some(rec) = self.config.obs.recorder() {
                rec.note(
                    secs_to_us(self.t_s),
                    format!(
                        "slo {}: {} (value {:.3} vs {:.3}, window {:.0}..{:.0}s)",
                        if breached { "breached" } else { "recovered" },
                        ev.slo,
                        ev.value,
                        ev.threshold,
                        ev.window_from_s,
                        ev.window_to_s,
                    ),
                );
            }
            self.timeline.push(if breached {
                Event::SloBreached {
                    t_s: self.t_s,
                    slo: ev.slo.clone(),
                    value: ev.value,
                    threshold: ev.threshold,
                }
            } else {
                Event::SloRecovered {
                    t_s: self.t_s,
                    slo: ev.slo.clone(),
                    value: ev.value,
                    threshold: ev.threshold,
                }
            });
            let reason = format!(
                "slo-{}: {}",
                if breached { "breach" } else { "recovery" },
                ev.slo
            );
            self.dump_blackbox(&reason);
        }
    }

    /// Dump a black-box bundle if a `blackbox_dir` is configured and the
    /// observability layer is live; failures to write are swallowed (the
    /// black box must never take down the loop it is diagnosing).
    fn dump_blackbox(&mut self, reason: &str) {
        let Some(dir) = &self.config.blackbox_dir else {
            return;
        };
        let Some(rec) = self.config.obs.recorder() else {
            return;
        };
        let snapshot = self.config.obs.registry().map(|r| r.snapshot());
        let breached = self
            .watchdog
            .as_ref()
            .map(|w| w.breached().join("; "))
            .unwrap_or_default();
        let ctx = BundleContext {
            reason: reason.to_string(),
            t_s: self.t_s,
            seed: self.config.seed,
            context: vec![
                ("active_faults".into(), self.faults.describe_active()),
                ("degradation_level".into(), self.degradation.to_string()),
                ("breached_slos".into(), breached),
                ("gateway_backlog".into(), self.gateway.backlog().to_string()),
            ],
            profile: self.config.obs.profiler().map(|p| p.snapshot()),
            critical: self.last_critical.clone(),
        };
        if let Ok(path) = dump_bundle(dir, rec, snapshot.as_ref(), &ctx) {
            self.bundles.push(path);
        }
    }

    /// Degradation ladder: level 1 once the loop runs ~2 cycles behind
    /// (or a CFD task waits on failover), level 2 once it is badly
    /// behind. The measured side raises it further: the ladder runs at
    /// the max of the backlog level and whatever the active SLO breaches
    /// request, so a latency collapse that creates *no* backlog (a RAN
    /// fade: every record still delivers, slowly) still degrades the CFD.
    fn update_degradation(&mut self, records_per_cycle: usize) {
        let cycles_behind = self.gateway.backlog() / records_per_cycle.max(1);
        let backlog_level = if cycles_behind >= 6 {
            2
        } else if cycles_behind >= 2 || !self.retries.is_empty() {
            1
        } else {
            0
        };
        let level = backlog_level.max(self.slo_degradation);
        if level != self.degradation {
            self.degradation = level;
            if let Some(o) = &self.obs {
                o.degradation_transitions.inc();
                o.degradation_level.set(f64::from(level));
            }
            if let Some(rec) = self.config.obs.recorder() {
                rec.note(
                    secs_to_us(self.t_s),
                    format!(
                        "degradation -> level {level} (backlog level {backlog_level}, slo level {})",
                        self.slo_degradation
                    ),
                );
            }
            self.timeline.push(Event::DegradationChanged {
                t_s: self.t_s,
                level,
            });
        }
        if level > 0 {
            self.degraded_cycles += 1;
        }
    }

    /// CFD resolution for a run triggered now: full resolution at level 0,
    /// 3/4-per-axis (≈42% of the cells) once degraded.
    fn effective_resolution(&self) -> ([usize; 3], usize) {
        if self.degradation >= 1 {
            let c = self.config.cfd_cells;
            (
                [
                    (c[0] * 3 / 4).max(4),
                    (c[1] * 3 / 4).max(4),
                    (c[2] * 3 / 4).max(3),
                ],
                (self.config.cfd_steps * 3 / 4).max(10),
            )
        } else {
            (self.config.cfd_cells, self.config.cfd_steps)
        }
    }

    /// An impairment episode runs from the first cycle where the loop is
    /// visibly hurt (route down, telemetry parked, or a CFD task waiting
    /// on failover) until everything is clean again.
    fn track_impairment(&mut self) {
        let impaired = self.route_down
            || self.gateway_cell_partitioned
            || self.gateway.backlog() > 0
            || !self.retries.is_empty();
        match (self.impaired_since, impaired) {
            (None, true) => self.impaired_since = Some(self.t_s),
            (Some(start), false) => {
                self.impairment_episodes += 1;
                self.impairment_total_s += self.t_s - start;
                self.impaired_since = None;
            }
            _ => {}
        }
    }

    fn run_change_detection(
        &mut self,
        records: &[TelemetryRecord],
        repo_len: usize,
    ) -> Result<(), FabricError> {
        // Build the two windows from the repository's wind log and feed
        // them through the deployed Laminar change-detection graph — the
        // program §3.7 runs at UCSB on a 30-minute duty cycle.
        let window = self.config.detector.window;
        let history = self.gateway.wind_history(2 * window)?;
        if history.len() < 2 * window {
            return Ok(());
        }
        let (prev, recent) = history.split_at(window);
        self.detect_epoch += 1;
        let epoch = self.detect_epoch;
        self.laminar
            .inject("prev_window", epoch, Value::F64Vec(prev.to_vec()))?;
        self.laminar
            .inject("recent_window", epoch, Value::F64Vec(recent.to_vec()))?;
        let changed = self
            .laminar
            .read("detect", epoch)?
            .and_then(|v| v.as_bool())
            .unwrap_or(false);
        // Votes are recomputed for the timeline detail (the Laminar node
        // returns only the arbitration outcome, as in the paper).
        let vote = self.config.detector.evaluate_windows(prev, recent);
        debug_assert_eq!(changed, vote.changed, "Laminar and direct paths agree");
        self.detections += 1;
        self.wind_len_at_last_detect = repo_len;
        // Inflation: how long the duty cycle sat deferred behind a
        // partition before this check could finally run (0 on a healthy
        // link).
        let inflation_s = self
            .deferred_check_since
            .take()
            .map(|since| (self.t_s - since).max(0.0))
            .unwrap_or(0.0);
        self.detection_inflation_sum_s += inflation_s;
        self.timeline.push(Event::ChangeChecked {
            t_s: self.t_s,
            changed,
            votes: vote.votes,
        });
        if !changed {
            return Ok(());
        }
        // Trigger: Eqs. (1)-(4), then a CFD task sized to the telemetry
        // volume of one detection window, placed at the best reachable
        // site. The degradation ladder decides the solve resolution now,
        // at trigger time.
        let data_bytes =
            (records.len() * TelemetryRecord::WIRE_SIZE * self.config.detect_every_reports) as f64;
        let task_runtime = self.config.perf.total_time_s(self.config.cfd_cores);
        let Some(bc) = self.net.boundary_conditions(records) else {
            return Ok(());
        };
        let (cells, steps) = self.effective_resolution();
        // Open the closed-loop trace: the transfer that carried the
        // triggering window, then the detection that fired. The CFD
        // stages chain onto the detection span when the run completes.
        let trace = self.config.obs.tracer().map(|tr| {
            let trace = tr.new_trace();
            let transfer_end_s = self.t_s + self.last_transfer_ms / 1e3;
            let transfer = tr.record_sim_s(
                trace,
                None,
                "telemetry.transfer",
                self.t_s,
                transfer_end_s,
                vec![("records".into(), records.len().to_string())],
            );
            let detect = tr.record_sim_s(
                trace,
                Some(transfer),
                "change.detection",
                transfer_end_s,
                transfer_end_s + inflation_s,
                vec![
                    ("votes".into(), vote.votes.to_string()),
                    ("deferred_s".into(), format!("{inflation_s:.0}")),
                ],
            );
            (trace, detect)
        });
        let pending = PendingCfd {
            trigger_t_s: self.t_s,
            bc,
            interior: self.interior_measurements(records),
            cells,
            steps,
            trace,
        };
        self.cfd_triggered += 1;
        match self
            .hpc
            .submit_task_with_data(1, task_runtime, data_bytes, &[])
        {
            Some((placement, decision)) => {
                self.timeline.push(Event::PilotEvaluated {
                    t_s: self.t_s,
                    n_required: decision.n_required,
                    n_available: decision.n_available,
                    submitted: decision.submitted.is_some(),
                });
                self.in_flight.push(InFlightCfd {
                    pending,
                    site: placement.site,
                    finishes_at: self.t_s + placement.expected_completion_s,
                    attempts: 0,
                });
            }
            None => {
                // Every site offline at trigger time: park the task in
                // the failover queue instead of dropping the trigger.
                self.retries.push(RetryCfd {
                    pending,
                    from_site: self.config.site.name.clone(),
                    attempts: 1,
                    next_try_s: self.t_s + Self::backoff_s(0),
                });
            }
        }
        Ok(())
    }

    fn interior_measurements(&self, records: &[TelemetryRecord]) -> Vec<Measurement> {
        records
            .iter()
            .filter_map(|r| {
                let (x, y, interior) = self.net.station_position(r.station_id)?;
                if !interior {
                    return None;
                }
                Some(Measurement {
                    x,
                    y,
                    z: 4.0,
                    wind_ms: r.wind_speed_ms,
                })
            })
            .collect()
    }

    fn execute_cfd(&mut self, pending: PendingCfd, finished_at: f64, site: &str, attempts: u32) {
        // Predicted field: always intact-screen boundary conditions — the
        // twin detects breaches as measurement/model divergence.
        let spec = DomainSpec::cups_default().with_cells(
            pending.cells[0],
            pending.cells[1],
            pending.cells[2],
        );
        let mesh = Mesh::generate(&spec);
        let bc = BoundarySpec::intact(
            pending.bc.wind_speed_ms,
            pending.bc.wind_dir_deg,
            pending.bc.ambient_temp_c,
        );
        let mut sim = Simulation::new(mesh, bc, SolverConfig::default());
        sim.set_obs(&self.config.obs);
        sim.run(pending.steps);
        let model_runtime = self.config.perf.total_time_s(self.config.cfd_cores);
        let window_s = self.config.report_interval_s * self.config.detect_every_reports as f64;
        // Close out the trace's HPC stages: expected completion minus the
        // modelled runtime is queue wait masked (or not) by warm pilots.
        let return_parent = self.config.obs.tracer().and_then(|tr| {
            let (trace, detect) = pending.trace?;
            let solve_start = (finished_at - model_runtime).max(pending.trigger_t_s);
            let qm = tr.record_sim_s(
                trace,
                Some(detect),
                "hpc.queue_mask",
                pending.trigger_t_s,
                solve_start,
                vec![
                    ("site".into(), site.to_string()),
                    ("attempts".into(), attempts.to_string()),
                ],
            );
            let cfd = tr.record_sim_s(
                trace,
                Some(qm),
                "cfd.solve",
                solve_start,
                finished_at,
                vec![
                    (
                        "cells".into(),
                        format!(
                            "{}x{}x{}",
                            pending.cells[0], pending.cells[1], pending.cells[2]
                        ),
                    ),
                    ("steps".into(), pending.steps.to_string()),
                ],
            );
            Some((trace, cfd))
        });
        self.timeline.push(Event::CfdCompleted {
            t_s: finished_at,
            model_runtime_s: model_runtime,
            predicted_interior_wind: sim.mean_interior_wind(),
            validity_s: (window_s - model_runtime).max(0.0),
        });
        // Return the result summary to the site operator over the 5G
        // downlink (breach status is refined below; the operator gets the
        // headline numbers immediately). At degradation level 2 this
        // non-critical return is skipped to shed load.
        if self.degradation < 2 {
            if let Ok(latency_ms) = self.results_return.deliver(&ResultSummary {
                t_s: finished_at,
                predicted_wind_ms: sim.mean_interior_wind(),
                validity_s: (window_s - model_runtime).max(0.0),
                breach_suspected: false,
            }) {
                if let (Some(tr), Some((trace, cfd))) = (self.config.obs.tracer(), return_parent) {
                    tr.record_sim_s(
                        trace,
                        Some(cfd),
                        "results.return",
                        finished_at,
                        finished_at + latency_ms / 1e3,
                        Vec::new(),
                    );
                }
                self.timeline.push(Event::ResultsReturned {
                    t_s: finished_at,
                    latency_ms,
                });
            }
        }
        // Twin comparison with first-run calibration.
        // Feed the back-tester with the raw (predicted, measured) pair so
        // calibration drift is observable over time (§2's back-testing).
        if !pending.interior.is_empty() {
            let mean_meas = pending.interior.iter().map(|m| m.wind_ms).sum::<f64>()
                / pending.interior.len() as f64;
            self.backtester.record(CalibrationSample {
                t_s: finished_at,
                predicted_ms: sim.mean_interior_wind(),
                measured_ms: mean_meas,
            });
        }
        let cal = self.calibration;
        let measurements: Vec<Measurement> = match cal {
            None => {
                // Calibrate: align predicted with measured means, assume
                // the screen intact on the first run.
                let mean_meas = pending.interior.iter().map(|m| m.wind_ms).sum::<f64>()
                    / pending.interior.len().max(1) as f64;
                let mean_pred = sim.mean_interior_wind().max(1e-9);
                self.calibration = Some(mean_meas / mean_pred);
                return;
            }
            Some(c) => pending
                .interior
                .iter()
                .map(|m| Measurement {
                    wind_ms: m.wind_ms / c.max(1e-9),
                    ..*m
                })
                .collect(),
        };
        // Candidate breach sites: every panel centre of every wall.
        let facility = &self.net.facility;
        let candidates: Vec<(f64, f64)> = xg_sensors::facility::Wall::all()
            .into_iter()
            .flat_map(|wall| (0..facility.panels_per_wall).map(move |p| (wall, p)))
            .map(|(wall, p)| facility.panel_center(wall, p))
            .collect();
        // Intervention advisory from this CFD result (§5 future work 3).
        if let Some(state) = self.net.current_state() {
            let conditions = SiteConditions {
                ambient_temp_c: state.temp_c,
                // Simple overnight forecast: diurnal trough ~9°C below the
                // current reading.
                forecast_min_temp_c: state.temp_c - 9.0,
                rel_humidity: state.rel_humidity,
            };
            for advice in self.advisor.advise(&sim, &conditions) {
                let summary = match advice {
                    Intervention::FrostProtection {
                        predicted_canopy_min_c,
                        lead_s,
                    } => format!(
                        "frost protection: canopy min {predicted_canopy_min_c:.1} C, start {:.0} min early",
                        lead_s / 60.0
                    ),
                    Intervention::SprayWindow {
                        interior_wind_ms, ..
                    } => format!("spray window open (canopy wind {interior_wind_ms:.2} m/s)"),
                    Intervention::SprayHold { reason } => format!("spray hold: {reason}"),
                };
                self.timeline.push(Event::AdvisoryIssued {
                    t_s: finished_at,
                    summary,
                });
            }
        }
        if let Some(report) =
            self.config
                .twin
                .compare_with_candidates(&sim, &measurements, &candidates)
        {
            self.timeline.push(Event::TwinCompared {
                t_s: finished_at,
                max_residual_ms: report.max_residual_ms,
                breach_suspected: report.breach_suspected,
            });
            if let Some(region) = report.suspect_region {
                let robot_report =
                    self.robot
                        .dispatch_planned(region, &self.net.facility, &self.planner);
                self.timeline.push(Event::RobotDispatched {
                    t_s: finished_at + robot_report.mission_s,
                    mission_s: robot_report.mission_s,
                    confirmed: robot_report.breach_confirmed,
                });
            }
        }
    }
}

impl Advance for XgFabric {
    type Error = FabricError;

    fn now(&self) -> SimNs {
        self.events.now()
    }

    /// Drain every phase event due at or before `t`. Each popped phase
    /// re-arms itself one report interval ahead *before* running, so a
    /// handler error (a gateway refusal, a failed detection) leaves the
    /// schedule intact and the caller can resume by advancing again.
    fn advance_to(&mut self, t: SimNs) -> std::result::Result<(), FabricError> {
        let interval = SimNs::from_secs_f64(self.config.report_interval_s);
        while let Some(ev) = self.events.pop_due(t) {
            self.events
                .push(ev.at.saturating_add(interval), ev.source, ev.payload);
            self.run_phase(ev.payload)?;
        }
        self.events.drain_clock_to(t);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_cspot::outage::OutageConfig;
    use xg_sensors::facility::Wall;

    fn fast_config(seed: u64) -> FabricConfig {
        FabricConfig {
            seed,
            cfd_cells: [14, 12, 5],
            cfd_steps: 25,
            ..Default::default()
        }
    }

    #[test]
    fn obs_traces_full_closed_loop_cycle() {
        let obs = Obs::enabled();
        let mut fab = XgFabric::new(FabricConfig {
            obs: obs.clone(),
            ..fast_config(3)
        });
        fab.run_cycles(12).unwrap();
        fab.force_front();
        fab.run_cycles(12).unwrap();
        assert!(fab.timeline().cfd_runs() >= 1, "CFD must have run");
        let spans = obs.tracer().unwrap().spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        for stage in [
            "telemetry.transfer",
            "change.detection",
            "hpc.queue_mask",
            "cfd.solve",
            "results.return",
        ] {
            assert!(names.contains(&stage), "missing {stage}: {names:?}");
        }
        // The stages chain causally back from the results return.
        let ret = spans.iter().find(|s| s.name == "results.return").unwrap();
        let cfd = spans.iter().find(|s| Some(s.id) == ret.parent).unwrap();
        assert_eq!(cfd.name, "cfd.solve");
        let qm = spans.iter().find(|s| Some(s.id) == cfd.parent).unwrap();
        assert_eq!(qm.name, "hpc.queue_mask");
        let det = spans.iter().find(|s| Some(s.id) == qm.parent).unwrap();
        assert_eq!(det.name, "change.detection");
        let xfer = spans.iter().find(|s| Some(s.id) == det.parent).unwrap();
        assert_eq!(xfer.name, "telemetry.transfer");
        assert_eq!(xfer.trace, ret.trace, "one trace per closed-loop cycle");
        // §4.4 dominance: the CFD solve dwarfs the transfer; queueing is
        // fully masked on an idle cluster with a warm pilot.
        assert!(cfd.duration_s() > 100.0 * xfer.duration_s());
        assert!(qm.duration_s() < 1.0, "warm pilot masks the queue");
        // Metrics flowed from every instrumented layer below the fabric.
        let reg = obs.registry().unwrap();
        assert_eq!(reg.counter("fabric.report_cycles").get(), 24);
        assert!(reg.histogram("cspot.append.total_ms").count() > 0);
        assert!(reg.histogram("cfd.step.wall_ms").count() > 0);
    }

    #[test]
    fn zero_xapp_ric_is_a_bitwise_noop() {
        // Collecting indications must not perturb anything: a run with a
        // RIC that has no xApps produces the exact same timeline as a
        // RIC-less run of the same seed.
        let mut without = XgFabric::new(fast_config(6));
        let mut with_ric = XgFabric::new(FabricConfig {
            ric: Some(Ric::new(6, 300.0)),
            ..fast_config(6)
        });
        without.run_cycles(8).unwrap();
        with_ric.run_cycles(8).unwrap();
        assert_eq!(without.timeline(), with_ric.timeline());
        assert_eq!(with_ric.ric().unwrap().periods(), 8);
        assert_eq!(with_ric.timeline().ric_actions(), 0);
    }

    #[test]
    fn telemetry_flows_every_cycle() {
        let mut fab = XgFabric::new(fast_config(1));
        fab.run_cycles(4).unwrap();
        let latencies = fab.timeline().telemetry_latencies_ms();
        assert_eq!(latencies.len(), 4);
        assert!(latencies.iter().all(|&l| l > 0.0 && l < 10_000.0));
        assert!((fab.now_s() - 1200.0).abs() < 1e-9);
        let rel = fab.reliability_report();
        assert!(rel.lossless());
        assert_eq!(rel.availability_experienced, 1.0);
        assert_eq!(rel.final_backlog, 0);
    }

    #[test]
    fn stable_weather_rarely_triggers() {
        let mut fab = XgFabric::new(fast_config(2));
        // 24 cycles = 2 hours = 4 detection checks (first at 60 min once
        // 12 samples exist).
        fab.run_cycles(24).unwrap();
        let checks = fab
            .timeline()
            .count(|e| matches!(e, Event::ChangeChecked { .. }));
        assert!(checks >= 2, "detector must have run: {checks}");
        // Noise alone should not burn HPC time on most checks.
        assert!(
            fab.timeline().changes_detected() <= checks / 2,
            "too many false triggers: {} of {checks}",
            fab.timeline().changes_detected()
        );
    }

    #[test]
    fn front_triggers_cfd_and_validity_budget() {
        let mut fab = XgFabric::new(fast_config(3));
        fab.run_cycles(12).unwrap(); // build history
        fab.force_front();
        fab.run_cycles(12).unwrap(); // detect + run CFD
        assert!(
            fab.timeline().changes_detected() >= 1,
            "front must be detected"
        );
        assert!(fab.timeline().cfd_runs() >= 1, "CFD must have run");
        // §4.4 budget: ~7 min runtime, ≥ 23 min validity.
        for e in &fab.timeline().events {
            if let Event::CfdCompleted {
                model_runtime_s,
                validity_s,
                ..
            } = e
            {
                assert!(
                    (300.0..600.0).contains(model_runtime_s),
                    "{model_runtime_s}"
                );
                assert!(*validity_s >= 1200.0, "validity {validity_s}");
            }
        }
    }

    #[test]
    fn breach_detected_and_robot_confirms() {
        let mut fab = XgFabric::new(fast_config(4));
        // Build history and calibrate the twin with one intact-run trigger.
        fab.run_cycles(12).unwrap();
        fab.force_front();
        fab.run_cycles(12).unwrap();
        assert!(fab.timeline().cfd_runs() >= 1, "calibration run needed");
        // Now tear the screen; the breach jet both shifts the wind
        // statistics (triggering detection) and diverges from the intact
        // prediction (twin flags it).
        fab.inject_breach(Breach::new(Wall::West, 5, 12.0));
        fab.force_front();
        fab.run_cycles(18).unwrap();
        let suspected = fab.timeline().count(|e| {
            matches!(
                e,
                Event::TwinCompared {
                    breach_suspected: true,
                    ..
                }
            )
        });
        assert!(suspected >= 1, "twin must flag the breach");
        assert!(fab.timeline().breach_confirmed(), "robot must confirm");
    }

    #[test]
    fn pilot_decisions_recorded() {
        let mut fab = XgFabric::new(fast_config(5));
        fab.run_cycles(12).unwrap();
        fab.force_front();
        fab.run_cycles(12).unwrap();
        let evals = fab
            .timeline()
            .count(|e| matches!(e, Event::PilotEvaluated { .. }));
        assert!(evals >= 1);
        for e in &fab.timeline().events {
            if let Event::PilotEvaluated { n_required, .. } = e {
                assert!(*n_required >= 1);
            }
        }
    }

    #[test]
    fn partition_defers_detection_instead_of_rereading_stale_windows() {
        // A 30-minute partition: telemetry parks, the duty cycle that
        // lands inside the outage is skipped (no fresh repository data),
        // and everything drains after the heal with zero loss.
        let faults = FaultPlan::builder(7)
            .scripted(
                3_600.0,
                1_800.0,
                FaultKind::RoutePartition {
                    from: "UNL-5G".into(),
                    to: "UCSB".into(),
                },
            )
            .build();
        let mut fab = XgFabric::new(FabricConfig {
            faults,
            ..fast_config(7)
        });
        fab.run_cycles(24).unwrap();
        let rel = fab.reliability_report();
        assert!(rel.lossless(), "partition must not lose telemetry: {rel}");
        assert_eq!(rel.records_dropped, 0);
        assert_eq!(rel.final_backlog, 0, "backlog drained after heal");
        assert!(rel.max_backlog > 0, "partition must have parked records");
        let expected_avail = 1.0 - 1_800.0 / fab.now_s();
        assert!((rel.availability_experienced - expected_avail).abs() < 1e-9);
        assert!(rel.impairment_episodes >= 1);
        assert!(rel.loop_mttr_s > 0.0);
        assert!(fab.timeline().fault_activations() >= 1);
    }

    #[test]
    fn stochastic_partition_availability_matches_outage_config() {
        // Acceptance: run under a seeded stochastic 5G outage process and
        // require the experienced availability within 2 points of the
        // analytic mtbf/(mtbf+mttr).
        let cfg = OutageConfig {
            mtbf_s: 5_400.0,
            mttr_s: 900.0,
        };
        let faults = FaultPlan::builder(11)
            .stochastic(
                cfg,
                FaultKind::RoutePartition {
                    from: "UNL-5G".into(),
                    to: "UCSB".into(),
                },
            )
            .build();
        let mut fab = XgFabric::new(FabricConfig {
            faults,
            // Keep CFD out of the way; this test is about the 5G path.
            detector: ChangeDetector::default(),
            ..fast_config(11)
        });
        fab.run_cycles(2_000).unwrap(); // ~1 week of virtual time
        let rel = fab.reliability_report();
        assert!(
            (rel.availability_experienced - cfg.availability()).abs() < 0.02,
            "experienced {} vs analytic {}",
            rel.availability_experienced,
            cfg.availability()
        );
        assert_eq!(rel.records_dropped, 0, "no loss under generous capacity");
        assert!(rel.mean_detection_inflation_s >= 0.0);
    }

    #[test]
    fn site_outage_fails_over_and_cfd_still_completes() {
        // Primary dies right after the first trigger window opens; the
        // failover layer must resubmit to ANVIL and the CFD must finish.
        let faults = FaultPlan::builder(13)
            .scripted(
                3_600.0,
                4.0 * 3_600.0,
                FaultKind::HpcSiteOutage {
                    site: "ND-CRC".into(),
                },
            )
            .build();
        let mut fab = XgFabric::new(FabricConfig {
            faults,
            failover_sites: vec![SiteProfile::anvil()],
            ..fast_config(13)
        });
        fab.run_cycles(12).unwrap();
        fab.force_front();
        fab.run_cycles(24).unwrap();
        let rel = fab.reliability_report();
        assert!(rel.cfd_triggered >= 1, "front must trigger: {rel}");
        assert!(rel.cfd_completed >= 1, "CFD must complete despite outage");
        // The trigger lands while ND-CRC is down, so the placement goes
        // to the surviving site.
        let placed_on_anvil = fab.timeline().events.iter().any(
            |e| matches!(e, Event::FailoverTriggered { to_site: Some(s), .. } if s == "ANVIL"),
        );
        let all_completed_somewhere = rel.cfd_completed == rel.cfd_triggered;
        assert!(
            placed_on_anvil || all_completed_somewhere,
            "failover must keep the pipeline alive: {rel}"
        );
    }

    #[test]
    fn mid_pilot_outage_triggers_failover_resubmission() {
        // Force the CFD to be in flight at its site when that site dies:
        // with both sites healthy the router picks ANVIL (faster), so the
        // outage targets ANVIL 100 s after the t=5400 trigger, well
        // before the ~7-minute completion.
        let faults = FaultPlan::builder(17)
            .scripted(
                5_500.0,
                3.0 * 3_600.0,
                FaultKind::HpcSiteOutage {
                    site: "ANVIL".into(),
                },
            )
            .build();
        let mut fab = XgFabric::new(FabricConfig {
            faults,
            failover_sites: vec![SiteProfile::anvil()],
            ..fast_config(3) // seed 3 triggers at t=5400 (see front test)
        });
        fab.run_cycles(12).unwrap();
        fab.force_front();
        fab.run_cycles(24).unwrap();
        let rel = fab.reliability_report();
        assert!(rel.failovers >= 1, "in-flight task must fail over: {rel}");
        assert!(rel.cfd_recovered >= 1, "recovered CFD must complete: {rel}");
        assert!(fab.timeline().failovers() >= 1);
    }

    #[test]
    fn long_partition_degrades_then_recovers() {
        // A 2-hour outage: the ladder must leave nominal while the
        // backlog grows and return to nominal after the heal.
        let faults = FaultPlan::builder(19)
            .scripted(
                1_800.0,
                7_200.0,
                FaultKind::RoutePartition {
                    from: "UNL-5G".into(),
                    to: "UCSB".into(),
                },
            )
            .build();
        let mut fab = XgFabric::new(FabricConfig {
            faults,
            ..fast_config(19)
        });
        fab.run_cycles(40).unwrap();
        let rel = fab.reliability_report();
        assert!(rel.degraded_cycles >= 1, "ladder must engage: {rel}");
        assert_eq!(fab.degradation_level(), 0, "recovered to nominal");
        assert!(rel.lossless());
        let level_changes = fab
            .timeline()
            .count(|e| matches!(e, Event::DegradationChanged { .. }));
        assert!(level_changes >= 2, "up and back down");
    }

    #[test]
    fn ran_collapse_degrades_via_slo_watchdog_without_backlog() {
        // A *moderate* RAN fade (HARQ still recovers every transport
        // block) multiplies per-append transfer latency ~8x but every
        // record still delivers inside its 300 s cycle: the backlog-based
        // ladder sees nothing. Only the measured p99 SLO can notice — the
        // ladder must rise on the watchdog's breach and return after the
        // recovery hysteresis.
        let faults = FaultPlan::builder(29)
            .scripted(
                1_800.0,
                3_600.0,
                FaultKind::RanDegradation {
                    cell: "UNL-5G".into(),
                    snr_offset_db: -12.0,
                },
            )
            .build();
        let obs = Obs::enabled();
        let mut fab = XgFabric::new(FabricConfig {
            faults,
            obs: obs.clone(),
            // Small window + tight hysteresis so breach and recovery both
            // land inside a short run.
            slo_window: WindowConfig {
                interval_s: 300.0,
                intervals: 3,
            },
            slo_hysteresis: Hysteresis {
                breach_after: 2,
                clear_after: 2,
            },
            ..fast_config(29)
        });
        let mut saw_level1_with_empty_backlog = false;
        let mut max_backlog = 0;
        for _ in 0..40 {
            fab.run_report_cycle().unwrap();
            max_backlog = max_backlog.max(fab.telemetry_backlog());
            if fab.degradation_level() >= 1 && fab.telemetry_backlog() == 0 {
                saw_level1_with_empty_backlog = true;
            }
        }
        assert_eq!(max_backlog, 0, "a RAN fade must not park telemetry");
        assert!(
            saw_level1_with_empty_backlog,
            "ladder must rise on the SLO breach alone"
        );
        assert_eq!(fab.degradation_level(), 0, "recovered after the window");
        assert!(fab.timeline().slo_breaches() >= 1);
        assert!(fab.timeline().slo_recoveries() >= 1);
        let wd = fab.slo_watchdog().unwrap();
        assert!(wd.breach_events() >= 1 && wd.recovery_events() >= 1);
        assert_eq!(fab.slo_degradation_target(), 0);
        // The breach/recovery edges were counted on the registry and the
        // flight recorder holds the annotated story.
        let reg = obs.registry().unwrap();
        assert!(reg.counter("fabric.slo.breaches").get() >= 1);
        assert!(reg.counter("fabric.slo.recoveries").get() >= 1);
        let notes = obs.recorder().unwrap().notes();
        assert!(notes.iter().any(|(_, n)| n.contains("slo breached")));
        assert!(notes
            .iter()
            .any(|(_, n)| n.contains("degradation -> level 1")));
        assert!(notes.iter().any(|(_, n)| n.contains("ran-degradation")));
    }

    #[test]
    fn sensor_and_storage_faults_do_not_panic_the_loop() {
        let faults = FaultPlan::builder(23)
            .scripted(900.0, 3_600.0, FaultKind::SensorDropout { station: 0 })
            .scripted(1_200.0, 3_600.0, FaultKind::SensorStuck { station: 3 })
            .scripted(
                1_500.0,
                300.0,
                FaultKind::StorageAppendFailure {
                    log: crate::pipeline::TELEMETRY_LOG.into(),
                    failures: 3,
                },
            )
            .scripted(
                2_400.0,
                1_200.0,
                FaultKind::PacketLossSurge {
                    from: "UNL-5G".into(),
                    to: "UCSB".into(),
                    loss_prob: 0.4,
                },
            )
            .scripted(
                3_000.0,
                600.0,
                FaultKind::RanDegradation {
                    cell: "UNL-5G".into(),
                    snr_offset_db: -25.0,
                },
            )
            .build();
        let mut fab = XgFabric::new(FabricConfig {
            faults,
            ..fast_config(23)
        });
        fab.run_cycles(24).unwrap();
        let rel = fab.reliability_report();
        // Storage/loss faults delay but must not lose buffered telemetry.
        assert!(rel.lossless(), "{rel}");
        assert!(fab.timeline().fault_activations() >= 5);
    }
}
