//! The xGFabric closed loop.
//!
//! [`XgFabric`] advances the whole system on the paper's duty cycles:
//!
//! * every **300 s** the stations report and the records ship over
//!   5G + Internet into the UCSB repository;
//! * every **30 min** (6 reports) the Laminar change detector compares the
//!   two most recent 30-minute windows; a statistically measurable change
//!   triggers the Pilot controller (Eqs. 1–4) and a CFD task;
//! * CFD tasks complete inside active pilots after the modelled 64-core
//!   runtime (~7 min); on completion the **actual** solver runs at reduced
//!   resolution, the digital twin compares prediction with measurement
//!   (after a first-run calibration, as §2 prescribes), and a suspected
//!   breach dispatches the Farm-NG robot.
//!
//! All time is virtual; nothing sleeps.

use crate::backtest::{Backtester, CalibrationSample};
use crate::intervention::{Intervention, InterventionAdvisor, SiteConditions};
use crate::pipeline::{ResultSummary, ResultsReturn, TelemetryPipeline};
use crate::robot::Robot;
use crate::route::RoutePlanner;
use crate::timeline::{Event, Timeline};
use std::sync::Arc;
use xg_cfd::boundary::BoundarySpec;
use xg_cfd::mesh::{DomainSpec, Mesh};
use xg_cfd::parallel::CfdPerfModel;
use xg_cfd::solver::{Simulation, SolverConfig};
use xg_cfd::twin::{DigitalTwin, Measurement};
use xg_cspot::netsim::SimClock;
use xg_cspot::node::CspotNode;
use xg_hpc::pilot::{PilotController, PilotControllerConfig};
use xg_hpc::site::SiteProfile;
use xg_laminar::change::{build_change_graph, ChangeDetector};
use xg_laminar::runtime::LaminarRuntime;
use xg_laminar::value::Value;
use xg_sensors::breach::Breach;
use xg_sensors::facility::CupsFacility;
use xg_sensors::network::{BoundaryConditions, SensorNetwork};
use xg_sensors::qc::QcScreen;
use xg_sensors::telemetry::TelemetryRecord;

/// Full-fabric configuration.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// RNG seed for every stochastic component.
    pub seed: u64,
    /// Telemetry reporting interval (s).
    pub report_interval_s: f64,
    /// Reports per change-detection duty cycle (paper: 6 = 30 min).
    pub detect_every_reports: usize,
    /// The change detector.
    pub detector: ChangeDetector,
    /// The HPC site running the CFD.
    pub site: SiteProfile,
    /// Whether the site's queue carries background load.
    pub busy_cluster: bool,
    /// Actual CFD resolution for the in-loop solves.
    pub cfd_cells: [usize; 3],
    /// Actual CFD steps per solve.
    pub cfd_steps: usize,
    /// Paper-scale performance model (task runtimes, Fig. 7).
    pub perf: CfdPerfModel,
    /// Cores assumed for the in-loop CFD tasks.
    pub cfd_cores: u32,
    /// The digital twin comparator.
    pub twin: DigitalTwin,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            seed: 42,
            report_interval_s: 300.0,
            detect_every_reports: 6,
            detector: ChangeDetector::default(),
            site: SiteProfile::notre_dame_crc(),
            busy_cluster: false,
            cfd_cells: [20, 16, 6],
            cfd_steps: 40,
            perf: CfdPerfModel::notre_dame(),
            cfd_cores: 64,
            twin: DigitalTwin::default(),
        }
    }
}

struct PendingCfd {
    trigger_t_s: f64,
    bc: BoundaryConditions,
    interior: Vec<Measurement>,
}

/// The orchestrated end-to-end system.
pub struct XgFabric {
    /// Configuration.
    pub config: FabricConfig,
    net: SensorNetwork,
    pipeline: TelemetryPipeline,
    pilot: PilotController,
    robot: Robot,
    planner: RoutePlanner,
    advisor: InterventionAdvisor,
    /// The §3.7 change-detection program, deployed as a real Laminar
    /// dataflow on the repository's CSPOT node.
    laminar: LaminarRuntime,
    detect_epoch: u64,
    results_return: ResultsReturn,
    qc: QcScreen,
    backtester: Backtester,
    timeline: Timeline,
    t_s: f64,
    reports_done: usize,
    pending_cfd: Vec<PendingCfd>,
    tasks_processed: usize,
    /// Twin calibration factor (measured/predicted), set by the first
    /// completed comparison ("once the model is calibrated", §2).
    calibration: Option<f64>,
}

impl XgFabric {
    /// Assemble the fabric.
    pub fn new(config: FabricConfig) -> Self {
        let facility = CupsFacility::default();
        let net = SensorNetwork::cups_default(facility, config.seed);
        let repo = Arc::new(CspotNode::in_memory("UCSB"));
        let clock = SimClock::new();
        let pipeline = TelemetryPipeline::new(repo, clock, config.seed)
            .expect("fresh repository accepts the telemetry logs");
        let cluster = if config.busy_cluster {
            config.site.build_cluster(config.seed)
        } else {
            config.site.build_idle_cluster()
        };
        let mut pilot_cfg = PilotControllerConfig::paper_default(config.site.nodes);
        pilot_cfg.est_task_runtime_s = config.perf.total_time_s(config.cfd_cores);
        let pilot = PilotController::new(cluster, pilot_cfg);
        let field = Arc::new(CspotNode::in_memory("UNL"));
        let results_return = ResultsReturn::new(field, SimClock::new(), config.seed ^ 0x5255)
            .expect("fresh field node accepts the results log");
        let laminar = LaminarRuntime::deploy(
            build_change_graph("cups_change", config.detector)
                .expect("static change graph is valid"),
            Arc::clone(&pipeline.repo),
        )
        .expect("fresh repository accepts the Laminar logs");
        XgFabric {
            config,
            net,
            pipeline,
            pilot,
            robot: Robot::default(),
            planner: RoutePlanner::from_domain(&DomainSpec::cups_default()),
            advisor: InterventionAdvisor::default(),
            laminar,
            detect_epoch: 0,
            results_return,
            qc: QcScreen::new(),
            backtester: Backtester::default(),
            timeline: Timeline::default(),
            t_s: 0.0,
            reports_done: 0,
            pending_cfd: Vec::new(),
            tasks_processed: 0,
            calibration: None,
        }
    }

    /// The event log so far.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// The most recent CFD summary visible at the field node (what the
    /// site operator's dashboard shows).
    pub fn operator_view(&self) -> Option<ResultSummary> {
        self.results_return.latest()
    }

    /// Back-test the live twin calibration against the accumulated
    /// prediction/measurement history (None before enough CFD runs, or
    /// before the twin is calibrated).
    pub fn backtest_calibration(&self) -> Option<crate::backtest::BacktestReport> {
        self.backtester.backtest(self.calibration?)
    }

    /// Current virtual time (s).
    pub fn now_s(&self) -> f64 {
        self.t_s
    }

    /// Ground-truth facility access (scenario scripting).
    pub fn facility_mut(&mut self) -> &mut CupsFacility {
        &mut self.net.facility
    }

    /// Inject a screen breach into the ground truth.
    pub fn inject_breach(&mut self, breach: Breach) {
        self.net.facility.add_breach(breach);
    }

    /// Force a weather front on the next report.
    pub fn force_front(&mut self) {
        self.net.force_front();
    }

    /// Run one 300-second report cycle.
    pub fn run_report_cycle(&mut self) {
        self.t_s += self.config.report_interval_s;
        let raw = self.net.poll();
        // Quality control before anything becomes a CFD boundary
        // condition (§2's data-calibration concern).
        let (records, _rejected) = self.qc.filter(&raw);
        let latency_ms = self
            .pipeline
            .ship(&records)
            .expect("telemetry path healthy");
        self.timeline.push(Event::TelemetryShipped {
            t_s: self.t_s,
            latency_ms,
            records: records.len(),
        });
        self.reports_done += 1;
        // Advance the HPC side to now and absorb completed tasks.
        self.pilot.advance_to(self.t_s);
        self.process_completed_tasks(&records);
        // 30-minute change-detection duty cycle.
        if self
            .reports_done
            .is_multiple_of(self.config.detect_every_reports)
        {
            self.run_change_detection(&records);
        }
    }

    /// Run `n` report cycles.
    pub fn run_cycles(&mut self, n: usize) {
        for _ in 0..n {
            self.run_report_cycle();
        }
    }

    fn run_change_detection(&mut self, records: &[TelemetryRecord]) {
        // Build the two windows from the repository's wind log and feed
        // them through the deployed Laminar change-detection graph — the
        // program §3.7 runs at UCSB on a 30-minute duty cycle.
        let window = self.config.detector.window;
        let history = self
            .pipeline
            .wind_history(2 * window)
            .expect("wind log readable");
        if history.len() < 2 * window {
            return;
        }
        let (prev, recent) = history.split_at(window);
        self.detect_epoch += 1;
        let epoch = self.detect_epoch;
        self.laminar
            .inject("prev_window", epoch, Value::F64Vec(prev.to_vec()))
            .expect("fresh epoch");
        self.laminar
            .inject("recent_window", epoch, Value::F64Vec(recent.to_vec()))
            .expect("fresh epoch");
        let changed = self
            .laminar
            .read("detect", epoch)
            .expect("detect node readable")
            .and_then(|v| v.as_bool())
            .unwrap_or(false);
        // Votes are recomputed for the timeline detail (the Laminar node
        // returns only the arbitration outcome, as in the paper).
        let vote = self.config.detector.evaluate_windows(prev, recent);
        debug_assert_eq!(changed, vote.changed, "Laminar and direct paths agree");
        self.timeline.push(Event::ChangeChecked {
            t_s: self.t_s,
            changed,
            votes: vote.votes,
        });
        if !changed {
            return;
        }
        // Trigger: Eqs. (1)-(4), then a CFD task sized to the telemetry
        // volume of one detection window.
        let data_bytes =
            (records.len() * TelemetryRecord::WIRE_SIZE * self.config.detect_every_reports) as f64;
        let decision = self.pilot.on_data(data_bytes);
        self.timeline.push(Event::PilotEvaluated {
            t_s: self.t_s,
            n_required: decision.n_required,
            n_available: decision.n_available,
            submitted: decision.submitted.is_some(),
        });
        let task_runtime = self.config.perf.total_time_s(self.config.cfd_cores);
        self.pilot.submit_task(1, task_runtime);
        // Capture the boundary conditions and interior measurements that
        // parameterize this run.
        if let Some(bc) = self.net.boundary_conditions(records) {
            let interior = self.interior_measurements(records);
            self.pending_cfd.push(PendingCfd {
                trigger_t_s: self.t_s,
                bc,
                interior,
            });
        }
    }

    fn interior_measurements(&self, records: &[TelemetryRecord]) -> Vec<Measurement> {
        records
            .iter()
            .filter_map(|r| {
                let (x, y, interior) = self.net.station_position(r.station_id)?;
                if !interior {
                    return None;
                }
                Some(Measurement {
                    x,
                    y,
                    z: 4.0,
                    wind_ms: r.wind_speed_ms,
                })
            })
            .collect()
    }

    fn process_completed_tasks(&mut self, _records: &[TelemetryRecord]) {
        while self.tasks_processed < self.pilot.completed_tasks().len() {
            let outcome = self.pilot.completed_tasks()[self.tasks_processed];
            self.tasks_processed += 1;
            if self.pending_cfd.is_empty() {
                continue;
            }
            let pending = self.pending_cfd.remove(0);
            self.execute_cfd(pending, outcome.finished_at);
        }
    }

    fn execute_cfd(&mut self, pending: PendingCfd, finished_at: f64) {
        // Predicted field: always intact-screen boundary conditions — the
        // twin detects breaches as measurement/model divergence.
        let spec = DomainSpec::cups_default().with_cells(
            self.config.cfd_cells[0],
            self.config.cfd_cells[1],
            self.config.cfd_cells[2],
        );
        let mesh = Mesh::generate(&spec);
        let bc = BoundarySpec::intact(
            pending.bc.wind_speed_ms,
            pending.bc.wind_dir_deg,
            pending.bc.ambient_temp_c,
        );
        let mut sim = Simulation::new(mesh, bc, SolverConfig::default());
        sim.run(self.config.cfd_steps);
        let model_runtime = self.config.perf.total_time_s(self.config.cfd_cores);
        let window_s = self.config.report_interval_s * self.config.detect_every_reports as f64;
        self.timeline.push(Event::CfdCompleted {
            t_s: finished_at,
            model_runtime_s: model_runtime,
            predicted_interior_wind: sim.mean_interior_wind(),
            validity_s: (window_s - model_runtime).max(0.0),
        });
        // Return the result summary to the site operator over the 5G
        // downlink (breach status is refined below; the operator gets the
        // headline numbers immediately).
        if let Ok(latency_ms) = self.results_return.deliver(&ResultSummary {
            t_s: finished_at,
            predicted_wind_ms: sim.mean_interior_wind(),
            validity_s: (window_s - model_runtime).max(0.0),
            breach_suspected: false,
        }) {
            self.timeline.push(Event::ResultsReturned {
                t_s: finished_at,
                latency_ms,
            });
        }
        // Twin comparison with first-run calibration.
        // Feed the back-tester with the raw (predicted, measured) pair so
        // calibration drift is observable over time (§2's back-testing).
        if !pending.interior.is_empty() {
            let mean_meas = pending.interior.iter().map(|m| m.wind_ms).sum::<f64>()
                / pending.interior.len() as f64;
            self.backtester.record(CalibrationSample {
                t_s: finished_at,
                predicted_ms: sim.mean_interior_wind(),
                measured_ms: mean_meas,
            });
        }
        let cal = self.calibration;
        let measurements: Vec<Measurement> = match cal {
            None => {
                // Calibrate: align predicted with measured means, assume
                // the screen intact on the first run.
                let mean_meas = pending.interior.iter().map(|m| m.wind_ms).sum::<f64>()
                    / pending.interior.len().max(1) as f64;
                let mean_pred = sim.mean_interior_wind().max(1e-9);
                self.calibration = Some(mean_meas / mean_pred);
                return;
            }
            Some(c) => pending
                .interior
                .iter()
                .map(|m| Measurement {
                    wind_ms: m.wind_ms / c.max(1e-9),
                    ..*m
                })
                .collect(),
        };
        // Candidate breach sites: every panel centre of every wall.
        let facility = &self.net.facility;
        let candidates: Vec<(f64, f64)> = xg_sensors::facility::Wall::all()
            .into_iter()
            .flat_map(|wall| (0..facility.panels_per_wall).map(move |p| (wall, p)))
            .map(|(wall, p)| facility.panel_center(wall, p))
            .collect();
        // Intervention advisory from this CFD result (§5 future work 3).
        if let Some(state) = self.net.current_state() {
            let conditions = SiteConditions {
                ambient_temp_c: state.temp_c,
                // Simple overnight forecast: diurnal trough ~9°C below the
                // current reading.
                forecast_min_temp_c: state.temp_c - 9.0,
                rel_humidity: state.rel_humidity,
            };
            for advice in self.advisor.advise(&sim, &conditions) {
                let summary = match advice {
                    Intervention::FrostProtection {
                        predicted_canopy_min_c,
                        lead_s,
                    } => format!(
                        "frost protection: canopy min {predicted_canopy_min_c:.1} C, start {:.0} min early",
                        lead_s / 60.0
                    ),
                    Intervention::SprayWindow {
                        interior_wind_ms, ..
                    } => format!("spray window open (canopy wind {interior_wind_ms:.2} m/s)"),
                    Intervention::SprayHold { reason } => format!("spray hold: {reason}"),
                };
                self.timeline.push(Event::AdvisoryIssued {
                    t_s: finished_at,
                    summary,
                });
            }
        }
        if let Some(report) =
            self.config
                .twin
                .compare_with_candidates(&sim, &measurements, &candidates)
        {
            self.timeline.push(Event::TwinCompared {
                t_s: finished_at,
                max_residual_ms: report.max_residual_ms,
                breach_suspected: report.breach_suspected,
            });
            if let Some(region) = report.suspect_region {
                let robot_report =
                    self.robot
                        .dispatch_planned(region, &self.net.facility, &self.planner);
                self.timeline.push(Event::RobotDispatched {
                    t_s: finished_at + robot_report.mission_s,
                    mission_s: robot_report.mission_s,
                    confirmed: robot_report.breach_confirmed,
                });
            }
        }
        let _ = pending.trigger_t_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_sensors::facility::Wall;

    fn fast_config(seed: u64) -> FabricConfig {
        FabricConfig {
            seed,
            cfd_cells: [14, 12, 5],
            cfd_steps: 25,
            ..Default::default()
        }
    }

    #[test]
    fn telemetry_flows_every_cycle() {
        let mut fab = XgFabric::new(fast_config(1));
        fab.run_cycles(4);
        let latencies = fab.timeline().telemetry_latencies_ms();
        assert_eq!(latencies.len(), 4);
        assert!(latencies.iter().all(|&l| l > 0.0 && l < 10_000.0));
        assert!((fab.now_s() - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn stable_weather_rarely_triggers() {
        let mut fab = XgFabric::new(fast_config(2));
        // 24 cycles = 2 hours = 4 detection checks (first at 60 min once
        // 12 samples exist).
        fab.run_cycles(24);
        let checks = fab
            .timeline()
            .count(|e| matches!(e, Event::ChangeChecked { .. }));
        assert!(checks >= 2, "detector must have run: {checks}");
        // Noise alone should not burn HPC time on most checks.
        assert!(
            fab.timeline().changes_detected() <= checks / 2,
            "too many false triggers: {} of {checks}",
            fab.timeline().changes_detected()
        );
    }

    #[test]
    fn front_triggers_cfd_and_validity_budget() {
        let mut fab = XgFabric::new(fast_config(3));
        fab.run_cycles(12); // build history
        fab.force_front();
        fab.run_cycles(12); // detect + run CFD
        assert!(
            fab.timeline().changes_detected() >= 1,
            "front must be detected"
        );
        assert!(fab.timeline().cfd_runs() >= 1, "CFD must have run");
        // §4.4 budget: ~7 min runtime, ≥ 23 min validity.
        for e in &fab.timeline().events {
            if let Event::CfdCompleted {
                model_runtime_s,
                validity_s,
                ..
            } = e
            {
                assert!(
                    (300.0..600.0).contains(model_runtime_s),
                    "{model_runtime_s}"
                );
                assert!(*validity_s >= 1200.0, "validity {validity_s}");
            }
        }
    }

    #[test]
    fn breach_detected_and_robot_confirms() {
        let mut fab = XgFabric::new(fast_config(4));
        // Build history and calibrate the twin with one intact-run trigger.
        fab.run_cycles(12);
        fab.force_front();
        fab.run_cycles(12);
        assert!(fab.timeline().cfd_runs() >= 1, "calibration run needed");
        // Now tear the screen; the breach jet both shifts the wind
        // statistics (triggering detection) and diverges from the intact
        // prediction (twin flags it).
        fab.inject_breach(Breach::new(Wall::West, 5, 12.0));
        fab.force_front();
        fab.run_cycles(18);
        let suspected = fab.timeline().count(|e| {
            matches!(
                e,
                Event::TwinCompared {
                    breach_suspected: true,
                    ..
                }
            )
        });
        assert!(suspected >= 1, "twin must flag the breach");
        assert!(fab.timeline().breach_confirmed(), "robot must confirm");
    }

    #[test]
    fn pilot_decisions_recorded() {
        let mut fab = XgFabric::new(fast_config(5));
        fab.run_cycles(12);
        fab.force_front();
        fab.run_cycles(12);
        let evals = fab
            .timeline()
            .count(|e| matches!(e, Event::PilotEvaluated { .. }));
        assert!(evals >= 1);
        for e in &fab.timeline().events {
            if let Event::PilotEvaluated { n_required, .. } = e {
                assert!(*n_required >= 1);
            }
        }
    }
}
