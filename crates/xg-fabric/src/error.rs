//! Typed errors for the fabric.
//!
//! Fault injection turns previously "can't happen" conditions — a missing
//! route, an exhausted retry budget, an unreachable HPC facility — into
//! ordinary runtime outcomes. Every fallible fabric path surfaces them as
//! a [`FabricError`] instead of a panic, so a chaos run degrades instead
//! of aborting.

use std::fmt;
use xg_cspot::CspotError;
use xg_laminar::error::LaminarError;
use xg_net::error::NetError;

/// Errors surfaced by the fabric's data and control paths.
#[derive(Debug)]
pub enum FabricError {
    /// The topology has no route between the named endpoints.
    MissingRoute {
        /// Source site name.
        from: String,
        /// Destination site name.
        to: String,
    },
    /// A CSPOT storage or protocol operation failed.
    Cspot(CspotError),
    /// The deployed Laminar change-detection dataflow failed.
    Laminar(LaminarError),
    /// Every configured HPC site is offline; a CFD task cannot be placed.
    NoHpcSiteAvailable,
    /// The RAN fleet rejected its topology (invalid cell config, unknown
    /// gateway cell).
    Net(NetError),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::MissingRoute { from, to } => {
                write!(f, "topology has no route {from} -> {to}")
            }
            FabricError::Cspot(e) => write!(f, "cspot: {e}"),
            FabricError::Laminar(e) => write!(f, "laminar: {e}"),
            FabricError::NoHpcSiteAvailable => {
                write!(f, "no HPC site reachable for task placement")
            }
            FabricError::Net(e) => write!(f, "ran: {e}"),
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabricError::Cspot(e) => Some(e),
            FabricError::Laminar(e) => Some(e),
            FabricError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CspotError> for FabricError {
    fn from(e: CspotError) -> Self {
        FabricError::Cspot(e)
    }
}

impl From<LaminarError> for FabricError {
    fn from(e: LaminarError) -> Self {
        FabricError::Laminar(e)
    }
}

impl From<NetError> for FabricError {
    fn from(e: NetError) -> Self {
        FabricError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_route() {
        let e = FabricError::MissingRoute {
            from: "UNL-5G".into(),
            to: "UCSB".into(),
        };
        assert_eq!(e.to_string(), "topology has no route UNL-5G -> UCSB");
    }

    #[test]
    fn wraps_cspot_errors() {
        let e: FabricError = CspotError::UnknownLog("cups.wind".into()).into();
        assert!(matches!(e, FabricError::Cspot(_)));
        assert!(e.to_string().contains("cups.wind"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
