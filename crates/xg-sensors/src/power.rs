//! Station power budget: solar harvest + battery + radio duty cycle.
//!
//! §4.2: the current production CUPS deployment uses "900MHz and
//! long-distance Wi-Fi connectivity" powered by a "solar and battery power
//! distribution infrastructure" whose maintenance dominates operating
//! cost; moving to private 5G "will obviate" it. This module models the
//! power side of that argument: a station's battery state under solar
//! harvest and per-radio consumption, so deployments can be compared on
//! uptime and battery-replacement intervals.

use serde::{Deserialize, Serialize};

/// Radio technology powering the uplink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RadioKind {
    /// 900 MHz ISM long-range link (the current deployment).
    Ism900,
    /// Long-distance Wi-Fi backhaul hop.
    LongWifi,
    /// 5G modem attached to facility power via the gateway (the paper's
    /// proposal removes the solar/battery chain entirely for stations
    /// wired to the gateway).
    FiveG,
}

impl RadioKind {
    /// Average radio power draw (W) at a 5-minute reporting duty cycle.
    pub fn avg_draw_w(self) -> f64 {
        match self {
            RadioKind::Ism900 => 0.15,
            RadioKind::LongWifi => 1.8,
            RadioKind::FiveG => 2.5,
        }
    }
}

/// A solar-powered station's energy model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerBudget {
    /// Battery capacity (Wh).
    pub battery_wh: f64,
    /// Current charge (Wh).
    pub charge_wh: f64,
    /// Solar panel rating (W) at peak sun.
    pub panel_w: f64,
    /// Baseline sensor + MCU draw (W).
    pub base_draw_w: f64,
    /// Radio in use.
    pub radio: RadioKind,
    /// Battery health: usable-capacity fraction, degrades with cycling.
    pub health: f64,
    /// Accumulated full-cycle equivalents.
    pub cycles: f64,
}

/// Capacity fade per full charge cycle (lead-acid AGM in the field).
const FADE_PER_CYCLE: f64 = 0.0011;
/// Health threshold at which the battery needs replacement.
pub const REPLACE_AT_HEALTH: f64 = 0.6;

impl PowerBudget {
    /// The production configuration: 12 V · 9 Ah battery, 20 W panel.
    pub fn field_station(radio: RadioKind) -> Self {
        PowerBudget {
            battery_wh: 108.0,
            charge_wh: 108.0,
            panel_w: 20.0,
            base_draw_w: 0.35,
            radio,
            health: 1.0,
            cycles: 0.0,
        }
    }

    /// Usable capacity at the current health (Wh).
    pub fn usable_wh(&self) -> f64 {
        self.battery_wh * self.health
    }

    /// Advance one hour with `sun` ∈ [0, 1] insolation. Returns whether
    /// the station stayed up.
    pub fn step_hour(&mut self, sun: f64) -> bool {
        let harvest = self.panel_w * sun.clamp(0.0, 1.0);
        let draw = self.base_draw_w + self.radio.avg_draw_w();
        let delta = harvest - draw;
        let before = self.charge_wh;
        self.charge_wh = (self.charge_wh + delta).clamp(0.0, self.usable_wh());
        // Cycle accounting: discharge throughput over usable capacity.
        if delta < 0.0 {
            let discharged = before - self.charge_wh;
            self.cycles += discharged / self.usable_wh().max(1e-9);
            self.health =
                (self.health - FADE_PER_CYCLE * discharged / self.usable_wh().max(1e-9)).max(0.0);
        }
        self.charge_wh > 0.0
    }

    /// Simulate `days` of a diurnal sun pattern with the given peak-sun
    /// hours; returns `(uptime_fraction, needs_replacement)`.
    pub fn simulate_days(&mut self, days: usize, peak_sun_hours: f64) -> (f64, bool) {
        let mut up_hours = 0usize;
        let total = days * 24;
        for hour in 0..total {
            let h = hour % 24;
            // Sun between 06:00 and 18:00, sinusoidal, scaled so the
            // daily integral is `peak_sun_hours` full-power hours.
            let sun = if (6..18).contains(&h) {
                let phase = (h as f64 - 6.0) / 12.0 * std::f64::consts::PI;
                phase.sin() * peak_sun_hours * std::f64::consts::PI / 24.0
            } else {
                0.0
            };
            if self.step_hour(sun) {
                up_hours += 1;
            }
        }
        (
            up_hours as f64 / total as f64,
            self.health < REPLACE_AT_HEALTH,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sunny_ism_station_stays_up() {
        let mut p = PowerBudget::field_station(RadioKind::Ism900);
        let (uptime, replace) = p.simulate_days(30, 6.0);
        assert!(uptime > 0.999, "uptime {uptime}");
        assert!(!replace);
    }

    #[test]
    fn wifi_station_struggles_in_winter_sun() {
        // 1.5 peak-sun hours (a Central Valley tule-fog stretch): the
        // Wi-Fi backhaul draw outruns the harvest.
        let mut ism = PowerBudget::field_station(RadioKind::Ism900);
        let mut wifi = PowerBudget::field_station(RadioKind::LongWifi);
        let (up_ism, _) = ism.simulate_days(30, 1.5);
        let (up_wifi, _) = wifi.simulate_days(30, 1.5);
        assert!(up_wifi < up_ism, "wifi {up_wifi} should trail ism {up_ism}");
        assert!(up_wifi < 0.9, "wifi must brown out: {up_wifi}");
    }

    #[test]
    fn deep_cycling_degrades_battery() {
        let mut p = PowerBudget::field_station(RadioKind::LongWifi);
        // Two years of marginal sun cycles the battery daily.
        let (_, replace) = p.simulate_days(730, 2.0);
        assert!(p.cycles > 100.0, "cycles {}", p.cycles);
        assert!(p.health < 1.0);
        // Health monotonically declines toward the replacement threshold.
        let _ = replace; // replacement depends on fade rate; health < 1 suffices
    }

    #[test]
    fn charge_never_exceeds_usable_capacity() {
        let mut p = PowerBudget::field_station(RadioKind::Ism900);
        for _ in 0..100 {
            p.step_hour(1.0);
            assert!(p.charge_wh <= p.usable_wh() + 1e-9);
            assert!(p.charge_wh >= 0.0);
        }
    }

    #[test]
    fn five_g_draw_is_highest_but_grid_powered_in_deployment() {
        // The model documents why the 5G proposal wins: not by drawing
        // less, but by moving the radio onto the facility's wired gateway.
        assert!(RadioKind::FiveG.avg_draw_w() > RadioKind::Ism900.avg_draw_w());
        assert!(RadioKind::LongWifi.avg_draw_w() > RadioKind::Ism900.avg_draw_w());
    }
}
