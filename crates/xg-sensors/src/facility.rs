//! CUPS screen-house geometry.
//!
//! The paper describes the Lindcove CUPS pilot as a ~100 000 m³ screen
//! house covering several acres with 25–30 ft of vertical clearance for
//! tree canopy and harvesting equipment (§2). The default geometry here is
//! 120 m × 100 m × 8.5 m = 102 000 m³, gridded into screen panels whose
//! integrity the breach-detection pipeline monitors.

use crate::breach::Breach;
use serde::{Deserialize, Serialize};

/// One of the four vertical screen walls (the roof is modelled as a lid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Wall {
    /// x = 0 plane (west).
    West,
    /// x = length plane (east).
    East,
    /// y = 0 plane (south).
    South,
    /// y = width plane (north).
    North,
}

impl Wall {
    /// All four walls.
    pub fn all() -> [Wall; 4] {
        [Wall::West, Wall::East, Wall::South, Wall::North]
    }

    /// Outward unit normal (x, y).
    pub fn normal(self) -> (f64, f64) {
        match self {
            Wall::West => (-1.0, 0.0),
            Wall::East => (1.0, 0.0),
            Wall::South => (0.0, -1.0),
            Wall::North => (0.0, 1.0),
        }
    }
}

/// The screen-house model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CupsFacility {
    /// Extent along x (m).
    pub length_m: f64,
    /// Extent along y (m).
    pub width_m: f64,
    /// Vertical clearance (m).
    pub height_m: f64,
    /// Screen porosity: fraction of incident airflow admitted by intact
    /// screen (50-mesh anti-psyllid screen passes ~20-30%).
    pub screen_porosity: f64,
    /// Panels per wall (breach localization granularity).
    pub panels_per_wall: usize,
    /// Active breaches.
    pub breaches: Vec<Breach>,
}

impl Default for CupsFacility {
    fn default() -> Self {
        CupsFacility {
            length_m: 120.0,
            width_m: 100.0,
            height_m: 8.5,
            screen_porosity: 0.25,
            panels_per_wall: 12,
            breaches: Vec::new(),
        }
    }
}

impl CupsFacility {
    /// Interior volume in cubic metres.
    pub fn volume_m3(&self) -> f64 {
        self.length_m * self.width_m * self.height_m
    }

    /// Inject a breach. Panels are indexed 0..panels_per_wall along the
    /// wall; out-of-range indices are clamped.
    pub fn add_breach(&mut self, mut breach: Breach) {
        breach.panel = breach.panel.min(self.panels_per_wall.saturating_sub(1));
        self.breaches.push(breach);
    }

    /// Remove all breaches (repair completed).
    pub fn repair_all(&mut self) {
        self.breaches.clear();
    }

    /// Effective porosity of a panel: intact screen porosity, or near-open
    /// where a breach exists (breach area fraction of the panel passes air
    /// freely).
    pub fn panel_porosity(&self, wall: Wall, panel: usize) -> f64 {
        let panel_area = self.panel_area_m2(wall);
        let breach_area: f64 = self
            .breaches
            .iter()
            .filter(|b| b.wall == wall && b.panel == panel)
            .map(|b| b.area_m2)
            .sum();
        let open_frac = (breach_area / panel_area).min(1.0);
        self.screen_porosity * (1.0 - open_frac) + 1.0 * open_frac
    }

    /// Area of one panel of a wall (m²).
    pub fn panel_area_m2(&self, wall: Wall) -> f64 {
        let wall_len = match wall {
            Wall::West | Wall::East => self.width_m,
            Wall::South | Wall::North => self.length_m,
        };
        wall_len * self.height_m / self.panels_per_wall as f64
    }

    /// Centre position of a panel in facility coordinates (x, y).
    pub fn panel_center(&self, wall: Wall, panel: usize) -> (f64, f64) {
        let frac = (panel as f64 + 0.5) / self.panels_per_wall as f64;
        match wall {
            Wall::West => (0.0, frac * self.width_m),
            Wall::East => (self.length_m, frac * self.width_m),
            Wall::South => (frac * self.length_m, 0.0),
            Wall::North => (frac * self.length_m, self.width_m),
        }
    }

    /// True if any breach is active.
    pub fn is_breached(&self) -> bool {
        !self.breaches.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_volume_near_paper() {
        let f = CupsFacility::default();
        let v = f.volume_m3();
        assert!(
            (90_000.0..=110_000.0).contains(&v),
            "paper: 100,000 m^3; got {v}"
        );
    }

    #[test]
    fn intact_panel_has_screen_porosity() {
        let f = CupsFacility::default();
        for wall in Wall::all() {
            assert_eq!(f.panel_porosity(wall, 0), f.screen_porosity);
        }
    }

    #[test]
    fn breach_raises_porosity() {
        let mut f = CupsFacility::default();
        let intact = f.panel_porosity(Wall::North, 3);
        f.add_breach(Breach::new(Wall::North, 3, 4.0));
        let broken = f.panel_porosity(Wall::North, 3);
        assert!(broken > intact);
        // Neighbouring panels unaffected.
        assert_eq!(f.panel_porosity(Wall::North, 2), intact);
        assert_eq!(f.panel_porosity(Wall::South, 3), intact);
        f.repair_all();
        assert_eq!(f.panel_porosity(Wall::North, 3), intact);
        assert!(!f.is_breached());
    }

    #[test]
    fn huge_breach_saturates_at_open() {
        let mut f = CupsFacility::default();
        f.add_breach(Breach::new(Wall::East, 0, 1e9));
        assert!((f.panel_porosity(Wall::East, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn breach_panel_clamped() {
        let mut f = CupsFacility::default();
        f.add_breach(Breach::new(Wall::East, 999, 1.0));
        assert_eq!(f.breaches[0].panel, f.panels_per_wall - 1);
    }

    #[test]
    fn panel_centers_on_walls() {
        let f = CupsFacility::default();
        let (x, y) = f.panel_center(Wall::West, 0);
        assert_eq!(x, 0.0);
        assert!(y > 0.0 && y < f.width_m);
        let (x, _) = f.panel_center(Wall::East, 5);
        assert_eq!(x, f.length_m);
        let (_, y) = f.panel_center(Wall::North, 2);
        assert_eq!(y, f.width_m);
    }

    #[test]
    fn wall_normals_are_unit_and_outward() {
        for wall in Wall::all() {
            let (nx, ny) = wall.normal();
            assert!((nx * nx + ny * ny - 1.0).abs() < 1e-12);
        }
        assert_eq!(Wall::West.normal(), (-1.0, 0.0));
    }
}
