//! Telemetry quality control.
//!
//! §2: the digital twin's accuracy depends on "data calibrations (back
//! tested against historical data)" — and before any calibration, on not
//! feeding the CFD garbage. Commodity agricultural stations fail in
//! characteristic ways: stuck sensors (repeating an identical value),
//! single-sample spikes (electrical noise), and out-of-physical-range
//! readings (failing transducers). This module screens a station's report
//! stream and flags/filters suspect records before they become CFD
//! boundary conditions.

use crate::telemetry::TelemetryRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Why a record was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QcFlag {
    /// A value is outside its physical range.
    OutOfRange,
    /// The station has repeated an identical reading too many times.
    StuckSensor,
    /// The value jumped implausibly far from the station's recent level.
    Spike,
}

/// Physical plausibility limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QcLimits {
    /// Max plausible wind speed (m/s).
    pub wind_max_ms: f64,
    /// Temperature range (°C).
    pub temp_range_c: (f64, f64),
    /// Max wind change between consecutive reports (m/s) before a reading
    /// is a spike.
    pub wind_spike_ms: f64,
    /// Max temperature change between consecutive reports (°C).
    pub temp_spike_c: f64,
    /// Identical consecutive wind readings before "stuck" (exact equality
    /// never happens with a live sensor).
    pub stuck_repeats: u32,
}

impl Default for QcLimits {
    fn default() -> Self {
        QcLimits {
            wind_max_ms: 60.0,
            temp_range_c: (-20.0, 55.0),
            wind_spike_ms: 15.0,
            temp_spike_c: 8.0,
            stuck_repeats: 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct StationState {
    last_wind: f64,
    last_temp: f64,
    identical_winds: u32,
}

/// Streaming QC screen over per-station report sequences.
#[derive(Debug, Clone, Default)]
pub struct QcScreen {
    /// Limits in force.
    pub limits: QcLimits,
    state: BTreeMap<u32, StationState>,
}

impl QcScreen {
    /// A screen with default limits.
    pub fn new() -> Self {
        QcScreen::default()
    }

    /// Check one record, updating per-station history. Returns `Ok(())`
    /// for a clean record or the first failing flag.
    pub fn check(&mut self, r: &TelemetryRecord) -> Result<(), QcFlag> {
        // Range checks first (stateless).
        if !(0.0..=self.limits.wind_max_ms).contains(&r.wind_speed_ms)
            || !r.wind_speed_ms.is_finite()
        {
            return Err(QcFlag::OutOfRange);
        }
        let (tmin, tmax) = self.limits.temp_range_c;
        if !(tmin..=tmax).contains(&r.temp_c) || !r.temp_c.is_finite() {
            return Err(QcFlag::OutOfRange);
        }
        // Stateful checks.
        let state = self.state.get(&r.station_id).copied();
        let verdict = match state {
            None => Ok(()),
            Some(prev) => {
                // `identical_winds` counts repeats already seen; this
                // record would be repeat number `identical_winds + 2`
                // counting the original reading.
                if prev.identical_winds + 2 >= self.limits.stuck_repeats
                    && r.wind_speed_ms == prev.last_wind
                {
                    Err(QcFlag::StuckSensor)
                } else if (r.wind_speed_ms - prev.last_wind).abs() > self.limits.wind_spike_ms
                    || (r.temp_c - prev.last_temp).abs() > self.limits.temp_spike_c
                {
                    Err(QcFlag::Spike)
                } else {
                    Ok(())
                }
            }
        };
        // Update history regardless of verdict (a stuck sensor stays
        // stuck; a spike becomes the new level only if clean).
        let identical = match state {
            Some(prev) if prev.last_wind == r.wind_speed_ms => prev.identical_winds + 1,
            _ => 0,
        };
        if verdict.is_ok() || verdict == Err(QcFlag::StuckSensor) {
            self.state.insert(
                r.station_id,
                StationState {
                    last_wind: r.wind_speed_ms,
                    last_temp: r.temp_c,
                    identical_winds: identical,
                },
            );
        }
        verdict
    }

    /// Filter a report batch, returning the clean records and the flags of
    /// the rejected ones.
    pub fn filter(
        &mut self,
        records: &[TelemetryRecord],
    ) -> (Vec<TelemetryRecord>, Vec<(u32, QcFlag)>) {
        let mut clean = Vec::with_capacity(records.len());
        let mut rejected = Vec::new();
        for r in records {
            match self.check(r) {
                Ok(()) => clean.push(*r),
                Err(flag) => rejected.push((r.station_id, flag)),
            }
        }
        (clean, rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(station: u32, wind: f64, temp: f64) -> TelemetryRecord {
        TelemetryRecord {
            station_id: station,
            t_s: 0.0,
            wind_speed_ms: wind,
            wind_dir_deg: 300.0,
            temp_c: temp,
            rel_humidity: 60.0,
        }
    }

    #[test]
    fn clean_stream_passes() {
        let mut qc = QcScreen::new();
        for w in [3.0, 3.4, 2.8, 3.1, 3.3] {
            assert_eq!(qc.check(&rec(1, w, 22.0)), Ok(()));
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let mut qc = QcScreen::new();
        assert_eq!(qc.check(&rec(1, 80.0, 22.0)), Err(QcFlag::OutOfRange));
        assert_eq!(qc.check(&rec(1, -1.0, 22.0)), Err(QcFlag::OutOfRange));
        assert_eq!(qc.check(&rec(1, 3.0, 70.0)), Err(QcFlag::OutOfRange));
        assert_eq!(qc.check(&rec(1, f64::NAN, 22.0)), Err(QcFlag::OutOfRange));
    }

    #[test]
    fn stuck_sensor_detected_after_repeats() {
        let mut qc = QcScreen::new();
        assert_eq!(qc.check(&rec(1, 3.25, 22.0)), Ok(()));
        assert_eq!(qc.check(&rec(1, 3.25, 22.0)), Ok(()));
        assert_eq!(qc.check(&rec(1, 3.25, 22.0)), Ok(()));
        // Fourth identical reading crosses stuck_repeats = 4.
        assert_eq!(qc.check(&rec(1, 3.25, 22.0)), Err(QcFlag::StuckSensor));
        // And it stays flagged until the value moves again.
        assert_eq!(qc.check(&rec(1, 3.25, 22.0)), Err(QcFlag::StuckSensor));
        assert_eq!(qc.check(&rec(1, 3.4, 22.0)), Ok(()));
    }

    #[test]
    fn spike_detected_and_recovery_allowed() {
        let mut qc = QcScreen::new();
        assert_eq!(qc.check(&rec(1, 3.0, 22.0)), Ok(()));
        assert_eq!(qc.check(&rec(1, 25.0, 22.0)), Err(QcFlag::Spike));
        // The spike did not become the new level: a normal reading passes.
        assert_eq!(qc.check(&rec(1, 3.2, 22.0)), Ok(()));
        // Temperature spikes too.
        assert_eq!(qc.check(&rec(1, 3.2, 35.0)), Err(QcFlag::Spike));
    }

    #[test]
    fn stations_tracked_independently() {
        let mut qc = QcScreen::new();
        qc.check(&rec(1, 3.0, 22.0)).unwrap();
        // Station 2's first reading is never a spike relative to station 1.
        assert_eq!(qc.check(&rec(2, 20.0, 22.0)), Ok(()));
    }

    #[test]
    fn batch_filter_partitions() {
        let mut qc = QcScreen::new();
        qc.check(&rec(1, 3.0, 22.0)).unwrap();
        qc.check(&rec(2, 4.0, 22.0)).unwrap();
        let batch = vec![rec(1, 3.2, 22.0), rec(2, 30.0, 22.0), rec(3, 99.0, 22.0)];
        let (clean, rejected) = qc.filter(&batch);
        assert_eq!(clean.len(), 1);
        assert_eq!(clean[0].station_id, 1);
        assert_eq!(rejected.len(), 2);
        assert!(rejected.contains(&(2, QcFlag::Spike)));
        assert!(rejected.contains(&(3, QcFlag::OutOfRange)));
    }
}
