//! Weather stations: commodity sensors with calibration bias and noise.
//!
//! §3.7: "the measurement errors from the atmospheric sensors (commodity
//! commercial agricultural weather stations) are high enough so that
//! consecutive readings may not be statistically determinable to be
//! different" — the whole reason the change-detection battery exists. The
//! noise model here (per-channel Gaussian + per-unit calibration bias) is
//! what the Laminar tests have to see through.

use crate::facility::CupsFacility;
use crate::telemetry::TelemetryRecord;
use crate::weather::WeatherState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Where a station sits relative to the screen house.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Outside the screen, measuring free-stream conditions.
    Exterior {
        /// Position (m) in facility coordinates.
        x: f64,
        /// Position (m) in facility coordinates.
        y: f64,
    },
    /// Inside the screen house.
    Interior {
        /// Position (m) in facility coordinates.
        x: f64,
        /// Position (m) in facility coordinates.
        y: f64,
    },
}

impl Placement {
    /// Position (x, y) in facility coordinates.
    pub fn position(&self) -> (f64, f64) {
        match *self {
            Placement::Exterior { x, y } | Placement::Interior { x, y } => (x, y),
        }
    }

    /// True for interior stations.
    pub fn is_interior(&self) -> bool {
        matches!(self, Placement::Interior { .. })
    }
}

/// Per-channel measurement noise (SDs) and calibration bias.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Wind-speed noise SD (m/s).
    pub wind_sd: f64,
    /// Wind-direction noise SD (deg).
    pub dir_sd: f64,
    /// Temperature noise SD (°C).
    pub temp_sd: f64,
    /// Humidity noise SD (%).
    pub rh_sd: f64,
    /// Wind calibration bias (m/s) — per-unit systematic offset.
    pub wind_bias: f64,
    /// Temperature calibration bias (°C).
    pub temp_bias: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            wind_sd: 0.35,
            dir_sd: 6.0,
            temp_sd: 0.4,
            rh_sd: 2.0,
            wind_bias: 0.0,
            temp_bias: 0.0,
        }
    }
}

/// Length scale over which a breach's local inflow anomaly decays (m).
const BREACH_INFLUENCE_M: f64 = 40.0;
/// Wind anomaly per m² of breach per m/s of free-stream wind, at the
/// breach itself.
const BREACH_WIND_GAIN: f64 = 0.25;
/// Screen attenuation: interior wind is this fraction of free-stream when
/// the screen is intact.
const INTERIOR_WIND_FACTOR: f64 = 0.3;

/// One weather station.
#[derive(Debug, Clone)]
pub struct WeatherStation {
    /// Station identifier.
    pub id: u32,
    /// Placement.
    pub placement: Placement,
    /// Noise model.
    pub noise: NoiseModel,
    rng: StdRng,
}

impl WeatherStation {
    /// Create a station with the default commodity-sensor noise model.
    pub fn new(id: u32, placement: Placement, seed: u64) -> Self {
        WeatherStation {
            id,
            placement,
            noise: NoiseModel::default(),
            rng: StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The true local wind at this station given free-stream conditions and
    /// the facility's screen state (before measurement noise).
    pub fn local_wind(&self, state: &WeatherState, facility: &CupsFacility) -> f64 {
        let (sx, sy) = self.placement.position();
        let base = if self.placement.is_interior() {
            state.wind_speed_ms * INTERIOR_WIND_FACTOR
        } else {
            state.wind_speed_ms
        };
        // Interior stations also feel breach inflow jets.
        let mut anomaly = 0.0;
        if self.placement.is_interior() {
            for b in &facility.breaches {
                let (bx, by) = facility.panel_center(b.wall, b.panel);
                let dist = ((sx - bx).powi(2) + (sy - by).powi(2)).sqrt();
                anomaly += BREACH_WIND_GAIN
                    * b.area_m2
                    * state.wind_speed_ms
                    * (-dist / BREACH_INFLUENCE_M).exp();
            }
        }
        base + anomaly
    }

    /// Produce a (noisy) telemetry record for the current true state.
    pub fn measure(&mut self, state: &WeatherState, facility: &CupsFacility) -> TelemetryRecord {
        let true_wind = self.local_wind(state, facility);
        let wind = (true_wind + self.noise.wind_bias + self.gauss() * self.noise.wind_sd).max(0.0);
        let dir = (state.wind_dir_deg + self.gauss() * self.noise.dir_sd).rem_euclid(360.0);
        let temp = state.temp_c + self.noise.temp_bias + self.gauss() * self.noise.temp_sd;
        let rh = (state.rel_humidity + self.gauss() * self.noise.rh_sd).clamp(0.0, 100.0);
        TelemetryRecord {
            station_id: self.id,
            t_s: state.t_s,
            wind_speed_ms: wind,
            wind_dir_deg: dir,
            temp_c: temp,
            rel_humidity: rh,
        }
    }

    fn gauss(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breach::Breach;
    use crate::facility::Wall;

    fn state(wind: f64) -> WeatherState {
        WeatherState {
            t_s: 0.0,
            wind_speed_ms: wind,
            wind_dir_deg: 315.0,
            temp_c: 22.0,
            rel_humidity: 60.0,
        }
    }

    #[test]
    fn interior_wind_attenuated_by_screen() {
        let f = CupsFacility::default();
        let inside = WeatherStation::new(1, Placement::Interior { x: 60.0, y: 50.0 }, 1);
        let outside = WeatherStation::new(2, Placement::Exterior { x: -20.0, y: 50.0 }, 1);
        let s = state(5.0);
        assert!(inside.local_wind(&s, &f) < outside.local_wind(&s, &f));
    }

    #[test]
    fn breach_raises_nearby_interior_wind() {
        let mut f = CupsFacility::default();
        let near = WeatherStation::new(1, Placement::Interior { x: 5.0, y: 50.0 }, 1);
        let far = WeatherStation::new(2, Placement::Interior { x: 115.0, y: 50.0 }, 1);
        let s = state(6.0);
        let near_before = near.local_wind(&s, &f);
        let far_before = far.local_wind(&s, &f);
        // Breach in the west wall (x = 0) near y = 50.
        f.add_breach(Breach::equipment_tear(Wall::West, 5));
        let near_delta = near.local_wind(&s, &f) - near_before;
        let far_delta = far.local_wind(&s, &f) - far_before;
        assert!(
            near_delta > 0.5,
            "near station must see the jet: {near_delta}"
        );
        assert!(
            far_delta < near_delta / 5.0,
            "far station barely affected: {far_delta} vs {near_delta}"
        );
    }

    #[test]
    fn exterior_station_ignores_breach() {
        let mut f = CupsFacility::default();
        let ext = WeatherStation::new(1, Placement::Exterior { x: -5.0, y: 50.0 }, 1);
        let s = state(6.0);
        let before = ext.local_wind(&s, &f);
        f.add_breach(Breach::equipment_tear(Wall::West, 5));
        assert_eq!(ext.local_wind(&s, &f), before);
    }

    #[test]
    fn measurement_noise_has_configured_spread() {
        let f = CupsFacility::default();
        let mut st = WeatherStation::new(1, Placement::Exterior { x: 0.0, y: 0.0 }, 42);
        let s = state(4.0);
        let n = 5_000;
        let winds: Vec<f64> = (0..n).map(|_| st.measure(&s, &f).wind_speed_ms).collect();
        let mean = winds.iter().sum::<f64>() / n as f64;
        let sd = (winds.iter().map(|w| (w - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt();
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
        assert!((sd - st.noise.wind_sd).abs() < 0.05, "sd {sd}");
    }

    #[test]
    fn measurements_stay_physical() {
        let f = CupsFacility::default();
        let mut st = WeatherStation::new(1, Placement::Interior { x: 10.0, y: 10.0 }, 9);
        let s = state(0.1);
        for _ in 0..1_000 {
            let r = st.measure(&s, &f);
            assert!(r.wind_speed_ms >= 0.0);
            assert!((0.0..360.0).contains(&r.wind_dir_deg));
            assert!((0.0..=100.0).contains(&r.rel_humidity));
        }
    }

    #[test]
    fn calibration_bias_shifts_mean() {
        let f = CupsFacility::default();
        let mut st = WeatherStation::new(1, Placement::Exterior { x: 0.0, y: 0.0 }, 4);
        st.noise.wind_bias = 1.0;
        let s = state(3.0);
        let n = 3_000;
        let mean: f64 = (0..n)
            .map(|_| st.measure(&s, &f).wind_speed_ms)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "biased mean {mean}");
    }
}
