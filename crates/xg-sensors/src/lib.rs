//! # xg-sensors — CUPS facility and sensor-network simulation
//!
//! The paper's sensor layer is a set of commodity agricultural weather
//! stations in and around the Citrus Under Protective Screening (CUPS)
//! facility at Lindcove, California: a ~100 000 m³ screen house whose
//! boundary conditions (wind, temperature, humidity) feed the CFD digital
//! twin every 5 minutes. This crate simulates all of it:
//!
//! * [`facility`] — the screen-house geometry, screen panels, and breach
//!   state.
//! * [`weather`] — a seeded micro-climate generator: diurnal temperature,
//!   AR(1) wind gusts, weather-front events, humidity.
//! * [`telemetry`] — the fixed-size telemetry record CSPOT logs carry.
//! * [`station`] — weather stations with calibration bias and per-channel
//!   noise (the measurement error that motivates statistical change
//!   detection in §3.7).
//! * [`network`] — the station network: 5-minute polling and extraction of
//!   CFD boundary conditions.
//! * [`breach`] — screen-breach injection: a breach perturbs airflow
//!   measurements near the damaged panel, which the digital twin detects
//!   as model/measurement divergence (§2).
//!
//! ```
//! use xg_sensors::prelude::*;
//!
//! let mut net = SensorNetwork::cups_default(CupsFacility::default(), 42);
//! net.advance_to(SimNs::from_secs(300)).unwrap(); // one 5-minute reporting cycle
//! let reports = net.take_reports();
//! assert_eq!(reports.len(), 9);
//! let bc = net.boundary_conditions(&reports).unwrap();
//! assert!(bc.interior_wind_ms < bc.wind_speed_ms, "screen attenuates wind");
//! ```

// Non-test library code must thread typed errors instead of panicking:
// the same invariant xg-lint's panicking-call rule enforces for expect/panic.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
// In-crate code must stay off its own deprecated shims (`poll`): the
// event engine behind `Advance::advance_to` is the only time authority.
#![deny(deprecated)]

pub mod breach;
pub mod facility;
pub mod network;
pub mod power;
pub mod qc;
pub mod station;
pub mod telemetry;
pub mod weather;

/// Commonly used types.
pub mod prelude {
    pub use crate::breach::Breach;
    pub use crate::facility::{CupsFacility, Wall};
    pub use crate::network::{BoundaryConditions, SensorNetwork};
    pub use crate::power::{PowerBudget, RadioKind};
    pub use crate::qc::{QcFlag, QcScreen};
    pub use crate::station::WeatherStation;
    pub use crate::telemetry::TelemetryRecord;
    pub use crate::weather::WeatherSim;
    pub use xg_sim::{Advance, SimNs};
}

pub use prelude::*;
