//! The fixed-size telemetry record carried in CSPOT logs.
//!
//! CSPOT logs have fixed element sizes, so the record encodes to exactly
//! [`TelemetryRecord::WIRE_SIZE`] bytes — the element size the xGFabric
//! telemetry logs are created with.

use serde::{Deserialize, Serialize};

/// One weather-station report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetryRecord {
    /// Reporting station.
    pub station_id: u32,
    /// Report timestamp (s since simulation start).
    pub t_s: f64,
    /// Measured wind speed (m/s).
    pub wind_speed_ms: f64,
    /// Measured wind direction (deg).
    pub wind_dir_deg: f64,
    /// Measured temperature (°C).
    pub temp_c: f64,
    /// Measured relative humidity (%).
    pub rel_humidity: f64,
}

impl TelemetryRecord {
    /// Encoded size: u32 id + pad + 5 × f64.
    pub const WIRE_SIZE: usize = 48;

    /// Encode to exactly [`Self::WIRE_SIZE`] bytes.
    pub fn encode(&self) -> [u8; Self::WIRE_SIZE] {
        let mut out = [0u8; Self::WIRE_SIZE];
        out[0..4].copy_from_slice(&self.station_id.to_le_bytes());
        out[8..16].copy_from_slice(&self.t_s.to_le_bytes());
        out[16..24].copy_from_slice(&self.wind_speed_ms.to_le_bytes());
        out[24..32].copy_from_slice(&self.wind_dir_deg.to_le_bytes());
        out[32..40].copy_from_slice(&self.temp_c.to_le_bytes());
        out[40..48].copy_from_slice(&self.rel_humidity.to_le_bytes());
        out
    }

    /// Decode; returns `None` for a buffer of the wrong length.
    pub fn decode(bytes: &[u8]) -> Option<TelemetryRecord> {
        if bytes.len() != Self::WIRE_SIZE {
            return None;
        }
        Some(TelemetryRecord {
            station_id: u32::from_le_bytes(bytes[0..4].try_into().ok()?),
            t_s: f64::from_le_bytes(bytes[8..16].try_into().ok()?),
            wind_speed_ms: f64::from_le_bytes(bytes[16..24].try_into().ok()?),
            wind_dir_deg: f64::from_le_bytes(bytes[24..32].try_into().ok()?),
            temp_c: f64::from_le_bytes(bytes[32..40].try_into().ok()?),
            rel_humidity: f64::from_le_bytes(bytes[40..48].try_into().ok()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetryRecord {
        TelemetryRecord {
            station_id: 3,
            t_s: 600.0,
            wind_speed_ms: 3.4,
            wind_dir_deg: 312.0,
            temp_c: 24.5,
            rel_humidity: 61.0,
        }
    }

    #[test]
    fn roundtrip() {
        let r = sample();
        let enc = r.encode();
        assert_eq!(enc.len(), TelemetryRecord::WIRE_SIZE);
        assert_eq!(TelemetryRecord::decode(&enc).unwrap(), r);
    }

    #[test]
    fn wrong_length_rejected() {
        assert!(TelemetryRecord::decode(&[0u8; 47]).is_none());
        assert!(TelemetryRecord::decode(&[0u8; 49]).is_none());
        assert!(TelemetryRecord::decode(&[]).is_none());
    }

    #[test]
    fn extreme_values_roundtrip() {
        let mut r = sample();
        r.wind_speed_ms = f64::MAX;
        r.temp_c = -273.15;
        let dec = TelemetryRecord::decode(&r.encode()).unwrap();
        assert_eq!(dec.wind_speed_ms, f64::MAX);
        assert_eq!(dec.temp_c, -273.15);
    }
}
