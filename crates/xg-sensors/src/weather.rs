//! Seeded micro-climate generator for the Exeter, CA site.
//!
//! Generates the true atmospheric state the stations sample: a diurnal
//! temperature cycle, wind with slowly-wandering AR(1) gusts plus
//! occasional front passages (the "changes in wind speed" that trigger new
//! CFD runs in §4.4), wind direction drift, and humidity anti-correlated
//! with temperature.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Instantaneous true atmospheric state at the site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeatherState {
    /// Time since simulation start (s).
    pub t_s: f64,
    /// Wind speed at 10 m (m/s).
    pub wind_speed_ms: f64,
    /// Wind direction (degrees, meteorological: 0 = from north).
    pub wind_dir_deg: f64,
    /// Air temperature (°C).
    pub temp_c: f64,
    /// Relative humidity (%).
    pub rel_humidity: f64,
}

/// Micro-climate generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeatherConfig {
    /// Daily mean temperature (°C).
    pub temp_mean_c: f64,
    /// Diurnal temperature amplitude (°C).
    pub temp_diurnal_c: f64,
    /// Baseline mean wind speed (m/s).
    pub wind_mean_ms: f64,
    /// Stationary SD of the AR(1) wind-gust process (m/s).
    pub wind_gust_sd_ms: f64,
    /// AR(1) coefficient per step of the gust process.
    pub wind_rho: f64,
    /// Probability per step that a weather front begins.
    pub front_prob_per_step: f64,
    /// Front magnitude: added wind speed (m/s) while a front is active.
    pub front_wind_boost_ms: f64,
    /// Front duration (steps).
    pub front_duration_steps: u32,
    /// Simulation step (s).
    pub step_s: f64,
}

impl Default for WeatherConfig {
    fn default() -> Self {
        WeatherConfig {
            temp_mean_c: 22.0,
            temp_diurnal_c: 9.0,
            wind_mean_ms: 2.5,
            wind_gust_sd_ms: 0.5,
            wind_rho: 0.85,
            front_prob_per_step: 0.0,
            front_wind_boost_ms: 4.5,
            front_duration_steps: 40,
            step_s: 60.0,
        }
    }
}

/// The micro-climate simulator.
#[derive(Debug, Clone)]
pub struct WeatherSim {
    config: WeatherConfig,
    rng: StdRng,
    t_s: f64,
    gust: f64,
    dir_deg: f64,
    front_remaining: u32,
}

impl WeatherSim {
    /// Create a seeded simulator.
    pub fn new(config: WeatherConfig, seed: u64) -> Self {
        WeatherSim {
            config,
            rng: StdRng::seed_from_u64(seed),
            t_s: 0.0,
            gust: 0.0,
            dir_deg: 315.0, // prevailing NW
            front_remaining: 0,
        }
    }

    /// A simulator with site defaults.
    pub fn exeter(seed: u64) -> Self {
        WeatherSim::new(WeatherConfig::default(), seed)
    }

    /// Schedule a front to begin on the next step (deterministic trigger
    /// for tests and scenario scripts).
    pub fn force_front(&mut self) {
        self.front_remaining = self.config.front_duration_steps;
    }

    /// True while a front passage is in progress.
    pub fn front_active(&self) -> bool {
        self.front_remaining > 0
    }

    /// Advance one step and return the new true state.
    pub fn step(&mut self) -> WeatherState {
        let c = self.config;
        self.t_s += c.step_s;
        // Diurnal cycle peaking at 15:00 local.
        let day_frac = (self.t_s / 86_400.0).fract();
        let temp = c.temp_mean_c
            + c.temp_diurnal_c * (2.0 * std::f64::consts::PI * (day_frac - 0.625)).cos();
        // AR(1) gust process.
        let w = gaussian(&mut self.rng);
        self.gust =
            c.wind_rho * self.gust + (1.0 - c.wind_rho * c.wind_rho).sqrt() * c.wind_gust_sd_ms * w;
        // Weather fronts.
        if self.front_remaining == 0 && self.rng.gen::<f64>() < c.front_prob_per_step {
            self.front_remaining = c.front_duration_steps;
        }
        let front_boost = if self.front_remaining > 0 {
            self.front_remaining -= 1;
            c.front_wind_boost_ms
        } else {
            0.0
        };
        let wind = (c.wind_mean_ms + self.gust + front_boost).max(0.0);
        // Direction drifts slowly; fronts veer it.
        self.dir_deg += gaussian(&mut self.rng) * 1.5 + if front_boost > 0.0 { 0.8 } else { 0.0 };
        self.dir_deg = self.dir_deg.rem_euclid(360.0);
        // Humidity anti-correlates with temperature.
        let rh =
            (78.0 - 1.8 * (temp - c.temp_mean_c) + gaussian(&mut self.rng) * 1.5).clamp(5.0, 100.0);
        WeatherState {
            t_s: self.t_s,
            wind_speed_ms: wind,
            wind_dir_deg: self.dir_deg,
            temp_c: temp,
            rel_humidity: rh,
        }
    }

    /// Advance `n` steps, returning the final state.
    pub fn run_steps(&mut self, n: usize) -> WeatherState {
        let mut last = self.step();
        for _ in 1..n {
            last = self.step();
        }
        last
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = WeatherSim::exeter(7);
        let mut b = WeatherSim::exeter(7);
        for _ in 0..100 {
            assert_eq!(a.step(), b.step());
        }
        let mut c = WeatherSim::exeter(8);
        c.step();
        // Different seed, different trajectory (statistically certain).
        assert_ne!(a.step().wind_speed_ms, c.step().wind_speed_ms);
    }

    #[test]
    fn wind_never_negative() {
        let mut sim = WeatherSim::exeter(3);
        for _ in 0..5_000 {
            assert!(sim.step().wind_speed_ms >= 0.0);
        }
    }

    #[test]
    fn diurnal_temperature_cycle() {
        let mut sim = WeatherSim::exeter(1);
        // Sample one full day at 1-min steps.
        let mut min_t = f64::INFINITY;
        let mut max_t = f64::NEG_INFINITY;
        for _ in 0..1440 {
            let s = sim.step();
            min_t = min_t.min(s.temp_c);
            max_t = max_t.max(s.temp_c);
        }
        let cfg = WeatherConfig::default();
        assert!(
            max_t - min_t > 1.5 * cfg.temp_diurnal_c,
            "diurnal swing {min_t}..{max_t}"
        );
    }

    #[test]
    fn forced_front_raises_wind() {
        let mut sim = WeatherSim::exeter(5);
        // Baseline mean over 30 steps.
        let base: f64 = (0..30).map(|_| sim.step().wind_speed_ms).sum::<f64>() / 30.0;
        sim.force_front();
        assert!(sim.front_active());
        let frontal: f64 = (0..20).map(|_| sim.step().wind_speed_ms).sum::<f64>() / 20.0;
        assert!(
            frontal > base + 2.0,
            "front must raise wind: base {base}, frontal {frontal}"
        );
    }

    #[test]
    fn humidity_in_physical_range() {
        let mut sim = WeatherSim::exeter(11);
        for _ in 0..2_000 {
            let s = sim.step();
            assert!((5.0..=100.0).contains(&s.rel_humidity));
            assert!((0.0..360.0).contains(&s.wind_dir_deg));
        }
    }

    #[test]
    fn gust_process_has_configured_spread() {
        let cfg = WeatherConfig {
            temp_diurnal_c: 0.0, // isolate wind
            ..Default::default()
        };
        let mut sim = WeatherSim::new(cfg, 13);
        let n = 20_000;
        let winds: Vec<f64> = (0..n).map(|_| sim.step().wind_speed_ms).collect();
        let mean = winds.iter().sum::<f64>() / n as f64;
        assert!((mean - cfg.wind_mean_ms).abs() < 0.15, "mean {mean}");
    }
}
