//! The CUPS station network and boundary-condition extraction.
//!
//! Stations report every 5 minutes (the paper's reporting interval). The
//! network aggregates the latest reports into the [`BoundaryConditions`]
//! record that parameterizes a CFD run — "instantaneous wind, temperature,
//! and humidity measurements taken at the screen boundaries (both inside
//! and outside)" (§2).
//!
//! Time is event-driven: the network registers two recurring sources on
//! an [`xg_sim::EventQueue`] — a 60 s weather tick and a 300 s report
//! round — and [`Advance::advance_to`] drains whatever falls due. At a
//! coincident instant (every 300 s) the weather tick executes first
//! (lower source id), reproducing the legacy "5 weather steps, then
//! measure" RNG order bit-for-bit.

use crate::facility::CupsFacility;
use crate::station::{Placement, WeatherStation};
use crate::telemetry::TelemetryRecord;
use crate::weather::{WeatherSim, WeatherState};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use xg_sim::{Advance, EventQueue, SimNs};

/// Reporting interval of the commodity weather stations (s).
pub const REPORT_INTERVAL_S: f64 = 300.0;

/// Weather micro-climate step (s); a report interval is 5 of them.
const WEATHER_STEP_S: f64 = 60.0;

/// Event-source id of the weather tick (fires before a coincident
/// report round: lower source wins the (time, source, seq) tie-break).
const SRC_WEATHER: u32 = 0;
/// Event-source id of the station report round.
const SRC_REPORT: u32 = 1;

/// The two recurring events of the station network.
#[derive(Debug, Clone, Copy)]
enum SensorEvent {
    /// Advance the micro-climate by one 60 s step.
    WeatherTick,
    /// Measure every station and stash the reports for
    /// [`SensorNetwork::take_reports`].
    ReportRound,
}

/// Boundary conditions for one CFD run, aggregated from station reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundaryConditions {
    /// Free-stream wind speed (m/s), from exterior stations.
    pub wind_speed_ms: f64,
    /// Free-stream wind direction (deg).
    pub wind_dir_deg: f64,
    /// Ambient (exterior) temperature (°C).
    pub ambient_temp_c: f64,
    /// Mean interior temperature (°C).
    pub interior_temp_c: f64,
    /// Mean interior wind speed (m/s) — the measurement the digital twin
    /// compares against the CFD prediction for breach detection.
    pub interior_wind_ms: f64,
    /// Relative humidity (%).
    pub rel_humidity: f64,
    /// Timestamp (s).
    pub t_s: f64,
}

/// The deployed station network.
pub struct SensorNetwork {
    /// The facility being monitored.
    pub facility: CupsFacility,
    stations: Vec<WeatherStation>,
    weather: WeatherSim,
    last_state: Option<WeatherState>,
    /// Stations currently offline (dropout fault): no report at poll time.
    down: BTreeSet<u32>,
    /// Stations with a frozen sensor head (stuck-value fault): they report
    /// on schedule but repeat their last healthy measurement.
    stuck: BTreeSet<u32>,
    last_reports: BTreeMap<u32, TelemetryRecord>,
    /// The event calendar driving weather ticks and report rounds.
    events: EventQueue<SensorEvent>,
    /// Reports measured by drained report rounds, awaiting
    /// [`take_reports`](Self::take_reports).
    pending: Vec<TelemetryRecord>,
    /// Report rounds completed (drives the deprecated `poll` shim's
    /// next-report target).
    reports_done: u64,
}

impl SensorNetwork {
    /// The paper-like deployment: four exterior stations (one per wall) and
    /// five interior stations (quincunx).
    pub fn cups_default(facility: CupsFacility, seed: u64) -> Self {
        let (l, w) = (facility.length_m, facility.width_m);
        let placements = vec![
            Placement::Exterior {
                x: -10.0,
                y: w / 2.0,
            },
            Placement::Exterior {
                x: l + 10.0,
                y: w / 2.0,
            },
            Placement::Exterior {
                x: l / 2.0,
                y: -10.0,
            },
            Placement::Exterior {
                x: l / 2.0,
                y: w + 10.0,
            },
            Placement::Interior {
                x: l * 0.25,
                y: w * 0.25,
            },
            Placement::Interior {
                x: l * 0.75,
                y: w * 0.25,
            },
            Placement::Interior {
                x: l * 0.5,
                y: w * 0.5,
            },
            Placement::Interior {
                x: l * 0.25,
                y: w * 0.75,
            },
            Placement::Interior {
                x: l * 0.75,
                y: w * 0.75,
            },
        ];
        let stations = placements
            .into_iter()
            .enumerate()
            .map(|(i, p)| WeatherStation::new(i as u32, p, seed))
            .collect();
        // 1 s buckets × 1024: both recurring periods (60 s, 300 s) stay
        // inside the wheel, so pushes and pops never touch the overflow
        // map.
        let mut events = EventQueue::with_layout(1_000_000_000, 1024);
        events.push(
            SimNs::from_secs_f64(WEATHER_STEP_S),
            SRC_WEATHER,
            SensorEvent::WeatherTick,
        );
        events.push(
            SimNs::from_secs_f64(REPORT_INTERVAL_S),
            SRC_REPORT,
            SensorEvent::ReportRound,
        );
        SensorNetwork {
            facility,
            stations,
            weather: WeatherSim::exeter(seed),
            last_state: None,
            down: BTreeSet::new(),
            stuck: BTreeSet::new(),
            last_reports: BTreeMap::new(),
            events,
            pending: Vec::new(),
            reports_done: 0,
        }
    }

    /// Inject or clear a station dropout fault: a down station produces no
    /// report at poll time (power loss, radio failure).
    pub fn set_station_down(&mut self, id: u32, down: bool) {
        if down {
            self.down.insert(id);
        } else {
            self.down.remove(&id);
        }
    }

    /// Inject or clear a stuck-value fault: the station keeps reporting on
    /// schedule but repeats its last healthy measurement (iced anemometer,
    /// wedged ADC).
    pub fn set_station_stuck(&mut self, id: u32, stuck: bool) {
        if stuck {
            self.stuck.insert(id);
        } else {
            self.stuck.remove(&id);
        }
    }

    /// Number of stations currently reporting live values (not down, not
    /// stuck).
    pub fn healthy_station_count(&self) -> usize {
        self.stations
            .iter()
            .filter(|s| !self.down.contains(&s.id) && !self.stuck.contains(&s.id))
            .count()
    }

    /// Number of stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Position and placement of a station: `(x, y, is_interior)`.
    pub fn station_position(&self, id: u32) -> Option<(f64, f64, bool)> {
        self.stations.iter().find(|s| s.id == id).map(|s| {
            let (x, y) = s.placement.position();
            (x, y, s.placement.is_interior())
        })
    }

    /// Force a weather front (scenario scripting).
    pub fn force_front(&mut self) {
        self.weather.force_front();
    }

    /// The most recent true weather state (None before the first poll).
    pub fn current_state(&self) -> Option<WeatherState> {
        self.last_state
    }

    /// Advance the weather to the next reporting instant and collect one
    /// report from every station.
    #[deprecated(
        since = "0.1.0",
        note = "use xg_sim::Advance::advance_to plus take_reports — poll is a shim over the event engine"
    )]
    pub fn poll(&mut self) -> Vec<TelemetryRecord> {
        let next = SimNs::from_secs_f64((self.reports_done + 1) as f64 * REPORT_INTERVAL_S);
        let _ = self.advance_to(next);
        self.take_reports()
    }

    /// Drain the reports measured by report rounds since the last call
    /// (in round order, station order within a round). Empty if no round
    /// fell due since then.
    pub fn take_reports(&mut self) -> Vec<TelemetryRecord> {
        std::mem::take(&mut self.pending)
    }

    /// One 300 s report round: measure every station against the current
    /// weather and stash the surviving reports.
    fn report_round(&mut self) {
        let Some(state) = self.last_state else {
            return;
        };
        let facility = &self.facility;
        // Every station is measured even when faulted so RNG streams stay
        // identical between faulted and fault-free runs of the same seed.
        for s in self.stations.iter_mut() {
            let measured = s.measure(&state, facility);
            if self.down.contains(&s.id) {
                continue;
            }
            let report = if self.stuck.contains(&s.id) {
                // Frozen head, live transmitter: stale values on a fresh
                // timestamp. A station stuck before its first measurement
                // freezes on that first value.
                let prev = *self.last_reports.entry(s.id).or_insert(measured);
                let mut r = prev;
                r.t_s = measured.t_s;
                r
            } else {
                self.last_reports.insert(s.id, measured);
                measured
            };
            self.pending.push(report);
        }
        self.reports_done += 1;
    }

    /// Aggregate a set of simultaneous reports into CFD boundary
    /// conditions. Returns `None` if either the exterior or interior group
    /// is empty.
    pub fn boundary_conditions(&self, reports: &[TelemetryRecord]) -> Option<BoundaryConditions> {
        let mut ext: Vec<&TelemetryRecord> = Vec::new();
        let mut int: Vec<&TelemetryRecord> = Vec::new();
        for r in reports {
            let station = self.stations.iter().find(|s| s.id == r.station_id)?;
            if station.placement.is_interior() {
                int.push(r);
            } else {
                ext.push(r);
            }
        }
        if ext.is_empty() || int.is_empty() {
            return None;
        }
        let mean = |xs: &[&TelemetryRecord], f: fn(&TelemetryRecord) -> f64| {
            xs.iter().map(|r| f(r)).sum::<f64>() / xs.len() as f64
        };
        // Circular mean for wind direction.
        let (mut sx, mut sy) = (0.0, 0.0);
        for r in &ext {
            let rad = r.wind_dir_deg.to_radians();
            sx += rad.cos();
            sy += rad.sin();
        }
        let dir = sy.atan2(sx).to_degrees().rem_euclid(360.0);
        Some(BoundaryConditions {
            wind_speed_ms: mean(&ext, |r| r.wind_speed_ms),
            wind_dir_deg: dir,
            ambient_temp_c: mean(&ext, |r| r.temp_c),
            interior_temp_c: mean(&int, |r| r.temp_c),
            interior_wind_ms: mean(&int, |r| r.wind_speed_ms),
            rel_humidity: mean(&ext, |r| r.rel_humidity),
            t_s: reports.first().map(|r| r.t_s).unwrap_or(0.0),
        })
    }
}

impl Advance for SensorNetwork {
    type Error = std::convert::Infallible;

    fn now(&self) -> SimNs {
        self.events.now()
    }

    /// Drain every weather tick and report round due at or before `t`,
    /// in calendar order, then move the clock to `t`. Reports land in
    /// the [`take_reports`](Self::take_reports) buffer. A quiet network
    /// (no events due) advances in O(1) — no per-second stepping.
    fn advance_to(&mut self, t: SimNs) -> Result<(), Self::Error> {
        while let Some(ev) = self.events.pop_due(t) {
            match ev.payload {
                SensorEvent::WeatherTick => {
                    self.last_state = Some(self.weather.run_steps(1));
                    self.events.push(
                        ev.at.saturating_add(SimNs::from_secs_f64(WEATHER_STEP_S)),
                        SRC_WEATHER,
                        SensorEvent::WeatherTick,
                    );
                }
                SensorEvent::ReportRound => {
                    self.report_round();
                    self.events.push(
                        ev.at
                            .saturating_add(SimNs::from_secs_f64(REPORT_INTERVAL_S)),
                        SRC_REPORT,
                        SensorEvent::ReportRound,
                    );
                }
            }
        }
        self.events.drain_clock_to(t);
        Ok(())
    }
}

#[cfg(test)]
// The tests below deliberately exercise the deprecated `poll` shim: they
// pin the legacy 5-minute polling contract that the event engine must
// keep reproducing bit-for-bit.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::breach::Breach;
    use crate::facility::Wall;

    fn network(seed: u64) -> SensorNetwork {
        SensorNetwork::cups_default(CupsFacility::default(), seed)
    }

    #[test]
    fn poll_reports_all_stations() {
        let mut net = network(1);
        let reports = net.poll();
        assert_eq!(reports.len(), net.station_count());
        let t = reports[0].t_s;
        assert!(reports.iter().all(|r| r.t_s == t), "simultaneous reports");
        assert!((t - REPORT_INTERVAL_S).abs() < 1e-9);
        // Next poll advances by exactly one interval.
        let t2 = net.poll()[0].t_s;
        assert!((t2 - 2.0 * REPORT_INTERVAL_S).abs() < 1e-9);
    }

    #[test]
    fn boundary_conditions_aggregate() {
        let mut net = network(2);
        let reports = net.poll();
        let bc = net.boundary_conditions(&reports).unwrap();
        assert!(bc.wind_speed_ms >= 0.0);
        assert!((0.0..360.0).contains(&bc.wind_dir_deg));
        // Interior wind must be attenuated relative to free stream (on
        // average; noise can perturb individual samples slightly).
        assert!(bc.interior_wind_ms < bc.wind_speed_ms);
    }

    #[test]
    fn boundary_conditions_need_both_groups() {
        let mut net = network(3);
        let reports = net.poll();
        // Keep only exterior reports (ids 0..4).
        let ext_only: Vec<_> = reports
            .iter()
            .filter(|r| r.station_id < 4)
            .cloned()
            .collect();
        assert!(net.boundary_conditions(&ext_only).is_none());
        assert!(net.boundary_conditions(&[]).is_none());
    }

    #[test]
    fn unknown_station_id_rejected() {
        let mut net = network(4);
        let mut reports = net.poll();
        reports[0].station_id = 999;
        assert!(net.boundary_conditions(&reports).is_none());
    }

    #[test]
    fn breach_raises_interior_wind_in_bc() {
        // Average over many polls: breach inflow must raise the interior
        // wind estimate relative to the intact facility.
        let mut intact = network(5);
        let mut breached = network(5);
        breached
            .facility
            .add_breach(Breach::equipment_tear(Wall::West, 5));
        let n = 40;
        let mut sum_intact = 0.0;
        let mut sum_breached = 0.0;
        for _ in 0..n {
            let ri = intact.poll();
            let rb = breached.poll();
            sum_intact += intact.boundary_conditions(&ri).unwrap().interior_wind_ms;
            sum_breached += breached.boundary_conditions(&rb).unwrap().interior_wind_ms;
        }
        assert!(
            sum_breached > sum_intact * 1.05,
            "breach must be visible: {sum_breached} vs {sum_intact}"
        );
    }

    #[test]
    fn station_dropout_removes_reports() {
        let mut net = network(7);
        assert_eq!(net.healthy_station_count(), net.station_count());
        net.set_station_down(0, true);
        net.set_station_down(4, true);
        let reports = net.poll();
        assert_eq!(reports.len(), net.station_count() - 2);
        assert!(reports
            .iter()
            .all(|r| r.station_id != 0 && r.station_id != 4));
        assert_eq!(net.healthy_station_count(), net.station_count() - 2);
        // Remaining stations still produce usable boundary conditions.
        assert!(net.boundary_conditions(&reports).is_some());
        // Repair: the station reports again next poll.
        net.set_station_down(0, false);
        net.set_station_down(4, false);
        assert_eq!(net.poll().len(), net.station_count());
    }

    #[test]
    fn all_exterior_down_starves_boundary_conditions() {
        let mut net = network(8);
        for id in 0..4 {
            net.set_station_down(id, true);
        }
        let reports = net.poll();
        assert!(
            net.boundary_conditions(&reports).is_none(),
            "no exterior group -> no CFD boundary conditions"
        );
    }

    #[test]
    fn stuck_station_repeats_values_with_fresh_timestamps() {
        let mut net = network(9);
        let first = net.poll();
        let baseline = *first.iter().find(|r| r.station_id == 2).unwrap();
        net.set_station_stuck(2, true);
        for k in 1..=3 {
            let reports = net.poll();
            let r = reports.iter().find(|r| r.station_id == 2).unwrap();
            assert_eq!(r.wind_speed_ms, baseline.wind_speed_ms, "frozen value");
            assert_eq!(r.temp_c, baseline.temp_c);
            let expect_t = (k + 1) as f64 * REPORT_INTERVAL_S;
            assert!((r.t_s - expect_t).abs() < 1e-9, "timestamp stays live");
        }
        net.set_station_stuck(2, false);
        // After repair the station tracks the weather again: over many
        // polls its readings must diverge from the frozen value.
        let mut diverged = false;
        for _ in 0..10 {
            let reports = net.poll();
            let r = reports.iter().find(|r| r.station_id == 2).unwrap();
            diverged |= (r.wind_speed_ms - baseline.wind_speed_ms).abs() > 1e-6;
        }
        assert!(diverged, "repaired station must report live values");
    }

    #[test]
    fn advance_to_matches_poll_bitwise() {
        // One big advance over 4 report intervals must replay the exact
        // event calendar the poll shim walks one interval at a time:
        // same reports, bit for bit, in the same order.
        let mut polled = network(31);
        let mut evented = network(31);
        let mut via_poll = Vec::new();
        for _ in 0..4 {
            via_poll.extend(polled.poll());
        }
        evented
            .advance_to(SimNs::from_secs_f64(4.0 * REPORT_INTERVAL_S))
            .unwrap();
        let via_events = evented.take_reports();
        assert_eq!(via_poll.len(), via_events.len());
        for (p, e) in via_poll.iter().zip(&via_events) {
            assert_eq!(p.station_id, e.station_id);
            assert_eq!(p.t_s.to_bits(), e.t_s.to_bits());
            assert_eq!(p.wind_speed_ms.to_bits(), e.wind_speed_ms.to_bits());
            assert_eq!(p.temp_c.to_bits(), e.temp_c.to_bits());
        }
        assert_eq!(evented.now(), SimNs::from_secs(1200));
    }

    #[test]
    fn advance_to_mid_interval_buffers_nothing() {
        let mut net = network(33);
        // 299 s: four weather ticks due, no report round yet.
        net.advance_to(SimNs::from_secs(299)).unwrap();
        assert!(net.take_reports().is_empty());
        assert!(net.current_state().is_some(), "weather ticks still fire");
        // The next second crosses the report instant.
        net.advance_to(SimNs::from_secs(300)).unwrap();
        assert_eq!(net.take_reports().len(), net.station_count());
    }

    #[test]
    fn front_visible_in_boundary_conditions() {
        let mut net = network(6);
        let mut pre = 0.0;
        for _ in 0..6 {
            let r = net.poll();
            pre = net.boundary_conditions(&r).unwrap().wind_speed_ms;
        }
        net.force_front();
        let r = net.poll();
        let during = net.boundary_conditions(&r).unwrap().wind_speed_ms;
        assert!(during > pre + 2.0, "front: {pre} -> {during}");
    }
}
