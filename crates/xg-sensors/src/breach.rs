//! Screen breach model.
//!
//! §2: unobserved events (bird strike, foraging fauna, theft damage) tear
//! the protective screen; "detecting and rapidly repairing screen breaches
//! in the commercial scale CUPS is a critical open problem." A breach is a
//! hole in one panel; its aerodynamic effect is a local porosity increase
//! that shows up as a wind-speed anomaly at nearby stations and as a
//! divergence between CFD prediction and measurement.

use crate::facility::Wall;
use serde::{Deserialize, Serialize};

/// A hole in a screen panel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Breach {
    /// Which wall is damaged.
    pub wall: Wall,
    /// Panel index along the wall.
    pub panel: usize,
    /// Open area of the tear (m²).
    pub area_m2: f64,
}

impl Breach {
    /// A breach of `area_m2` square metres in the given panel.
    pub fn new(wall: Wall, panel: usize, area_m2: f64) -> Self {
        Breach {
            wall,
            panel,
            area_m2: area_m2.max(0.0),
        }
    }

    /// A typical bird-strike tear (~0.5 m²).
    pub fn bird_strike(wall: Wall, panel: usize) -> Self {
        Breach::new(wall, panel, 0.5)
    }

    /// A large equipment tear (~6 m²).
    pub fn equipment_tear(wall: Wall, panel: usize) -> Self {
        Breach::new(wall, panel, 6.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_area_clamped() {
        let b = Breach::new(Wall::North, 0, -3.0);
        assert_eq!(b.area_m2, 0.0);
    }

    #[test]
    fn presets_ordered_by_severity() {
        let small = Breach::bird_strike(Wall::East, 1);
        let big = Breach::equipment_tear(Wall::East, 1);
        assert!(big.area_m2 > small.area_m2);
    }
}
