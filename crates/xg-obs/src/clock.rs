//! Sim/wall clock abstraction behind span timestamps.
//!
//! xGFabric's layers do not share a time base: the closed loop, the HPC
//! queue model, the network simulator and the fault windows all run on
//! *virtual* time (nothing sleeps; drivers advance a counter), while the
//! CFD solver burns real CPU and is timed on the *wall* clock. A span's
//! timestamps are meaningless without knowing which clock produced them,
//! so every [`SpanRecord`](crate::span::SpanRecord) carries a
//! [`ClockDomain`] and timestamps are integer microseconds in that
//! domain.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Which time base a timestamp belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClockDomain {
    /// Simulated (virtual) time, advanced by a discrete-event driver.
    Sim,
    /// Wall-clock time, measured from a process-local epoch.
    Wall,
}

impl ClockDomain {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            ClockDomain::Sim => "sim",
            ClockDomain::Wall => "wall",
        }
    }
}

/// The process-local wall epoch: all wall timestamps are microseconds
/// since the first call in this process, keeping them small and
/// monotonic (no system-clock steps).
fn wall_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds of wall time since the process epoch.
pub fn wall_now_us() -> u64 {
    wall_epoch().elapsed().as_micros() as u64
}

/// Nanoseconds of wall time since the process epoch — the profiler's
/// time base, kept here so every wall-clock read in the workspace stays
/// inside this allowlisted module.
pub fn wall_now_ns() -> u64 {
    wall_epoch().elapsed().as_nanos() as u64
}

/// A clock that yields microsecond timestamps in one [`ClockDomain`].
///
/// `Sim` clocks wrap a shared atomic counter so a discrete-event driver
/// and its instrumentation observe the same virtual now; `Wall` reads the
/// process-epoch monotonic clock.
#[derive(Clone, Debug)]
pub enum Clock {
    /// Wall time since the process epoch.
    Wall,
    /// Shared simulated time in microseconds.
    Sim(Arc<AtomicU64>),
}

impl Clock {
    /// A wall clock.
    pub fn wall() -> Self {
        Clock::Wall
    }

    /// A fresh simulated clock starting at zero.
    pub fn sim() -> Self {
        Clock::Sim(Arc::new(AtomicU64::new(0)))
    }

    /// A simulated clock sharing an existing microsecond counter.
    pub fn sim_shared(micros: Arc<AtomicU64>) -> Self {
        Clock::Sim(micros)
    }

    /// The domain this clock's timestamps belong to.
    pub fn domain(&self) -> ClockDomain {
        match self {
            Clock::Wall => ClockDomain::Wall,
            Clock::Sim(_) => ClockDomain::Sim,
        }
    }

    /// Current time in microseconds.
    pub fn now_us(&self) -> u64 {
        match self {
            Clock::Wall => wall_now_us(),
            Clock::Sim(m) => m.load(Ordering::Relaxed),
        }
    }

    /// Advance a simulated clock; no-op on a wall clock.
    pub fn advance_us(&self, us: u64) {
        if let Clock::Sim(m) = self {
            m.fetch_add(us, Ordering::Relaxed);
        }
    }

    /// Set a simulated clock to an absolute time; no-op on a wall clock.
    pub fn set_us(&self, us: u64) {
        if let Clock::Sim(m) = self {
            m.store(us, Ordering::Relaxed);
        }
    }
}

/// Convert fractional seconds (the fabric's `t_s` convention) to the
/// integer microseconds spans carry.
pub fn secs_to_us(s: f64) -> u64 {
    if s <= 0.0 {
        0
    } else {
        (s * 1e6).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances_and_shares() {
        let c = Clock::sim();
        let d = c.clone();
        c.advance_us(250);
        assert_eq!(d.now_us(), 250);
        d.set_us(1_000);
        assert_eq!(c.now_us(), 1_000);
        assert_eq!(c.domain(), ClockDomain::Sim);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = Clock::wall();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
        assert_eq!(c.domain(), ClockDomain::Wall);
        // advance/set are no-ops on wall clocks.
        c.advance_us(10);
        c.set_us(0);
    }

    #[test]
    fn secs_round_trip() {
        assert_eq!(secs_to_us(0.0), 0);
        assert_eq!(secs_to_us(-1.0), 0);
        assert_eq!(secs_to_us(1.5), 1_500_000);
        assert_eq!(secs_to_us(0.000_2), 200);
    }
}
