//! Hierarchical wall-time attribution: who ate the cycle budget?
//!
//! The span tracer answers *when* a stage ran; this profiler answers
//! *where the time went*, cumulatively, with hot-path-friendly cost. A
//! [`Profiler`] holds a tree of attribution nodes keyed by slash-joined
//! paths (`"cycle/ran.probe"`); each node carries a call count, total
//! and child-attributed nanoseconds (so self-time falls out as
//! `total − child`), and a log-linear duration histogram with the same
//! bounded relative error as [`crate::metrics::Histogram`].
//!
//! Recording is striped per thread exactly like the metrics registry's
//! histograms: a scoped-guard exit is one striped-mutex map update, so
//! fleet shards on different worker threads never contend and the
//! per-stripe trees **merge** into one attribution tree at snapshot
//! time. [`ProfileSnapshot`]s merge across processes/shards the same
//! way — the property the fleet rollups rely on to keep serial and
//! parallel attribution comparable.
//!
//! Three recording surfaces:
//!
//! * [`Profiler::scope`] / [`ProfScope::child`] — wall-clock scoped
//!   guards for hot paths (fleet cell stepping, CFD sweeps, the RIC
//!   period, CSPOT replication rounds);
//! * [`Profiler::record_at`] — explicit durations for deterministic
//!   (sim-domain) attribution, where bitwise serial/parallel equality
//!   must hold;
//! * [`Profiler::record_trace`] — ingest a completed span DAG (one
//!   closed-loop cycle), deriving each span's path from its parent
//!   chain; this is how the orchestrator's per-cycle spans become
//!   attribution without double timing.

use crate::clock::wall_now_ns;
use crate::metrics::{Histogram, HistogramConfig, HistogramSnapshot};
use crate::span::{SpanId, SpanRecord};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Path separator joining attribution-tree levels.
pub const PATH_SEP: char = '/';

/// Histogram accuracy for per-node duration distributions.
fn node_hist_config() -> HistogramConfig {
    HistogramConfig {
        rel_err: 0.01,
        // The node map is already striped per thread; one inner stripe
        // keeps the per-node histogram lock uncontended by construction.
        stripes: 1,
    }
}

/// One attribution node's mutable state.
#[derive(Debug)]
struct NodeCore {
    calls: u64,
    total_ns: u64,
    child_ns: u64,
    hist: Histogram,
}

impl NodeCore {
    fn new() -> Self {
        NodeCore {
            calls: 0,
            total_ns: 0,
            child_ns: 0,
            hist: Histogram::with_config(node_hist_config()),
        }
    }
}

/// A mergeable hierarchical wall-time profiler.
///
/// Cheap enough for hot paths: one striped-mutex `BTreeMap` update per
/// guard exit, no allocation when the node already exists.
#[derive(Debug)]
pub struct Profiler {
    stripes: Vec<Mutex<BTreeMap<String, NodeCore>>>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::with_stripes(4)
    }
}

impl Profiler {
    /// A profiler with the default stripe count.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// A profiler spreading recording threads over `stripes` independent
    /// trees (merged on snapshot). Tests use 1 for strict determinism.
    pub fn with_stripes(stripes: usize) -> Self {
        Profiler {
            stripes: (0..stripes.max(1))
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect(),
        }
    }

    /// Open a root scope; time is attributed when the guard drops.
    pub fn scope(&self, name: &str) -> ProfScope<'_> {
        ProfScope {
            prof: self,
            path: sanitize(name),
            start_ns: wall_now_ns(),
        }
    }

    /// Open a scope under an explicit parent path — the cross-thread
    /// form: a fleet worker attributes its cell work under the path of
    /// a scope opened on the coordinating thread.
    pub fn scope_under(&self, parent: &str, name: &str) -> ProfScope<'_> {
        ProfScope {
            prof: self,
            path: join(parent, name),
            start_ns: wall_now_ns(),
        }
    }

    /// Record an explicit duration at `path` (nanoseconds). The parent
    /// node (everything before the last `/`) is charged `dur_ns` of
    /// child time, so self-time stays consistent with guard recording.
    /// Integer addition into ordered maps makes this bitwise
    /// order-independent — the deterministic-attribution surface.
    pub fn record_at(&self, path: &str, dur_ns: u64) {
        self.record_inner(path, dur_ns);
    }

    /// Ingest a completed span DAG: each span's attribution path is its
    /// ancestor chain's names joined by `/`, its duration the span's
    /// microsecond interval. Spans whose parent is absent root at their
    /// own name. Pass spans of a single clock domain — mixing sim and
    /// wall durations in one tree makes the totals meaningless.
    pub fn record_trace(&self, spans: &[SpanRecord]) {
        let by_id: BTreeMap<(u64, SpanId), &SpanRecord> =
            spans.iter().map(|s| ((s.trace, s.id), s)).collect();
        let mut paths: BTreeMap<(u64, SpanId), String> = BTreeMap::new();
        for s in spans {
            let path = trace_path(s, &by_id, &mut paths);
            let dur_us = s.end_us.saturating_sub(s.start_us);
            self.record_inner(&path, dur_us.saturating_mul(1_000));
        }
    }

    fn record_inner(&self, path: &str, dur_ns: u64) {
        self.with_node(path, |n| {
            n.calls += 1;
            n.total_ns += dur_ns;
            n.hist.record(dur_ns as f64);
        });
        if let Some((parent, _)) = path.rsplit_once(PATH_SEP) {
            self.with_node(parent, |n| n.child_ns += dur_ns);
        }
    }

    fn with_node(&self, path: &str, f: impl FnOnce(&mut NodeCore)) {
        let slot = crate::metrics::stripe_slot() % self.stripes.len();
        let mut map = self.stripes[slot].lock();
        match map.get_mut(path) {
            Some(n) => f(n),
            None => {
                let mut n = NodeCore::new();
                f(&mut n);
                map.insert(path.to_string(), n);
            }
        }
    }

    /// A merged point-in-time snapshot of the attribution tree.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let mut snap = ProfileSnapshot::default();
        for stripe in &self.stripes {
            for (path, core) in stripe.lock().iter() {
                let node = ProfileNode {
                    calls: core.calls,
                    total_ns: core.total_ns,
                    child_ns: core.child_ns,
                    hist: core.hist.snapshot(),
                };
                match snap.nodes.get_mut(path) {
                    Some(existing) => existing.merge(&node),
                    None => {
                        snap.nodes.insert(path.clone(), node);
                    }
                }
            }
        }
        snap
    }
}

/// Compute (and memoize) the ancestor-chain path of one span.
fn trace_path(
    span: &SpanRecord,
    by_id: &BTreeMap<(u64, SpanId), &SpanRecord>,
    paths: &mut BTreeMap<(u64, SpanId), String>,
) -> String {
    if let Some(p) = paths.get(&(span.trace, span.id)) {
        return p.clone();
    }
    let path = match span.parent.and_then(|p| by_id.get(&(span.trace, p))) {
        // A parent-cycle in malformed input would recurse forever; the
        // tracer hands out strictly increasing ids, so parent < child
        // holds for every well-formed DAG and depth bounds the walk.
        Some(parent) if parent.id < span.id => join(&trace_path(parent, by_id, paths), &span.name),
        _ => sanitize(&span.name),
    };
    paths.insert((span.trace, span.id), path.clone());
    path
}

fn sanitize(name: &str) -> String {
    if name.contains(PATH_SEP) {
        name.replace(PATH_SEP, "_")
    } else {
        name.to_string()
    }
}

fn join(parent: &str, name: &str) -> String {
    let mut s = String::with_capacity(parent.len() + 1 + name.len());
    s.push_str(parent);
    s.push(PATH_SEP);
    s.push_str(&sanitize(name));
    s
}

/// A scoped attribution guard; records wall time on drop (or
/// [`finish`](ProfScope::finish)).
#[derive(Debug)]
pub struct ProfScope<'a> {
    prof: &'a Profiler,
    path: String,
    start_ns: u64,
}

impl<'a> ProfScope<'a> {
    /// This scope's full attribution path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Open a child scope (time attributed under this scope's path).
    pub fn child(&self, name: &str) -> ProfScope<'a> {
        ProfScope {
            prof: self.prof,
            path: join(&self.path, name),
            start_ns: wall_now_ns(),
        }
    }

    /// Close the scope now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for ProfScope<'_> {
    fn drop(&mut self) {
        let dur = wall_now_ns().saturating_sub(self.start_ns);
        self.prof.record_inner(&self.path, dur);
    }
}

/// One node of a [`ProfileSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileNode {
    /// Times the scope was entered (or records ingested).
    pub calls: u64,
    /// Total nanoseconds attributed to this node.
    pub total_ns: u64,
    /// Nanoseconds attributed to this node's children.
    pub child_ns: u64,
    /// Duration distribution (nanoseconds, bounded relative error).
    pub hist: HistogramSnapshot,
}

impl ProfileNode {
    /// Time spent in this node itself, excluding children.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    /// Merge another node's state into this one.
    pub fn merge(&mut self, other: &ProfileNode) {
        self.calls += other.calls;
        self.total_ns += other.total_ns;
        self.child_ns += other.child_ns;
        self.hist.merge(&other.hist);
    }
}

/// An immutable merged view of a [`Profiler`], itself mergeable across
/// fleet shards: nodes combine by path with integer addition (and
/// histogram bucket addition), so merge order never changes the result.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileSnapshot {
    /// Attribution nodes by slash-joined path, sorted.
    pub nodes: BTreeMap<String, ProfileNode>,
}

impl ProfileSnapshot {
    /// Merge another snapshot into this one.
    pub fn merge(&mut self, other: &ProfileSnapshot) {
        for (path, node) in &other.nodes {
            match self.nodes.get_mut(path) {
                Some(existing) => existing.merge(node),
                None => {
                    self.nodes.insert(path.clone(), node.clone());
                }
            }
        }
    }

    /// Total self-time across all nodes (= total attributed time, since
    /// every nanosecond is self-time of exactly one node).
    pub fn total_self_ns(&self) -> u64 {
        self.nodes.values().map(ProfileNode::self_ns).sum()
    }

    /// Whether no time has been attributed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Render an attribution flame summary: one row per node, sorted by
/// self-time descending (the "who ate the budget" ordering).
pub fn render_profile(snap: &ProfileSnapshot) -> String {
    let mut rows: Vec<(&String, &ProfileNode)> = snap.nodes.iter().collect();
    rows.sort_by(|a, b| b.1.self_ns().cmp(&a.1.self_ns()).then(a.0.cmp(b.0)));
    let total = snap.total_self_ns().max(1) as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<44} {:>8} {:>12} {:>12} {:>12} {:>12} {:>6}",
        "path", "calls", "self(ms)", "total(ms)", "p50(us)", "p99(us)", "self%"
    );
    for (path, n) in rows {
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>12.3} {:>12.3} {:>12.1} {:>12.1} {:>5.1}%",
            path,
            n.calls,
            n.self_ns() as f64 / 1e6,
            n.total_ns as f64 / 1e6,
            n.hist.quantile(0.5).unwrap_or(0.0) / 1e3,
            n.hist.quantile(0.99).unwrap_or(0.0) / 1e3,
            n.self_ns() as f64 / total * 100.0,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockDomain;

    #[test]
    fn scoped_guards_build_a_tree_with_self_and_child_time() {
        let prof = Profiler::with_stripes(1);
        {
            let cycle = prof.scope("cycle");
            {
                let _probe = cycle.child("ran.probe");
                std::hint::black_box(0);
            }
            cycle.child("gateway.ship").finish();
        }
        let snap = prof.snapshot();
        let cycle = &snap.nodes["cycle"];
        assert_eq!(cycle.calls, 1);
        let probe = &snap.nodes["cycle/ran.probe"];
        assert_eq!(probe.calls, 1);
        assert!(cycle.total_ns >= cycle.child_ns);
        assert_eq!(
            cycle.child_ns,
            probe.total_ns + snap.nodes["cycle/gateway.ship"].total_ns
        );
        assert_eq!(cycle.self_ns(), cycle.total_ns - cycle.child_ns);
    }

    #[test]
    fn record_at_is_deterministic_and_charges_the_parent() {
        let a = Profiler::with_stripes(1);
        let b = Profiler::with_stripes(1);
        // Same records, different order: bitwise identical snapshots.
        for (path, ns) in [("step/cell", 5), ("step/cell", 7), ("step", 20)] {
            a.record_at(path, ns);
        }
        for (path, ns) in [("step", 20), ("step/cell", 7), ("step/cell", 5)] {
            b.record_at(path, ns);
        }
        assert_eq!(a.snapshot(), b.snapshot());
        let snap = a.snapshot();
        assert_eq!(snap.nodes["step"].child_ns, 12);
        assert_eq!(snap.nodes["step"].self_ns(), 8);
        assert_eq!(snap.nodes["step/cell"].calls, 2);
    }

    #[test]
    fn snapshots_merge_like_one_profiler() {
        let a = Profiler::with_stripes(1);
        let b = Profiler::with_stripes(1);
        let all = Profiler::with_stripes(1);
        for i in 0..50u64 {
            let (shard, ns) = (if i % 2 == 0 { &a } else { &b }, 100 + i);
            shard.record_at("fleet/cell", ns);
            all.record_at("fleet/cell", ns);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        assert_eq!(merged.nodes["fleet/cell"].calls, 50);
    }

    #[test]
    fn record_trace_derives_paths_from_parent_chains() {
        let spans = vec![
            SpanRecord {
                trace: 1,
                id: 1,
                parent: None,
                name: "cycle".into(),
                domain: ClockDomain::Wall,
                start_us: 0,
                end_us: 100,
                attrs: vec![],
            },
            SpanRecord {
                trace: 1,
                id: 2,
                parent: Some(1),
                name: "ran.probe".into(),
                domain: ClockDomain::Wall,
                start_us: 0,
                end_us: 60,
                attrs: vec![],
            },
            SpanRecord {
                trace: 1,
                id: 3,
                parent: Some(99), // evicted parent: roots at its own name
                name: "orphan".into(),
                domain: ClockDomain::Wall,
                start_us: 0,
                end_us: 5,
                attrs: vec![],
            },
        ];
        let prof = Profiler::with_stripes(1);
        prof.record_trace(&spans);
        let snap = prof.snapshot();
        assert_eq!(snap.nodes["cycle"].total_ns, 100_000);
        assert_eq!(snap.nodes["cycle"].child_ns, 60_000);
        assert_eq!(snap.nodes["cycle/ran.probe"].total_ns, 60_000);
        assert_eq!(snap.nodes["orphan"].total_ns, 5_000);
        assert_eq!(snap.total_self_ns(), 100_000 + 5_000);
    }

    #[test]
    fn concurrent_guard_exits_stripe_without_loss() {
        let prof = std::sync::Arc::new(Profiler::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = std::sync::Arc::clone(&prof);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let _g = p.scope_under("fleet.step", "cell");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        let snap = prof.snapshot();
        assert_eq!(snap.nodes["fleet.step/cell"].calls, 2000);
        assert_eq!(snap.nodes["fleet.step"].child_ns, {
            snap.nodes["fleet.step/cell"].total_ns
        });
    }

    #[test]
    fn slashes_in_names_cannot_forge_hierarchy() {
        let prof = Profiler::with_stripes(1);
        prof.scope("a/b").finish();
        let snap = prof.snapshot();
        assert!(snap.nodes.contains_key("a_b"));
        assert!(!snap.nodes.contains_key("a/b"));
    }

    #[test]
    fn render_orders_by_self_time() {
        let prof = Profiler::with_stripes(1);
        prof.record_at("big", 9_000_000);
        prof.record_at("small", 1_000_000);
        let text = render_profile(&prof.snapshot());
        let big = text.find("big").expect("big row");
        let small = text.find("small").expect("small row");
        assert!(big < small, "self-time descending:\n{text}");
        assert!(text.contains("self%"));
    }
}
