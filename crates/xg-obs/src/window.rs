//! Sliding-window views over a [`MetricsRegistry`].
//!
//! Cumulative counters and histograms answer "what happened since the
//! process started"; an SLO watchdog needs "what happened over the last
//! 30 minutes". [`MetricsWindow`] bridges the two without touching the
//! hot recording path: each tick it snapshots the registry and diffs
//! against the previous snapshot, producing one *interval delta* — per
//! metric, the counter increments, gauge samples, and histogram
//! sub-snapshots of that interval. A bounded ring of the most recent
//! intervals then merges on demand into a [`WindowView`], reusing the
//! log-linear histograms' mergeability (bucket-count addition runs both
//! forwards for merges and backwards for deltas), so windowed quantiles
//! keep the same α relative-error bound as the cumulative ones.

use crate::metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Shape of the sliding window.
#[derive(Clone, Copy, Debug)]
pub struct WindowConfig {
    /// Virtual seconds between ticks (one sub-interval per tick).
    pub interval_s: f64,
    /// Sub-intervals retained; the window spans `interval_s * intervals`.
    pub intervals: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        // The paper's loop: 300 s report cycles, 30-minute duty cycle.
        WindowConfig {
            interval_s: 300.0,
            intervals: 6,
        }
    }
}

/// Summary of one gauge's samples inside a window (gauges are sampled at
/// tick resolution, not per write).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GaugeStats {
    /// Ticks sampled.
    pub samples: u64,
    /// Sum of sampled values (for the mean).
    pub sum: f64,
    /// Smallest sampled value.
    pub min: f64,
    /// Largest sampled value.
    pub max: f64,
    /// Most recent sampled value.
    pub last: f64,
}

impl GaugeStats {
    fn observe(&mut self, v: f64) {
        if self.samples == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.samples += 1;
        self.sum += v;
        self.last = v;
    }

    /// Mean of the sampled values, or `None` if never sampled.
    pub fn mean(&self) -> Option<f64> {
        (self.samples > 0).then(|| self.sum / self.samples as f64)
    }
}

/// One tick's worth of activity.
#[derive(Clone, Debug, Default)]
struct IntervalDelta {
    t_s: f64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

/// A merged view of the last N intervals.
#[derive(Clone, Debug, Default)]
pub struct WindowView {
    /// Virtual time of the oldest interval in the view (s).
    pub from_s: f64,
    /// Virtual time of the newest interval in the view (s).
    pub to_s: f64,
    /// Counter increments over the window, by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge sample summaries over the window, by name.
    pub gauges: BTreeMap<String, GaugeStats>,
    /// Merged histogram deltas over the window, by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Total wall of virtual time the view covers (s).
    span_s: f64,
}

impl WindowView {
    /// Virtual seconds the view covers.
    pub fn span_s(&self) -> f64 {
        self.span_s
    }

    /// Counter increments over the window (0 for an unknown counter).
    pub fn delta(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counter rate over the window, events per second.
    pub fn rate(&self, name: &str) -> f64 {
        if self.span_s <= 0.0 {
            0.0
        } else {
            self.delta(name) as f64 / self.span_s
        }
    }

    /// Windowed histogram quantile (`None` if absent or empty).
    pub fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        let h = self.histograms.get(name)?;
        h.quantile(q)
    }

    /// Windowed histogram mean (`None` if absent or empty).
    pub fn hist_mean(&self, name: &str) -> Option<f64> {
        self.histograms.get(name)?.mean()
    }

    /// Windowed histogram sample count.
    pub fn hist_count(&self, name: &str) -> u64 {
        self.histograms.get(name).map(|h| h.count()).unwrap_or(0)
    }

    /// Gauge sample summary over the window.
    pub fn gauge(&self, name: &str) -> Option<&GaugeStats> {
        self.gauges.get(name)
    }
}

/// Maintains the ring of interval deltas over one registry.
///
/// Drive it from the discrete-event loop: call [`MetricsWindow::tick`]
/// once per interval boundary with the registry and the current virtual
/// time. Memory is bounded by `intervals` × live metric count.
#[derive(Debug, Default)]
pub struct MetricsWindow {
    cfg: WindowConfig,
    prev: Option<MetricsSnapshot>,
    ring: VecDeque<IntervalDelta>,
    ticks: u64,
    /// When set, ticks snapshot only these instruments. A window that
    /// feeds a fixed consumer (the SLO watchdog) then costs per tick
    /// what that consumer reads, not what the whole registry holds.
    focus: Option<BTreeSet<String>>,
}

impl MetricsWindow {
    /// An empty window with the given shape.
    pub fn new(cfg: WindowConfig) -> Self {
        MetricsWindow {
            cfg,
            prev: None,
            ring: VecDeque::with_capacity(cfg.intervals.max(1)),
            ticks: 0,
            focus: None,
        }
    }

    /// Restrict every subsequent tick to the named instruments. Metrics
    /// outside the set no longer appear in views; call before the first
    /// tick so the window's history is uniform.
    pub fn focus(&mut self, names: BTreeSet<String>) {
        self.focus = Some(names);
    }

    /// The configured shape.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// Ticks observed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Close the current interval at virtual time `t_s`: diff the registry
    /// against the previous tick's snapshot and push the delta into the
    /// ring (evicting the oldest interval once full).
    pub fn tick(&mut self, registry: &MetricsRegistry, t_s: f64) {
        let snap = match &self.focus {
            Some(names) => registry.snapshot_of(names),
            None => registry.snapshot(),
        };
        let mut delta = IntervalDelta {
            t_s,
            ..Default::default()
        };
        for (name, &v) in &snap.counters {
            let before = self
                .prev
                .as_ref()
                .and_then(|p| p.counters.get(name))
                .copied()
                .unwrap_or(0);
            delta
                .counters
                .insert(name.clone(), v.saturating_sub(before));
        }
        for (name, &v) in &snap.gauges {
            delta.gauges.insert(name.clone(), v);
        }
        for (name, h) in &snap.histograms {
            let d = match self.prev.as_ref().and_then(|p| p.histograms.get(name)) {
                Some(before) => h.delta_since(before),
                None => h.clone(),
            };
            delta.histograms.insert(name.clone(), d);
        }
        self.ring.push_back(delta);
        while self.ring.len() > self.cfg.intervals.max(1) {
            self.ring.pop_front();
        }
        self.prev = Some(snap);
        self.ticks += 1;
    }

    /// Merge the retained intervals into one view.
    pub fn view(&self) -> WindowView {
        let mut view = WindowView {
            from_s: self.ring.front().map(|d| d.t_s).unwrap_or(0.0),
            to_s: self.ring.back().map(|d| d.t_s).unwrap_or(0.0),
            span_s: self.ring.len() as f64 * self.cfg.interval_s,
            ..Default::default()
        };
        for d in &self.ring {
            for (name, &v) in &d.counters {
                *view.counters.entry(name.clone()).or_insert(0) += v;
            }
            for (name, &v) in &d.gauges {
                view.gauges.entry(name.clone()).or_default().observe(v);
            }
            for (name, h) in &d.histograms {
                view.histograms
                    .entry(name.clone())
                    .and_modify(|acc| acc.merge(h))
                    .or_insert_with(|| h.clone());
            }
        }
        view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn window() -> MetricsWindow {
        MetricsWindow::new(WindowConfig {
            interval_s: 300.0,
            intervals: 3,
        })
    }

    #[test]
    fn counter_deltas_slide_out_of_the_window() {
        let reg = MetricsRegistry::new();
        let mut w = window();
        let c = reg.counter("events");
        // 10 events in interval 1, then silence.
        c.add(10);
        w.tick(&reg, 300.0);
        assert_eq!(w.view().delta("events"), 10);
        for k in 2..=4 {
            w.tick(&reg, k as f64 * 300.0);
        }
        // Interval 1 has slid out: the burst is gone from the view.
        assert_eq!(w.view().delta("events"), 0);
        assert_eq!(w.view().rate("events"), 0.0);
        assert_eq!(w.view().span_s(), 900.0);
    }

    #[test]
    fn windowed_quantiles_see_only_recent_samples() {
        let reg = MetricsRegistry::new();
        let mut w = window();
        let h = reg.histogram("latency_ms");
        for _ in 0..100 {
            h.record(1.0);
        }
        w.tick(&reg, 300.0);
        for _ in 0..100 {
            h.record(1000.0);
        }
        w.tick(&reg, 600.0);
        // Cumulative p50 is 1.0 (or near), but the most recent interval
        // alone is all-slow; a 2-interval view mixes both.
        let view = w.view();
        assert_eq!(view.hist_count("latency_ms"), 200);
        let p99 = view.quantile("latency_ms", 0.99).unwrap();
        assert!((p99 - 1000.0).abs() <= 0.02 * 1000.0, "p99 {p99}");
        // Slide the fast interval out entirely.
        w.tick(&reg, 900.0);
        w.tick(&reg, 1200.0);
        let view = w.view();
        assert_eq!(view.hist_count("latency_ms"), 100);
        let p50 = view.quantile("latency_ms", 0.5).unwrap();
        assert!((p50 - 1000.0).abs() <= 0.02 * 1000.0, "p50 {p50}");
        assert!((view.hist_mean("latency_ms").unwrap() - 1000.0).abs() < 25.0);
    }

    #[test]
    fn gauges_are_sampled_per_tick() {
        let reg = MetricsRegistry::new();
        let mut w = window();
        let g = reg.gauge("backlog");
        for (t, v) in [(300.0, 5.0), (600.0, 9.0), (900.0, 1.0)] {
            g.set(v);
            w.tick(&reg, t);
        }
        let view = w.view();
        let stats = view.gauge("backlog").unwrap();
        assert_eq!(stats.samples, 3);
        assert_eq!(stats.max, 9.0);
        assert_eq!(stats.last, 1.0);
        assert!((stats.mean().unwrap() - 5.0).abs() < 1e-9);
        assert_eq!(view.from_s, 300.0);
        assert_eq!(view.to_s, 900.0);
    }

    #[test]
    fn empty_window_is_inert() {
        let w = window();
        let view = w.view();
        assert_eq!(view.delta("anything"), 0);
        assert_eq!(view.rate("anything"), 0.0);
        assert!(view.quantile("anything", 0.5).is_none());
        assert_eq!(view.span_s(), 0.0);
    }
}
