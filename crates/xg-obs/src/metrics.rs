//! Sharded metrics registry: counters, gauges, log-linear histograms.
//!
//! The registry is built for the fabric's hot paths: name lookup happens
//! once (components resolve their instruments at construction and hold
//! the `Arc`s), after which a counter increment is a relaxed atomic add
//! and a histogram record is one striped-mutex bucket bump. Histograms
//! are **log-linear** (DDSketch-style): bucket boundaries at powers of
//! `γ = (1+α)/(1-α)` guarantee every quantile estimate is within relative
//! error `α` of an actual sample, and two histograms merge by adding
//! bucket counts — the property the shard striping (and multi-site
//! aggregation) relies on.

use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Histogram accuracy/concurrency knobs.
#[derive(Clone, Copy, Debug)]
pub struct HistogramConfig {
    /// Guaranteed relative error of quantile estimates (0 < α < 1).
    pub rel_err: f64,
    /// Number of independently locked stripes `record` spreads over.
    pub stripes: usize,
}

impl Default for HistogramConfig {
    fn default() -> Self {
        HistogramConfig {
            rel_err: 0.01,
            stripes: 4,
        }
    }
}

/// Values at or below this threshold land in the dedicated zero bucket
/// (log buckets cannot represent zero).
const ZERO_THRESHOLD: f64 = 1e-12;

/// One stripe's bucket state. Sparse: the closed loop's latencies span
/// ~10 decades (µs transfers to multi-minute solves) but touch only a
/// few hundred buckets.
#[derive(Debug, Default, Clone, PartialEq)]
struct HistCore {
    buckets: BTreeMap<i32, u64>,
    zero: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl HistCore {
    fn record(&mut self, v: f64, idx: Option<i32>) {
        match idx {
            Some(i) => *self.buckets.entry(i).or_insert(0) += 1,
            None => self.zero += 1,
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    fn merge(&mut self, other: &HistCore) {
        for (&i, &n) in &other.buckets {
            *self.buckets.entry(i).or_insert(0) += n;
        }
        self.zero += other.zero;
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A mergeable log-linear histogram with bounded relative error.
///
/// `record` is thread-safe and spreads contention over `stripes`
/// independently locked cores; queries merge the stripes on demand.
#[derive(Debug)]
pub struct Histogram {
    rel_err: f64,
    ln_gamma: f64,
    stripes: Vec<Mutex<HistCore>>,
}

/// Round-robin stripe assignment, one slot per thread. Shared with the
/// profiler so every striped structure in the crate agrees on a
/// thread's slot.
pub(crate) fn stripe_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|s| *s)
}

impl Histogram {
    /// A histogram with the given accuracy configuration.
    pub fn with_config(cfg: HistogramConfig) -> Self {
        let rel_err = cfg.rel_err.clamp(1e-6, 0.5);
        let gamma = (1.0 + rel_err) / (1.0 - rel_err);
        Histogram {
            rel_err,
            ln_gamma: gamma.ln(),
            stripes: (0..cfg.stripes.max(1))
                .map(|_| Mutex::new(HistCore::default()))
                .collect(),
        }
    }

    /// The configured relative-error bound α.
    pub fn rel_err(&self) -> f64 {
        self.rel_err
    }

    fn bucket_index(&self, v: f64) -> Option<i32> {
        if v <= ZERO_THRESHOLD {
            None
        } else {
            Some((v.ln() / self.ln_gamma).ceil() as i32)
        }
    }

    /// Record one sample. Non-finite samples are dropped; non-positive
    /// samples land in the zero bucket and estimate as 0.
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let v = v.max(0.0);
        let idx = self.bucket_index(v);
        let slot = stripe_slot() % self.stripes.len();
        self.stripes[slot].lock().record(v, idx);
    }

    /// A point-in-time snapshot merging all stripes.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut core = HistCore::default();
        for s in &self.stripes {
            core.merge(&s.lock());
        }
        HistogramSnapshot {
            rel_err: self.rel_err,
            ln_gamma: self.ln_gamma,
            core,
        }
    }

    /// Convenience: quantile straight off a fresh snapshot.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.snapshot().quantile(q)
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().count).sum()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::with_config(HistogramConfig::default())
    }
}

/// An immutable merged view of a [`Histogram`], itself mergeable: two
/// snapshots with the same accuracy combine by bucket-count addition into
/// exactly the state one histogram would hold had it seen both streams.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    rel_err: f64,
    ln_gamma: f64,
    core: HistCore,
}

impl HistogramSnapshot {
    /// Samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.core.count
    }

    /// Sum of all samples (exact, not bucketed).
    pub fn sum(&self) -> f64 {
        self.core.sum
    }

    /// Exact smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.core.count > 0).then_some(self.core.min)
    }

    /// Exact largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.core.count > 0).then_some(self.core.max)
    }

    /// Mean of all samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.core.count > 0).then_some(self.core.sum / self.core.count as f64)
    }

    /// The q-quantile (`0.0 ..= 1.0`): an estimate within relative error
    /// α of the sample at rank `⌊q·(n−1)⌋` of the sorted stream.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.core.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.core.count - 1) as f64).floor() as u64;
        let mut cum = self.core.zero;
        if cum > rank {
            return Some(0.0);
        }
        for (&i, &n) in &self.core.buckets {
            cum += n;
            if cum > rank {
                // Midpoint estimate 2γ^i/(γ+1): within ±α of every value
                // in the bucket's (γ^(i-1), γ^i] range.
                let gamma = self.ln_gamma.exp();
                return Some((i as f64 * self.ln_gamma).exp() * 2.0 / (gamma + 1.0));
            }
        }
        self.max()
    }

    /// Merge another snapshot into this one (accuracies must match).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert!(
            (self.rel_err - other.rel_err).abs() < f64::EPSILON,
            "cannot merge histograms with different error bounds"
        );
        self.core.merge(&other.core);
    }

    /// The samples recorded between `earlier` and this snapshot, as a new
    /// snapshot: bucket counts subtract exactly (the same mergeability
    /// property run backwards), so quantiles of the delta keep the α
    /// relative-error bound. `min`/`max` cannot be recovered exactly from
    /// cumulative state; the delta estimates them from its outermost
    /// occupied buckets, which stays within α of the true extremes.
    ///
    /// `earlier` must be an older snapshot of the *same* histogram;
    /// mismatched accuracies panic and counter-intuitive (negative)
    /// deltas saturate to empty.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        assert!(
            (self.rel_err - earlier.rel_err).abs() < f64::EPSILON,
            "cannot diff histograms with different error bounds"
        );
        let mut buckets = BTreeMap::new();
        for (&i, &n) in &self.core.buckets {
            let before = earlier.core.buckets.get(&i).copied().unwrap_or(0);
            let d = n.saturating_sub(before);
            if d > 0 {
                buckets.insert(i, d);
            }
        }
        let zero = self.core.zero.saturating_sub(earlier.core.zero);
        let count = self.core.count.saturating_sub(earlier.core.count);
        let sum = (self.core.sum - earlier.core.sum).max(0.0);
        let gamma = self.ln_gamma.exp();
        let (min, max) = if count == 0 {
            (0.0, 0.0)
        } else {
            // Midpoint estimates (2γ^i/(γ+1)) are within α of any value
            // in bucket i; the bucket *edge* would only be within 2α.
            let lo = if zero > 0 {
                0.0
            } else {
                buckets
                    .keys()
                    .next()
                    .map(|&i| (i as f64 * self.ln_gamma).exp() * 2.0 / (gamma + 1.0))
                    .unwrap_or(0.0)
            };
            let hi = buckets
                .keys()
                .next_back()
                .map(|&i| (i as f64 * self.ln_gamma).exp() * 2.0 / (gamma + 1.0))
                .unwrap_or(0.0);
            (lo, hi)
        };
        HistogramSnapshot {
            rel_err: self.rel_err,
            ln_gamma: self.ln_gamma,
            core: HistCore {
                buckets,
                zero,
                count,
                sum,
                min,
                max,
            },
        }
    }
}

const REGISTRY_SHARDS: usize = 8;

/// One named instrument.
#[derive(Clone, Debug)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A name-sharded instrument registry.
///
/// Lookup is get-or-create; components resolve their instruments once
/// and hold the `Arc`s. Re-registering a name as a different instrument
/// kind returns a fresh detached instrument (a programming error made
/// visible by its absence from snapshots) rather than clobbering data.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    shards: [RwLock<HashMap<String, Instrument>>; REGISTRY_SHARDS],
    help: RwLock<BTreeMap<String, String>>,
}

fn shard_of(name: &str) -> usize {
    // FNV-1a, cheap and stable.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % REGISTRY_SHARDS as u64) as usize
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        wrap: impl Fn(Arc<T>) -> Instrument,
        unwrap: impl Fn(&Instrument) -> Option<Arc<T>>,
        make: impl Fn() -> T,
    ) -> Arc<T> {
        let shard = &self.shards[shard_of(name)];
        if let Some(found) = shard.read().get(name).and_then(&unwrap) {
            return found;
        }
        let mut map = shard.write();
        match map.get(name).and_then(&unwrap) {
            Some(found) => found,
            None if map.contains_key(name) => Arc::new(make()), // kind mismatch: detached
            None => {
                let fresh = Arc::new(make());
                map.insert(name.to_string(), wrap(Arc::clone(&fresh)));
                fresh
            }
        }
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            Instrument::Counter,
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            Counter::default,
        )
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            Instrument::Gauge,
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            Gauge::default,
        )
    }

    /// Get or create a histogram with default accuracy.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, HistogramConfig::default())
    }

    /// Get or create a histogram with explicit accuracy (the config only
    /// applies on first registration).
    pub fn histogram_with(&self, name: &str, cfg: HistogramConfig) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            Instrument::Histogram,
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || Histogram::with_config(cfg),
        )
    }

    /// Register a one-line help text for an instrument name, surfaced by
    /// the Prometheus exporter as a `# HELP` line. Optional: names with
    /// no registered help render exactly as before. Last write wins.
    pub fn set_help(&self, name: &str, help: &str) {
        self.help.write().insert(name.to_string(), help.to_string());
    }

    /// The registered help text for a name, if any.
    pub fn help(&self, name: &str) -> Option<String> {
        self.help.read().get(name).cloned()
    }

    /// A point-in-time snapshot of every registered instrument, sorted
    /// by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            help: self.help.read().clone(),
            ..MetricsSnapshot::default()
        };
        for shard in &self.shards {
            for (name, inst) in shard.read().iter() {
                Self::snap_one(&mut snap, name, inst);
            }
        }
        snap
    }

    /// A snapshot restricted to the named instruments (no help texts).
    /// A consumer that only ever reads a fixed metric set — the SLO
    /// window diffing the registry every report cycle — pays for those
    /// instruments alone instead of cloning every live histogram.
    pub fn snapshot_of(&self, names: &std::collections::BTreeSet<String>) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for name in names {
            let guard = self.shards[shard_of(name)].read();
            if let Some(inst) = guard.get(name) {
                Self::snap_one(&mut snap, name, inst);
            }
        }
        snap
    }

    fn snap_one(snap: &mut MetricsSnapshot, name: &str, inst: &Instrument) {
        match inst {
            Instrument::Counter(c) => {
                snap.counters.insert(name.to_string(), c.get());
            }
            Instrument::Gauge(g) => {
                snap.gauges.insert(name.to_string(), g.get());
            }
            Instrument::Histogram(h) => {
                snap.histograms.insert(name.to_string(), h.snapshot());
            }
        }
    }
}

/// A sorted point-in-time view of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Registered help texts by name (optional; often empty).
    pub help: BTreeMap<String, String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.counter("a").inc();
        reg.counter("a").add(4);
        reg.gauge("g").set(2.5);
        assert_eq!(reg.counter("a").get(), 5);
        assert_eq!(reg.gauge("g").get(), 2.5);
    }

    #[test]
    fn kind_mismatch_returns_detached_instrument() {
        let reg = MetricsRegistry::new();
        reg.counter("x").inc();
        let g = reg.gauge("x"); // wrong kind: detached, does not clobber
        g.set(9.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["x"], 1);
        assert!(!snap.gauges.contains_key("x"));
    }

    #[test]
    fn histogram_quantiles_bound_error() {
        let h = Histogram::with_config(HistogramConfig {
            rel_err: 0.01,
            stripes: 4,
        });
        let mut vals: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.37).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_by(f64::total_cmp);
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let est = snap.quantile(q).unwrap();
            let exact = vals[(q * (vals.len() - 1) as f64).floor() as usize];
            assert!(
                (est - exact).abs() <= 0.0101 * exact,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(snap.min(), Some(0.37));
        assert!((snap.max().unwrap() - 370.0).abs() < 1e-9);
    }

    #[test]
    fn zero_and_negative_samples_estimate_as_zero() {
        let h = Histogram::default();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN); // dropped
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.5), Some(0.0));
    }

    #[test]
    fn merged_snapshots_equal_single_stream() {
        let cfg = HistogramConfig {
            rel_err: 0.02,
            stripes: 1,
        };
        let (a, b, all) = (
            Histogram::with_config(cfg),
            Histogram::with_config(cfg),
            Histogram::with_config(cfg),
        );
        for i in 0..100u64 {
            // Integer-valued samples: f64 sums are exact in any order, so
            // full snapshot equality (including `sum`) is well-defined.
            let v = ((i * 7919) % 977 + 1) as f64;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn delta_since_recovers_the_interval_stream() {
        let h = Histogram::with_config(HistogramConfig {
            rel_err: 0.01,
            stripes: 1,
        });
        for i in 1..=100 {
            h.record(i as f64);
        }
        let early = h.snapshot();
        for i in 500..=600 {
            h.record(i as f64);
        }
        let delta = h.snapshot().delta_since(&early);
        assert_eq!(delta.count(), 101);
        // Quantiles of the delta see only the second stream, within α.
        let p50 = delta.quantile(0.5).unwrap();
        assert!((p50 - 550.0).abs() <= 0.0101 * 550.0, "p50 {p50}");
        // Extremes are bucket estimates, still within α of 500/600.
        assert!((delta.min().unwrap() - 500.0).abs() <= 0.011 * 500.0);
        assert!((delta.max().unwrap() - 600.0).abs() <= 0.011 * 600.0);
        // Empty delta: identical snapshots.
        let snap = h.snapshot();
        assert_eq!(snap.delta_since(&snap).count(), 0);
    }

    #[test]
    fn concurrent_records_land_in_stripes() {
        let h = Arc::new(Histogram::default());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.record((t * 1000 + i) as f64 + 1.0);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().count(), 4000);
    }
}
