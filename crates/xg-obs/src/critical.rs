//! Critical-path extraction over a per-cycle span DAG.
//!
//! The §4.4 latency budget sums stage durations as if they were serial;
//! once stages overlap (parallel fleet shards, pipelined CSPOT
//! replication) the number that bounds the closed loop is the *longest
//! root-to-leaf chain* of the cycle's span tree. [`extract_critical`]
//! finds that chain greedily (at each node, descend into the
//! longest-duration child) and annotates every step with its *slack* —
//! how much the step could grow before it stops being dominated by its
//! parent — so a regression report can say "the cycle is gated by
//! `ran.probe`, and `gateway.ship` has 1.2 ms of headroom" instead of a
//! single regressed scalar.
//!
//! The orchestrator runs this on each report cycle's wall-span tree and
//! emits the result as `fabric.cycle.critical.*` instruments; the same
//! structure rides along in black-box bundles and is what the
//! `xg-trace` CLI renders offline.

use crate::span::{SpanId, SpanRecord, TraceId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One step of a critical path, root first.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalStep {
    /// Span name, e.g. `"fabric.ran.probe"`.
    pub name: String,
    /// The step's full duration in microseconds.
    pub duration_us: u64,
    /// Duration minus the sum of the step's children — time the step
    /// spent itself, not waiting on a profiled child.
    pub self_us: u64,
    /// How much this step could grow before overtaking its parent's
    /// duration (`parent.duration − duration`); 0 for the root. A
    /// near-zero slack means the parent is *only* this step.
    pub slack_us: u64,
}

/// The longest root-to-leaf chain of one trace's span tree.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPath {
    /// The trace the path was extracted from.
    pub trace: TraceId,
    /// Duration of the path's root span, microseconds.
    pub total_us: u64,
    /// The chain, root first.
    pub steps: Vec<CriticalStep>,
}

impl CriticalPath {
    /// Number of steps on the path.
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// The leaf step — the innermost stage gating the cycle.
    pub fn leaf(&self) -> Option<&CriticalStep> {
        self.steps.last()
    }
}

fn dur(s: &SpanRecord) -> u64 {
    s.end_us.saturating_sub(s.start_us)
}

/// Extract the critical path of `trace` from a span list.
///
/// Only spans of the given trace participate. The root is the
/// longest-duration parentless span (parents evicted from a bounded
/// buffer count as absent; ties break toward the lowest span id so the
/// result is deterministic); from there the walk descends into the
/// longest-duration child until a leaf. Returns `None` when the trace
/// has no spans.
pub fn extract_critical(spans: &[SpanRecord], trace: TraceId) -> Option<CriticalPath> {
    let in_trace: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace == trace).collect();
    if in_trace.is_empty() {
        return None;
    }
    let ids: BTreeMap<SpanId, &SpanRecord> = in_trace.iter().map(|s| (s.id, *s)).collect();
    let mut children: BTreeMap<SpanId, Vec<&SpanRecord>> = BTreeMap::new();
    for s in &in_trace {
        if let Some(p) = s.parent.filter(|p| ids.contains_key(p)) {
            children.entry(p).or_default().push(s);
        }
    }
    let root = in_trace
        .iter()
        .filter(|s| s.parent.is_none_or(|p| !ids.contains_key(&p)))
        .copied()
        // max_by_key keeps the *last* maximum; order by (duration, Reverse(id))
        // via manual fold to keep the lowest id on ties.
        .fold(None::<&SpanRecord>, |best, s| match best {
            Some(b) if (dur(b), std::cmp::Reverse(b.id)) >= (dur(s), std::cmp::Reverse(s.id)) => {
                Some(b)
            }
            _ => Some(s),
        })?;

    let mut steps = Vec::new();
    let mut node = root;
    let mut parent_dur: Option<u64> = None;
    loop {
        let kids = children.get(&node.id).map(Vec::as_slice).unwrap_or(&[]);
        let child_sum: u64 = kids.iter().map(|c| dur(c)).sum();
        steps.push(CriticalStep {
            name: node.name.clone(),
            duration_us: dur(node),
            self_us: dur(node).saturating_sub(child_sum),
            slack_us: parent_dur.map_or(0, |p| p.saturating_sub(dur(node))),
        });
        let next = kids
            .iter()
            .copied()
            .fold(None::<&SpanRecord>, |best, s| match best {
                Some(b)
                    if (dur(b), std::cmp::Reverse(b.id)) >= (dur(s), std::cmp::Reverse(s.id)) =>
                {
                    Some(b)
                }
                _ => Some(s),
            });
        match next {
            Some(n) => {
                parent_dur = Some(dur(node));
                node = n;
            }
            None => break,
        }
    }
    Some(CriticalPath {
        trace,
        total_us: dur(root),
        steps,
    })
}

/// Render a critical path as a fixed-width table, root first.
pub fn render_critical(path: &CriticalPath) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "critical path · trace {} · total {:.3} ms · depth {}",
        path.trace,
        path.total_us as f64 / 1e3,
        path.depth()
    );
    let _ = writeln!(
        out,
        "{:<4} {:<36} {:>12} {:>12} {:>12}",
        "#", "step", "dur(ms)", "self(ms)", "slack(ms)"
    );
    for (i, s) in path.steps.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<4} {:<36} {:>12.3} {:>12.3} {:>12.3}",
            i,
            format!("{}{}", "  ".repeat(i.min(8)), s.name),
            s.duration_us as f64 / 1e3,
            s.self_us as f64 / 1e3,
            s.slack_us as f64 / 1e3,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockDomain;

    fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        name: &str,
        start: u64,
        end: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace,
            id,
            parent,
            name: name.into(),
            domain: ClockDomain::Wall,
            start_us: start,
            end_us: end,
            attrs: vec![],
        }
    }

    #[test]
    fn walks_the_longest_chain_with_slack() {
        let spans = vec![
            span(7, 1, None, "cycle", 0, 1000),
            span(7, 2, Some(1), "ran.probe", 0, 700),
            span(7, 3, Some(1), "gateway.ship", 700, 900),
            span(7, 4, Some(2), "fleet.step", 0, 650),
            span(9, 5, None, "other-trace", 0, 9999),
        ];
        let path = extract_critical(&spans, 7).expect("path");
        assert_eq!(path.total_us, 1000);
        let names: Vec<&str> = path.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["cycle", "ran.probe", "fleet.step"]);
        assert_eq!(path.steps[0].slack_us, 0);
        assert_eq!(path.steps[0].self_us, 1000 - 700 - 200);
        assert_eq!(path.steps[1].slack_us, 300);
        assert_eq!(path.steps[1].self_us, 50);
        assert_eq!(path.steps[2].slack_us, 50);
        assert_eq!(path.leaf().expect("leaf").name, "fleet.step");
    }

    #[test]
    fn empty_trace_yields_none() {
        assert!(extract_critical(&[], 1).is_none());
        let spans = vec![span(2, 1, None, "x", 0, 10)];
        assert!(extract_critical(&spans, 1).is_none());
    }

    #[test]
    fn evicted_parent_becomes_a_root_candidate() {
        // Parent id 99 is absent (e.g. evicted from the flight
        // recorder's bounded ring): the orphan competes as a root.
        let spans = vec![
            span(3, 1, None, "small-root", 0, 10),
            span(3, 2, Some(99), "orphan", 0, 500),
        ];
        let path = extract_critical(&spans, 3).expect("path");
        assert_eq!(path.steps[0].name, "orphan");
        assert_eq!(path.total_us, 500);
    }

    #[test]
    fn ties_break_to_the_lowest_span_id() {
        let spans = vec![
            span(4, 1, None, "root", 0, 100),
            span(4, 2, Some(1), "first", 0, 50),
            span(4, 3, Some(1), "second", 50, 100),
        ];
        let path = extract_critical(&spans, 4).expect("path");
        assert_eq!(path.steps[1].name, "first");
    }

    #[test]
    fn render_contains_every_step() {
        let spans = vec![
            span(5, 1, None, "cycle", 0, 300),
            span(5, 2, Some(1), "hpc.advance", 0, 210),
        ];
        let path = extract_critical(&spans, 5).expect("path");
        let text = render_critical(&path);
        assert!(text.contains("cycle"));
        assert!(text.contains("hpc.advance"));
        assert!(text.contains("slack(ms)"));
        assert!(text.contains("total 0.300 ms"));
    }
}
