//! Causal span tracing across the closed loop.
//!
//! A *trace* is one closed-loop cycle: the sensor reading that tripped
//! Laminar, the gateway drain that carried it, the pilot dispatch, the
//! CFD solve, and the results return. Each stage is a [`SpanRecord`]
//! with a parent link and a [`ClockDomain`]: the discrete-event stages
//! carry simulated timestamps, the CFD solve carries wall time. The
//! exporters in [`crate::export`] turn a span list into a JSONL dump and
//! the §4.4 latency-budget table.

use crate::clock::{secs_to_us, wall_now_us, ClockDomain};
use crate::recorder::FlightRecorder;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies one closed-loop cycle.
pub type TraceId = u64;
/// Identifies one span within a tracer.
pub type SpanId = u64;

/// One completed stage of a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// The trace (closed-loop cycle) this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// Parent span id, `None` for a trace root.
    pub parent: Option<SpanId>,
    /// Stage name, e.g. `"cfd.solve"`.
    pub name: String,
    /// Which clock produced the timestamps.
    pub domain: ClockDomain,
    /// Start, microseconds in `domain`.
    pub start_us: u64,
    /// End, microseconds in `domain`.
    pub end_us: u64,
    /// Free-form key/value annotations.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Span duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_us.saturating_sub(self.start_us) as f64 / 1e6
    }
}

/// Collects [`SpanRecord`]s and hands out trace/span ids.
#[derive(Debug, Default)]
pub struct Tracer {
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    sink: Mutex<Option<Arc<FlightRecorder>>>,
}

impl Tracer {
    /// An empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Forward every recorded span to a flight recorder as well. The
    /// recorder keeps its own bounded copy, so the tracer's cumulative
    /// list and the black box stay independent.
    pub fn set_sink(&self, recorder: Arc<FlightRecorder>) {
        *self.sink.lock() = Some(recorder);
    }

    fn next(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Allocate a fresh trace id.
    pub fn new_trace(&self) -> TraceId {
        self.next()
    }

    /// Record a completed sim-time span given start/end in *seconds* (the
    /// fabric's `t_s` convention). Returns the span id for parent links.
    #[allow(clippy::too_many_arguments)]
    pub fn record_sim_s(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &str,
        start_s: f64,
        end_s: f64,
        attrs: Vec<(String, String)>,
    ) -> SpanId {
        self.record_raw(
            trace,
            parent,
            name,
            ClockDomain::Sim,
            secs_to_us(start_s),
            secs_to_us(end_s.max(start_s)),
            attrs,
        )
    }

    /// Record a completed span with explicit microsecond timestamps.
    #[allow(clippy::too_many_arguments)]
    pub fn record_raw(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &str,
        domain: ClockDomain,
        start_us: u64,
        end_us: u64,
        attrs: Vec<(String, String)>,
    ) -> SpanId {
        let id = self.next();
        let record = SpanRecord {
            trace,
            id,
            parent,
            name: name.to_string(),
            domain,
            start_us,
            end_us: end_us.max(start_us),
            attrs,
        };
        if let Some(sink) = self.sink.lock().as_ref() {
            sink.record_span(record.clone());
        }
        self.spans.lock().push(record);
        id
    }

    /// Start a wall-clock span; finish it with [`WallSpan::finish`] (or
    /// let the guard drop).
    pub fn start_wall(&self, trace: TraceId, parent: Option<SpanId>, name: &str) -> WallSpan<'_> {
        WallSpan {
            tracer: self,
            trace,
            parent,
            name: name.to_string(),
            start_us: wall_now_us(),
            attrs: Vec::new(),
            done: false,
        }
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// Whether no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone out every recorded span, ordered by recording time.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().clone()
    }

    /// Clone out the spans recorded at index `start` and later. Pairing
    /// this with [`len`](Tracer::len) taken at cycle start gives O(cycle)
    /// per-cycle extraction instead of re-cloning the whole run.
    pub fn spans_from(&self, start: usize) -> Vec<SpanRecord> {
        let spans = self.spans.lock();
        spans.get(start.min(spans.len())..).unwrap_or(&[]).to_vec()
    }

    /// Drain every recorded span.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.spans.lock())
    }
}

/// An in-flight wall-clock span; records on `finish` or drop.
#[derive(Debug)]
pub struct WallSpan<'a> {
    tracer: &'a Tracer,
    trace: TraceId,
    parent: Option<SpanId>,
    name: String,
    start_us: u64,
    attrs: Vec<(String, String)>,
    done: bool,
}

impl WallSpan<'_> {
    /// Attach an annotation.
    pub fn attr(&mut self, key: &str, value: impl ToString) {
        self.attrs.push((key.to_string(), value.to_string()));
    }

    /// Finish now and return the recorded span id.
    pub fn finish(mut self) -> SpanId {
        self.done = true;
        self.tracer.record_raw(
            self.trace,
            self.parent,
            &self.name,
            ClockDomain::Wall,
            self.start_us,
            wall_now_us(),
            std::mem::take(&mut self.attrs),
        )
    }
}

impl Drop for WallSpan<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.tracer.record_raw(
                self.trace,
                self.parent,
                &self.name,
                ClockDomain::Wall,
                self.start_us,
                wall_now_us(),
                std::mem::take(&mut self.attrs),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_spans_link_causally() {
        let t = Tracer::new();
        let trace = t.new_trace();
        let root = t.record_sim_s(trace, None, "cycle", 0.0, 10.0, vec![]);
        let child = t.record_sim_s(
            trace,
            Some(root),
            "transfer",
            0.0,
            0.2,
            vec![("records".into(), "12".into())],
        );
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].id, child);
        assert_eq!(spans[1].parent, Some(root));
        assert_eq!(spans[1].domain, ClockDomain::Sim);
        assert!((spans[1].duration_s() - 0.2).abs() < 1e-9);
        assert_eq!(spans[0].parent, None);
    }

    #[test]
    fn wall_span_guard_records_on_finish_and_drop() {
        let t = Tracer::new();
        let trace = t.new_trace();
        let mut s = t.start_wall(trace, None, "solve");
        s.attr("cells", 42);
        s.finish();
        {
            let _dropped = t.start_wall(trace, None, "sweep");
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "solve");
        assert_eq!(spans[0].domain, ClockDomain::Wall);
        assert_eq!(
            spans[0].attrs,
            vec![("cells".to_string(), "42".to_string())]
        );
        assert_eq!(spans[1].name, "sweep");
        assert!(spans[1].end_us >= spans[1].start_us);
    }

    #[test]
    fn inverted_sim_interval_clamps_to_zero_duration() {
        let t = Tracer::new();
        let tr = t.new_trace();
        t.record_sim_s(tr, None, "x", 5.0, 1.0, vec![]);
        assert_eq!(t.spans()[0].duration_s(), 0.0);
    }
}
