//! Black-box flight recorder: bounded memory, dump-on-disaster.
//!
//! Aircraft flight recorders keep the *recent past* in a fixed budget and
//! survive the crash. [`FlightRecorder`] does the same for the fabric: a
//! sharded ring of the most recent spans and free-form notes (fault
//! activations, degradation transitions, SLO edges), capped at a fixed
//! entry count so an unattended soak can run forever without growing.
//! When something goes wrong — SLO breach, injected-fault window, or a
//! panic — [`dump_bundle`] writes a self-contained JSONL diagnostic
//! bundle (schema `xg-blackbox/v2`): one meta line with the trigger
//! reason, seed, and run context, then the buffered notes, the spans in
//! causal parent-before-child order, the wall-time attribution tree and
//! last critical path when the caller supplies them, and a metrics
//! snapshot. Bundles are written via temp-file + atomic rename so a
//! crash mid-dump cannot leave a truncated file that parses as a
//! complete one. (v2 is a strict superset of v1: the new `profile` and
//! `critical` line kinds are optional, every v1 line is unchanged.)

use crate::critical::CriticalPath;
use crate::export::json_escape;
use crate::metrics::MetricsSnapshot;
use crate::profile::ProfileSnapshot;
use crate::span::{SpanId, SpanRecord};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One buffered event.
#[derive(Clone, Debug, PartialEq)]
pub enum FlightEntry {
    /// A completed span forwarded from the tracer.
    Span(SpanRecord),
    /// A free-form annotation (fault edge, degradation transition, …).
    Note {
        /// Timestamp, microseconds (sim domain by convention).
        t_us: u64,
        /// The annotation text.
        text: String,
    },
}

/// Bounded ring buffer of recent [`FlightEntry`]s.
///
/// Entries are stamped with a global sequence number and spread across
/// shards (each an independently locked ring) so concurrent recorders
/// rarely contend; reads re-merge by sequence. Memory is bounded by
/// `capacity` entries total — once full, the oldest entry *in the
/// arriving entry's shard* is evicted, which keeps eviction O(1) and the
/// global buffer within one shard-length of strict LRU order.
#[derive(Debug)]
pub struct FlightRecorder {
    shards: Vec<Mutex<VecDeque<(u64, FlightEntry)>>>,
    shard_cap: usize,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` entries across 8 shards.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder::with_shards(capacity, 8)
    }

    /// A recorder with an explicit shard count (tests use 1 for strict
    /// FIFO eviction). The budget rounds down to a multiple of the shard
    /// count so the bound is exact: [`FlightRecorder::capacity`] reports
    /// the effective value.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let shard_cap = (capacity / shards).max(1);
        FlightRecorder {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            shard_cap,
            capacity: shard_cap * shards,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn push(&self, entry: FlightEntry) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[(seq as usize) % self.shards.len()];
        let mut ring = shard.lock();
        ring.push_back((seq, entry));
        while ring.len() > self.shard_cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Buffer a completed span.
    pub fn record_span(&self, span: SpanRecord) {
        self.push(FlightEntry::Span(span));
    }

    /// Buffer an annotation at `t_us` microseconds.
    pub fn note(&self, t_us: u64, text: impl Into<String>) {
        self.push(FlightEntry::Note {
            t_us,
            text: text.into(),
        });
    }

    /// Entries currently buffered (≤ capacity by construction).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured entry budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted so far to stay within budget.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot the buffer in global sequence order.
    pub fn entries(&self) -> Vec<(u64, FlightEntry)> {
        let mut all: Vec<(u64, FlightEntry)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.extend(shard.lock().iter().cloned());
        }
        all.sort_by_key(|(seq, _)| *seq);
        all
    }

    /// Buffered notes in sequence order.
    pub fn notes(&self) -> Vec<(u64, String)> {
        self.entries()
            .into_iter()
            .filter_map(|(_, e)| match e {
                FlightEntry::Note { t_us, text } => Some((t_us, text)),
                _ => None,
            })
            .collect()
    }

    /// Buffered spans in *causal* order: every span whose parent is also
    /// buffered appears after that parent; spans whose parent was evicted
    /// (or that have none) are roots, emitted in arrival order. Children
    /// of the same parent keep arrival order. This is the order bundles
    /// use, so a reader can reconstruct each trace in one forward pass.
    pub fn ordered_spans(&self) -> Vec<SpanRecord> {
        let spans: Vec<SpanRecord> = self
            .entries()
            .into_iter()
            .filter_map(|(_, e)| match e {
                FlightEntry::Span(s) => Some(s),
                _ => None,
            })
            .collect();
        let present: HashSet<(u64, SpanId)> = spans.iter().map(|s| (s.trace, s.id)).collect();
        // Children grouped per buffered parent, arrival order preserved.
        let mut children: BTreeMap<(u64, SpanId), Vec<usize>> = BTreeMap::new();
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match s.parent {
                Some(p) if present.contains(&(s.trace, p)) => {
                    children.entry((s.trace, p)).or_default().push(i);
                }
                _ => roots.push(i),
            }
        }
        let mut out = Vec::with_capacity(spans.len());
        let mut stack: Vec<usize> = roots.into_iter().rev().collect();
        let mut emitted = vec![false; spans.len()];
        while let Some(i) = stack.pop() {
            if emitted[i] {
                continue;
            }
            emitted[i] = true;
            out.push(spans[i].clone());
            if let Some(kids) = children.get(&(spans[i].trace, spans[i].id)) {
                for &k in kids.iter().rev() {
                    stack.push(k);
                }
            }
        }
        // Defensive: a parent-cycle (malformed input) would strand spans;
        // append any stragglers so the dump never silently loses data.
        for (i, s) in spans.iter().enumerate() {
            if !emitted[i] {
                out.push(s.clone());
            }
        }
        out
    }
}

/// Everything a diagnostic bundle captures besides the recorder buffer.
#[derive(Clone, Debug, Default)]
pub struct BundleContext {
    /// Why the bundle was dumped (`"slo-breach"`, `"fault-window"`, …).
    pub reason: String,
    /// Virtual time of the trigger, seconds.
    pub t_s: f64,
    /// The run's RNG seed, for deterministic replay.
    pub seed: u64,
    /// Free-form key/value context (active faults, breached SLOs, …).
    pub context: Vec<(String, String)>,
    /// Wall-time attribution tree at dump time, if the caller profiles.
    pub profile: Option<ProfileSnapshot>,
    /// The most recent report cycle's critical path, if extracted.
    pub critical: Option<CriticalPath>,
}

/// The bundle schema version this module writes.
pub const BUNDLE_SCHEMA: &str = "xg-blackbox/v2";

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render the bundle JSONL (schema [`BUNDLE_SCHEMA`]) without touching
/// the filesystem. Line 1 is the meta object; then notes, spans in
/// causal order, the optional profile tree and critical path, and the
/// metrics snapshot, one object per line.
pub fn render_bundle(
    recorder: &FlightRecorder,
    metrics: Option<&MetricsSnapshot>,
    ctx: &BundleContext,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"kind\":\"meta\",\"schema\":\"{BUNDLE_SCHEMA}\",\"reason\":\"{}\",\"t_s\":{},\"seed\":{},\"entries\":{},\"dropped\":{},\"context\":{{",
        json_escape(&ctx.reason),
        fmt_f64(ctx.t_s),
        ctx.seed,
        recorder.len(),
        recorder.dropped(),
    );
    for (i, (k, v)) in ctx.context.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    out.push_str("}}\n");
    for (t_us, text) in recorder.notes() {
        let _ = writeln!(
            out,
            "{{\"kind\":\"note\",\"t_us\":{},\"text\":\"{}\"}}",
            t_us,
            json_escape(&text)
        );
    }
    for s in recorder.ordered_spans() {
        let _ = write!(
            out,
            "{{\"kind\":\"span\",\"trace\":{},\"span\":{},\"parent\":",
            s.trace, s.id
        );
        match s.parent {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"name\":\"{}\",\"clock\":\"{}\",\"start_us\":{},\"end_us\":{},\"attrs\":{{",
            json_escape(&s.name),
            s.domain.label(),
            s.start_us,
            s.end_us
        );
        for (i, (k, v)) in s.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push_str("}}\n");
    }
    if let Some(prof) = &ctx.profile {
        for (path, n) in &prof.nodes {
            let _ = writeln!(
                out,
                "{{\"kind\":\"profile\",\"path\":\"{}\",\"calls\":{},\"total_ns\":{},\"self_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
                json_escape(path),
                n.calls,
                n.total_ns,
                n.self_ns(),
                fmt_f64(n.hist.quantile(0.5).unwrap_or(f64::NAN)),
                fmt_f64(n.hist.quantile(0.99).unwrap_or(f64::NAN)),
            );
        }
    }
    if let Some(path) = &ctx.critical {
        let _ = write!(
            out,
            "{{\"kind\":\"critical\",\"trace\":{},\"total_us\":{},\"steps\":[",
            path.trace, path.total_us
        );
        for (i, s) in path.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"duration_us\":{},\"self_us\":{},\"slack_us\":{}}}",
                json_escape(&s.name),
                s.duration_us,
                s.self_us,
                s.slack_us
            );
        }
        out.push_str("]}\n");
    }
    if let Some(snap) = metrics {
        for (name, v) in &snap.counters {
            let _ = writeln!(
                out,
                "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                json_escape(name),
                v
            );
        }
        for (name, v) in &snap.gauges {
            let _ = writeln!(
                out,
                "{{\"kind\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                json_escape(name),
                fmt_f64(*v)
            );
        }
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "{{\"kind\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                json_escape(name),
                h.count(),
                fmt_f64(h.sum()),
                fmt_f64(h.quantile(0.5).unwrap_or(f64::NAN)),
                fmt_f64(h.quantile(0.99).unwrap_or(f64::NAN)),
                fmt_f64(h.max().unwrap_or(f64::NAN)),
            );
        }
    }
    out
}

static BUNDLE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Dump a diagnostic bundle to `dir` (created if absent), returning the
/// bundle's path. The file is written to a temp name and atomically
/// renamed into place, so readers never observe a partial bundle.
pub fn dump_bundle(
    dir: &Path,
    recorder: &FlightRecorder,
    metrics: Option<&MetricsSnapshot>,
    ctx: &BundleContext,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let n = BUNDLE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let slug: String = ctx
        .reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .take(40)
        .collect();
    let name = format!("blackbox-{}-{:03}-{}.jsonl", std::process::id(), n, slug);
    let path = dir.join(&name);
    let tmp = dir.join(format!(".{name}.tmp"));
    std::fs::write(&tmp, render_bundle(recorder, metrics, ctx))?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Install a panic hook that dumps a bundle (reason `"panic"`) before the
/// default hook runs, so a crashing soak still leaves its black box.
pub fn install_panic_hook(recorder: Arc<FlightRecorder>, dir: PathBuf, seed: u64) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let ctx = BundleContext {
            reason: "panic".to_string(),
            t_s: -1.0,
            seed,
            context: vec![("panic".to_string(), info.to_string())],
            ..Default::default()
        };
        let _ = dump_bundle(&dir, &recorder, None, &ctx);
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockDomain;
    use crate::span::Tracer;

    fn span(trace: u64, id: u64, parent: Option<u64>, name: &str) -> SpanRecord {
        SpanRecord {
            trace,
            id,
            parent,
            name: name.to_string(),
            domain: ClockDomain::Sim,
            start_us: id * 1000,
            end_us: id * 1000 + 500,
            attrs: vec![],
        }
    }

    #[test]
    fn memory_stays_bounded_and_counts_drops() {
        let rec = FlightRecorder::with_shards(64, 4);
        for i in 0..1000u64 {
            rec.record_span(span(1, i + 1, None, "s"));
        }
        assert!(rec.len() <= rec.capacity());
        assert_eq!(rec.dropped() as usize, 1000 - rec.len());
        // The survivors are the most recent entries.
        let entries = rec.entries();
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(entries.last().unwrap().0, 999);
    }

    #[test]
    fn ordered_spans_put_parents_before_children() {
        let rec = FlightRecorder::with_shards(64, 1);
        // Record children before their parents — causal order must still
        // come out parent-first.
        rec.record_span(span(7, 3, Some(2), "grandchild"));
        rec.record_span(span(7, 2, Some(1), "child"));
        rec.record_span(span(7, 1, None, "root"));
        rec.record_span(span(8, 5, Some(4), "orphan")); // parent 4 never buffered
        let ordered = rec.ordered_spans();
        assert_eq!(ordered.len(), 4);
        let pos = |id: u64| ordered.iter().position(|s| s.id == id).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
        // The orphan survives as a root.
        assert!(ordered.iter().any(|s| s.id == 5));
    }

    #[test]
    fn eviction_of_a_parent_promotes_children_to_roots() {
        let rec = FlightRecorder::with_shards(2, 1);
        rec.record_span(span(1, 1, None, "root"));
        rec.record_span(span(1, 2, Some(1), "a"));
        rec.record_span(span(1, 3, Some(1), "b")); // evicts the root
        let ordered = rec.ordered_spans();
        assert_eq!(ordered.len(), 2);
        assert_eq!(ordered[0].id, 2);
        assert_eq!(ordered[1].id, 3);
    }

    #[test]
    fn bundle_renders_meta_notes_spans_and_metrics() {
        let rec = FlightRecorder::new(128);
        rec.note(5_000_000, "fault ran-degradation activated");
        rec.record_span(span(1, 1, None, "telemetry.transfer"));
        let reg = crate::metrics::MetricsRegistry::new();
        reg.counter("cycles").add(3);
        reg.gauge("level").set(1.0);
        reg.histogram("lat_ms").record(42.0);
        let ctx = BundleContext {
            reason: "slo-breach: p99(lat_ms) < 10".to_string(),
            t_s: 600.0,
            seed: 7,
            context: vec![("slo".to_string(), "p99(lat_ms) < 10".to_string())],
            ..Default::default()
        };
        let text = render_bundle(&rec, Some(&reg.snapshot()), &ctx);
        let lines: Vec<&str> = text.trim_end().lines().collect();
        assert!(lines[0].contains("\"schema\":\"xg-blackbox/v2\""));
        assert!(lines[0].contains("\"seed\":7"));
        assert!(lines[0].contains("slo-breach"));
        assert!(lines.iter().any(|l| l.contains("\"kind\":\"note\"")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"kind\":\"span\"") && l.contains("telemetry.transfer")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"kind\":\"counter\"") && l.contains("\"value\":3")));
        assert!(lines.iter().any(|l| l.contains("\"kind\":\"histogram\"")));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "bad line {l}");
        }
    }

    #[test]
    fn v2_bundle_carries_profile_and_critical_lines() {
        let rec = FlightRecorder::new(16);
        rec.record_span(span(1, 1, None, "fabric.cycle"));
        let prof = crate::profile::Profiler::with_stripes(1);
        prof.record_at("cycle/ran.probe", 240_000);
        prof.record_at("cycle", 351_000);
        let critical = crate::critical::extract_critical(&rec.ordered_spans(), 1);
        let ctx = BundleContext {
            reason: "report-cycle".to_string(),
            t_s: 300.0,
            seed: 42,
            context: vec![],
            profile: Some(prof.snapshot()),
            critical,
        };
        let text = render_bundle(&rec, None, &ctx);
        let lines: Vec<&str> = text.trim_end().lines().collect();
        let prof_lines: Vec<&&str> = lines
            .iter()
            .filter(|l| l.contains("\"kind\":\"profile\""))
            .collect();
        assert_eq!(prof_lines.len(), 2);
        assert!(prof_lines.iter().any(
            |l| l.contains("\"path\":\"cycle/ran.probe\"") && l.contains("\"total_ns\":240000")
        ));
        // Parent self-time = total − child.
        assert!(prof_lines
            .iter()
            .any(|l| l.contains("\"path\":\"cycle\"") && l.contains("\"self_ns\":111000")));
        let crit = lines
            .iter()
            .find(|l| l.contains("\"kind\":\"critical\""))
            .expect("critical line");
        assert!(crit.contains("\"trace\":1"));
        assert!(crit.contains("\"name\":\"fabric.cycle\""));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "bad line {l}");
        }
    }

    #[test]
    fn dump_bundle_writes_atomically() {
        let dir = std::env::temp_dir().join(format!("xg-blackbox-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::new(16);
        rec.note(0, "hello");
        let ctx = BundleContext {
            reason: "unit/test".to_string(),
            t_s: 0.0,
            seed: 1,
            ..Default::default()
        };
        let path = dump_bundle(&dir, &rec, None, &ctx).unwrap();
        assert!(path.exists());
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("unit-test"));
        // No temp litter.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tracer_sink_forwards_spans() {
        let rec = Arc::new(FlightRecorder::new(8));
        let tracer = Tracer::new();
        tracer.set_sink(rec.clone());
        let tr = tracer.new_trace();
        let root = tracer.record_sim_s(tr, None, "cycle", 0.0, 1.0, vec![]);
        tracer.record_sim_s(tr, Some(root), "stage", 0.0, 0.5, vec![]);
        assert_eq!(rec.len(), 2);
        let ordered = rec.ordered_spans();
        assert_eq!(ordered[0].name, "cycle");
        assert_eq!(ordered[1].name, "stage");
    }
}
