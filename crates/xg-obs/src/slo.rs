//! Declarative service-level objectives over sliding windows.
//!
//! The paper's §4.4 budget is only a *claim* until the running fabric can
//! notice it being violated. An [`SloSpec`] states one objective against a
//! windowed statistic — `p99(cycle.transfer_ms) < 5000`,
//! `delta(gateway.dropped) <= 0`, `mean(ran.goodput_mbps) > 10` — and the
//! [`SloWatchdog`] evaluates the whole set once per tick against a
//! [`WindowView`], applying hysteresis (K consecutive bad ticks to
//! breach, M consecutive good ticks to recover) so a single noisy
//! interval cannot flap the degradation ladder. Breach and recovery
//! surface as [`SloEvent`]s carrying the offending value and the window
//! bounds, ready for the flight recorder and the orchestrator.

use crate::window::WindowView;
use std::fmt;

/// Which windowed statistic an objective reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloStat {
    /// Median of a windowed histogram.
    P50,
    /// 90th percentile of a windowed histogram.
    P90,
    /// 99th percentile of a windowed histogram.
    P99,
    /// Mean of a windowed histogram.
    Mean,
    /// Max of a windowed histogram (bucket estimate).
    Max,
    /// Counter increments over the window.
    Delta,
    /// Counter increments per second over the window.
    Rate,
    /// Mean of the gauge samples in the window.
    GaugeMean,
    /// Most recent gauge sample in the window.
    GaugeLast,
}

impl SloStat {
    fn label(self) -> &'static str {
        match self {
            SloStat::P50 => "p50",
            SloStat::P90 => "p90",
            SloStat::P99 => "p99",
            SloStat::Mean => "mean",
            SloStat::Max => "max",
            SloStat::Delta => "delta",
            SloStat::Rate => "rate",
            SloStat::GaugeMean => "gauge_mean",
            SloStat::GaugeLast => "gauge_last",
        }
    }
}

/// The comparison an objective must satisfy to be healthy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloOp {
    /// Healthy while `stat < threshold`.
    Lt,
    /// Healthy while `stat <= threshold`.
    Le,
    /// Healthy while `stat > threshold`.
    Gt,
    /// Healthy while `stat >= threshold`.
    Ge,
}

impl SloOp {
    fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            SloOp::Lt => value < threshold,
            SloOp::Le => value <= threshold,
            SloOp::Gt => value > threshold,
            SloOp::Ge => value >= threshold,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            SloOp::Lt => "<",
            SloOp::Le => "<=",
            SloOp::Gt => ">",
            SloOp::Ge => ">=",
        }
    }
}

/// One declarative objective.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Stable objective name, used in events and reports.
    pub name: String,
    /// Metric the statistic is read from.
    pub metric: String,
    /// The windowed statistic.
    pub stat: SloStat,
    /// Healthy-side comparison.
    pub op: SloOp,
    /// Comparison threshold.
    pub threshold: f64,
    /// Histogram stats need at least this many windowed samples before
    /// the objective is judged (prevents cold-start false breaches).
    pub min_count: u64,
    /// Degradation-ladder level a breach of this objective requests
    /// (0 = observe only).
    pub degrade_to: u8,
}

impl SloSpec {
    /// An objective named after its own expression.
    pub fn new(metric: &str, stat: SloStat, op: SloOp, threshold: f64) -> Self {
        SloSpec {
            name: format!("{}({}) {} {}", stat.label(), metric, op.symbol(), threshold),
            metric: metric.to_string(),
            stat,
            op,
            threshold,
            min_count: 1,
            degrade_to: 0,
        }
    }

    /// Override the objective's name.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Require at least `n` windowed samples before judging.
    pub fn min_count(mut self, n: u64) -> Self {
        self.min_count = n;
        self
    }

    /// Request this degradation-ladder level while breached.
    pub fn degrade_to(mut self, level: u8) -> Self {
        self.degrade_to = level;
        self
    }

    /// Read this objective's statistic from a window. `None` means "not
    /// judgeable yet" (metric absent or below `min_count`), which is
    /// treated as healthy.
    pub fn observe(&self, view: &WindowView) -> Option<f64> {
        match self.stat {
            SloStat::P50 | SloStat::P90 | SloStat::P99 | SloStat::Mean | SloStat::Max => {
                if view.hist_count(&self.metric) < self.min_count {
                    return None;
                }
                match self.stat {
                    SloStat::P50 => view.quantile(&self.metric, 0.50),
                    SloStat::P90 => view.quantile(&self.metric, 0.90),
                    SloStat::P99 => view.quantile(&self.metric, 0.99),
                    SloStat::Mean => view.hist_mean(&self.metric),
                    _ => view.histograms.get(&self.metric)?.max(),
                }
            }
            // Counters exist from the first tick; a window with no
            // matching counter reads as zero increments, which is a real
            // observation (e.g. "delivered nothing this half hour").
            SloStat::Delta => Some(view.delta(&self.metric) as f64),
            SloStat::Rate => Some(view.rate(&self.metric)),
            SloStat::GaugeMean => view.gauge(&self.metric)?.mean(),
            SloStat::GaugeLast => Some(view.gauge(&self.metric)?.last),
        }
    }

    /// Whether `value` satisfies the objective.
    pub fn holds(&self, value: f64) -> bool {
        self.op.holds(value, self.threshold)
    }
}

impl fmt::Display for SloSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Hysteresis: consecutive-tick requirements on both edges.
#[derive(Clone, Copy, Debug)]
pub struct Hysteresis {
    /// Consecutive breaching ticks before a breach event fires.
    pub breach_after: u32,
    /// Consecutive healthy ticks before a recovery event fires.
    pub clear_after: u32,
}

impl Default for Hysteresis {
    fn default() -> Self {
        Hysteresis {
            breach_after: 2,
            clear_after: 3,
        }
    }
}

/// Breach or recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloEventKind {
    /// The objective entered breach.
    Breached,
    /// The objective recovered.
    Recovered,
}

/// One watchdog edge, carrying the offending window snapshot bounds.
#[derive(Clone, Debug)]
pub struct SloEvent {
    /// Virtual time of the evaluating tick (s).
    pub t_s: f64,
    /// The objective's name.
    pub slo: String,
    /// Breach or recovery.
    pub kind: SloEventKind,
    /// The observed statistic at the edge.
    pub value: f64,
    /// The objective's threshold.
    pub threshold: f64,
    /// Degradation level the objective requests while breached.
    pub degrade_to: u8,
    /// Start of the offending (or recovering) window (virtual s).
    pub window_from_s: f64,
    /// End of the offending (or recovering) window (virtual s).
    pub window_to_s: f64,
}

#[derive(Clone, Copy, Debug, Default)]
struct SpecState {
    bad_streak: u32,
    good_streak: u32,
    breached: bool,
    last_value: f64,
}

/// Evaluates a set of objectives each tick with hysteresis.
#[derive(Debug)]
pub struct SloWatchdog {
    specs: Vec<SloSpec>,
    states: Vec<SpecState>,
    hysteresis: Hysteresis,
    breach_events: u64,
    recovery_events: u64,
}

impl SloWatchdog {
    /// A watchdog over `specs`.
    pub fn new(specs: Vec<SloSpec>, hysteresis: Hysteresis) -> Self {
        let states = vec![SpecState::default(); specs.len()];
        SloWatchdog {
            specs,
            states,
            hysteresis,
            breach_events: 0,
            recovery_events: 0,
        }
    }

    /// The objectives under watch.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Every metric name the objectives read — the exact instrument set
    /// a feeding [`MetricsWindow`](crate::window::MetricsWindow) needs
    /// to track (pass to its `focus`).
    pub fn metrics(&self) -> std::collections::BTreeSet<String> {
        self.specs.iter().map(|s| s.metric.clone()).collect()
    }

    /// Evaluate every objective against `view`, returning the edges that
    /// fired this tick (after hysteresis).
    pub fn evaluate(&mut self, t_s: f64, view: &WindowView) -> Vec<SloEvent> {
        let mut events = Vec::new();
        for (spec, state) in self.specs.iter().zip(self.states.iter_mut()) {
            let observed = spec.observe(view);
            // Unjudgeable reads as healthy but does not count toward a
            // recovery streak: a metric that vanished mid-breach (e.g. a
            // partition stops producing samples) must not self-heal.
            let healthy = match observed {
                Some(v) => {
                    state.last_value = v;
                    spec.holds(v)
                }
                None => !state.breached,
            };
            if healthy {
                state.good_streak += 1;
                state.bad_streak = 0;
                if state.breached && state.good_streak >= self.hysteresis.clear_after {
                    state.breached = false;
                    self.recovery_events += 1;
                    events.push(SloEvent {
                        t_s,
                        slo: spec.name.clone(),
                        kind: SloEventKind::Recovered,
                        value: state.last_value,
                        threshold: spec.threshold,
                        degrade_to: spec.degrade_to,
                        window_from_s: view.from_s,
                        window_to_s: view.to_s,
                    });
                }
            } else {
                state.bad_streak += 1;
                state.good_streak = 0;
                if !state.breached && state.bad_streak >= self.hysteresis.breach_after {
                    state.breached = true;
                    self.breach_events += 1;
                    events.push(SloEvent {
                        t_s,
                        slo: spec.name.clone(),
                        kind: SloEventKind::Breached,
                        value: state.last_value,
                        threshold: spec.threshold,
                        degrade_to: spec.degrade_to,
                        window_from_s: view.from_s,
                        window_to_s: view.to_s,
                    });
                }
            }
        }
        events
    }

    /// Whether the named objective is currently in breach.
    pub fn is_breached(&self, name: &str) -> bool {
        self.specs
            .iter()
            .zip(&self.states)
            .any(|(s, st)| st.breached && s.name == name)
    }

    /// Names of every objective currently in breach.
    pub fn breached(&self) -> Vec<&str> {
        self.specs
            .iter()
            .zip(&self.states)
            .filter(|(_, st)| st.breached)
            .map(|(s, _)| s.name.as_str())
            .collect()
    }

    /// The degradation-ladder level the active breaches request (max of
    /// `degrade_to` over breached objectives; 0 when healthy).
    pub fn degradation_target(&self) -> u8 {
        self.specs
            .iter()
            .zip(&self.states)
            .filter(|(_, st)| st.breached)
            .map(|(s, _)| s.degrade_to)
            .max()
            .unwrap_or(0)
    }

    /// Total breach edges fired so far.
    pub fn breach_events(&self) -> u64 {
        self.breach_events
    }

    /// Total recovery edges fired so far.
    pub fn recovery_events(&self) -> u64 {
        self.recovery_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::window::{MetricsWindow, WindowConfig};

    fn drive(
        wd: &mut SloWatchdog,
        w: &mut MetricsWindow,
        reg: &MetricsRegistry,
        tick: &mut f64,
    ) -> Vec<SloEvent> {
        *tick += 300.0;
        w.tick(reg, *tick);
        wd.evaluate(*tick, &w.view())
    }

    #[test]
    fn breach_needs_consecutive_bad_ticks_and_recovery_consecutive_good() {
        let reg = MetricsRegistry::new();
        let mut w = MetricsWindow::new(WindowConfig {
            interval_s: 300.0,
            intervals: 2,
        });
        let mut wd = SloWatchdog::new(
            vec![SloSpec::new("lat_ms", SloStat::P99, SloOp::Lt, 100.0).degrade_to(1)],
            Hysteresis {
                breach_after: 2,
                clear_after: 2,
            },
        );
        let h = reg.histogram("lat_ms");
        let mut t = 0.0;
        // 10 samples per interval so the windowed p99 rank lands inside
        // the interval's values, not on a lone lower sample.
        let burst = |v: f64| (0..10).for_each(|_| h.record(v));
        // Healthy tick.
        burst(10.0);
        assert!(drive(&mut wd, &mut w, &reg, &mut t).is_empty());
        // First bad tick: no event yet (hysteresis).
        burst(500.0);
        assert!(drive(&mut wd, &mut w, &reg, &mut t).is_empty());
        assert!(!wd.is_breached("p99(lat_ms) < 100"));
        // Second bad tick: breach fires with the offending value.
        burst(500.0);
        let ev = drive(&mut wd, &mut w, &reg, &mut t);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, SloEventKind::Breached);
        assert!(ev[0].value > 100.0);
        assert_eq!(ev[0].degrade_to, 1);
        assert_eq!(wd.degradation_target(), 1);
        assert_eq!(wd.breached(), vec!["p99(lat_ms) < 100"]);
        // One good tick (window still holds a bad interval → still bad),
        // then the window slides clean: recovery after 2 good ticks.
        burst(10.0);
        assert!(drive(&mut wd, &mut w, &reg, &mut t).is_empty());
        burst(10.0);
        let _ = drive(&mut wd, &mut w, &reg, &mut t); // first clean tick
        burst(10.0);
        let ev = drive(&mut wd, &mut w, &reg, &mut t);
        assert_eq!(
            ev.iter()
                .filter(|e| e.kind == SloEventKind::Recovered)
                .count(),
            1
        );
        assert_eq!(wd.degradation_target(), 0);
        assert_eq!(wd.breach_events(), 1);
        assert_eq!(wd.recovery_events(), 1);
    }

    #[test]
    fn delta_objective_breaches_on_silence() {
        // "deliver something every window" — breaches when the counter
        // stops moving, the shape of a delivery-stall SLO.
        let reg = MetricsRegistry::new();
        let mut w = MetricsWindow::new(WindowConfig {
            interval_s: 300.0,
            intervals: 1,
        });
        let mut wd = SloWatchdog::new(
            vec![SloSpec::new("delivered", SloStat::Delta, SloOp::Gt, 0.0)],
            Hysteresis {
                breach_after: 1,
                clear_after: 1,
            },
        );
        let c = reg.counter("delivered");
        let mut t = 0.0;
        c.add(9);
        assert!(drive(&mut wd, &mut w, &reg, &mut t).is_empty());
        // Silence: breach on the very next tick (breach_after = 1).
        let ev = drive(&mut wd, &mut w, &reg, &mut t);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, SloEventKind::Breached);
        assert_eq!(ev[0].value, 0.0);
        c.add(9);
        let ev = drive(&mut wd, &mut w, &reg, &mut t);
        assert_eq!(ev[0].kind, SloEventKind::Recovered);
    }

    #[test]
    fn min_count_defers_judgement_not_health() {
        let reg = MetricsRegistry::new();
        let mut w = MetricsWindow::new(WindowConfig {
            interval_s: 300.0,
            intervals: 4,
        });
        let mut wd = SloWatchdog::new(
            vec![SloSpec::new("lat_ms", SloStat::P99, SloOp::Lt, 100.0).min_count(10)],
            Hysteresis {
                breach_after: 1,
                clear_after: 1,
            },
        );
        let h = reg.histogram("lat_ms");
        let mut t = 0.0;
        // 5 terrible samples: below min_count, so no breach.
        for _ in 0..5 {
            h.record(10_000.0);
        }
        assert!(drive(&mut wd, &mut w, &reg, &mut t).is_empty());
        // 5 more: now judgeable and breaching.
        for _ in 0..5 {
            h.record(10_000.0);
        }
        let ev = drive(&mut wd, &mut w, &reg, &mut t);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, SloEventKind::Breached);
    }

    #[test]
    fn gauge_objectives_read_window_samples() {
        let reg = MetricsRegistry::new();
        let mut w = MetricsWindow::new(WindowConfig {
            interval_s: 300.0,
            intervals: 2,
        });
        let mut wd = SloWatchdog::new(
            vec![
                SloSpec::new("goodput", SloStat::GaugeMean, SloOp::Gt, 5.0).degrade_to(1),
                SloSpec::new("sites_up", SloStat::GaugeLast, SloOp::Ge, 1.0).degrade_to(2),
            ],
            Hysteresis {
                breach_after: 1,
                clear_after: 1,
            },
        );
        let gp = reg.gauge("goodput");
        let su = reg.gauge("sites_up");
        let mut t = 0.0;
        gp.set(20.0);
        su.set(2.0);
        assert!(drive(&mut wd, &mut w, &reg, &mut t).is_empty());
        gp.set(0.5);
        su.set(0.0);
        let _ = drive(&mut wd, &mut w, &reg, &mut t);
        // goodput mean over 2 samples = 10.25 (healthy); sites_up last = 0
        // (breach at level 2).
        assert_eq!(wd.degradation_target(), 2);
        gp.set(0.5);
        let _ = drive(&mut wd, &mut w, &reg, &mut t);
        // now goodput mean = 0.5 too: both breached, still level 2.
        assert_eq!(wd.breached().len(), 2);
        assert_eq!(wd.degradation_target(), 2);
    }
}
