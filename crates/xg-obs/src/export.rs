//! Exporters: JSONL traces, Prometheus-style text, latency-budget table.
//!
//! JSON is emitted by hand — the schema is five fixed fields plus a
//! string map, and hand-rolling keeps the crate dependency-free. The
//! budget table is the §4.4 artifact: group a span stream by stage name
//! and attribute the closed-loop latency per stage.

use crate::clock::ClockDomain;
use crate::metrics::MetricsSnapshot;
use crate::span::{SpanId, SpanRecord};
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render spans as JSON Lines: one object per span, stable field order,
/// timestamps in integer microseconds of the span's clock domain.
pub fn spans_to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        let _ = write!(out, "{{\"trace\":{},\"span\":{},\"parent\":", s.trace, s.id);
        match s.parent {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"name\":\"{}\",\"clock\":\"{}\",\"start_us\":{},\"end_us\":{},\"attrs\":{{",
            json_escape(&s.name),
            s.domain.label(),
            s.start_us,
            s.end_us
        );
        for (i, (k, v)) in s.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push_str("}}\n");
    }
    out
}

/// Parse a JSONL span dump back into [`SpanRecord`]s.
///
/// Accepts both formats this crate writes: raw [`spans_to_jsonl`] lines
/// and black-box bundle lines (where span objects carry
/// `"kind":"span"` and other kinds — meta, notes, metrics — interleave).
/// Non-span and malformed lines are skipped rather than failing the
/// file: a black box from a crashed run is exactly when partial data
/// still matters. The parser is hand-rolled like the writer, keeping
/// the crate dependency-free; it understands only the flat shape these
/// exporters emit, not arbitrary JSON.
pub fn parse_spans_jsonl(text: &str) -> Vec<SpanRecord> {
    text.lines().filter_map(parse_span_line).collect()
}

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        self.skip_ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.b.get(self.i)?;
            self.i += 1;
            match c {
                b'"' => return Some(out),
                b'\\' => {
                    let e = *self.b.get(self.i)?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.b.get(self.i..self.i + 4)?;
                            self.i += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                c => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.i - 1;
                        let mut end = self.i;
                        while end < self.b.len() && (self.b[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        out.push_str(std::str::from_utf8(self.b.get(start..end)?).ok()?);
                        self.i = end;
                    }
                }
            }
        }
    }

    /// A numeric token, permissively (integers, floats, exponents).
    fn number(&mut self) -> Option<f64> {
        self.skip_ws();
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()?
            .parse()
            .ok()
    }

    fn literal(&mut self, word: &str) -> Option<()> {
        self.skip_ws();
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Some(())
        } else {
            None
        }
    }

    /// A `{"k":"v",...}` object of string values.
    fn string_map(&mut self) -> Option<Vec<(String, String)>> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Some(out);
        }
        loop {
            let k = self.string()?;
            self.eat(b':')?;
            let v = self.string()?;
            out.push((k, v));
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Some(out);
                }
                _ => return None,
            }
        }
    }
}

fn parse_span_line(line: &str) -> Option<SpanRecord> {
    let mut c = Cursor {
        b: line.as_bytes(),
        i: 0,
    };
    c.eat(b'{')?;
    let (mut trace, mut id, mut start, mut end) = (None, None, None, None);
    let mut parent: Option<SpanId> = None;
    let (mut name, mut clock) = (None, None);
    let mut attrs = Vec::new();
    if c.peek() == Some(b'}') {
        return None;
    }
    loop {
        let key = c.string()?;
        c.eat(b':')?;
        match key.as_str() {
            "kind" => {
                // Bundle lines: only span objects are spans; everything
                // else (meta/note/metrics) is skipped wholesale.
                if c.string()? != "span" {
                    return None;
                }
            }
            "trace" => trace = Some(c.number()? as u64),
            "span" => id = Some(c.number()? as u64),
            "parent" => {
                parent = match c.peek()? {
                    b'n' => {
                        c.literal("null")?;
                        None
                    }
                    _ => Some(c.number()? as u64),
                }
            }
            "name" => name = Some(c.string()?),
            "clock" => clock = Some(c.string()?),
            "start_us" => start = Some(c.number()? as u64),
            "end_us" => end = Some(c.number()? as u64),
            "attrs" => attrs = c.string_map()?,
            _ => return None, // not a shape these exporters write
        }
        match c.peek()? {
            b',' => c.i += 1,
            b'}' => break,
            _ => return None,
        }
    }
    let domain = match clock?.as_str() {
        "sim" => ClockDomain::Sim,
        "wall" => ClockDomain::Wall,
        _ => return None,
    };
    Some(SpanRecord {
        trace: trace?,
        id: id?,
        parent,
        name: name?,
        domain,
        start_us: start?,
        end_us: end?,
        attrs,
    })
}

/// Sanitize a metric name into the Prometheus charset.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render a metrics snapshot as Prometheus-style exposition text:
/// counters and gauges verbatim, histograms as summaries with
/// p50/p90/p99 quantile series plus `_count`/`_sum`/`_max`.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    // HELP text is escaped per the exposition format: backslash and
    // newline only (HELP values may contain anything else verbatim).
    let help_line = |out: &mut String, name: &str, n: &str| {
        if let Some(h) = snap.help.get(name) {
            let escaped = h.replace('\\', "\\\\").replace('\n', "\\n");
            let _ = writeln!(out, "# HELP {n} {escaped}");
        }
    };
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        help_line(&mut out, name, &n);
        let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = prom_name(name);
        help_line(&mut out, name, &n);
        let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
    }
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        help_line(&mut out, name, &n);
        let _ = writeln!(out, "# TYPE {n} summary");
        // An empty histogram has no quantiles or max; emitting NaN breaks
        // most scrapers, so only `_count`/`_sum` appear until data lands.
        if h.count() > 0 {
            for q in [0.5, 0.9, 0.99] {
                if let Some(est) = h.quantile(q) {
                    let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {est}");
                }
            }
        }
        let _ = writeln!(out, "{n}_count {}", h.count());
        let _ = writeln!(out, "{n}_sum {}", h.sum());
        if let Some(max) = h.max() {
            let _ = writeln!(out, "{n}_max {max}");
        }
    }
    out
}

/// Per-stage latency attribution derived from measured spans.
#[derive(Clone, Debug, PartialEq)]
pub struct BudgetRow {
    /// Stage (span) name.
    pub stage: String,
    /// Spans observed for this stage.
    pub count: usize,
    /// Mean duration, seconds.
    pub mean_s: f64,
    /// Median duration, seconds.
    pub p50_s: f64,
    /// 99th-percentile duration, seconds.
    pub p99_s: f64,
    /// Worst duration, seconds.
    pub max_s: f64,
    /// This stage's share of the summed mean across all stages.
    pub share: f64,
}

fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).floor() as usize;
    sorted[idx]
}

/// Build the per-stage budget table for the given stage names, in the
/// given order (the closed-loop pipeline order). Stages with no spans
/// appear with zero counts so a broken pipeline is visible, not silent.
pub fn budget_table(spans: &[SpanRecord], stages: &[&str]) -> Vec<BudgetRow> {
    let mut rows: Vec<BudgetRow> = stages
        .iter()
        .map(|stage| {
            let mut durs: Vec<f64> = spans
                .iter()
                .filter(|s| s.name == *stage)
                .map(SpanRecord::duration_s)
                .collect();
            durs.sort_by(f64::total_cmp);
            let count = durs.len();
            let mean = if count == 0 {
                0.0
            } else {
                durs.iter().sum::<f64>() / count as f64
            };
            BudgetRow {
                stage: stage.to_string(),
                count,
                mean_s: mean,
                p50_s: exact_quantile(&durs, 0.5),
                p99_s: exact_quantile(&durs, 0.99),
                max_s: durs.last().copied().unwrap_or(0.0),
                share: 0.0,
            }
        })
        .collect();
    let total: f64 = rows.iter().map(|r| r.mean_s).sum();
    if total > 0.0 {
        for r in &mut rows {
            r.share = r.mean_s / total;
        }
    }
    rows
}

/// Render the budget table for humans, one row per stage.
pub fn render_budget_table(rows: &[BudgetRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>6} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "stage", "count", "mean(s)", "p50(s)", "p99(s)", "max(s)", "share"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<22} {:>6} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>6.1}%",
            r.stage,
            r.count,
            r.mean_s,
            r.p50_s,
            r.p99_s,
            r.max_s,
            r.share * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockDomain;
    use crate::metrics::MetricsRegistry;
    use crate::span::Tracer;

    fn sample_spans() -> Vec<SpanRecord> {
        let t = Tracer::new();
        let tr = t.new_trace();
        let root = t.record_sim_s(tr, None, "cycle", 0.0, 500.0, vec![]);
        t.record_sim_s(tr, Some(root), "transfer", 0.0, 0.2, vec![]);
        t.record_sim_s(
            tr,
            Some(root),
            "cfd.solve",
            10.0,
            430.0,
            vec![("quote\"key".into(), "line\nbreak".into())],
        );
        t.spans()
    }

    #[test]
    fn jsonl_is_parseable_and_escaped() {
        let spans = sample_spans();
        let jsonl = spans_to_jsonl(&spans);
        let lines: Vec<&str> = jsonl.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        assert!(lines[0].contains("\"parent\":null"));
        assert!(lines[1].contains(&format!("\"parent\":{}", spans[0].id)));
        assert!(lines[2].contains("quote\\\"key"));
        assert!(lines[2].contains("line\\nbreak"));
        assert!(lines[1].contains("\"clock\":\"sim\""));
        assert!(lines[1].contains("\"end_us\":200000"));
    }

    #[test]
    fn prometheus_text_covers_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("loop.cycles").add(7);
        reg.gauge("ran/occupancy").set(0.5);
        let h = reg.histogram("append_ms");
        for i in 1..=100 {
            h.record(i as f64);
        }
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE loop_cycles counter\nloop_cycles 7"));
        assert!(text.contains("# TYPE ran_occupancy gauge\nran_occupancy 0.5"));
        assert!(text.contains("# TYPE append_ms summary"));
        assert!(text.contains("append_ms_count 100"));
        assert!(text.contains("append_ms{quantile=\"0.5\"}"));
    }

    #[test]
    fn empty_histograms_emit_no_nan_series() {
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("never_recorded_ms");
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE never_recorded_ms summary"));
        assert!(text.contains("never_recorded_ms_count 0"));
        assert!(text.contains("never_recorded_ms_sum 0"));
        assert!(!text.contains("quantile"), "no quantile series when empty");
        assert!(!text.contains("_max"), "no max series when empty");
        assert!(
            !text.contains("NaN"),
            "NaN is invalid for scrapers:\n{text}"
        );
    }

    #[test]
    fn budget_table_attributes_shares_in_pipeline_order() {
        let rows = budget_table(&sample_spans(), &["transfer", "queue.mask", "cfd.solve"]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].stage, "transfer");
        assert_eq!(rows[0].count, 1);
        assert!((rows[0].mean_s - 0.2).abs() < 1e-9);
        assert_eq!(rows[1].count, 0, "missing stage visible with zero count");
        assert!((rows[2].mean_s - 420.0).abs() < 1e-9);
        assert!(rows[2].share > 0.99, "CFD dominates");
        let rendered = render_budget_table(&rows);
        assert!(rendered.contains("cfd.solve"));
        assert!(rendered.contains("queue.mask"));
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let spans = sample_spans();
        let parsed = parse_spans_jsonl(&spans_to_jsonl(&spans));
        assert_eq!(parsed, spans);
    }

    #[test]
    fn parser_reads_bundle_lines_and_skips_other_kinds() {
        let rec = crate::recorder::FlightRecorder::new(64);
        rec.note(5, "a note line");
        for s in sample_spans() {
            rec.record_span(s);
        }
        let reg = MetricsRegistry::new();
        reg.counter("c").inc();
        reg.histogram("h_ms").record(1.0);
        let ctx = crate::recorder::BundleContext {
            reason: "unit".into(),
            t_s: -1.0,
            seed: 9,
            context: vec![("k".into(), "v".into())],
            ..Default::default()
        };
        let text = crate::recorder::render_bundle(&rec, Some(&reg.snapshot()), &ctx);
        let parsed = parse_spans_jsonl(&text);
        assert_eq!(parsed, sample_spans());
    }

    #[test]
    fn parser_skips_malformed_lines() {
        let good = spans_to_jsonl(&sample_spans());
        let noisy = format!("not json\n{good}{{\"trace\":1}}\n{{}}\n");
        assert_eq!(parse_spans_jsonl(&noisy).len(), 3);
    }

    #[test]
    fn help_lines_render_only_when_registered() {
        let reg = MetricsRegistry::new();
        reg.counter("loop.cycles").add(7);
        reg.gauge("level").set(1.0);
        reg.histogram("lat_ms").record(2.0);
        let without = prometheus_text(&reg.snapshot());
        assert!(!without.contains("# HELP"), "byte-compatible when no help");
        reg.set_help("loop.cycles", "Report cycles completed");
        reg.set_help("lat_ms", "End-to-end latency\nmultiline");
        let with = prometheus_text(&reg.snapshot());
        assert!(
            with.contains("# HELP loop_cycles Report cycles completed\n# TYPE loop_cycles counter")
        );
        assert!(with.contains("# HELP lat_ms End-to-end latency\\nmultiline"));
        // Unhelped instruments render exactly as before: stripping the
        // HELP lines recovers the original output byte-for-byte.
        assert!(with.contains("# TYPE level gauge\nlevel 1"));
        let stripped: String = with
            .lines()
            .filter(|l| !l.starts_with("# HELP"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(stripped, without);
    }

    #[test]
    fn wall_spans_export_with_wall_clock_label() {
        let t = Tracer::new();
        let tr = t.new_trace();
        t.start_wall(tr, None, "sweep").finish();
        let jsonl = spans_to_jsonl(&t.spans());
        assert!(jsonl.contains("\"clock\":\"wall\""));
        assert_eq!(t.spans()[0].domain, ClockDomain::Wall);
    }
}
