//! Exporters: JSONL traces, Prometheus-style text, latency-budget table.
//!
//! JSON is emitted by hand — the schema is five fixed fields plus a
//! string map, and hand-rolling keeps the crate dependency-free. The
//! budget table is the §4.4 artifact: group a span stream by stage name
//! and attribute the closed-loop latency per stage.

use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render spans as JSON Lines: one object per span, stable field order,
/// timestamps in integer microseconds of the span's clock domain.
pub fn spans_to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        let _ = write!(out, "{{\"trace\":{},\"span\":{},\"parent\":", s.trace, s.id);
        match s.parent {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"name\":\"{}\",\"clock\":\"{}\",\"start_us\":{},\"end_us\":{},\"attrs\":{{",
            json_escape(&s.name),
            s.domain.label(),
            s.start_us,
            s.end_us
        );
        for (i, (k, v)) in s.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push_str("}}\n");
    }
    out
}

/// Sanitize a metric name into the Prometheus charset.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render a metrics snapshot as Prometheus-style exposition text:
/// counters and gauges verbatim, histograms as summaries with
/// p50/p90/p99 quantile series plus `_count`/`_sum`/`_max`.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
    }
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} summary");
        // An empty histogram has no quantiles or max; emitting NaN breaks
        // most scrapers, so only `_count`/`_sum` appear until data lands.
        if h.count() > 0 {
            for q in [0.5, 0.9, 0.99] {
                if let Some(est) = h.quantile(q) {
                    let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {est}");
                }
            }
        }
        let _ = writeln!(out, "{n}_count {}", h.count());
        let _ = writeln!(out, "{n}_sum {}", h.sum());
        if let Some(max) = h.max() {
            let _ = writeln!(out, "{n}_max {max}");
        }
    }
    out
}

/// Per-stage latency attribution derived from measured spans.
#[derive(Clone, Debug, PartialEq)]
pub struct BudgetRow {
    /// Stage (span) name.
    pub stage: String,
    /// Spans observed for this stage.
    pub count: usize,
    /// Mean duration, seconds.
    pub mean_s: f64,
    /// Median duration, seconds.
    pub p50_s: f64,
    /// 99th-percentile duration, seconds.
    pub p99_s: f64,
    /// Worst duration, seconds.
    pub max_s: f64,
    /// This stage's share of the summed mean across all stages.
    pub share: f64,
}

fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).floor() as usize;
    sorted[idx]
}

/// Build the per-stage budget table for the given stage names, in the
/// given order (the closed-loop pipeline order). Stages with no spans
/// appear with zero counts so a broken pipeline is visible, not silent.
pub fn budget_table(spans: &[SpanRecord], stages: &[&str]) -> Vec<BudgetRow> {
    let mut rows: Vec<BudgetRow> = stages
        .iter()
        .map(|stage| {
            let mut durs: Vec<f64> = spans
                .iter()
                .filter(|s| s.name == *stage)
                .map(SpanRecord::duration_s)
                .collect();
            durs.sort_by(f64::total_cmp);
            let count = durs.len();
            let mean = if count == 0 {
                0.0
            } else {
                durs.iter().sum::<f64>() / count as f64
            };
            BudgetRow {
                stage: stage.to_string(),
                count,
                mean_s: mean,
                p50_s: exact_quantile(&durs, 0.5),
                p99_s: exact_quantile(&durs, 0.99),
                max_s: durs.last().copied().unwrap_or(0.0),
                share: 0.0,
            }
        })
        .collect();
    let total: f64 = rows.iter().map(|r| r.mean_s).sum();
    if total > 0.0 {
        for r in &mut rows {
            r.share = r.mean_s / total;
        }
    }
    rows
}

/// Render the budget table for humans, one row per stage.
pub fn render_budget_table(rows: &[BudgetRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>6} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "stage", "count", "mean(s)", "p50(s)", "p99(s)", "max(s)", "share"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<22} {:>6} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>6.1}%",
            r.stage,
            r.count,
            r.mean_s,
            r.p50_s,
            r.p99_s,
            r.max_s,
            r.share * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockDomain;
    use crate::metrics::MetricsRegistry;
    use crate::span::Tracer;

    fn sample_spans() -> Vec<SpanRecord> {
        let t = Tracer::new();
        let tr = t.new_trace();
        let root = t.record_sim_s(tr, None, "cycle", 0.0, 500.0, vec![]);
        t.record_sim_s(tr, Some(root), "transfer", 0.0, 0.2, vec![]);
        t.record_sim_s(
            tr,
            Some(root),
            "cfd.solve",
            10.0,
            430.0,
            vec![("quote\"key".into(), "line\nbreak".into())],
        );
        t.spans()
    }

    #[test]
    fn jsonl_is_parseable_and_escaped() {
        let spans = sample_spans();
        let jsonl = spans_to_jsonl(&spans);
        let lines: Vec<&str> = jsonl.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        assert!(lines[0].contains("\"parent\":null"));
        assert!(lines[1].contains(&format!("\"parent\":{}", spans[0].id)));
        assert!(lines[2].contains("quote\\\"key"));
        assert!(lines[2].contains("line\\nbreak"));
        assert!(lines[1].contains("\"clock\":\"sim\""));
        assert!(lines[1].contains("\"end_us\":200000"));
    }

    #[test]
    fn prometheus_text_covers_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("loop.cycles").add(7);
        reg.gauge("ran/occupancy").set(0.5);
        let h = reg.histogram("append_ms");
        for i in 1..=100 {
            h.record(i as f64);
        }
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE loop_cycles counter\nloop_cycles 7"));
        assert!(text.contains("# TYPE ran_occupancy gauge\nran_occupancy 0.5"));
        assert!(text.contains("# TYPE append_ms summary"));
        assert!(text.contains("append_ms_count 100"));
        assert!(text.contains("append_ms{quantile=\"0.5\"}"));
    }

    #[test]
    fn empty_histograms_emit_no_nan_series() {
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("never_recorded_ms");
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE never_recorded_ms summary"));
        assert!(text.contains("never_recorded_ms_count 0"));
        assert!(text.contains("never_recorded_ms_sum 0"));
        assert!(!text.contains("quantile"), "no quantile series when empty");
        assert!(!text.contains("_max"), "no max series when empty");
        assert!(
            !text.contains("NaN"),
            "NaN is invalid for scrapers:\n{text}"
        );
    }

    #[test]
    fn budget_table_attributes_shares_in_pipeline_order() {
        let rows = budget_table(&sample_spans(), &["transfer", "queue.mask", "cfd.solve"]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].stage, "transfer");
        assert_eq!(rows[0].count, 1);
        assert!((rows[0].mean_s - 0.2).abs() < 1e-9);
        assert_eq!(rows[1].count, 0, "missing stage visible with zero count");
        assert!((rows[2].mean_s - 420.0).abs() < 1e-9);
        assert!(rows[2].share > 0.99, "CFD dominates");
        let rendered = render_budget_table(&rows);
        assert!(rendered.contains("cfd.solve"));
        assert!(rendered.contains("queue.mask"));
    }

    #[test]
    fn wall_spans_export_with_wall_clock_label() {
        let t = Tracer::new();
        let tr = t.new_trace();
        t.start_wall(tr, None, "sweep").finish();
        let jsonl = spans_to_jsonl(&t.spans());
        assert!(jsonl.contains("\"clock\":\"wall\""));
        assert_eq!(t.spans()[0].domain, ClockDomain::Wall);
    }
}
