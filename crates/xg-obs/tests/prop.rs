//! Property-based invariants of the log-linear histogram and the
//! black-box flight recorder.

use proptest::prelude::*;
use xg_obs::clock::ClockDomain;
use xg_obs::{FlightRecorder, Histogram, HistogramConfig, ProfileSnapshot, Profiler, SpanRecord};

/// Exact nearest-rank quantile of a sorted sample vector, matching the
/// rank convention `HistogramSnapshot::quantile` documents.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
    sorted[rank]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every quantile estimate is within the configured relative error of
    /// the exact sample at that rank, for arbitrary positive streams
    /// spanning many decades and arbitrary accuracy settings.
    #[test]
    fn quantiles_within_relative_error_bound(
        values in proptest::collection::vec(1e-6f64..1e9, 1..400),
        rel_err in 0.001f64..0.1,
        stripes in 1usize..6,
    ) {
        let h = Histogram::with_config(HistogramConfig { rel_err, stripes });
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = snap.quantile(q).unwrap();
            let exact = exact_quantile(&sorted, q);
            prop_assert!(
                (est - exact).abs() <= rel_err * exact * 1.0001,
                "q={} est={} exact={} rel_err={}",
                q, est, exact, rel_err
            );
        }
        prop_assert_eq!(snap.min().unwrap(), sorted[0]);
        prop_assert_eq!(snap.max().unwrap(), sorted[sorted.len() - 1]);
    }

    /// Merging per-shard snapshots yields exactly the state one histogram
    /// would hold had it seen the whole stream: same buckets, count,
    /// min/max, sum, and therefore identical quantile answers. Samples are
    /// integer-valued so the f64 sums are exact in any addition order and
    /// full structural equality is well-defined.
    #[test]
    fn shard_merge_equals_single_stream(
        values in proptest::collection::vec(1u32..1_000_000, 1..300),
        assignment in proptest::collection::vec(0usize..4, 300),
        rel_err in 0.005f64..0.05,
    ) {
        let cfg = HistogramConfig { rel_err, stripes: 2 };
        let shards: Vec<Histogram> = (0..4).map(|_| Histogram::with_config(cfg)).collect();
        let single = Histogram::with_config(cfg);
        for (i, &v) in values.iter().enumerate() {
            let v = f64::from(v);
            shards[assignment[i]].record(v);
            single.record(v);
        }
        let mut merged = shards[0].snapshot();
        for s in &shards[1..] {
            merged.merge(&s.snapshot());
        }
        prop_assert_eq!(merged, single.snapshot());
    }

    /// Merging per-shard snapshots is order-independent — forward and
    /// reverse merge orders answer every quantile identically — and the
    /// merged result stays quantile-equivalent (within the configured
    /// relative error) to the exact stream, for arbitrary float streams
    /// where f64 sums are *not* exact.
    #[test]
    fn shard_merge_order_independent_and_quantile_equivalent(
        values in proptest::collection::vec(1e-3f64..1e7, 1..300),
        assignment in proptest::collection::vec(0usize..4, 300),
        rel_err in 0.005f64..0.05,
    ) {
        let cfg = HistogramConfig { rel_err, stripes: 1 };
        let shards: Vec<Histogram> = (0..4).map(|_| Histogram::with_config(cfg)).collect();
        for (i, &v) in values.iter().enumerate() {
            shards[assignment[i]].record(v);
        }
        let snaps: Vec<_> = shards.iter().map(Histogram::snapshot).collect();
        let mut fwd = snaps[0].clone();
        for s in &snaps[1..] {
            fwd.merge(s);
        }
        let mut rev = snaps[3].clone();
        for s in snaps[..3].iter().rev() {
            rev.merge(s);
        }
        // Bucket counts and extremes add commutatively, so every
        // quantile answer is identical whichever order shards merge in.
        prop_assert_eq!(fwd.count(), rev.count());
        prop_assert_eq!(fwd.min(), rev.min());
        prop_assert_eq!(fwd.max(), rev.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(fwd.quantile(q), rev.quantile(q));
        }
        // And the merged view answers quantiles within the accuracy one
        // histogram over the whole stream guarantees.
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = fwd.quantile(q).unwrap();
            let exact = exact_quantile(&sorted, q);
            prop_assert!(
                (est - exact).abs() <= rel_err * exact * 1.0001,
                "q={} est={} exact={} rel_err={}",
                q, est, exact, rel_err
            );
        }
    }

    /// The profiler's attribution tree has the same property: per-shard
    /// snapshots merged in any order are bitwise identical to the tree
    /// one profiler builds from the whole stream — the invariant that
    /// makes parallel-fleet attribution comparable to serial.
    #[test]
    fn profile_shard_merge_is_order_independent(
        durs in proptest::collection::vec(1u64..1_000_000, 1..200),
        assignment in proptest::collection::vec(0usize..3, 200),
        path_pick in proptest::collection::vec(0usize..5, 200),
    ) {
        const PATHS: [&str; 5] = [
            "cycle",
            "cycle/ran.probe",
            "cycle/gateway.ship",
            "cycle/ran.probe/cell",
            "hpc.advance",
        ];
        let shards: Vec<Profiler> = (0..3).map(|_| Profiler::with_stripes(1)).collect();
        let all = Profiler::with_stripes(1);
        for (i, &d) in durs.iter().enumerate() {
            let path = PATHS[path_pick[i]];
            shards[assignment[i]].record_at(path, d);
            all.record_at(path, d);
        }
        let mut fwd = ProfileSnapshot::default();
        for s in &shards {
            fwd.merge(&s.snapshot());
        }
        let mut rev = ProfileSnapshot::default();
        for s in shards.iter().rev() {
            rev.merge(&s.snapshot());
        }
        prop_assert_eq!(&fwd, &rev);
        prop_assert_eq!(fwd, all.snapshot());
    }
}

/// Build a random forest of spans: `parent_pick[i]` selects span i's
/// parent among the earlier spans of the same trace (or none), and
/// `order_key` shuffles the order they reach the recorder — children
/// routinely arrive before their parents, like a multi-threaded run.
fn span_forest(
    traces: &[u8],
    parent_pick: &[u8],
    order_key: &[u32],
) -> (Vec<SpanRecord>, Vec<usize>) {
    let n = traces.len();
    let mut spans = Vec::with_capacity(n);
    for i in 0..n {
        let trace = u64::from(traces[i] % 3) + 1;
        let earlier: Vec<u64> = spans
            .iter()
            .filter(|s: &&SpanRecord| s.trace == trace)
            .map(|s| s.id)
            .collect();
        let parent = if earlier.is_empty() || parent_pick[i].is_multiple_of(4) {
            None
        } else {
            Some(earlier[usize::from(parent_pick[i]) % earlier.len()])
        };
        spans.push(SpanRecord {
            trace,
            id: i as u64 + 1,
            parent,
            name: format!("stage{}", i % 7),
            domain: ClockDomain::Sim,
            start_us: i as u64 * 100,
            end_us: i as u64 * 100 + 50,
            attrs: vec![],
        });
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (order_key[i], i));
    (spans, order)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The recorder's memory stays within its fixed budget under any
    /// stream, every eviction is accounted for, and the surviving
    /// entries are the most recent ones in global sequence order.
    #[test]
    fn recorder_memory_stays_bounded(
        traces in proptest::collection::vec(any::<u8>(), 1..250),
        capacity in 4usize..80,
        shards in 1usize..6,
    ) {
        let n = traces.len();
        let rec = FlightRecorder::with_shards(capacity, shards);
        let (spans, _) = span_forest(&traces, &vec![0; n], &vec![0; n]);
        for s in spans {
            rec.record_span(s);
        }
        prop_assert!(rec.len() <= rec.capacity(),
            "len {} over capacity {}", rec.len(), rec.capacity());
        prop_assert_eq!(rec.dropped() as usize + rec.len(), n);
        let entries = rec.entries();
        prop_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        if let Some((last_seq, _)) = entries.last() {
            prop_assert_eq!(*last_seq, n as u64 - 1, "newest entry always survives");
        }
    }

    /// However spans interleave (children recorded before parents,
    /// traces mixed, arbitrary eviction pressure), the dump order puts
    /// every surviving parent before all of its surviving children.
    #[test]
    fn recorder_dump_preserves_causal_order(
        traces in proptest::collection::vec(any::<u8>(), 1..120),
        parent_pick in proptest::collection::vec(any::<u8>(), 120),
        order_key in proptest::collection::vec(any::<u32>(), 120),
        capacity in 4usize..96,
        shards in 1usize..5,
    ) {
        let rec = FlightRecorder::with_shards(capacity, shards);
        let (spans, order) = span_forest(&traces, &parent_pick, &order_key);
        for &i in &order {
            rec.record_span(spans[i].clone());
        }
        let dumped = rec.ordered_spans();
        prop_assert_eq!(dumped.len(), rec.len());
        for (pos, s) in dumped.iter().enumerate() {
            if let Some(p) = s.parent {
                if let Some(ppos) = dumped
                    .iter()
                    .position(|c| c.trace == s.trace && c.id == p)
                {
                    prop_assert!(
                        ppos < pos,
                        "span {} at {} precedes its parent {} at {}",
                        s.id, pos, p, ppos
                    );
                }
            }
        }
    }
}
