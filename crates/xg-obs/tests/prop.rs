//! Property-based invariants of the log-linear histogram.

use proptest::prelude::*;
use xg_obs::{Histogram, HistogramConfig};

/// Exact nearest-rank quantile of a sorted sample vector, matching the
/// rank convention `HistogramSnapshot::quantile` documents.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
    sorted[rank]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every quantile estimate is within the configured relative error of
    /// the exact sample at that rank, for arbitrary positive streams
    /// spanning many decades and arbitrary accuracy settings.
    #[test]
    fn quantiles_within_relative_error_bound(
        values in proptest::collection::vec(1e-6f64..1e9, 1..400),
        rel_err in 0.001f64..0.1,
        stripes in 1usize..6,
    ) {
        let h = Histogram::with_config(HistogramConfig { rel_err, stripes });
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = snap.quantile(q).unwrap();
            let exact = exact_quantile(&sorted, q);
            prop_assert!(
                (est - exact).abs() <= rel_err * exact * 1.0001,
                "q={} est={} exact={} rel_err={}",
                q, est, exact, rel_err
            );
        }
        prop_assert_eq!(snap.min().unwrap(), sorted[0]);
        prop_assert_eq!(snap.max().unwrap(), sorted[sorted.len() - 1]);
    }

    /// Merging per-shard snapshots yields exactly the state one histogram
    /// would hold had it seen the whole stream: same buckets, count,
    /// min/max, sum, and therefore identical quantile answers. Samples are
    /// integer-valued so the f64 sums are exact in any addition order and
    /// full structural equality is well-defined.
    #[test]
    fn shard_merge_equals_single_stream(
        values in proptest::collection::vec(1u32..1_000_000, 1..300),
        assignment in proptest::collection::vec(0usize..4, 300),
        rel_err in 0.005f64..0.05,
    ) {
        let cfg = HistogramConfig { rel_err, stripes: 2 };
        let shards: Vec<Histogram> = (0..4).map(|_| Histogram::with_config(cfg)).collect();
        let single = Histogram::with_config(cfg);
        for (i, &v) in values.iter().enumerate() {
            let v = f64::from(v);
            shards[assignment[i]].record(v);
            single.record(v);
        }
        let mut merged = shards[0].snapshot();
        for s in &shards[1..] {
            merged.merge(&s.snapshot());
        }
        prop_assert_eq!(merged, single.snapshot());
    }
}
