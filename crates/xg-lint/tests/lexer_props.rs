//! Adversarial property tests for the surface lexer and tokenizer: the
//! scrubber must keep line structure byte-exact on arbitrary ASCII soup,
//! survive nested block comments and raw strings at any hash depth, and
//! the token tree must never let literal contents (byte strings, char
//! literals holding braces) bend brace balance.

use proptest::prelude::*;

use xg_lint::lexer::scrub;
use xg_lint::tokens::{build_tree, tokenize, Node};

/// Count top-level nodes and, recursively, total groups in a tree.
fn group_count(nodes: &[Node]) -> usize {
    nodes
        .iter()
        .map(|n| match n {
            Node::Group { children, .. } => 1 + group_count(children),
            Node::Leaf(_) => 0,
        })
        .sum()
}

proptest! {
    /// Arbitrary printable-ASCII soup (quotes, hashes, braces, slashes
    /// included): scrubbing never panics, preserves the line count, and
    /// keeps every line's byte length — rules report line numbers, so
    /// the scrubbed view must stay aligned with the source.
    #[test]
    fn scrub_preserves_line_structure(src in "[ -~\n]{0,300}") {
        let s = scrub(&src);
        let src_lines: Vec<&str> = src.split('\n').collect();
        prop_assert_eq!(s.lines.len(), src_lines.len());
        for (got, want) in s.lines.iter().zip(&src_lines) {
            prop_assert_eq!(got.len(), want.len(), "line length drift");
        }
        // The whole pipeline stays panic-free on garbage.
        let _ = build_tree(tokenize(&s));
    }

    /// Nested block comments at arbitrary depth: the payload lands in
    /// `comments`, never in the scrubbed code, and code on both sides of
    /// the comment survives.
    #[test]
    fn nested_block_comments_scrub_clean(
        depth in 1u32..=8,
        payload in "[a-z]{4,12}",
    ) {
        let open = "/*".repeat(depth as usize);
        let close = "*/".repeat(depth as usize);
        let src = format!("let before = 1; {open} zz{payload} {close} let after_ns = 2;");
        let s = scrub(&src);
        let code = s.lines.join("\n");
        prop_assert!(code.contains("let before"), "code before comment lost: {code:?}");
        prop_assert!(code.contains("let after_ns"), "code after comment lost: {code:?}");
        prop_assert!(!code.contains(&format!("zz{payload}")), "comment leaked into code");
        prop_assert_eq!(s.comments.len(), 1);
        prop_assert!(s.comments[0].text.contains(&format!("zz{payload}")));
    }

    /// Raw strings at any hash count (including zero): the body is
    /// captured verbatim, and lexing resumes correctly after the
    /// matching close so trailing code is still visible to rules.
    #[test]
    fn raw_strings_round_trip_any_hash_count(
        hashes in 0usize..=6,
        payload in "[a-z. ]{0,24}",
    ) {
        let h = "#".repeat(hashes);
        let src = format!("let x = r{h}\"{payload}\"{h}; let tail_ns = 3;");
        let s = scrub(&src);
        prop_assert_eq!(s.strings.len(), 1);
        prop_assert_eq!(s.strings[0].text.as_str(), payload.as_str());
        prop_assert!(s.lines.join("\n").contains("let tail_ns"), "lexer overran the close");
    }

    /// Raw strings with enough hashes can embed `"#` sequences shorter
    /// than their own delimiter; the lexer must not close early.
    #[test]
    fn raw_strings_embed_shorter_delimiters(inner_hashes in 0usize..=4) {
        let outer = inner_hashes + 1;
        let h = "#".repeat(outer);
        let body = format!("a\"{}b", "#".repeat(inner_hashes));
        let src = format!("let x = r{h}\"{body}\"{h};");
        let s = scrub(&src);
        prop_assert_eq!(s.strings.len(), 1);
        prop_assert_eq!(s.strings[0].text.as_str(), body.as_str());
    }

    /// Byte strings and char literals holding brace/paren characters:
    /// literal contents must not change the token tree's shape.
    #[test]
    fn literal_braces_never_bend_the_tree(
        idx in 0usize..6,
        escaped in any::<bool>(),
    ) {
        let brace = ['{', '}', '(', ')', '[', ']'][idx];
        let ch = if escaped { "\\n".to_string() } else { brace.to_string() };
        let src = format!(
            "fn f() {{ let b = b\"{brace}{brace}\"; let c = '{ch}'; [1, 2] }}"
        );
        let reference = "fn f() { let b = b\"\"; let c = ' '; [1, 2] }";
        let tree = build_tree(tokenize(&scrub(&src)));
        let ref_tree = build_tree(tokenize(&scrub(reference)));
        prop_assert_eq!(group_count(&tree), group_count(&ref_tree), "literal contents changed the tree shape");
    }

    /// Lifetimes are not char literals: generic code scrubs to itself,
    /// with no phantom string or char captures.
    #[test]
    fn lifetimes_are_not_char_literals(name in "[a-z]{1,6}") {
        let src = format!("fn f<'{name}>(x: &'{name} str) -> &'{name} str {{ x }}");
        let s = scrub(&src);
        prop_assert_eq!(s.lines.join("\n"), src);
        prop_assert!(s.strings.is_empty(), "lifetime captured as literal: {:?}", s.strings);
    }
}
