//! Fixture-file tests: one positive and one negative case per rule,
//! plus waiver-comment parsing. Every positive fixture pins its rule to
//! exact lines, so deleting (or breaking) any single rule's
//! implementation fails at least one test here.

use std::path::Path;

use xg_lint::{analyze_file, finalize, lint_source, Config, Finding, ObsSchema, Rule};

fn fixture_source(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Lint one fixture under the all-paths-in-scope config.
fn lint_fixture(name: &str) -> Vec<Finding> {
    lint_fixture_with(name, &Config::everything())
}

fn lint_fixture_with(name: &str, cfg: &Config) -> Vec<Finding> {
    lint_source(&format!("fixtures/{name}"), &fixture_source(name), cfg)
}

/// Lint one fixture file against one fixture schema, running both
/// passes exactly as `lint_root` does for the workspace.
fn lint_fixture_against_schema(name: &str, schema_name: &str) -> Vec<Finding> {
    let schema = ObsSchema::parse(&fixture_source(schema_name))
        .unwrap_or_else(|e| panic!("fixture schema {schema_name}: {e}"));
    let analysis = analyze_file(
        &format!("fixtures/{name}"),
        &fixture_source(name),
        &Config::everything(),
    );
    finalize(
        vec![analysis],
        Some((&schema, &format!("fixtures/{schema_name}"))),
    )
}

fn lines_of(findings: &[Finding], rule: Rule) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.rule == rule && !f.waived)
        .map(|f| f.line)
        .collect()
}

#[test]
fn wall_clock_positive() {
    let f = lint_fixture("wall_clock_pos.rs");
    assert_eq!(lines_of(&f, Rule::WallClock), vec![5, 6]);
}

#[test]
fn wall_clock_negative() {
    let f = lint_fixture("wall_clock_neg.rs");
    assert!(f.is_empty(), "unexpected findings: {f:?}");
}

#[test]
fn wall_clock_allowlisted_path_is_exempt() {
    // The same source that fires under the fixture config is silent when
    // the file sits on the workspace wall-clock allowlist.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/wall_clock_pos.rs");
    let source = std::fs::read_to_string(path).expect("fixture readable");
    let f = lint_source("crates/xg-obs/src/clock.rs", &source, &Config::workspace());
    assert!(lines_of(&f, Rule::WallClock).is_empty());
}

#[test]
fn unordered_iter_positive() {
    let f = lint_fixture("unordered_iter_pos.rs");
    let lines = lines_of(&f, Rule::UnorderedIter);
    // Import line (both types), two field declarations.
    assert!(lines.contains(&2), "import must be flagged: {lines:?}");
    assert!(lines.contains(&5));
    assert!(lines.contains(&6));
}

#[test]
fn unordered_iter_negative() {
    let f = lint_fixture("unordered_iter_neg.rs");
    assert!(
        f.is_empty(),
        "BTree* and test-only HashSet must pass: {f:?}"
    );
}

#[test]
fn unseeded_random_positive() {
    let f = lint_fixture("unseeded_random_pos.rs");
    let lines = lines_of(&f, Rule::UnseededRandom);
    assert!(lines.contains(&5), "thread_rng: {lines:?}");
    assert!(lines.contains(&6), "rand::random in lib code: {lines:?}");
    assert!(
        lines.contains(&13),
        "rand::random in tests is still a finding: {lines:?}"
    );
}

#[test]
fn unseeded_random_negative() {
    let f = lint_fixture("unseeded_random_neg.rs");
    assert!(f.is_empty(), "seeded RNG must pass: {f:?}");
}

#[test]
fn panicking_call_positive() {
    let f = lint_fixture("panicking_call_pos.rs");
    let lines = lines_of(&f, Rule::PanickingCall);
    for expected in [4, 5, 7, 10, 11, 12] {
        assert!(
            lines.contains(&expected),
            "line {expected} missing: {lines:?}"
        );
    }
}

#[test]
fn panicking_call_negative() {
    let f = lint_fixture("panicking_call_neg.rs");
    assert!(
        f.is_empty(),
        "typed errors + test-only unwraps must pass: {f:?}"
    );
}

#[test]
fn float_reduce_positive() {
    let f = lint_fixture("float_reduce_pos.rs");
    let lines = lines_of(&f, Rule::FloatReduce);
    assert!(lines.contains(&9), ".fold in par statement: {lines:?}");
    assert!(
        lines.contains(&10),
        ".sum::<f64> in par statement: {lines:?}"
    );
}

#[test]
fn float_reduce_negative() {
    let f = lint_fixture("float_reduce_neg.rs");
    assert!(
        f.is_empty(),
        "serial reductions after the parallel statement must pass: {f:?}"
    );
}

#[test]
fn waiver_parsing() {
    let f = lint_fixture("waivers.rs");
    // Two wall-clock findings waived with reasons (line-above and trailing).
    let waived: Vec<_> = f
        .iter()
        .filter(|f| f.rule == Rule::WallClock && f.waived)
        .collect();
    assert_eq!(waived.len(), 2, "both probe legs waived: {f:?}");
    assert_eq!(
        waived[0].reason.as_deref(),
        Some("wall-domain probe measuring real elapsed time")
    );
    assert_eq!(
        waived[1].reason.as_deref(),
        Some("second leg of the same probe")
    );
    // The reasonless waiver does not waive, and is itself a finding.
    let unwaived_wall = lines_of(&f, Rule::WallClock);
    assert_eq!(unwaived_wall, vec![14], "reasonless waiver must not waive");
    let bad = lines_of(&f, Rule::BadWaiver);
    assert_eq!(
        bad,
        vec![13, 15],
        "reasonless + unknown-rule waivers: {f:?}"
    );
}

#[test]
fn report_json_round_trips_rule_names() {
    // Every waivable rule's name parses back; bad-waiver and
    // stale-waiver are unwaivable.
    for rule in Rule::all() {
        assert_eq!(Rule::from_name(rule.name()), Some(*rule));
    }
    assert_eq!(Rule::from_name("bad-waiver"), None);
    assert_eq!(Rule::from_name("stale-waiver"), None);
}

// ---------------------------------------------------------------------
// v2 semantic rules
// ---------------------------------------------------------------------

#[test]
fn time_unit_positive() {
    let f = lint_fixture("time_unit_pos.rs");
    let lines: std::collections::BTreeSet<usize> =
        lines_of(&f, Rule::TimeUnit).into_iter().collect();
    // 6: ms + ns (and d_ns = a_ms); 7: us < ms compare;
    // 14: SimNs(gap_ms); 18: SimNs(raw 5s-in-ns literal).
    assert_eq!(
        lines,
        [6, 7, 14, 18].into_iter().collect(),
        "findings: {f:?}"
    );
}

#[test]
fn time_unit_negative() {
    let f = lint_fixture("time_unit_neg.rs");
    assert!(
        lines_of(&f, Rule::TimeUnit).is_empty(),
        "same-unit math, scaled expressions, and conversion helpers must pass: {f:?}"
    );
}

#[test]
fn deprecated_api_positive() {
    let f = lint_fixture("deprecated_api_pos.rs");
    assert_eq!(
        lines_of(&f, Rule::DeprecatedApi),
        vec![4, 5, 6, 7],
        "method, UFCS, and poll call sites: {f:?}"
    );
}

#[test]
fn deprecated_api_negative() {
    let f = lint_fixture("deprecated_api_neg.rs");
    assert!(
        f.is_empty(),
        "definitions, near-miss names, and test-only calls must pass: {f:?}"
    );
}

#[test]
fn obs_name_positive_forward_and_reverse() {
    let f = lint_fixture_against_schema("obs_name_pos.rs", "obs_schema_pos.toml");
    // Forward: the three typo emissions, reported against the .rs file.
    let forward: Vec<usize> = f
        .iter()
        .filter(|x| x.rule == Rule::ObsName && !x.waived && x.file.ends_with(".rs"))
        .map(|x| x.line)
        .collect();
    assert_eq!(
        forward,
        vec![6, 8, 10],
        "undeclared counter/span/profile names: {f:?}"
    );
    // Reverse: the dead schema row, reported against the schema file.
    let dead: Vec<_> = f.iter().filter(|x| x.file.ends_with(".toml")).collect();
    assert_eq!(dead.len(), 1, "exactly the `fixture.dead` row: {f:?}");
    assert!(
        dead[0].message.contains("`fixture.dead`") && dead[0].message.contains("emitted nowhere"),
        "reverse-check message: {:?}",
        dead[0]
    );
}

#[test]
fn obs_name_negative_round_trips() {
    let f = lint_fixture_against_schema("obs_name_neg.rs", "obs_schema_neg.toml");
    assert!(
        f.is_empty(),
        "declared names, wildcard-covered dynamic names, reserved rows, \
         and test-region emissions must pass: {f:?}"
    );
}

#[test]
fn stale_waiver_positive() {
    let f = lint_fixture("stale_waiver_pos.rs");
    assert_eq!(
        lines_of(&f, Rule::StaleWaiver),
        vec![3],
        "the waiver suppressing nothing: {f:?}"
    );
    assert!(
        lines_of(&f, Rule::WallClock).is_empty(),
        "the live waiver still waives: {f:?}"
    );
}

#[test]
fn stale_waiver_negative() {
    let f = lint_fixture("stale_waiver_neg.rs");
    assert!(
        lines_of(&f, Rule::StaleWaiver).is_empty(),
        "a waiver with a live finding is not stale: {f:?}"
    );
    assert!(lines_of(&f, Rule::WallClock).is_empty());
}

/// Event-panic fixture config: panicking-call muted so the findings are
/// pure event-panic, and the whole file treated as event-queue code.
fn event_cfg() -> Config {
    let mut cfg = Config::everything();
    cfg.panicking_paths.clear();
    cfg.event_paths = vec![String::new()];
    cfg
}

#[test]
fn event_panic_positive_whole_file() {
    let f = lint_fixture_with("event_panic_pos.rs", &event_cfg());
    // unwrap + assert! in the Advance impl, panic! in EventSource, and
    // the expect outside any impl that only queue scope catches.
    assert_eq!(
        lines_of(&f, Rule::EventPanic),
        vec![8, 9, 16, 21],
        "findings: {f:?}"
    );
}

#[test]
fn event_panic_impl_scoped_under_default_config() {
    // Under the default config the file is panicking scope, so only the
    // assert-family escalation inside the Advance impl is new; the
    // out-of-impl expect stays a plain panicking-call finding.
    let f = lint_fixture("event_panic_pos.rs");
    assert_eq!(
        lines_of(&f, Rule::EventPanic),
        vec![9],
        "assert escalation only: {f:?}"
    );
    let panics = lines_of(&f, Rule::PanickingCall);
    assert!(
        panics.contains(&21),
        "out-of-impl expect stays panicking-call: {panics:?}"
    );
}

#[test]
fn event_panic_negative() {
    let f = lint_fixture_with("event_panic_neg.rs", &event_cfg());
    assert!(
        lines_of(&f, Rule::EventPanic).is_empty(),
        "typed errors + test-only asserts must pass: {f:?}"
    );
}
