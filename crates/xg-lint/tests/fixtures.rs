//! Fixture-file tests: one positive and one negative case per rule,
//! plus waiver-comment parsing. Every positive fixture pins its rule to
//! exact lines, so deleting (or breaking) any single rule's
//! implementation fails at least one test here.

use std::path::Path;

use xg_lint::{lint_source, Config, Finding, Rule};

/// Lint one fixture under the all-paths-in-scope config.
fn lint_fixture(name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    lint_source(&format!("fixtures/{name}"), &source, &Config::everything())
}

fn lines_of(findings: &[Finding], rule: Rule) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.rule == rule && !f.waived)
        .map(|f| f.line)
        .collect()
}

#[test]
fn wall_clock_positive() {
    let f = lint_fixture("wall_clock_pos.rs");
    assert_eq!(lines_of(&f, Rule::WallClock), vec![5, 6]);
}

#[test]
fn wall_clock_negative() {
    let f = lint_fixture("wall_clock_neg.rs");
    assert!(f.is_empty(), "unexpected findings: {f:?}");
}

#[test]
fn wall_clock_allowlisted_path_is_exempt() {
    // The same source that fires under the fixture config is silent when
    // the file sits on the workspace wall-clock allowlist.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/wall_clock_pos.rs");
    let source = std::fs::read_to_string(path).expect("fixture readable");
    let f = lint_source("crates/xg-obs/src/clock.rs", &source, &Config::workspace());
    assert!(lines_of(&f, Rule::WallClock).is_empty());
}

#[test]
fn unordered_iter_positive() {
    let f = lint_fixture("unordered_iter_pos.rs");
    let lines = lines_of(&f, Rule::UnorderedIter);
    // Import line (both types), two field declarations.
    assert!(lines.contains(&2), "import must be flagged: {lines:?}");
    assert!(lines.contains(&5));
    assert!(lines.contains(&6));
}

#[test]
fn unordered_iter_negative() {
    let f = lint_fixture("unordered_iter_neg.rs");
    assert!(
        f.is_empty(),
        "BTree* and test-only HashSet must pass: {f:?}"
    );
}

#[test]
fn unseeded_random_positive() {
    let f = lint_fixture("unseeded_random_pos.rs");
    let lines = lines_of(&f, Rule::UnseededRandom);
    assert!(lines.contains(&5), "thread_rng: {lines:?}");
    assert!(lines.contains(&6), "rand::random in lib code: {lines:?}");
    assert!(
        lines.contains(&13),
        "rand::random in tests is still a finding: {lines:?}"
    );
}

#[test]
fn unseeded_random_negative() {
    let f = lint_fixture("unseeded_random_neg.rs");
    assert!(f.is_empty(), "seeded RNG must pass: {f:?}");
}

#[test]
fn panicking_call_positive() {
    let f = lint_fixture("panicking_call_pos.rs");
    let lines = lines_of(&f, Rule::PanickingCall);
    for expected in [4, 5, 7, 10, 11, 12] {
        assert!(
            lines.contains(&expected),
            "line {expected} missing: {lines:?}"
        );
    }
}

#[test]
fn panicking_call_negative() {
    let f = lint_fixture("panicking_call_neg.rs");
    assert!(
        f.is_empty(),
        "typed errors + test-only unwraps must pass: {f:?}"
    );
}

#[test]
fn float_reduce_positive() {
    let f = lint_fixture("float_reduce_pos.rs");
    let lines = lines_of(&f, Rule::FloatReduce);
    assert!(lines.contains(&9), ".fold in par statement: {lines:?}");
    assert!(
        lines.contains(&10),
        ".sum::<f64> in par statement: {lines:?}"
    );
}

#[test]
fn float_reduce_negative() {
    let f = lint_fixture("float_reduce_neg.rs");
    assert!(
        f.is_empty(),
        "serial reductions after the parallel statement must pass: {f:?}"
    );
}

#[test]
fn waiver_parsing() {
    let f = lint_fixture("waivers.rs");
    // Two wall-clock findings waived with reasons (line-above and trailing).
    let waived: Vec<_> = f
        .iter()
        .filter(|f| f.rule == Rule::WallClock && f.waived)
        .collect();
    assert_eq!(waived.len(), 2, "both probe legs waived: {f:?}");
    assert_eq!(
        waived[0].reason.as_deref(),
        Some("wall-domain probe measuring real elapsed time")
    );
    assert_eq!(
        waived[1].reason.as_deref(),
        Some("second leg of the same probe")
    );
    // The reasonless waiver does not waive, and is itself a finding.
    let unwaived_wall = lines_of(&f, Rule::WallClock);
    assert_eq!(unwaived_wall, vec![14], "reasonless waiver must not waive");
    let bad = lines_of(&f, Rule::BadWaiver);
    assert_eq!(
        bad,
        vec![13, 15],
        "reasonless + unknown-rule waivers: {f:?}"
    );
}

#[test]
fn report_json_round_trips_rule_names() {
    // Every waivable rule's name parses back; bad-waiver is unwaivable.
    for rule in Rule::all() {
        assert_eq!(Rule::from_name(rule.name()), Some(*rule));
    }
    assert_eq!(Rule::from_name("bad-waiver"), None);
}
