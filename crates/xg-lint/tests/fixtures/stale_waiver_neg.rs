//! Negative fixture: every waiver suppresses a live finding.

pub fn probe() -> std::time::Instant {
    // xg-lint: allow(wall-clock, wall-domain probe)
    std::time::Instant::now()
}
