// Negative case: serial float reductions are fine, and a parallel
// statement with no reduction is fine; the serial sum after the
// parallel statement ends must not be flagged.
use rayon::prelude::*;

pub fn normalize(cells: &mut [f64]) -> f64 {
    cells.par_iter_mut().for_each(|c| {
        *c = c.abs();
    });
    let total: f64 = cells.iter().sum::<f64>();
    total / cells.len() as f64
}
