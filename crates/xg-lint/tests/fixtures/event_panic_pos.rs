//! Positive fixture: panic paths inside event-engine impls, plus one
//! outside them that only the whole-file (queue) scope catches.

pub struct Q;

impl Advance for Q {
    fn advance_to(&mut self, t_ns: u64) -> Result<(), Stall> {
        let ev = self.heap.pop().unwrap();
        assert!(ev.at_ns >= t_ns);
        Ok(())
    }
}

impl EventSource for Q {
    fn next_event(&self) -> Option<u64> {
        panic!("no events")
    }
}

pub fn outside(q: &Q) {
    q.peek().expect("only the whole-file scope catches this");
}
