//! Positive fixture: a waiver whose finding is long gone.

// xg-lint: allow(wall-clock, stale - the probe this covered was removed)
pub fn nothing_to_suppress() {}

pub fn used() -> std::time::Instant {
    // xg-lint: allow(wall-clock, real probe, this waiver is live)
    std::time::Instant::now()
}
