// Positive case: unordered containers in a deterministic crate.
use std::collections::{HashMap, HashSet};

pub struct Registry {
    by_id: HashMap<u32, String>,
    seen: HashSet<u32>,
}

pub fn drain(r: &Registry) -> Vec<String> {
    // Iteration order here depends on the hasher's per-process seed.
    r.by_id.values().cloned().collect()
}
