//! Positive fixture: one undeclared name per obs API family, next to
//! the declared spelling so only `fixture.dead` trips the reverse check.

pub fn wire(reg: &Registry, tr: &Tracer, prof: &Profiler, trace: TraceId) {
    reg.counter("fixture.gateway.backlog").inc();
    reg.counter("fixture.gatway.backlog").inc();
    tr.record_sim_s(trace, None, "fixture.cycle.transfer", 0.0, 1.0, vec![]);
    tr.record_sim_s(trace, None, "fixture.cycle.typo", 0.0, 1.0, vec![]);
    prof.scope_under("fixture.step", "child");
    prof.scope_under("fixture.step", "typo_child");
}
