// Positive case: the whole panic family in non-test library code.
pub fn lookup(xs: &[u32], want: u32) -> u32 {
    let found = xs.iter().find(|&&x| x == want);
    let v = found.unwrap();
    let w: u32 = std::env::var("X").expect("X must be set").parse().unwrap();
    if v + w == 0 {
        panic!("impossible");
    }
    match v {
        0 => unreachable!("zero filtered above"),
        1 => todo!("handle one"),
        2 => unimplemented!("handle two"),
        _ => v,
    }
}
