//! Positive fixture: time-unit mixing without conversions.

pub struct SimNs(pub u64);

pub fn mix(a_ms: u64, b_ns: u64, c_us: u64) -> u64 {
    let d_ns = a_ms + b_ns;
    if c_us < a_ms {
        return d_ns;
    }
    d_ns
}

pub fn build(gap_ms: u64) -> SimNs {
    SimNs(gap_ms)
}

pub fn raw() -> SimNs {
    SimNs(5_000_000_000)
}
