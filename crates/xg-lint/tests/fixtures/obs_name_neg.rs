//! Negative fixture: every literal name is declared, dynamic names ride
//! a wildcard row, and test-region registrations are out of scope.

pub fn wire(reg: &Registry, tr: &Tracer, prof: &Profiler, trace: TraceId, name: &str) {
    reg.counter("fixture.gateway.backlog").inc();
    reg.gauge(&format!("fixture.cell.{}.fade_db", name)).set(0.0);
    tr.record_sim_s(trace, None, "fixture.cycle.transfer", 0.0, 1.0, vec![]);
    prof.scope_under("fixture.step", "child");
}

#[cfg(test)]
mod tests {
    #[test]
    fn toy_names_do_not_need_schema_rows() {
        let reg = Registry::new();
        reg.counter("toy").inc();
    }
}
