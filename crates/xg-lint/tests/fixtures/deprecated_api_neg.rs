//! Negative fixture: definitions, near-miss names, and test-only call
//! sites of the frozen APIs all pass.

pub struct Sim;

impl Sim {
    pub fn step_slots(&mut self, n: usize) {
        let _ = n;
    }
    pub fn run_seconds_serial(&mut self, s: u64) {
        let _ = s;
    }
}

pub fn drive(sim: &mut Sim) {
    sim.run_seconds_serial(1);
}

#[cfg(test)]
mod tests {
    #[test]
    fn legacy_contract_is_pinned_here() {
        let mut sim = super::Sim;
        sim.step_slots(1);
        sim.run_seconds_serial(1);
    }
}
