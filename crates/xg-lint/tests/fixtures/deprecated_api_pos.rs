//! Positive fixture: call sites of the frozen stepped-era APIs.

pub fn drive(sim: &mut LinkSimulator, net: &mut SensorNetwork) {
    sim.step_slots(8_000);
    sim.run_seconds(1);
    LinkSimulator::run_second(sim);
    let _ = net.poll(3);
}
