// Negative case: every stream derives from an explicit seed.
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn jitter(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen::<f64>()
}
