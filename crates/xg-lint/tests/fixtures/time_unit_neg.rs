//! Negative fixture: same-unit math and explicit conversions pass.

pub struct SimNs(pub u64);

const NS_PER_MS: u64 = 1_000_000;

pub fn same(a_ms: u64, b_ms: u64) -> u64 {
    a_ms + b_ms
}

pub fn scaled(a_ms: u64, b_ns: u64) -> u64 {
    a_ms * NS_PER_MS + b_ns
}

pub fn divided(total_ns: u64) -> f64 {
    let total_ms = total_ns as f64 / 1e6;
    total_ms
}

pub fn converted(a_ms: u64) -> SimNs {
    SimNs(ms_to_ns(a_ms))
}

fn ms_to_ns(v_ms: u64) -> u64 {
    v_ms * 1_000_000
}

pub fn small_consts(t_ns: u64) -> (SimNs, SimNs, SimNs) {
    (SimNs(t_ns), SimNs(0), SimNs(100))
}
