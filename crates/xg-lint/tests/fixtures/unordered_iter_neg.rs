// Negative case: ordered containers are always fine, and unordered ones
// in test-only code are exempt.
use std::collections::{BTreeMap, BTreeSet};

pub struct Registry {
    by_id: BTreeMap<u32, String>,
    seen: BTreeSet<u32>,
}

pub fn drain(r: &Registry) -> Vec<String> {
    r.by_id.values().cloned().collect()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn membership_only() {
        let mut s = HashSet::new();
        assert!(s.insert(1));
    }
}
