// Negative case: virtual time only; mentions of Instant::now in strings
// and comments must not trigger.
pub fn step(sim_t_us: &mut u64) {
    *sim_t_us += 500;
    let _msg = "wall reads like Instant::now are banned here";
}

/// Doc comments describing the waiver syntax are not directives:
/// xg-lint: allow(wall-clock, doc example — must be ignored)
pub fn documented(sim_t_us: u64) -> u64 {
    sim_t_us
}
