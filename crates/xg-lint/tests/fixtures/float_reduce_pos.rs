// Positive case: a float reduction inside a parallel statement with no
// documented order guarantee.
use rayon::prelude::*;

pub fn total_energy(cells: &[f64]) -> f64 {
    cells
        .par_iter()
        .map(|c| c * c)
        .fold(|| 0.0f64, |a, b| a + b)
        .sum::<f64>()
}
