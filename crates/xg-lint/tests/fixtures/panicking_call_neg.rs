// Negative case: typed errors in library code; unwrap/expect/panic are
// fine inside #[cfg(test)] regions and #[test] functions.
pub fn lookup(xs: &[u32], want: u32) -> Option<u32> {
    xs.iter().find(|&&x| x == want).copied()
}

pub fn head(xs: &[u32]) -> Result<u32, String> {
    xs.first().copied().ok_or_else(|| "empty".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn found() {
        assert_eq!(lookup(&[1, 2], 2).unwrap(), 2);
        head(&[]).expect_err("empty must err");
        if false {
            panic!("test-only panic is fine");
        }
    }
}

#[test]
fn standalone_test_fn() {
    lookup(&[7], 7).unwrap();
}
