// Waiver-parsing fixture: reasoned waivers (trailing and line-above),
// a reasonless waiver, and an unknown-rule waiver.
use std::time::Instant;

pub fn probe() -> u64 {
    // xg-lint: allow(wall-clock, wall-domain probe measuring real elapsed time)
    let t0 = Instant::now();
    let t1 = Instant::now(); // xg-lint: allow(wall-clock, second leg of the same probe)
    (t1 - t0).as_micros() as u64
}

pub fn bad_waivers(x: Option<u32>) -> u64 {
    // xg-lint: allow(wall-clock)
    let t = Instant::now();
    // xg-lint: allow(not-a-rule, with a reason)
    let _ = x;
    t.elapsed().as_micros() as u64
}
