// Positive case: entropy drawn outside the run seed — in library code
// *and* in tests (the rule applies everywhere; a random test input that
// fails cannot be replayed).
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rand::random::<f64>() + rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    #[test]
    fn flaky() {
        let x = rand::random::<u8>();
        assert!(x < 255);
    }
}
