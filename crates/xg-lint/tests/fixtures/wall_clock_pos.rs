// Positive case: wall-clock reads in sim-domain code.
use std::time::{Instant, SystemTime};

pub fn step(sim_t_us: &mut u64) {
    let _t0 = Instant::now();
    let _epoch = SystemTime::now();
    *sim_t_us += 500;
}
