//! Negative fixture: typed errors inside event impls; asserts live in
//! test code only.

pub struct Q;

impl Advance for Q {
    fn advance_to(&mut self, t_ns: u64) -> Result<(), Stall> {
        let ev = self.heap.pop().ok_or(Stall::Empty)?;
        if ev.at_ns < t_ns {
            return Err(Stall::Late);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_are_fine_in_tests() {
        assert_eq!(1 + 1, 2);
        Q.advance_to(0).unwrap();
    }
}
