//! CLI for the workspace determinism-and-robustness linter.
//!
//! ```text
//! xg-lint [--root DIR] [--format human|json] [--show-waived] [--rules]
//!         [--compare PREV.json]
//! ```
//!
//! `--compare` diffs the current run against a previously emitted JSON
//! report (the artifact CI keeps from the last green run): the exit
//! status then reflects *new* unwaived findings only, so a long-lived
//! baseline of known findings cannot mask a fresh regression — and a
//! fresh regression cannot hide behind the baseline's count.
//!
//! Exit status: 0 when every finding is covered by a reasoned waiver
//! (or, with `--compare`, when no new unwaived findings appeared),
//! 1 otherwise, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use xg_lint::report::unwaived_fingerprints_from_json;
use xg_lint::{lint_root, Config, Rule, RULES_VERSION};

struct Args {
    root: PathBuf,
    json: bool,
    show_waived: bool,
    list_rules: bool,
    compare: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        show_waived: false,
        list_rules: false,
        compare: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                args.root = PathBuf::from(v);
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("human") => args.json = false,
                other => return Err(format!("--format must be human|json, got {other:?}")),
            },
            "--show-waived" => args.show_waived = true,
            "--rules" => args.list_rules = true,
            "--compare" => {
                let v = it.next().ok_or("--compare needs a previous JSON report")?;
                args.compare = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: xg-lint [--root DIR] [--format human|json] [--show-waived] \
                            [--rules] [--compare PREV.json]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        println!("{RULES_VERSION}");
        for rule in Rule::all() {
            println!("  {:<16} {}", rule.name(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }
    let report = match lint_root(&args.root, &Config::workspace()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xg-lint: cannot scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    if args.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_human(args.show_waived));
    }
    if let Some(prev_path) = &args.compare {
        let prev_text = match std::fs::read_to_string(prev_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xg-lint: cannot read {}: {e}", prev_path.display());
                return ExitCode::from(2);
            }
        };
        let prev: std::collections::BTreeSet<String> = unwaived_fingerprints_from_json(&prev_text)
            .into_iter()
            .collect();
        let fresh: Vec<_> = report
            .unwaived()
            .filter(|f| !prev.contains(&f.fingerprint()))
            .collect();
        eprintln!(
            "xg-lint --compare: {} unwaived now, {} in baseline, {} new",
            report.unwaived_count(),
            prev.len(),
            fresh.len()
        );
        for f in &fresh {
            eprintln!(
                "NEW {}:{}: {}: {}",
                f.file,
                f.line,
                f.rule.name(),
                f.message
            );
        }
        return if fresh.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if report.unwaived_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
