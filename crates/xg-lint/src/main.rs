//! CLI for the workspace determinism-and-robustness linter.
//!
//! ```text
//! xg-lint [--root DIR] [--format human|json] [--show-waived] [--rules]
//! ```
//!
//! Exit status: 0 when every finding is covered by a reasoned waiver,
//! 1 when unwaived findings remain, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use xg_lint::{lint_root, Config, Rule, RULES_VERSION};

struct Args {
    root: PathBuf,
    json: bool,
    show_waived: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        show_waived: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                args.root = PathBuf::from(v);
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("human") => args.json = false,
                other => return Err(format!("--format must be human|json, got {other:?}")),
            },
            "--show-waived" => args.show_waived = true,
            "--rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err(
                    "usage: xg-lint [--root DIR] [--format human|json] [--show-waived] [--rules]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        println!("{RULES_VERSION}");
        for rule in Rule::all() {
            println!("  {:<16} {}", rule.name(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }
    let report = match lint_root(&args.root, &Config::workspace()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xg-lint: cannot scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    if args.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_human(args.show_waived));
    }
    if report.unwaived_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
